# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

# Every fuzz target in the tree, as package:Target pairs. go test accepts
# only one -fuzz pattern per package invocation, so fuzz-smoke loops.
FUZZ_TARGETS := \
	./internal/wire:FuzzDecodeRequest \
	./internal/wire:FuzzDecodeResponse \
	./internal/wire:FuzzReadFrame \
	./internal/wire:FuzzDecodeV2Frame \
	./internal/wire:FuzzV1V2Differential \
	./internal/binenc:FuzzReader \
	./internal/binenc:FuzzRoundTrip \
	./internal/meta:FuzzDecodeMetadata \
	./internal/meta:FuzzDecodeTable \
	./internal/meta:FuzzDecodeManifest \
	./internal/meta:FuzzDecodeSuperblock \
	./internal/meta:FuzzDecodeSplitPointer \
	./internal/cap:FuzzOpenView \
	./internal/analysis:FuzzParseAllowDirective \
	./internal/shard:FuzzDecodeRing

FUZZTIME ?= 10s

.PHONY: all build test vet vet-self vet-json vet-baseline vet-diff race chaos-smoke fuzz-smoke bench-compare bench-alloc check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet = the stock toolchain vet plus the repo's own invariant analyzers:
# six security analyzers (key leaks, AAD binding, seeded randomness,
# error hygiene, untrusted-input verification, key egress), four
# concurrency analyzers (lock ordering, lock balance, goroutine leaks,
# atomic/plain mixed access), and three error-propagation/lifecycle
# analyzers (errdrop, errwrap, resleak). Runs in baseline-diff mode:
# only findings absent from the committed vet-baseline.json fail the
# build, so legacy debt never blocks unrelated work. Warm runs replay
# unchanged packages from .vet-cache.
vet: vet-diff
	$(GO) vet ./...

# vet-self runs all thirteen sharoes-vet analyzers over the whole module
# and fails on ANY unsuppressed finding (exit 1) or load error (exit 2),
# ignoring the baseline. Bare //sharoes-vet:allow directives (no
# justification) are findings. See docs/ANALYZERS.md for the analyzer
# tables and allow conventions.
vet-self:
	$(GO) run ./cmd/sharoes-vet ./...

# vet-baseline regenerates the committed baseline. Run it after fixing
# or deliberately accepting findings, and commit the result.
vet-baseline:
	$(GO) run ./cmd/sharoes-vet -write-baseline vet-baseline.json ./...

# vet-diff gates on NEW findings only: exit 1 iff the current tree has
# findings not present in vet-baseline.json (line drift is ignored; the
# diff matches on analyzer+file+message).
vet-diff:
	$(GO) run ./cmd/sharoes-vet -baseline vet-baseline.json ./...

# vet-json emits the machine-readable report CI archives as an artifact:
# {"findings": [...], "allows": {analyzer: count}}.
vet-json:
	$(GO) run ./cmd/sharoes-vet -json ./... > vet-findings.json

# race runs the packages with dedicated concurrency stress tests under
# the race detector (internal/analysis for its parallel package loader,
# internal/shard for concurrent quorum ops during live rebalancing and
# the self-heal stress test, internal/resilience and internal/netsim for
# the retry and sever paths).
race:
	$(GO) test -race ./internal/client ./internal/ssp ./internal/cache ./internal/obs ./internal/analysis ./internal/shard ./internal/netsim ./internal/resilience

# chaos-smoke runs a short fixed-seed chaos campaign — connection drops,
# slow replicas and injected write errors against the 3-shard R=2 W=1
# self-healing stack — under the race detector, then validates the
# machine-readable verdict (checkreport fails a diverged campaign). The
# seed is fixed so a failure replays; see docs/RESILIENCE.md.
CHAOS_SPEC ?= 42,10s,mixed
chaos-smoke:
	$(GO) run -race ./cmd/sharoes-bench -chaos $(CHAOS_SPEC) -json chaos-report.json
	$(GO) run ./cmd/checkreport chaos-report.json

# bench-compare proves the committed artifacts' claims. First the
# transport claim: the parallel pipelined + write-behind run must beat
# the serial run by >=2x effective mean latency on every (figure, op,
# system) row. Then the sharding claim: the 3-shard R=2 run (replicated
# over three SSPs, quorum writes, hedged reads) must stay within 40% of
# the single-backend parallel run — horizontal redundancy at bounded
# cost, not a regression cliff. CI runs both; regenerate all six
# artifacts (docs/OBSERVABILITY.md) after perf work.
bench-compare:
	$(GO) run ./cmd/checkreport -old BENCH_createlist_serial.json -new BENCH_createlist.json -min-speedup 2.0
	$(GO) run ./cmd/checkreport -old BENCH_postmark_serial.json -new BENCH_postmark.json -min-speedup 2.0
	$(GO) run ./cmd/checkreport -old BENCH_createlist.json -new BENCH_createlist_shards.json -max-regress 40%
	$(GO) run ./cmd/checkreport -old BENCH_postmark.json -new BENCH_postmark_shards.json -max-regress 40%
	$(GO) run ./cmd/checkreport -alloc BENCH_alloc.json

# bench-alloc reruns the allocation microbenchmarks and gates them
# against the committed BENCH_alloc.json: allocs/op on the codec hot
# paths may never grow (hard budget ≤ 2), bytes/op may drift 10%.
# Regenerate the baseline with:
#   go test ./internal/ssp -run TestWriteAllocReport -alloc-report
bench-alloc:
	$(GO) test ./internal/ssp -run TestWriteAllocReport -alloc-report -alloc-out $(CURDIR)/current-alloc.json
	$(GO) run ./cmd/checkreport -alloc-old BENCH_alloc.json -alloc-new current-alloc.json

# fuzz-smoke runs every fuzz target for a short burst — enough to catch
# regressions on the saved corpus plus a little fresh exploration.
fuzz-smoke:
	@for spec in $(FUZZ_TARGETS); do \
		pkg=$${spec%%:*}; target=$${spec##*:}; \
		echo "--- fuzz $$pkg $$target"; \
		$(GO) test $$pkg -run "^$$target$$" -fuzz "^$$target$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

check: build vet test race fuzz-smoke
