package sharoes

// This file regenerates every table and figure of the paper's evaluation
// (§V) as Go benchmarks. Each benchmark builds the systems under test
// over a simulated WAN link and reports the figure's quantities as
// benchmark metrics. Absolute times differ from the 2008 testbed (see
// EXPERIMENTS.md for the calibration argument); the comparisons — who
// wins, by roughly what factor, where the crossovers fall — are the
// reproduction targets.
//
// Environment knobs:
//
//	SHAROES_BENCH_SCALE    divide paper workload sizes (default 20)
//	SHAROES_BENCH_PROFILE  "calibrated" (default), "dsl", "lan"
//
// A full-fidelity run (SCALE=1, PROFILE=dsl) reproduces the paper's exact
// workload over the paper's exact link; budget several hours, as the
// authors did.

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/migrate"
	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/workload"
)

func benchScale() int {
	if v := os.Getenv("SHAROES_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return 20
}

func benchProfile() netsim.Profile {
	switch os.Getenv("SHAROES_BENCH_PROFILE") {
	case "dsl":
		return netsim.DSL
	case "lan":
		return netsim.LAN
	default:
		return workload.CalibratedProfile
	}
}

func benchOpts() workload.FigureOptions {
	return workload.FigureOptions{
		Options: workload.Options{Profile: benchProfile(), CacheBytes: -1},
		Scale:   benchScale(),
	}
}

// BenchmarkFig9CreateAndList regenerates Figure 9: create 500 files in 25
// directories, then "ls -lR", across the five implementations.
func BenchmarkFig9CreateAndList(b *testing.B) {
	opts := benchOpts()
	cfg := workload.PaperCreateList.Scaled(opts.Scale)
	for _, kind := range workload.AllSystems {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := workload.Build(kind, opts.Options)
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.CreateList(sys.FS, sys.Rec, cfg)
				sys.Close()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Create.Seconds(), "create-s")
				b.ReportMetric(res.List.Seconds(), "list-s")
				b.ReportMetric(100*res.ListStats.CryptoFraction(), "list-crypto-%")
			}
		})
	}
}

// BenchmarkFig10Postmark regenerates Figure 10: Postmark transaction time
// against cache size (percent of the data set).
func BenchmarkFig10Postmark(b *testing.B) {
	opts := benchOpts()
	cfg := workload.PaperPostmark.Scaled(opts.Scale)
	dataSet := cfg.DataSetBytes()
	for _, kind := range workload.MacroSystems {
		for _, pct := range []int{0, 20, 100} {
			b.Run(fmt.Sprintf("%s/cache%d%%", kind, pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					o := opts.Options
					o.CacheBytes = int64(float64(dataSet) * float64(pct) / 100 * 1.5)
					sys, err := workload.Build(kind, o)
					if err != nil {
						b.Fatal(err)
					}
					res, err := workload.Postmark(sys.FS, cfg)
					sys.Close()
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Total.Seconds(), "postmark-s")
				}
			})
		}
	}
}

// BenchmarkFig11Andrew regenerates Figure 11: the Andrew benchmark per
// phase for the four macro systems.
func BenchmarkFig11Andrew(b *testing.B) {
	opts := benchOpts()
	cfg := workload.PaperAndrew.Scaled(opts.Scale)
	for _, kind := range workload.MacroSystems {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := workload.Build(kind, opts.Options)
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Andrew(sys.FS, cfg)
				sys.Close()
				if err != nil {
					b.Fatal(err)
				}
				for p, d := range res.Phase {
					b.ReportMetric(d.Seconds(), fmt.Sprintf("phase%d-s", p+1))
				}
				b.ReportMetric(res.Total().Seconds(), "total-s")
			}
		})
	}
}

// BenchmarkFig12AndrewCumulative regenerates Figure 12: cumulative Andrew
// time with overhead relative to NO-ENC-MD-D.
func BenchmarkFig12AndrewCumulative(b *testing.B) {
	opts := benchOpts()
	cfg := workload.PaperAndrew.Scaled(opts.Scale)
	for i := 0; i < b.N; i++ {
		var base float64
		for _, kind := range workload.MacroSystems {
			sys, err := workload.Build(kind, opts.Options)
			if err != nil {
				b.Fatal(err)
			}
			res, err := workload.Andrew(sys.FS, cfg)
			sys.Close()
			if err != nil {
				b.Fatal(err)
			}
			total := res.Total().Seconds()
			if kind == workload.SysNoEncMDD {
				base = total
			}
			b.ReportMetric(total, kind.String()+"-s")
			if base > 0 && kind != workload.SysNoEncMDD {
				b.ReportMetric(100*(total-base)/base, kind.String()+"-over-%")
			}
		}
	}
}

// BenchmarkFig13OpCosts regenerates Figure 13: per-operation cost
// decomposition (NETWORK / CRYPTO / OTHER) of the Sharoes filesystem.
func BenchmarkFig13OpCosts(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := workload.RunFig13(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, op := range res.Ops {
			b.ReportMetric(float64(op.Total().Milliseconds()), op.Op+"-ms")
			if t := op.Total(); t > 0 {
				b.ReportMetric(100*float64(op.Crypto)/float64(t), op.Op+"-crypto-%")
			}
		}
	}
}

// BenchmarkSchemeStorage regenerates the §III-D Scheme-1 vs Scheme-2
// storage comparison (the paper's ~$0.60/user/month framing).
func BenchmarkSchemeStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := workload.SchemeStudy(workload.SchemeConfig{Files: 100, Dirs: 5, ExtraUsers: 6})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.TotalBytes), r.Scheme+"-bytes")
			b.ReportMetric(r.DollarPerUser, r.Scheme+"-$/user/mo")
		}
	}
}

// BenchmarkAblationRevocation compares immediate vs lazy revocation: the
// cost of a chmod that strips read access from a 256 KiB file (§IV-A1).
func BenchmarkAblationRevocation(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		name := "immediate"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			o := benchOpts().Options
			o.LazyRevocation = lazy
			sys, err := workload.Build(workload.SysSharoes, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			payload := make([]byte, 256<<10)
			if err := sys.FS.WriteFile("/big", payload, 0o644); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.FS.Chmod("/big", 0o600); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := sys.FS.Chmod("/big", 0o644); err != nil { // re-grant outside timing
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationSigning compares the fast-signature choice (Ed25519,
// standing in for the paper's ESIGN) against RSA-2048 signatures — the
// paper's footnote 3 ("over an order of magnitude faster").
func BenchmarkAblationSigning(b *testing.B) {
	msg := make([]byte, 4096)
	b.Run("ed25519", func(b *testing.B) {
		sk, vk := sharocrypto.NewSigningPair()
		for i := 0; i < b.N; i++ {
			sig := sk.Sign(msg)
			if err := vk.Verify(msg, sig); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rsa2048", func(b *testing.B) {
		key, err := rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			digest := sha256.Sum256(msg)
			sig, err := rsa.SignPKCS1v15(rand.Reader, key, crypto.SHA256, digest[:])
			if err != nil {
				b.Fatal(err)
			}
			if err := rsa.VerifyPKCS1v15(&key.PublicKey, crypto.SHA256, digest[:], sig); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationScheme compares metadata update costs under the two
// layouts: a chmod rewrites one sealed copy per variant — 3 class copies
// under Scheme-2, one copy per registered user under Scheme-1 (§III-D).
func BenchmarkAblationScheme(b *testing.B) {
	for _, scheme := range []string{"scheme2", "scheme1"} {
		b.Run(scheme, func(b *testing.B) {
			o := benchOpts().Options
			o.Scheme = scheme
			sys, err := workload.Build(workload.SysSharoes, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := sys.FS.Create("/target", 0o644); err != nil {
				b.Fatal(err)
			}
			perms := []Perm{0o640, 0o644}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.FS.Chmod("/target", perms[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlockSize shows why larger files are divided into
// blocks encrypted separately (§II-B): the cost of a small append to a
// 1 MiB file under block-wise encryption vs whole-file re-encryption
// (block size = file size).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []uint32{16 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("block%dKiB", bs>>10), func(b *testing.B) {
			o := benchOpts().Options
			o.BlockSize = bs
			sys, err := workload.Build(workload.SysSharoes, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := sys.FS.WriteFile("/big", make([]byte, 1<<20), 0o644); err != nil {
				b.Fatal(err)
			}
			tail := make([]byte, 512)
			b.SetBytes(512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.FS.Append("/big", tail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMigration measures the bulk transition path: encrypting and
// uploading a synthetic enterprise tree through the migration tool.
func BenchmarkMigration(b *testing.B) {
	reg, _, err := workload.Enterprise()
	if err != nil {
		b.Fatal(err)
	}
	tree := migrate.Dir("", "alice", "eng", 0o755)
	for d := 0; d < 5; d++ {
		dir := migrate.Dir(fmt.Sprintf("d%d", d), "alice", "eng", 0o755)
		for f := 0; f < 20; f++ {
			dir.Children = append(dir.Children,
				migrate.File(fmt.Sprintf("f%d", f), "alice", "eng", 0o644, make([]byte, 4096)))
		}
		tree.Children = append(tree.Children, dir)
	}
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := migrate.MigrateTree(migrate.Options{
			Store: ssp.NewMemStore(), Registry: reg, Layout: layout.NewScheme2(reg),
			FSID: "migbench", RootOwner: "alice", RootGroup: "eng"}, tree)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Bytes
	}
	b.SetBytes(total / int64(b.N))
}
