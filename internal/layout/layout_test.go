package layout

import (
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// universe is a shared fixture: alice owns things, bob shares her group,
// carol and dave are others. RSA keygen is slow, so build it once.
type universe struct {
	reg   *keys.Registry
	users map[types.UserID]*keys.User
}

var (
	uniOnce sync.Once
	uni     *universe
)

func testUniverse(t testing.TB) *universe {
	t.Helper()
	uniOnce.Do(func() {
		u := &universe{reg: keys.NewRegistry(), users: make(map[types.UserID]*keys.User)}
		for _, id := range []types.UserID{"alice", "bob", "carol", "dave"} {
			usr, err := keys.NewUser(id)
			if err != nil {
				t.Fatal(err)
			}
			u.users[id] = usr
			u.reg.AddUser(id, usr.Public())
		}
		grp, err := keys.NewGroup("eng")
		if err != nil {
			t.Fatal(err)
		}
		u.reg.AddGroup("eng", grp.Priv.Public())
		u.reg.AddMember("eng", "alice")
		u.reg.AddMember("eng", "bob")
		uni = u
	})
	return uni
}

// newFullMeta builds a complete metadata object.
func newFullMeta(ino types.Inode, kind types.ObjKind, owner types.UserID, group types.GroupID, perm string) *meta.Metadata {
	p, err := types.ParsePerm(perm)
	if err != nil {
		panic(err)
	}
	dsk, dvk := sharocrypto.NewSigningPair()
	msk, _ := sharocrypto.NewSigningPair()
	return &meta.Metadata{
		Attr: meta.Attr{Inode: ino, Kind: kind, Owner: owner, Group: group, Perm: p, MTime: 1},
		Keys: meta.KeySet{
			DEK:      sharocrypto.NewSymKey(),
			DataSeed: sharocrypto.NewSymKey(),
			DVK:      dvk,
			DSK:      dsk,
			MSK:      msk,
			MetaSeed: sharocrypto.NewSymKey(),
		},
	}
}

func TestScheme2Variants(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	if eng.Name() != "scheme2" {
		t.Error("name")
	}
	dir := newFullMeta(10, types.KindDir, "alice", "eng", "751")
	vs := eng.Variants(dir.Attr)
	if len(vs) != 3 {
		t.Fatalf("variants = %v", vs)
	}
	byID := map[string]cap.ID{}
	for _, v := range vs {
		byID[v.ID] = v.Cap
	}
	if byID["o"].Class != cap.DirReadWriteExec || !byID["o"].Owner {
		t.Errorf("owner variant = %+v", byID["o"])
	}
	if byID["g"].Class != cap.DirReadExec || byID["g"].Owner {
		t.Errorf("group variant = %+v", byID["g"])
	}
	if byID["t"].Class != cap.DirExecOnly {
		t.Errorf("other variant = %+v", byID["t"])
	}
}

func TestScheme2UserVariant(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	dir := newFullMeta(10, types.KindDir, "alice", "eng", "751")
	if v := eng.UserVariant("alice", dir.Attr); v.ID != "o" || !v.Cap.Owner {
		t.Errorf("alice variant = %+v", v)
	}
	if v := eng.UserVariant("bob", dir.Attr); v.ID != "g" || v.Cap.Class != cap.DirReadExec {
		t.Errorf("bob variant = %+v", v)
	}
	if v := eng.UserVariant("carol", dir.Attr); v.ID != "t" || v.Cap.Class != cap.DirExecOnly {
		t.Errorf("carol variant = %+v", v)
	}
}

func TestVariantMEKsDistinct(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	dir := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	vs := eng.Variants(dir.Attr)
	seen := map[sharocrypto.SymKey]string{}
	for _, v := range vs {
		k := v.MEK(dir)
		if prev, ok := seen[k]; ok {
			t.Errorf("MEK collision between %q and %q", prev, v.ID)
		}
		seen[k] = v.ID
	}
}

func TestScheme2RowUniform(t *testing.T) {
	// Parent and child share owner/group: every traveller keeps their
	// class, so all rows are direct — the common inherited case.
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindFile, "alice", "eng", "644")

	for _, pv := range eng.Variants(parent.Attr) {
		entry, grants, err := eng.Row(parent.Attr, pv, child)
		if err != nil {
			t.Fatal(err)
		}
		if entry.Split {
			t.Errorf("variant %q: unexpected split", pv.ID)
		}
		if len(grants) != 0 {
			t.Errorf("variant %q: unexpected grants", pv.ID)
		}
		if entry.Variant != pv.ID {
			t.Errorf("variant %q: row links to %q", pv.ID, entry.Variant)
		}
		if entry.MEK != cap.MEKFor(child.Keys.MetaSeed, entry.Variant) {
			t.Errorf("variant %q: wrong MEK", pv.ID)
		}
		if !entry.MVK.Equal(child.Keys.MSK.VerifyKey()) {
			t.Errorf("variant %q: wrong MVK", pv.ID)
		}
	}
}

func TestScheme2RowSplit(t *testing.T) {
	// The /home case: parent owned by an admin, child owned by bob. In the
	// parent's "t" variant, travellers carol+dave are class-other on the
	// child but bob is its owner → split.
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindDir, "bob", "eng", "700")

	// Parent "t" travellers: carol and dave (alice owner, bob group).
	// Both are class-other on the child (group "eng": bob+alice... bob is
	// owner of child, alice is group member!). Wait: the child group is
	// eng, carol/dave are not members → both other: uniform!
	// Make it split: give the child a group carol belongs to.
	u.reg.AddGroup("qa", u.users["carol"].Public())
	u.reg.AddMember("qa", "carol")
	child.Attr.Group = "qa"
	// Now parent-"t" travellers: carol (group on child) + dave (other) → split.

	entry, grants, err := eng.Row(parent.Attr, Variant{ID: "t"}, child)
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Split {
		t.Fatal("expected a split row")
	}
	if len(grants) != 2 {
		t.Fatalf("grants = %d, want 2 (carol, dave)", len(grants))
	}
	// Each grant must be sealed to its principal and point to their class
	// variant of the child.
	wantVariant := map[types.UserID]string{"carol": "g", "dave": "t"}
	for _, kv := range grants {
		if kv.NS != wire.NSSplit {
			t.Errorf("grant namespace = %v", kv.NS)
		}
		var matched bool
		for uid, wantV := range wantVariant {
			if kv.Key != meta.SplitKey(child.Attr.Inode, "u:"+string(uid)) {
				continue
			}
			matched = true
			ptr, err := meta.OpenSplitPointer(u.users[uid].Priv, kv.Val)
			if err != nil {
				t.Fatalf("%s cannot open their grant: %v", uid, err)
			}
			if ptr.Variant != wantV {
				t.Errorf("%s pointer variant = %q, want %q", uid, ptr.Variant, wantV)
			}
			if ptr.MEK != cap.MEKFor(child.Keys.MetaSeed, wantV) {
				t.Errorf("%s pointer MEK wrong", uid)
			}
			// The other user must not be able to open it.
			for otherID, other := range u.users {
				if otherID == uid {
					continue
				}
				if _, err := meta.OpenSplitPointer(other.Priv, kv.Val); err == nil {
					t.Errorf("%s opened %s's grant", otherID, uid)
				}
			}
		}
		if !matched {
			t.Errorf("unexpected grant key %q", kv.Key)
		}
	}
}

func TestScheme2RowOwnerVariantSingleTraveller(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	// Child owned by someone else: alice is group on child.
	child := newFullMeta(11, types.KindFile, "bob", "eng", "640")
	entry, grants, err := eng.Row(parent.Attr, Variant{ID: "o"}, child)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Split || len(grants) != 0 {
		t.Fatal("owner variant with one traveller must not split")
	}
	if entry.Variant != "g" {
		t.Errorf("alice (group on child) should link to g, got %q", entry.Variant)
	}
}

func TestScheme2RowBadVariant(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindFile, "alice", "eng", "644")
	if _, _, err := eng.Row(parent.Attr, Variant{ID: "zz"}, child); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestScheme1VariantsPerUser(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme1(u.reg)
	if eng.Name() != "scheme1" {
		t.Error("name")
	}
	dir := newFullMeta(10, types.KindDir, "alice", "eng", "751")
	vs := eng.Variants(dir.Attr)
	if len(vs) != 4 { // one per registered user
		t.Fatalf("variants = %d, want 4", len(vs))
	}
	byID := map[string]cap.ID{}
	for _, v := range vs {
		byID[v.ID] = v.Cap
	}
	if byID["u/alice"].Class != cap.DirReadWriteExec || !byID["u/alice"].Owner {
		t.Errorf("alice = %+v", byID["u/alice"])
	}
	if byID["u/bob"].Class != cap.DirReadExec {
		t.Errorf("bob = %+v", byID["u/bob"])
	}
	if byID["u/carol"].Class != cap.DirExecOnly {
		t.Errorf("carol = %+v", byID["u/carol"])
	}
}

func TestScheme1RowNeverSplits(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme1(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindDir, "bob", "eng", "700")
	for _, pv := range eng.Variants(parent.Attr) {
		entry, grants, err := eng.Row(parent.Attr, pv, child)
		if err != nil {
			t.Fatal(err)
		}
		if entry.Split || len(grants) != 0 {
			t.Errorf("scheme-1 split on %q", pv.ID)
		}
		if entry.Variant != pv.ID {
			t.Errorf("row for %q links to %q; per-user trees must stay per-user", pv.ID, entry.Variant)
		}
	}
	if _, _, err := eng.Row(parent.Attr, Variant{ID: "bogus"}, child); err == nil {
		t.Error("bad scheme-1 variant accepted")
	}
}

func TestBuildMetaKVs(t *testing.T) {
	u := testUniverse(t)
	for _, eng := range []Engine{NewScheme1(u.reg), NewScheme2(u.reg)} {
		full := newFullMeta(42, types.KindFile, "alice", "eng", "640")
		kvs := BuildMetaKVs(eng, full)
		want := len(eng.Variants(full.Attr))
		if len(kvs) != want {
			t.Fatalf("%s: kvs = %d, want %d", eng.Name(), len(kvs), want)
		}
		mvk := full.Keys.MSK.VerifyKey()
		for _, v := range eng.Variants(full.Attr) {
			var blob []byte
			for _, kv := range kvs {
				if kv.Key == meta.MetaKey(42, v.ID) && kv.NS == wire.NSMeta {
					blob = kv.Val
				}
			}
			if blob == nil {
				t.Fatalf("%s: variant %q not stored", eng.Name(), v.ID)
			}
			m, err := meta.OpenMetadata(v.MEK(full), mvk, meta.MetaAAD(42, v.ID), blob)
			if err != nil {
				t.Fatalf("%s: open %q: %v", eng.Name(), v.ID, err)
			}
			if !meta.AttrEqual(m.Attr, full.Attr) {
				t.Errorf("%s: attr mismatch in %q", eng.Name(), v.ID)
			}
			if v.Cap.Owner {
				if m.Keys.MSK.IsZero() || m.Keys.MetaSeed.IsZero() {
					t.Errorf("%s: owner variant missing owner keys", eng.Name())
				}
			} else if !m.Keys.MSK.IsZero() {
				t.Errorf("%s: non-owner variant %q leaked MSK", eng.Name(), v.ID)
			}
			if v.Cap.Class == cap.FileReadWrite && m.Keys.DSK.IsZero() {
				t.Errorf("%s: rw variant missing DSK", eng.Name())
			}
			if v.Cap.Class == cap.FileZero && !v.Cap.Owner && !m.Keys.DEK.IsZero() {
				t.Errorf("%s: zero variant leaked DEK", eng.Name())
			}
		}
		// Delete markers cover the same keys.
		dels := DeleteMetaKVs(eng, full.Attr)
		if len(dels) != len(kvs) {
			t.Errorf("%s: deletes = %d", eng.Name(), len(dels))
		}
		for _, d := range dels {
			if !d.Delete {
				t.Errorf("%s: delete marker not set", eng.Name())
			}
		}
	}
}

func TestBuildTableKVs(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	dir := newFullMeta(10, types.KindDir, "alice", "eng", "750") // other: ---
	child := newFullMeta(11, types.KindFile, "alice", "eng", "640")

	table := &meta.DirTable{}
	entry, _, err := eng.Row(dir.Attr, Variant{ID: "o"}, child)
	if err != nil {
		t.Fatal(err)
	}
	entry.Name = "report"
	table.Insert(entry)

	kvs, err := BuildTableKVs(eng, dir, table)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 {
		t.Fatalf("kvs = %d", len(kvs))
	}
	for _, kv := range kvs {
		switch kv.Key {
		case meta.TableKey(10, "o"), meta.TableKey(10, "g"), meta.TableKey(10, "t"):
			if kv.Delete {
				t.Errorf("%q unexpectedly deleted", kv.Key)
			}
		default:
			t.Errorf("unexpected key %q", kv.Key)
		}
	}

	// The zero-cap "t" view is sealed under a key carol's variant never
	// contains: her metadata copy has no DEK, so the stored view is
	// opaque to her.
	tv := eng.UserVariant("carol", dir.Attr)
	if filtered := cap.Filter(dir, tv.Cap, tv.ID); !filtered.Keys.DEK.IsZero() {
		t.Error("zero-cap variant has a DEK")
	}

	// The group (r-x) view opens with the filtered DEK and can look up.
	gv := eng.UserVariant("bob", dir.Attr)
	filtered := cap.Filter(dir, gv.Cap, gv.ID)
	var gblob []byte
	for _, kv := range kvs {
		if kv.Key == meta.TableKey(10, "g") {
			gblob = kv.Val
		}
	}
	view, err := cap.OpenView(gv.ID, filtered.Keys.DEK, filtered.Keys.DVK, 10, gblob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := view.Lookup("report")
	if err != nil {
		t.Fatal(err)
	}
	if got.Inode != 11 {
		t.Errorf("lookup inode = %v", got.Inode)
	}

	dels := DeleteTableKVs(eng, dir.Attr)
	if len(dels) != 3 {
		t.Errorf("table deletes = %d", len(dels))
	}
}

func TestBuildRows(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(12, types.KindFile, "alice", "eng", "644")

	tables := map[string]*meta.DirTable{
		"o": {}, "g": {}, "t": {},
	}
	grants, err := BuildRows(eng, parent, tables, "notes.txt", child)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Errorf("uniform insert produced grants: %d", len(grants))
	}
	for id, tbl := range tables {
		e, err := tbl.Lookup("notes.txt")
		if err != nil {
			t.Fatalf("variant %q: %v", id, err)
		}
		if e.Inode != 12 {
			t.Errorf("variant %q: inode %v", id, e.Inode)
		}
	}

	// Replacing an existing row (e.g. after child chmod) works too.
	child.Attr.Perm, _ = types.ParsePerm("600")
	if _, err := BuildRows(eng, parent, tables, "notes.txt", child); err != nil {
		t.Fatal(err)
	}
	if tables["o"].Len() != 1 {
		t.Error("replace duplicated row")
	}
}

func TestDedupeKVs(t *testing.T) {
	kvs := []wire.KV{
		{NS: wire.NSSplit, Key: "a", Val: []byte("1")},
		{NS: wire.NSSplit, Key: "b", Val: []byte("2")},
		{NS: wire.NSSplit, Key: "a", Val: []byte("3")},
	}
	out := dedupeKVs(kvs)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if string(out[0].Val) != "3" || out[0].Key != "a" {
		t.Errorf("last write not kept: %+v", out[0])
	}
	if got := dedupeKVs(nil); len(got) != 0 {
		t.Error("nil input")
	}
}

func TestSplitRowResolution(t *testing.T) {
	// End-to-end split flow: build the row, store grants, resolve as the
	// traveller would.
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindDir, "carol", "", "700")

	entry, grants, err := eng.Row(parent.Attr, Variant{ID: "t"}, child)
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Split {
		t.Skip("expected split in this configuration")
	}
	// carol (owner of child) resolves her pointer to the owner variant.
	var carolBlob []byte
	for _, kv := range grants {
		if kv.Key == meta.SplitKey(11, "u:carol") {
			carolBlob = kv.Val
		}
	}
	if carolBlob == nil {
		t.Fatal("no grant for carol")
	}
	ptr, err := meta.OpenSplitPointer(u.users["carol"].Priv, carolBlob)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.Variant != "o" {
		t.Errorf("carol's variant = %q, want owner", ptr.Variant)
	}
	if ptr.MEK != cap.MEKFor(child.Keys.MetaSeed, "o") {
		t.Error("carol's MEK wrong")
	}
}

func TestScheme2ACLVariants(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	f := newFullMeta(20, types.KindFile, "alice", "eng", "640")
	f.Attr.SetACL("carol", types.TripletRead)

	vs := eng.Variants(f.Attr)
	if len(vs) != 4 {
		t.Fatalf("variants = %v", vs)
	}
	var aclVar *Variant
	for i := range vs {
		if vs[i].ID == "a/carol" {
			aclVar = &vs[i]
		}
	}
	if aclVar == nil {
		t.Fatal("no ACL variant for carol")
	}
	if aclVar.Cap.Class != cap.FileRead || aclVar.Cap.Owner {
		t.Errorf("ACL cap = %+v", aclVar.Cap)
	}
	// carol routes to her grant; dave stays in the class variant.
	if v := eng.UserVariant("carol", f.Attr); v.ID != "a/carol" {
		t.Errorf("carol variant = %q", v.ID)
	}
	if v := eng.UserVariant("dave", f.Attr); v.ID != "t" {
		t.Errorf("dave variant = %q", v.ID)
	}
	// An owner-targeted entry is ignored in the variant set.
	f2 := newFullMeta(21, types.KindFile, "alice", "eng", "640")
	f2.Attr.SetACL("alice", types.TripletRead)
	if len(eng.Variants(f2.Attr)) != 3 {
		t.Error("owner ACL entry produced a variant")
	}
	if v := eng.UserVariant("alice", f2.Attr); v.ID != "o" {
		t.Errorf("owner variant = %q", v.ID)
	}
}

func TestScheme2ACLCausesSplit(t *testing.T) {
	// carol has an ACL grant on the child: among the "t" travellers of
	// the parent (carol, dave) she now diverges — precisely the paper's
	// "POSIX ACLs cause splits" scenario.
	u := testUniverse(t)
	eng := NewScheme2(u.reg)
	parent := newFullMeta(10, types.KindDir, "alice", "eng", "755")
	child := newFullMeta(11, types.KindFile, "alice", "eng", "640")
	child.Attr.SetACL("carol", types.TripletRead)

	entry, grants, err := eng.Row(parent.Attr, Variant{ID: "t"}, child)
	if err != nil {
		t.Fatal(err)
	}
	if !entry.Split {
		t.Fatal("ACL divergence did not split")
	}
	var carolPtr *meta.SplitPointer
	for _, kv := range grants {
		if kv.Key == meta.SplitKey(11, "u:carol") {
			p, err := meta.OpenSplitPointer(u.users["carol"].Priv, kv.Val)
			if err != nil {
				t.Fatal(err)
			}
			carolPtr = p
		}
	}
	if carolPtr == nil {
		t.Fatal("no grant for carol")
	}
	if carolPtr.Variant != "a/carol" {
		t.Errorf("carol pointer variant = %q", carolPtr.Variant)
	}
	if carolPtr.MEK != cap.MEKFor(child.Keys.MetaSeed, "a/carol") {
		t.Error("carol pointer MEK wrong")
	}
}

func TestScheme1ACLChangesContentNotVariants(t *testing.T) {
	u := testUniverse(t)
	eng := NewScheme1(u.reg)
	f := newFullMeta(20, types.KindFile, "alice", "eng", "640")
	before := eng.Variants(f.Attr)
	f.Attr.SetACL("carol", types.TripletRead)
	after := eng.Variants(f.Attr)
	if len(before) != len(after) {
		t.Fatalf("scheme1 variant count changed: %d → %d", len(before), len(after))
	}
	// carol's copy now carries the read CAP.
	v := eng.UserVariant("carol", f.Attr)
	if v.ID != "u/carol" || v.Cap.Class != cap.FileRead {
		t.Errorf("carol variant = %+v", v)
	}
}
