package layout

import (
	"fmt"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/wire"
)

// BuildMetaKVs seals every CAP variant of a metadata object and returns
// the key-value pairs to store at the SSP. full must carry the complete
// key set (creator or owner knowledge).
func BuildMetaKVs(eng Engine, full *meta.Metadata) []wire.KV {
	variants := eng.Variants(full.Attr)
	out := make([]wire.KV, 0, len(variants))
	for _, v := range variants {
		filtered := cap.Filter(full, v.Cap, v.ID)
		blob := filtered.Seal(v.MEK(full), full.Keys.MSK, meta.MetaAAD(full.Attr.Inode, v.ID))
		out = append(out, wire.KV{NS: wire.NSMeta, Key: meta.MetaKey(full.Attr.Inode, v.ID), Val: blob})
	}
	return out
}

// DeleteMetaKVs returns delete markers for every variant of an object.
func DeleteMetaKVs(eng Engine, attr meta.Attr) []wire.KV {
	variants := eng.Variants(attr)
	out := make([]wire.KV, 0, len(variants))
	for _, v := range variants {
		out = append(out, wire.KV{NS: wire.NSMeta, Key: meta.MetaKey(attr.Inode, v.ID), Delete: true})
	}
	return out
}

// BuildTableKVs seals every CAP view of a directory table and returns the
// key-value pairs to store. Every variant stores a view — variants whose
// CAP grants no table access get the full shape sealed under a derived
// key their holders never receive, so relaxing permissions later never
// requires reconstructing other owners' child keys.
func BuildTableKVs(eng Engine, dirFull *meta.Metadata, table *meta.DirTable) ([]wire.KV, error) {
	variants := eng.Variants(dirFull.Attr)
	out := make([]wire.KV, 0, len(variants))
	for _, v := range variants {
		blob, err := cap.SealTableView(table, dirFull, v.Cap, v.ID)
		if err != nil {
			return nil, fmt.Errorf("layout: table view %s: %w", v.ID, err)
		}
		out = append(out, wire.KV{NS: wire.NSData, Key: meta.TableKey(dirFull.Attr.Inode, v.ID), Val: blob})
	}
	return out, nil
}

// DeleteTableKVs returns delete markers for every table view of a
// directory.
func DeleteTableKVs(eng Engine, attr meta.Attr) []wire.KV {
	variants := eng.Variants(attr)
	out := make([]wire.KV, 0, len(variants))
	for _, v := range variants {
		out = append(out, wire.KV{NS: wire.NSData, Key: meta.TableKey(attr.Inode, v.ID), Delete: true})
	}
	return out
}

// BuildRows computes the row for child in every parent variant's table and
// rewrites the tables in place. tables maps parent variant ID → decoded
// table; the caller fetched them with the parent's DataSeed-derived keys.
// Returned KVs are the split grants to store alongside.
func BuildRows(eng Engine, parent *meta.Metadata, tables map[string]*meta.DirTable, name string, child *meta.Metadata) ([]wire.KV, error) {
	var grants []wire.KV
	for _, pv := range eng.Variants(parent.Attr) {
		tbl, ok := tables[pv.ID]
		if !ok {
			continue
		}
		entry, kvs, err := eng.Row(parent.Attr, pv, child)
		if err != nil {
			return nil, err
		}
		entry.Name = name
		// Insert or replace.
		if _, lookupErr := tbl.Lookup(name); lookupErr == nil {
			if err := tbl.Replace(entry); err != nil {
				return nil, err
			}
		} else if err := tbl.Insert(entry); err != nil {
			return nil, err
		}
		grants = append(grants, kvs...)
	}
	return dedupeKVs(grants), nil
}

// dedupeKVs removes duplicate (NS, Key) pairs, keeping the last write.
// Split grants for the same child/user pair may be emitted by several
// parent variants; they are identical in content.
func dedupeKVs(kvs []wire.KV) []wire.KV {
	if len(kvs) <= 1 {
		return kvs
	}
	idx := make(map[string]int, len(kvs))
	out := kvs[:0]
	for _, kv := range kvs {
		k := fmt.Sprintf("%d/%s", kv.NS, kv.Key)
		if i, ok := idx[k]; ok {
			out[i] = kv
			continue
		}
		idx[k] = len(out)
		out = append(out, kv)
	}
	return out
}

// SealTables seals per-variant directory tables (unlike BuildTableKVs,
// which replicates one table into every view — only correct for tables
// whose rows are variant-independent, such as empty ones).
func SealTables(eng Engine, dirFull *meta.Metadata, tables map[string]*meta.DirTable) ([]wire.KV, error) {
	var out []wire.KV
	for _, v := range eng.Variants(dirFull.Attr) {
		tbl, ok := tables[v.ID]
		if !ok {
			continue
		}
		blob, err := cap.SealTableView(tbl, dirFull, v.Cap, v.ID)
		if err != nil {
			return nil, fmt.Errorf("layout: seal table %s: %w", v.ID, err)
		}
		out = append(out, wire.KV{NS: wire.NSData, Key: meta.TableKey(dirFull.Attr.Inode, v.ID), Val: blob})
	}
	return out, nil
}

// NewTables returns an empty per-variant table map for a directory.
func NewTables(eng Engine, attr meta.Attr) map[string]*meta.DirTable {
	out := make(map[string]*meta.DirTable)
	for _, v := range eng.Variants(attr) {
		out[v.ID] = &meta.DirTable{}
	}
	return out
}

// BuildFileKVs seals a file's content — blocks plus manifest — under the
// file's data keys.
func BuildFileKVs(m *meta.Metadata, data []byte, blockSize uint32, mtime int64) []wire.KV {
	ino, gen := m.Attr.Inode, m.Attr.DataGen
	bs := int(blockSize)
	nBlocks := (len(data) + bs - 1) / bs
	kvs := make([]wire.KV, 0, nBlocks+1)
	for i := 0; i < nBlocks; i++ {
		lo, hi := i*bs, (i+1)*bs
		if hi > len(data) {
			hi = len(data)
		}
		aad := meta.BlockAAD(ino, gen, uint32(i))
		sealed := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, aad, data[lo:hi])
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.BlockKey(ino, gen, uint32(i)), Val: sealed})
	}
	man := &meta.Manifest{Size: uint64(len(data)), BlockSize: blockSize, NBlocks: uint32(nBlocks), MTime: mtime}
	sealedMan := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, meta.ManifestAAD(ino, gen), man.Encode())
	kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.ManifestKey(ino), Val: sealedMan})
	return kvs
}

// BuildSuperblockKVs seals one superblock per registered user for the
// namespace root (paper §III-C: "we store E_PKi(Superblock) for all
// authorized users of the filesystem").
func BuildSuperblockKVs(eng Engine, reg *keys.Registry, fsid string, rootMeta *meta.Metadata) ([]wire.KV, error) {
	users := reg.Users()
	kvs := make([]wire.KV, 0, len(users))
	for _, uid := range users {
		v := eng.UserVariant(uid, rootMeta.Attr)
		sb := &meta.Superblock{
			FSID:        fsid,
			RootInode:   rootMeta.Attr.Inode,
			RootVariant: v.ID,
			RootMEK:     v.MEK(rootMeta),
			RootMVK:     rootMeta.Keys.MSK.VerifyKey(),
		}
		pub, err := reg.UserKey(uid)
		if err != nil {
			return nil, err
		}
		sealed, err := meta.SealSuperblock(sb, pub)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, wire.KV{NS: wire.NSSuper, Key: meta.SuperKey(fsid, keys.UserPrincipal(uid).String()), Val: sealed})
	}
	return kvs, nil
}
