// Package layout implements the two metadata layout schemes of the paper
// (§III-D): how multiple CAPs per object are materialized at the SSP.
//
// Scheme-1 replicates the filesystem tree per user: every registered user
// has their own sealed copy of every metadata object and directory-table
// view, built for that user's accessor class. Simple, split-free, but with
// O(users) storage and update cost — the paper estimates ~$0.60 per user
// per month for a million-file system at 2008 Amazon S3 prices.
//
// Scheme-2 shares copies between users: one variant per accessor class
// (owner / group / other) of the object. Users whose class on a parent
// directory matches travel together through that directory's table view;
// when co-travellers diverge on a child — e.g. "/home" is class-other for
// everyone, but each "/home/<user>" is class-owner for exactly one of
// them — the row becomes a split point and each affected principal follows
// a pointer sealed with their public key (the only extra public-key
// cryptography in the design, and rare because permissions inherit).
package layout

import (
	"fmt"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// Variant names one sealed copy of an object's metadata (and, for
// directories, table view) together with the CAP it encodes.
type Variant struct {
	// ID is the storage-key fragment: "u/<user>" under Scheme-1, a class
	// letter ("o", "g", "t") under Scheme-2.
	ID string
	// Cap is the CAP this variant's content encodes.
	Cap cap.ID
}

// MEK returns the variant's metadata encryption key, derived from the
// object's metadata seed.
func (v Variant) MEK(m *meta.Metadata) sharocrypto.SymKey {
	return cap.MEKFor(m.Keys.MetaSeed, v.ID)
}

// Engine is a layout scheme.
type Engine interface {
	// Name identifies the scheme ("scheme1" or "scheme2").
	Name() string
	// Variants returns every sealed copy an object with the given
	// attributes requires.
	Variants(attr meta.Attr) []Variant
	// UserVariant returns the copy the given user reads for the object.
	UserVariant(user types.UserID, attr meta.Attr) Variant
	// Row builds the directory-table row for a child as it should appear
	// in the parent variant pv. When co-travelling users diverge on the
	// child, the row is a split point and the second return value carries
	// the sealed per-principal pointers to store (Scheme-2 only).
	Row(parentAttr meta.Attr, pv Variant, child *meta.Metadata) (meta.DirEntry, []wire.KV, error)
}

// classVariantID maps an accessor class to its Scheme-2 variant ID.
func classVariantID(c types.Class) string {
	switch c {
	case types.ClassOwner:
		return "o"
	case types.ClassGroup:
		return "g"
	default:
		return "t"
	}
}

// aclVariantID is the Scheme-2 variant ID of a per-user ACL grant — the
// POSIX-ACL extension the paper names as the usual split-point cause
// (§III-D2).
func aclVariantID(u types.UserID) string { return "a/" + string(u) }

// classOfVariantID inverts classVariantID.
func classOfVariantID(id string) (types.Class, error) {
	switch id {
	case "o":
		return types.ClassOwner, nil
	case "g":
		return types.ClassGroup, nil
	case "t":
		return types.ClassOther, nil
	default:
		return 0, fmt.Errorf("layout: bad scheme-2 variant %q", id)
	}
}

// capForTriplet maps an explicit triplet onto a CAP id.
func capForTriplet(kind types.ObjKind, t types.Triplet, owner bool) cap.ID {
	c, _ := cap.For(kind, t)
	return cap.ID{Class: c, Owner: owner}
}

// Scheme2 shares CAP copies by accessor class.
type Scheme2 struct {
	reg *keys.Registry
}

// NewScheme2 builds a Scheme-2 engine over the enterprise registry.
func NewScheme2(reg *keys.Registry) *Scheme2 { return &Scheme2{reg: reg} }

// Name implements Engine.
func (s *Scheme2) Name() string { return "scheme2" }

// Variants implements Engine: one copy per accessor class, plus one per
// ACL grantee.
func (s *Scheme2) Variants(attr meta.Attr) []Variant {
	out := make([]Variant, 0, 3+len(attr.ACL))
	for _, c := range []types.Class{types.ClassOwner, types.ClassGroup, types.ClassOther} {
		out = append(out, Variant{
			ID:  classVariantID(c),
			Cap: cap.IDFor(attr.Kind, attr.Perm, c),
		})
	}
	for _, e := range attr.ACL {
		if e.User == attr.Owner {
			continue // the owner's rights are the owner triplet
		}
		out = append(out, Variant{ID: aclVariantID(e.User), Cap: capForTriplet(attr.Kind, e.Rights, false)})
	}
	return out
}

// UserVariant implements Engine: owner, then ACL grant, then group, then
// other — the POSIX precedence order.
func (s *Scheme2) UserVariant(user types.UserID, attr meta.Attr) Variant {
	if user == attr.Owner {
		return Variant{ID: "o", Cap: cap.IDFor(attr.Kind, attr.Perm, types.ClassOwner)}
	}
	if e, ok := attr.ACLFor(user); ok {
		return Variant{ID: aclVariantID(user), Cap: capForTriplet(attr.Kind, e.Rights, false)}
	}
	c := s.reg.ClassOf(user, attr.Owner, attr.Group)
	return Variant{ID: classVariantID(c), Cap: cap.IDFor(attr.Kind, attr.Perm, c)}
}

// travellers returns the users who read parent variant pv: those whose
// UserVariant on the parent is that copy.
func (s *Scheme2) travellers(parentAttr meta.Attr, pvID string) ([]types.UserID, error) {
	if _, err := classOfVariantID(pvID); err != nil && len(pvID) < 3 {
		return nil, err
	}
	var out []types.UserID
	for _, u := range s.reg.Users() {
		if s.UserVariant(u, parentAttr).ID == pvID {
			out = append(out, u)
		}
	}
	return out, nil
}

// Row implements Engine. The row links directly to one child variant when
// every traveller of the parent variant lands on the same child copy;
// otherwise it becomes a split point with per-user sealed pointers.
func (s *Scheme2) Row(parentAttr meta.Attr, pv Variant, child *meta.Metadata) (meta.DirEntry, []wire.KV, error) {
	users, err := s.travellers(parentAttr, pv.ID)
	if err != nil {
		return meta.DirEntry{}, nil, err
	}
	mvk := child.Keys.MSK.VerifyKey()

	// Each traveller's copy of the child.
	uniform := true
	childVars := make([]Variant, len(users))
	for i, u := range users {
		childVars[i] = s.UserVariant(u, child.Attr)
		if childVars[i].ID != childVars[0].ID {
			uniform = false
		}
	}

	if len(users) == 0 {
		// Nobody travels here today; link deterministically to the child
		// variant of the same class so future users resolve sensibly.
		class, err := classOfVariantID(pv.ID)
		if err != nil {
			class = types.ClassOther
		}
		cv := Variant{ID: classVariantID(class), Cap: cap.IDFor(child.Attr.Kind, child.Attr.Perm, class)}
		return directEntry(child, cv, mvk), nil, nil
	}

	if uniform {
		return directEntry(child, childVars[0], mvk), nil, nil
	}

	// Split point: each traveller gets a pointer sealed to their key.
	grants := make([]wire.KV, 0, len(users))
	for i, u := range users {
		ptr := &meta.SplitPointer{
			Inode:   child.Attr.Inode,
			Variant: childVars[i].ID,
			MEK:     childVars[i].MEK(child),
			MVK:     mvk,
		}
		pub, err := s.reg.UserKey(u)
		if err != nil {
			return meta.DirEntry{}, nil, fmt.Errorf("layout: split grant for %q: %w", u, err)
		}
		sealed, err := meta.SealSplitPointer(ptr, pub)
		if err != nil {
			return meta.DirEntry{}, nil, fmt.Errorf("layout: split grant for %q: %w", u, err)
		}
		grants = append(grants, wire.KV{
			NS:  wire.NSSplit,
			Key: meta.SplitKey(child.Attr.Inode, keys.UserPrincipal(u).String()),
			Val: sealed,
		})
	}
	return meta.DirEntry{Inode: child.Attr.Inode, Split: true}, grants, nil
}

// directEntry builds a non-split row linking to one child variant.
func directEntry(child *meta.Metadata, cv Variant, mvk sharocrypto.VerifyKey) meta.DirEntry {
	return meta.DirEntry{
		Inode:   child.Attr.Inode,
		Variant: cv.ID,
		MEK:     cv.MEK(child),
		MVK:     mvk,
	}
}

// Scheme1 replicates the tree per user.
type Scheme1 struct {
	reg *keys.Registry
}

// NewScheme1 builds a Scheme-1 engine over the enterprise registry.
func NewScheme1(reg *keys.Registry) *Scheme1 { return &Scheme1{reg: reg} }

// Name implements Engine.
func (s *Scheme1) Name() string { return "scheme1" }

// userVariantID maps a user to their Scheme-1 variant ID.
func userVariantID(u types.UserID) string { return "u/" + string(u) }

// Variants implements Engine: one copy per registered user. ACL grants
// change the copy's content, never the variant set — Scheme-1 absorbs
// ACLs for free at its usual storage price.
func (s *Scheme1) Variants(attr meta.Attr) []Variant {
	users := s.reg.Users()
	out := make([]Variant, 0, len(users))
	for _, u := range users {
		out = append(out, s.UserVariant(u, attr))
	}
	return out
}

// UserVariant implements Engine.
func (s *Scheme1) UserVariant(user types.UserID, attr meta.Attr) Variant {
	trip := attr.EffectiveTriplet(user, s.reg.IsMember)
	return Variant{ID: userVariantID(user), Cap: capForTriplet(attr.Kind, trip, user == attr.Owner)}
}

// Row implements Engine. Per-user trees never split: the row in user u's
// view of the parent table points at u's variant of the child.
func (s *Scheme1) Row(parentAttr meta.Attr, pv Variant, child *meta.Metadata) (meta.DirEntry, []wire.KV, error) {
	if len(pv.ID) < 3 || pv.ID[:2] != "u/" {
		return meta.DirEntry{}, nil, fmt.Errorf("layout: bad scheme-1 variant %q", pv.ID)
	}
	u := types.UserID(pv.ID[2:])
	cv := s.UserVariant(u, child.Attr)
	return meta.DirEntry{
		Inode:   child.Attr.Inode,
		Variant: cv.ID,
		MEK:     cv.MEK(child),
		MVK:     child.Keys.MSK.VerifyKey(),
	}, nil, nil
}
