// Package resilience implements the classified retry policy of the
// self-healing transport stack: it decides which errors are transient
// (worth retrying) and which operations are idempotent (safe to retry),
// and wraps an ssp.BlobStore so that only that intersection is retried —
// with exponential backoff, full jitter, and a token budget so a sick
// backend is never hammered with amplified load.
//
// Division of labor across the stack: the pipelined ssp.Client fails
// calls fast (per-call deadlines), the ReconnectClient heals the
// connection (redial with backoff), and this package re-issues the work
// when doing so is provably safe. Reads are always idempotent; Put is
// retried only when the caller vouches (via the content-key predicate)
// that the key is content-addressed, i.e. every writer writes the same
// bytes for it, so a retry can never resurrect a lost update.
package resilience

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// Transient reports whether err belongs to a failure class worth
// retrying: injected write faults, call deadlines, connection drops and
// redial races, net timeouts. Remote per-key statuses (wire.ErrNotFound)
// and the reconnect wrapper's sticky give-up (ssp.ErrReconnectFailed)
// are permanent. Matching is errors.Is throughout, so wrapped forms —
// including shard.ErrQuorum wrapping a transient cause — classify by
// their sentinel, not their message.
func Transient(err error) bool {
	if err == nil ||
		errors.Is(err, wire.ErrNotFound) ||
		errors.Is(err, ssp.ErrReconnectFailed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, ssp.ErrDeadline) ||
		errors.Is(err, ssp.ErrShutdown) ||
		errors.Is(err, ssp.ErrInjectedWrite) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// Policy configures a retrying Store. Zero values take the defaults
// noted on each field.
type Policy struct {
	// MaxAttempts bounds total tries per operation, first included
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the between-attempt backoff (default 200µs);
	// MaxDelay caps it (default 20ms). Actual sleeps are full-jitter:
	// uniform in [0, min(MaxDelay, BaseDelay<<attempt)).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// BudgetRatio is the Finagle-style retry budget: every operation
	// deposits this many retry tokens (scaled by 1000 internally) and
	// each retry withdraws one whole token, so sustained retry load is
	// bounded to this fraction of request load (default 0.2). BudgetBurst
	// is the bucket cap in whole tokens (default 10). A denied withdrawal
	// surfaces the error immediately and counts
	// resilience.retry.budget_denied.
	BudgetRatio float64
	BudgetBurst int
	// Rand supplies jitter in [0,1); nil uses a fixed-seed splitmix64
	// stream (math/rand is banned outside internal/workload). Sleep is
	// injectable for tests; nil uses time.Sleep.
	Rand  func() float64
	Sleep func(time.Duration)
	// Registry, when non-nil, receives the resilience.retry.* counters:
	// attempts (retries issued), success (ops rescued by a retry),
	// exhausted (transient errors surfaced after the attempt budget),
	// budget_denied (retries suppressed by the token budget).
	Registry *obs.Registry
}

func (p *Policy) defaults() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 200 * time.Microsecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	if p.BudgetRatio == 0 {
		p.BudgetRatio = 0.2
	}
	if p.BudgetBurst == 0 {
		p.BudgetBurst = 10
	}
	if p.Rand == nil {
		p.Rand = splitmixRand(0x5eed5eed5eed5eed)
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
}

// ContentKeyFunc vouches that (ns, key) is content-addressed — all
// writers write identical bytes under it — making its Put idempotent and
// therefore retryable. nil means "never": writes surface their first
// transient error to the caller (whose quorum or write-behind layer
// handles it).
type ContentKeyFunc func(ns wire.NS, key string) bool

// Store wraps an ssp.BlobStore with the classified retry policy. It
// forwards the Flusher and Router interfaces of its inner store so
// write-behind lane-splitting and barriers see through it; Barrier itself
// is never retried (a sticky deferred error must surface exactly once,
// not be swallowed by a retry loop).
type Store struct {
	inner      ssp.BlobStore
	pol        Policy
	contentKey ContentKeyFunc

	// budget is the token bucket in milli-tokens, capped at
	// BudgetBurst*1000; each retry costs 1000.
	budget atomic.Int64
}

var _ ssp.BlobStore = (*Store)(nil)
var _ ssp.Flusher = (*Store)(nil)
var _ ssp.Router = (*Store)(nil)

// NewStore wraps inner with pol. contentKey may be nil (no Put retries).
func NewStore(inner ssp.BlobStore, pol Policy, contentKey ContentKeyFunc) *Store {
	pol.defaults()
	s := &Store{inner: inner, pol: pol, contentKey: contentKey}
	s.budget.Store(int64(pol.BudgetBurst) * 1000)
	return s
}

func (s *Store) count(name string) {
	if s.pol.Registry != nil {
		s.pol.Registry.Counter(name).Inc()
	}
}

// deposit credits the retry budget for one attempted operation.
func (s *Store) deposit() {
	burst := int64(s.pol.BudgetBurst) * 1000
	credit := int64(s.pol.BudgetRatio * 1000)
	for {
		cur := s.budget.Load()
		next := cur + credit
		if next > burst {
			next = burst
		}
		if next == cur || s.budget.CompareAndSwap(cur, next) {
			return
		}
	}
}

// withdraw takes one whole retry token, reporting false when the bucket
// is too empty — the caller then surfaces the error instead of retrying.
func (s *Store) withdraw() bool {
	for {
		cur := s.budget.Load()
		if cur < 1000 {
			return false
		}
		if s.budget.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// backoff returns the jittered pre-retry delay for retry n (1-based).
func (s *Store) backoff(n int) time.Duration {
	d := s.pol.BaseDelay
	for i := 1; i < n && d < s.pol.MaxDelay; i++ {
		d *= 2
	}
	if d > s.pol.MaxDelay {
		d = s.pol.MaxDelay
	}
	return time.Duration(s.pol.Rand() * float64(d))
}

// do runs op under the retry policy. Only idempotent ops retry, only on
// transient errors, and only while the token budget allows.
func (s *Store) do(idempotent bool, op func() error) error {
	s.deposit()
	err := op()
	for retry := 1; err != nil && retry < s.pol.MaxAttempts; retry++ {
		if !idempotent || !Transient(err) {
			return err
		}
		if !s.withdraw() {
			s.count("resilience.retry.budget_denied")
			break
		}
		s.pol.Sleep(s.backoff(retry))
		s.count("resilience.retry.attempts")
		if err = op(); err == nil {
			s.count("resilience.retry.success")
			return nil
		}
	}
	if err != nil && idempotent && Transient(err) {
		s.count("resilience.retry.exhausted")
	}
	return err
}

// contentAddressed reports whether every write in items is vouched
// idempotent (deletes always are: deleting twice converges).
func (s *Store) contentAddressed(items []wire.KV) bool {
	if s.contentKey == nil {
		return false
	}
	for _, it := range items {
		if !it.Delete && !s.contentKey(it.NS, it.Key) {
			return false
		}
	}
	return true
}

// Get implements ssp.BlobStore (retried: reads are idempotent).
func (s *Store) Get(ns wire.NS, key string) ([]byte, error) {
	var val []byte
	err := s.do(true, func() error {
		v, err := s.inner.Get(ns, key)
		val = v
		return err
	})
	return val, err
}

// Put implements ssp.BlobStore (retried only for content-addressed keys).
func (s *Store) Put(ns wire.NS, key string, val []byte) error {
	idem := s.contentKey != nil && s.contentKey(ns, key)
	return s.do(idem, func() error { return s.inner.Put(ns, key, val) })
}

// Delete implements ssp.BlobStore (retried: deletes converge).
func (s *Store) Delete(ns wire.NS, key string) error {
	return s.do(true, func() error { return s.inner.Delete(ns, key) })
}

// List implements ssp.BlobStore (retried).
func (s *Store) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	var items []wire.KV
	err := s.do(true, func() error {
		its, err := s.inner.List(ns, prefix)
		items = its
		return err
	})
	return items, err
}

// BatchGet implements ssp.BlobStore (retried).
func (s *Store) BatchGet(req []wire.KV) ([]wire.KV, error) {
	var items []wire.KV
	err := s.do(true, func() error {
		its, err := s.inner.BatchGet(req)
		items = its
		return err
	})
	return items, err
}

// BatchPut implements ssp.BlobStore (retried only when every item is
// vouched content-addressed or a delete).
func (s *Store) BatchPut(items []wire.KV) error {
	return s.do(s.contentAddressed(items), func() error { return s.inner.BatchPut(items) })
}

// Stats implements ssp.BlobStore (retried).
func (s *Store) Stats() (ssp.Stats, error) {
	var st ssp.Stats
	err := s.do(true, func() error {
		x, err := s.inner.Stats()
		st = x
		return err
	})
	return st, err
}

// Barrier implements ssp.Flusher by passing straight through — retrying
// a barrier would swallow the exactly-once surfacing of sticky deferred
// errors from the layers below.
func (s *Store) Barrier() error {
	if f, ok := s.inner.(ssp.Flusher); ok {
		return f.Barrier()
	}
	return nil
}

// Routes implements ssp.Router by delegating to the inner store.
func (s *Store) Routes() int {
	if rt, ok := s.inner.(ssp.Router); ok {
		return rt.Routes()
	}
	return 1
}

// RouteID implements ssp.Router by delegating to the inner store.
func (s *Store) RouteID(ns wire.NS, key string) int {
	if rt, ok := s.inner.(ssp.Router); ok {
		return rt.RouteID(ns, key)
	}
	return 0
}

// splitmixRand returns a locked splitmix64 uniform [0,1) stream seeded
// deterministically (jitter needs decorrelation, not secrecy; math/rand
// is banned outside internal/workload by the rawrand analyzer).
func splitmixRand(seed uint64) func() float64 {
	var mu sync.Mutex
	state := seed
	return func() float64 {
		mu.Lock()
		state += 0x9e3779b97f4a7c15
		z := state
		mu.Unlock()
		z ^= z >> 30
		z *= 0xbf58476d1ce4e9b5
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}
