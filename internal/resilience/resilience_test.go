package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// timeoutErr is a minimal net.Error with Timeout() == true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

var _ net.Error = timeoutErr{}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"not-found", wire.ErrNotFound, false},
		{"reconnect-giveup", ssp.ErrReconnectFailed, false},
		{"wrapped-giveup", fmt.Errorf("call: %w", ssp.ErrReconnectFailed), false},
		{"random", errors.New("disk full"), false},
		{"deadline", ssp.ErrDeadline, true},
		{"wrapped-deadline", fmt.Errorf("get k: %w", ssp.ErrDeadline), true},
		{"shutdown", ssp.ErrShutdown, true},
		{"injected-write", ssp.ErrInjectedWrite, true},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"net-closed", net.ErrClosed, true},
		{"net-timeout", timeoutErr{}, true},
		{"wrapped-timeout", fmt.Errorf("dial: %w", timeoutErr{}), true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// countStore wraps a MemStore and fails the first failN calls of each
// overridden op with err, counting invocations.
type countStore struct {
	*ssp.MemStore
	mu       sync.Mutex
	err      error
	failGets int
	failPuts int
	gets     int
	puts     int
	barriers int
	barErr   error
}

func (c *countStore) Get(ns wire.NS, key string) ([]byte, error) {
	c.mu.Lock()
	c.gets++
	fail := c.failGets > 0
	if fail {
		c.failGets--
	}
	c.mu.Unlock()
	if fail {
		return nil, c.err
	}
	return c.MemStore.Get(ns, key)
}

func (c *countStore) Put(ns wire.NS, key string, val []byte) error {
	c.mu.Lock()
	c.puts++
	fail := c.failPuts > 0
	if fail {
		c.failPuts--
	}
	c.mu.Unlock()
	if fail {
		return c.err
	}
	return c.MemStore.Put(ns, key, val)
}

func (c *countStore) BatchPut(items []wire.KV) error {
	c.mu.Lock()
	c.puts++
	fail := c.failPuts > 0
	if fail {
		c.failPuts--
	}
	c.mu.Unlock()
	if fail {
		return c.err
	}
	return c.MemStore.BatchPut(items)
}

func (c *countStore) Barrier() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.barriers++
	return c.barErr
}

func (c *countStore) counts() (gets, puts, barriers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets, c.puts, c.barriers
}

// fastPolicy removes real sleeps and attaches a registry.
func fastPolicy(reg *obs.Registry) Policy {
	return Policy{Sleep: func(time.Duration) {}, Registry: reg}
}

func TestGetRetriedToSuccess(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrDeadline, failGets: 2}
	inner.MemStore.Put(wire.NSData, "k", []byte("v"))
	reg := obs.NewRegistry()
	s := NewStore(inner, fastPolicy(reg), nil)

	v, err := s.Get(wire.NSData, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v, want rescue on attempt 3", v, err)
	}
	gets, _, _ := inner.counts()
	if gets != 3 {
		t.Fatalf("inner gets = %d, want 3", gets)
	}
	if n := reg.Counter("resilience.retry.attempts").Value(); n != 2 {
		t.Errorf("retry.attempts = %d, want 2", n)
	}
	if n := reg.Counter("resilience.retry.success").Value(); n != 1 {
		t.Errorf("retry.success = %d, want 1", n)
	}
}

func TestGetExhaustsAttempts(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrDeadline, failGets: 10}
	reg := obs.NewRegistry()
	s := NewStore(inner, fastPolicy(reg), nil)

	if _, err := s.Get(wire.NSData, "k"); !errors.Is(err, ssp.ErrDeadline) {
		t.Fatalf("Get = %v, want the classified transient error surfaced", err)
	}
	gets, _, _ := inner.counts()
	if gets != 3 {
		t.Fatalf("inner gets = %d, want MaxAttempts=3", gets)
	}
	if n := reg.Counter("resilience.retry.exhausted").Value(); n != 1 {
		t.Errorf("retry.exhausted = %d, want 1", n)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: errors.New("checksum mismatch"), failGets: 1}
	s := NewStore(inner, fastPolicy(nil), nil)
	if _, err := s.Get(wire.NSData, "k"); err == nil {
		t.Fatal("Get = nil, want the permanent error")
	}
	if gets, _, _ := inner.counts(); gets != 1 {
		t.Fatalf("inner gets = %d; permanent errors must not retry", gets)
	}
}

func TestNotFoundNotRetried(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore()}
	s := NewStore(inner, fastPolicy(nil), nil)
	if _, err := s.Get(wire.NSData, "missing"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
	if gets, _, _ := inner.counts(); gets != 1 {
		t.Fatalf("inner gets = %d; NotFound must not retry", gets)
	}
}

func TestPutNotRetriedWithoutContentKey(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrInjectedWrite, failPuts: 1}
	s := NewStore(inner, fastPolicy(nil), nil)
	if err := s.Put(wire.NSData, "k", []byte("v")); !errors.Is(err, ssp.ErrInjectedWrite) {
		t.Fatalf("Put = %v, want first transient error surfaced unretried", err)
	}
	if _, puts, _ := inner.counts(); puts != 1 {
		t.Fatalf("inner puts = %d; non-idempotent Put must not retry", puts)
	}
}

func TestPutRetriedForContentKeys(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrInjectedWrite, failPuts: 1}
	all := func(wire.NS, string) bool { return true }
	s := NewStore(inner, fastPolicy(nil), all)
	if err := s.Put(wire.NSData, "cas/abc", []byte("v")); err != nil {
		t.Fatalf("content-addressed Put = %v, want rescue", err)
	}
	if _, puts, _ := inner.counts(); puts != 2 {
		t.Fatalf("inner puts = %d, want 2", puts)
	}
}

func TestBatchPutMixedBatchNotRetried(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrInjectedWrite, failPuts: 2}
	cas := func(_ wire.NS, key string) bool { return len(key) > 4 && key[:4] == "cas/" }
	s := NewStore(inner, fastPolicy(nil), cas)

	// One non-content-addressed item poisons the whole batch.
	mixed := []wire.KV{
		{NS: wire.NSData, Key: "cas/a", Val: []byte("x")},
		{NS: wire.NSData, Key: "mutable/b", Val: []byte("y")},
	}
	if err := s.BatchPut(mixed); !errors.Is(err, ssp.ErrInjectedWrite) {
		t.Fatalf("mixed BatchPut = %v, want unretried error", err)
	}
	if _, puts, _ := inner.counts(); puts != 1 {
		t.Fatalf("inner puts = %d; mixed batch must not retry", puts)
	}

	// All content-addressed (deletes count as idempotent) retries.
	pure := []wire.KV{
		{NS: wire.NSData, Key: "cas/a", Val: []byte("x")},
		{NS: wire.NSData, Key: "anything", Delete: true},
	}
	if err := s.BatchPut(pure); err != nil {
		t.Fatalf("content-addressed BatchPut = %v, want rescue", err)
	}
}

func TestRetryBudgetDenies(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), err: ssp.ErrDeadline, failGets: 100}
	reg := obs.NewRegistry()
	pol := fastPolicy(reg)
	pol.BudgetRatio = 0.001 // deposits round to ~0 milli-tokens
	pol.BudgetBurst = 1     // one token in the bucket, ever
	s := NewStore(inner, pol, nil)

	// First Get: spends the only token on retry 1, is denied retry 2.
	if _, err := s.Get(wire.NSData, "k"); !errors.Is(err, ssp.ErrDeadline) {
		t.Fatalf("Get = %v", err)
	}
	// Second Get: bucket empty, denied immediately after the first try.
	if _, err := s.Get(wire.NSData, "k"); !errors.Is(err, ssp.ErrDeadline) {
		t.Fatalf("Get = %v", err)
	}
	gets, _, _ := inner.counts()
	if gets != 3 { // 2 + 1
		t.Fatalf("inner gets = %d, want 3 (budget must bound retries)", gets)
	}
	if n := reg.Counter("resilience.retry.budget_denied").Value(); n != 2 {
		t.Errorf("retry.budget_denied = %d, want 2", n)
	}
}

func TestBarrierNeverRetried(t *testing.T) {
	inner := &countStore{MemStore: ssp.NewMemStore(), barErr: ssp.ErrDeadline}
	s := NewStore(inner, fastPolicy(nil), nil)
	if err := s.Barrier(); !errors.Is(err, ssp.ErrDeadline) {
		t.Fatalf("Barrier = %v, want the sticky error surfaced", err)
	}
	if _, _, barriers := inner.counts(); barriers != 1 {
		t.Fatalf("inner barriers = %d; Barrier must pass through exactly once", barriers)
	}
}

// TestRouterPassthrough: lane-splitting layers above must see the inner
// store's routing through the retry wrapper.
type routedStore struct {
	*ssp.MemStore
}

func (routedStore) Routes() int                  { return 3 }
func (routedStore) RouteID(_ wire.NS, _ string) int { return 2 }

func TestRouterPassthrough(t *testing.T) {
	s := NewStore(routedStore{ssp.NewMemStore()}, fastPolicy(nil), nil)
	if s.Routes() != 3 || s.RouteID(wire.NSData, "k") != 2 {
		t.Fatalf("Routes/RouteID not delegated: %d, %d", s.Routes(), s.RouteID(wire.NSData, "k"))
	}
	plain := NewStore(ssp.NewMemStore(), fastPolicy(nil), nil)
	if plain.Routes() != 1 || plain.RouteID(wire.NSData, "k") != 0 {
		t.Fatal("non-router inner must report a single route")
	}
}
