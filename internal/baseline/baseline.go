// Package baseline implements the four comparison filesystems of the
// paper's evaluation (§V):
//
//	NO-ENC-MD-D — no encryption at all: the floor for networking and
//	              implementation overheads of a wide-area filesystem.
//	NO-ENC-MD   — plaintext metadata, symmetric-key data encryption.
//	PUBLIC      — metadata objects encrypted entirely with the public
//	              keys of authorized users (SiRiUS/SNAD/Farsite style);
//	              every stat pays per-chunk private-key decryptions.
//	PUB-OPT     — metadata encrypted with a symmetric key that is itself
//	              public-key-wrapped per user; one private-key operation
//	              per metadata read.
//
// All four share one remote-filesystem implementation — the same wire
// protocol, SSP, caching and block layout as the Sharoes client — so that
// measured differences are purely the metadata cryptography, exactly the
// comparison the paper constructs.
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sharoes/sharoes/internal/binenc"
	"github.com/sharoes/sharoes/internal/cache"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/vfs"
)

// Mode selects the comparison implementation.
type Mode uint8

// Baseline modes, in the order the paper's figures list them.
const (
	NoEncMDD Mode = iota + 1 // NO-ENC-MD-D
	NoEncMD                  // NO-ENC-MD
	Public                   // PUBLIC
	PubOpt                   // PUB-OPT
)

// String implements fmt.Stringer using the paper's labels.
func (m Mode) String() string {
	switch m {
	case NoEncMDD:
		return "NO-ENC-MD-D"
	case NoEncMD:
		return "NO-ENC-MD"
	case Public:
		return "PUBLIC"
	case PubOpt:
		return "PUB-OPT"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// EncryptsData reports whether the mode encrypts file and directory data.
func (m Mode) EncryptsData() bool { return m != NoEncMDD }

// EncryptsMetadata reports whether the mode protects metadata.
func (m Mode) EncryptsMetadata() bool { return m == Public || m == PubOpt }

// bMeta is a baseline metadata object: a traditional inode plus the data
// key (baselines have no CAP machinery; the DEK travels with whatever
// protection the mode gives metadata).
type bMeta struct {
	Attr struct {
		Inode types.Inode
		Kind  types.ObjKind
		Owner types.UserID
		Group types.GroupID
		Perm  types.Perm
		Size  uint64
		MTime int64
	}
	DEK sharocrypto.SymKey
}

// metaPadSize pads serialized metadata to a representative on-disk inode
// size (an ext2 inode is 128 B; the SiRiUS-style md-files the PUBLIC
// baseline models carry key blocks and signatures and run several hundred
// bytes). A fixed size keeps the four modes byte-identical on the wire so
// measured differences are purely cryptographic, and it determines how
// many RSA chunks the PUBLIC mode pays per metadata operation.
const metaPadSize = 512

func (m *bMeta) encode() []byte {
	var w binenc.Writer
	w.Uvarint(uint64(m.Attr.Inode))
	w.Byte(byte(m.Attr.Kind))
	w.String(string(m.Attr.Owner))
	w.String(string(m.Attr.Group))
	w.Uvarint(uint64(m.Attr.Perm))
	w.Uvarint(m.Attr.Size)
	w.Uvarint(uint64(m.Attr.MTime))
	w.Raw(m.DEK[:])
	if n := metaPadSize - w.Len(); n > 0 {
		w.Raw(make([]byte, n))
	}
	return w.Bytes()
}

func decodeBMeta(b []byte) (*bMeta, error) {
	r := binenc.NewReader(b)
	var m bMeta
	ino, err := r.Uvarint()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.Inode = types.Inode(ino)
	kind, err := r.Byte()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.Kind = types.ObjKind(kind)
	owner, err := r.String()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.Owner = types.UserID(owner)
	group, err := r.String()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.Group = types.GroupID(group)
	perm, err := r.Uvarint()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.Perm = types.Perm(perm)
	if m.Attr.Size, err = r.Uvarint(); err != nil {
		return nil, badMeta(err)
	}
	mt, err := r.Uvarint()
	if err != nil {
		return nil, badMeta(err)
	}
	m.Attr.MTime = int64(mt)
	raw, err := r.Raw(sharocrypto.SymKeySize)
	if err != nil {
		return nil, badMeta(err)
	}
	copy(m.DEK[:], raw)
	return &m, nil
}

func badMeta(err error) error { return fmt.Errorf("baseline: bad metadata: %w", err) }

// bTable is a baseline directory table: the plain ext2 two-column table.
type bTable struct {
	entries map[string]types.Inode
}

func newBTable() *bTable { return &bTable{entries: map[string]types.Inode{}} }

func (t *bTable) clone() *bTable {
	out := newBTable()
	for k, v := range t.entries {
		out.entries[k] = v
	}
	return out
}

func (t *bTable) encode() []byte {
	var w binenc.Writer
	w.Uvarint(uint64(len(t.entries)))
	names := make([]string, 0, len(t.entries))
	for n := range t.entries {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		w.String(n)
		w.Uvarint(uint64(t.entries[n]))
	}
	return w.Bytes()
}

func decodeBTable(b []byte) (*bTable, error) {
	r := binenc.NewReader(b)
	n, err := r.Uvarint()
	if err != nil {
		return nil, badMeta(err)
	}
	if n > uint64(r.Remaining()) {
		return nil, badMeta(errors.New("absurd entry count"))
	}
	t := newBTable()
	for i := uint64(0); i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, badMeta(err)
		}
		ino, err := r.Uvarint()
		if err != nil {
			return nil, badMeta(err)
		}
		t.entries[name] = types.Inode(ino)
	}
	return t, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Config configures a baseline mount.
type Config struct {
	Store      ssp.BlobStore
	Mode       Mode
	User       *keys.User
	Registry   *keys.Registry
	FSID       string
	Recorder   *stats.Recorder
	CacheBytes int64
	BlockSize  uint32
}

// Session is a mounted baseline filesystem. It implements vfs.FS.
type Session struct {
	mu        sync.Mutex
	store     ssp.BlobStore
	mode      Mode
	user      *keys.User
	reg       *keys.Registry
	fsid      string
	rec       *stats.Recorder
	cache     *cache.Cache
	blockSize uint32
	users     []types.UserID // authorized users (metadata replication targets)
	closed    bool
}

var _ vfs.FS = (*Session)(nil)

// Mount opens a baseline session.
func Mount(cfg Config) (*Session, error) {
	if cfg.Store == nil || cfg.User == nil || cfg.Registry == nil || cfg.Mode == 0 {
		return nil, errors.New("baseline: incomplete config")
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = 64 * 1024
	}
	s := &Session{
		store:     cfg.Store,
		mode:      cfg.Mode,
		user:      cfg.User,
		reg:       cfg.Registry,
		fsid:      cfg.FSID,
		rec:       cfg.Recorder,
		cache:     cache.New(cfg.CacheBytes),
		blockSize: bs,
		users:     cfg.Registry.Users(),
	}
	// Verify the filesystem exists (and that we can decrypt the root).
	if _, err := s.fetchMeta(types.RootInode); err != nil {
		return nil, fmt.Errorf("baseline: mount: %w", err)
	}
	return s, nil
}

// Close implements vfs.FS.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cache.Clear()
	return nil
}

// Refresh drops cached state (same semantics as the Sharoes client).
func (s *Session) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.Clear()
}

func (s *Session) crypto() func() { return s.rec.Time(stats.Crypto) }

func (s *Session) classOf(m *bMeta) types.Class {
	return s.reg.ClassOf(s.user.ID, m.Attr.Owner, m.Attr.Group)
}

func (s *Session) triplet(m *bMeta) types.Triplet {
	return m.Attr.Perm.TripletFor(s.classOf(m))
}

// --- storage keys -----------------------------------------------------------

func (s *Session) metaKey(ino types.Inode) string {
	base := fmt.Sprintf("%s/m/%d", s.fsid, uint64(ino))
	if s.mode == Public {
		// Per-user replicas, like Scheme-1 ("every metadata object is
		// separately encrypted with the public keys of all users",
		// paper §III-D1). PUB-OPT shares one symmetric body and stores
		// per-user wrapped keys instead (see wrapKey).
		return base + "/u/" + string(s.user.ID)
	}
	return base
}

// wrapKey is where PUB-OPT stores each user's wrapped symmetric key.
func (s *Session) wrapKey(ino types.Inode, u types.UserID) string {
	return fmt.Sprintf("%s/mk/%d/u/%s", s.fsid, uint64(ino), u)
}

func (s *Session) tableKey(ino types.Inode) string {
	return fmt.Sprintf("%s/t/%d", s.fsid, uint64(ino))
}

func (s *Session) blockKey(ino types.Inode, idx uint32) string {
	return fmt.Sprintf("%s/f/%d/%d", s.fsid, uint64(ino), idx)
}

func (s *Session) filePrefix(ino types.Inode) string {
	return fmt.Sprintf("%s/f/%d/", s.fsid, uint64(ino))
}
