package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

var (
	bOnce sync.Once
	bReg  *keys.Registry
	bUser map[types.UserID]*keys.User
)

func bFixture(t testing.TB) {
	t.Helper()
	bOnce.Do(func() {
		bReg = keys.NewRegistry()
		bUser = make(map[types.UserID]*keys.User)
		for _, id := range []types.UserID{"alice", "bob", "carol"} {
			u, err := keys.NewUser(id)
			if err != nil {
				t.Fatal(err)
			}
			bUser[id] = u
			bReg.AddUser(id, u.Public())
		}
		g, err := keys.NewGroup("eng")
		if err != nil {
			t.Fatal(err)
		}
		bReg.AddGroup("eng", g.Priv.Public())
		bReg.AddMember("eng", "alice")
		bReg.AddMember("eng", "bob")
	})
}

func allModes() []Mode { return []Mode{NoEncMDD, NoEncMD, Public, PubOpt} }

func modeWorld(t *testing.T, mode Mode) (ssp.BlobStore, func(types.UserID) *Session) {
	t.Helper()
	bFixture(t)
	store := ssp.NewMemStore()
	if err := Bootstrap(store, mode, "bfs", bReg, "alice", "eng", 0o755); err != nil {
		t.Fatal(err)
	}
	mount := func(id types.UserID) *Session {
		s, err := Mount(Config{Store: store, Mode: mode, User: bUser[id], Registry: bReg,
			FSID: "bfs", CacheBytes: -1, BlockSize: 64})
		if err != nil {
			t.Fatalf("mount %s: %v", id, err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	return store, mount
}

// TestAllModesBasicOps runs the shared-behaviour contract against every
// baseline mode: the four implementations must be functionally identical,
// differing only in cryptographic cost.
func TestAllModesBasicOps(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, mount := modeWorld(t, mode)
			alice := mount("alice")

			if err := alice.Mkdir("/docs", 0o755); err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte("baseline"), 50) // multi-block at bs=64
			if err := alice.WriteFile("/docs/report", data, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := alice.ReadFile("/docs/report")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("read = %d bytes, %v", len(got), err)
			}
			info, err := alice.Stat("/docs/report")
			if err != nil {
				t.Fatal(err)
			}
			if info.Size != uint64(len(data)) || info.Kind != types.KindFile || info.Owner != "alice" {
				t.Errorf("info = %+v", info)
			}
			names, err := alice.ReadDir("/docs")
			if err != nil || len(names) != 1 || names[0] != "report" {
				t.Errorf("readdir = %v, %v", names, err)
			}
			// Overwrite smaller, then append.
			if err := alice.WriteFile("/docs/report", []byte("v2"), 0); err != nil {
				t.Fatal(err)
			}
			if err := alice.Append("/docs/report", bytes.Repeat([]byte("+"), 100)); err != nil {
				t.Fatal(err)
			}
			got, err = alice.ReadFile("/docs/report")
			if err != nil || len(got) != 102 || string(got[:2]) != "v2" {
				t.Fatalf("after append: %d bytes, %v", len(got), err)
			}
			// Rename and remove.
			if err := alice.Rename("/docs/report", "/docs/final"); err != nil {
				t.Fatal(err)
			}
			if err := alice.Remove("/docs/final"); err != nil {
				t.Fatal(err)
			}
			if err := alice.Remove("/docs"); err != nil {
				t.Fatal(err)
			}
			if _, err := alice.Stat("/docs"); !errors.Is(err, types.ErrNotExist) {
				t.Errorf("stat removed dir: %v", err)
			}
		})
	}
}

// TestModesShareSemanticsAcrossUsers: second users see consistent state
// in every mode (with explicit refresh, as in the Sharoes client).
func TestModesShareSemanticsAcrossUsers(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, mount := modeWorld(t, mode)
			alice, bob := mount("alice"), mount("bob")
			if err := alice.WriteFile("/shared", []byte("v1"), 0o664); err != nil {
				t.Fatal(err)
			}
			if got, err := bob.ReadFile("/shared"); err != nil || string(got) != "v1" {
				t.Fatalf("bob read = %q, %v", got, err)
			}
			if err := bob.WriteFile("/shared", []byte("v2 from bob"), 0); err != nil {
				t.Fatal(err)
			}
			alice.Refresh()
			if got, err := alice.ReadFile("/shared"); err != nil || string(got) != "v2 from bob" {
				t.Fatalf("alice read = %q, %v", got, err)
			}
		})
	}
}

// TestAdvisoryPermissions: baselines enforce permissions as client policy
// (the paper's point: they lack a real cryptographic access-control model,
// offering only coarse read/write splits).
func TestAdvisoryPermissions(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, mount := modeWorld(t, mode)
			alice, carol := mount("alice"), mount("carol")
			if err := alice.WriteFile("/private", []byte("mine"), 0o600); err != nil {
				t.Fatal(err)
			}
			if _, err := carol.ReadFile("/private"); !errors.Is(err, types.ErrPermission) {
				t.Errorf("carol read 600: %v", err)
			}
			if err := carol.Chmod("/private", 0o644); !errors.Is(err, types.ErrPermission) {
				t.Errorf("carol chmod: %v", err)
			}
			if err := carol.Chown("/private", "carol", ""); !errors.Is(err, types.ErrPermission) {
				t.Errorf("carol chown: %v", err)
			}
			if err := alice.Chmod("/private", 0o644); err != nil {
				t.Fatal(err)
			}
			carol.Refresh()
			if got, err := carol.ReadFile("/private"); err != nil || string(got) != "mine" {
				t.Errorf("carol read after chmod = %q, %v", got, err)
			}
		})
	}
}

// TestPublicMetadataIsActuallyEncrypted: in PUBLIC and PUB-OPT no
// plaintext attribute survives at the SSP; in the NO-ENC modes it does
// (that is what makes them baselines, not systems).
func TestPublicMetadataIsActuallyEncrypted(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			store, mount := modeWorld(t, mode)
			alice := mount("alice")
			if err := alice.WriteFile("/marker-name-xyzzy", []byte("data"), 0o644); err != nil {
				t.Fatal(err)
			}
			items, err := store.List(wire.NSMeta, "")
			if err != nil {
				t.Fatal(err)
			}
			var sawOwner bool
			for _, it := range items {
				if bytes.Contains(it.Val, []byte("alice")) {
					sawOwner = true
				}
			}
			if mode.EncryptsMetadata() && sawOwner {
				t.Errorf("%v leaked plaintext owner in metadata", mode)
			}
			if !mode.EncryptsMetadata() && !sawOwner {
				t.Errorf("%v should store plaintext metadata", mode)
			}
		})
	}
}

// TestDataEncryptionPerMode: file bytes are visible at the SSP only in
// NO-ENC-MD-D.
func TestDataEncryptionPerMode(t *testing.T) {
	payload := []byte("EXTREMELY-DISTINCTIVE-PAYLOAD-BYTES")
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			store, mount := modeWorld(t, mode)
			alice := mount("alice")
			if err := alice.WriteFile("/f", payload, 0o644); err != nil {
				t.Fatal(err)
			}
			items, err := store.List(wire.NSData, "")
			if err != nil {
				t.Fatal(err)
			}
			var visible bool
			for _, it := range items {
				if bytes.Contains(it.Val, payload) {
					visible = true
				}
			}
			if mode.EncryptsData() && visible {
				t.Errorf("%v leaked plaintext data", mode)
			}
			if !mode.EncryptsData() && !visible {
				t.Errorf("%v should store plaintext data", mode)
			}
		})
	}
}

// TestPerUserMetadataReplication: PUBLIC and PUB-OPT store per-user
// metadata state (the Scheme-1-equivalent cost the paper calls out).
func TestPerUserMetadataReplication(t *testing.T) {
	bFixture(t)
	for _, mode := range []Mode{Public, PubOpt} {
		t.Run(mode.String(), func(t *testing.T) {
			store, mount := modeWorld(t, mode)
			alice := mount("alice")
			if err := alice.Create("/one", 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := store.Stats()
			if err != nil {
				t.Fatal(err)
			}
			// Root + one file, 3 users: at least 3 metadata blobs per
			// object under PUBLIC; body + 3 wrapped keys under PUB-OPT.
			if st.PerNS[wire.NSMeta] < 6 {
				t.Errorf("meta objects = %d, want per-user replication", st.PerNS[wire.NSMeta])
			}
			// Each user can read their own replica.
			for _, u := range []types.UserID{"bob", "carol"} {
				s := mount(u)
				if _, err := s.Stat("/one"); err != nil {
					t.Errorf("%s stat: %v", u, err)
				}
			}
		})
	}
}

// TestCryptoCostOrdering: the microcost ordering the whole evaluation
// rests on — PUBLIC metadata reads are far more expensive than PUB-OPT,
// which is more expensive than the NO-ENC modes.
func TestCryptoCostOrdering(t *testing.T) {
	bFixture(t)
	cost := make(map[Mode]int64)
	for _, mode := range allModes() {
		store := ssp.NewMemStore()
		if err := Bootstrap(store, mode, "bfs", bReg, "alice", "eng", 0o755); err != nil {
			t.Fatal(err)
		}
		var rec stats.Recorder
		s, err := Mount(Config{Store: store, Mode: mode, User: bUser["alice"], Registry: bReg,
			FSID: "bfs", CacheBytes: 0, BlockSize: 4096, Recorder: &rec})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.Create(fmt.Sprintf("/f%d", i), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rec.Reset()
		for i := 0; i < 5; i++ {
			if _, err := s.Stat(fmt.Sprintf("/f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		cost[mode] = int64(rec.Snapshot().Crypto)
		s.Close()
	}
	if !(cost[Public] > cost[PubOpt] && cost[PubOpt] > cost[NoEncMD]) {
		t.Errorf("stat crypto cost ordering violated: PUBLIC=%d PUB-OPT=%d NO-ENC-MD=%d NO-ENC-MD-D=%d",
			cost[Public], cost[PubOpt], cost[NoEncMD], cost[NoEncMDD])
	}
}

func TestModeStrings(t *testing.T) {
	if NoEncMDD.String() != "NO-ENC-MD-D" || Public.String() != "PUBLIC" ||
		PubOpt.String() != "PUB-OPT" || NoEncMD.String() != "NO-ENC-MD" {
		t.Error("mode labels wrong")
	}
	if Mode(99).String() != "mode(99)" {
		t.Error("unknown mode label")
	}
}

func TestMountErrors(t *testing.T) {
	bFixture(t)
	if _, err := Mount(Config{}); err == nil {
		t.Error("empty config mounted")
	}
	// Mounting an un-bootstrapped store fails.
	if _, err := Mount(Config{Store: ssp.NewMemStore(), Mode: NoEncMD, User: bUser["alice"],
		Registry: bReg, FSID: "nope"}); err == nil {
		t.Error("mounted a missing filesystem")
	}
}
