package baseline

import (
	"errors"
	"fmt"

	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

const (
	ckMeta  = "M|"
	ckTable = "T|"
	ckBlock = "B|"
)

// fetchMeta retrieves and (per mode) decrypts a metadata object.
func (s *Session) fetchMeta(ino types.Inode) (*bMeta, error) {
	key := ckMeta + s.metaKey(ino)
	if v, ok := s.cache.Get(key); ok {
		return v.(*bMeta), nil
	}
	var m *bMeta
	switch s.mode {
	case NoEncMDD, NoEncMD:
		blob, err := s.store.Get(wire.NSMeta, s.metaKey(ino))
		if errors.Is(err, wire.ErrNotFound) {
			return nil, types.ErrNotExist
		}
		if err != nil {
			return nil, err
		}
		if m, err = decodeBMeta(blob); err != nil {
			return nil, err
		}
		// NO-ENC baselines store metadata in plaintext with no MAC — the
		// measured design point is exactly "skip the trust boundary".
		s.cache.Put(key, m, int64(len(blob))) //sharoes-vet:allow unverified NO-ENC baseline caches unauthenticated metadata by design
	case Public:
		blob, err := s.store.Get(wire.NSMeta, s.metaKey(ino))
		if errors.Is(err, wire.ErrNotFound) {
			return nil, types.ErrNotExist
		}
		if err != nil {
			return nil, err
		}
		// The expensive path the paper measures: every stat performs
		// per-chunk private-key decryptions of the whole object.
		stop := s.crypto()
		pt, err := s.user.Priv.OpenChunked(blob)
		stop()
		if err != nil {
			return nil, fmt.Errorf("%w: %w", types.ErrTampered, err)
		}
		md, err := decodeBMeta(pt)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, md, int64(len(blob)))
		m = md
	case PubOpt:
		items, err := s.store.BatchGet([]wire.KV{
			{NS: wire.NSMeta, Key: s.metaKey(ino)},
			{NS: wire.NSMeta, Key: s.wrapKey(ino, s.user.ID)},
		})
		if err != nil {
			return nil, err
		}
		if len(items) < 2 {
			return nil, types.ErrNotExist
		}
		var body, wrapped []byte
		for _, it := range items {
			if it.Key == s.metaKey(ino) {
				body = it.Val
			} else {
				wrapped = it.Val
			}
		}
		// One private-key operation to unwrap the 16-byte key, then a
		// symmetric decryption of the object (the PUB-OPT optimization).
		stop := s.crypto()
		keyBytes, err := s.user.Priv.OpenChunked(wrapped)
		var mk sharocrypto.SymKey
		if err == nil {
			mk, err = sharocrypto.SymKeyFromBytes(keyBytes)
		}
		var pt []byte
		if err == nil {
			pt, err = mk.Open(body, pubOptMetaAAD(s.fsid, ino))
		}
		stop()
		if err != nil {
			return nil, fmt.Errorf("%w: %w", types.ErrTampered, err)
		}
		md, err := decodeBMeta(pt)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, md, int64(len(body)))
		m = md
	default:
		return nil, fmt.Errorf("baseline: unknown mode %v", s.mode)
	}
	return m, nil
}

// sealMetaKVs produces the stored form(s) of a metadata object: one
// plaintext copy, N public-key copies (PUBLIC), or a symmetric body plus N
// wrapped keys (PUB-OPT).
func (s *Session) sealMetaKVs(m *bMeta) ([]wire.KV, error) {
	return sealMetaKVs(s.mode, s.fsid, s.reg, s.users, m, s.crypto)
}

func sealMetaKVs(mode Mode, fsid string, reg registryLike, users []types.UserID, m *bMeta, timer func() func()) ([]wire.KV, error) {
	if timer == nil {
		timer = func() func() { return func() {} }
	}
	plain := m.encode()
	base := fmt.Sprintf("%s/m/%d", fsid, uint64(m.Attr.Inode))
	switch mode {
	case NoEncMDD, NoEncMD:
		return []wire.KV{{NS: wire.NSMeta, Key: base, Val: plain}}, nil
	case Public:
		kvs := make([]wire.KV, 0, len(users))
		stop := timer()
		defer stop()
		for _, u := range users {
			pub, err := reg.UserKey(u)
			if err != nil {
				return nil, err
			}
			blob, err := pub.SealChunked(plain)
			if err != nil {
				return nil, err
			}
			kvs = append(kvs, wire.KV{NS: wire.NSMeta, Key: base + "/u/" + string(u), Val: blob})
		}
		return kvs, nil
	case PubOpt:
		stop := timer()
		defer stop()
		mk := sharocrypto.NewSymKey()
		kvs := []wire.KV{{NS: wire.NSMeta, Key: base, Val: mk.Seal(plain, pubOptMetaAAD(fsid, m.Attr.Inode))}}
		for _, u := range users {
			pub, err := reg.UserKey(u)
			if err != nil {
				return nil, err
			}
			wrapped, err := pub.SealChunked(mk[:])
			if err != nil {
				return nil, err
			}
			kvs = append(kvs, wire.KV{NS: wire.NSMeta, Key: fmt.Sprintf("%s/mk/%d/u/%s", fsid, uint64(m.Attr.Inode), u), Val: wrapped})
		}
		return kvs, nil
	default:
		return nil, fmt.Errorf("baseline: unknown mode %v", mode)
	}
}

// registryLike is the slice of keys.Registry needed by the codec.
type registryLike interface {
	UserKey(types.UserID) (sharocrypto.PublicKey, error)
}

// deleteMetaKVs removes every stored form of a metadata object.
func (s *Session) deleteMetaKVs(ino types.Inode) []wire.KV {
	base := fmt.Sprintf("%s/m/%d", s.fsid, uint64(ino))
	switch s.mode {
	case Public:
		kvs := make([]wire.KV, 0, len(s.users))
		for _, u := range s.users {
			kvs = append(kvs, wire.KV{NS: wire.NSMeta, Key: base + "/u/" + string(u), Delete: true})
		}
		return kvs
	case PubOpt:
		kvs := []wire.KV{{NS: wire.NSMeta, Key: base, Delete: true}}
		for _, u := range s.users {
			kvs = append(kvs, wire.KV{NS: wire.NSMeta, Key: s.wrapKey(ino, u), Delete: true})
		}
		return kvs
	default:
		return []wire.KV{{NS: wire.NSMeta, Key: base, Delete: true}}
	}
}

// sealData encrypts a data blob (file block or directory table) with the
// object's DEK, or passes it through for NO-ENC-MD-D.
func (s *Session) sealData(m *bMeta, aad, plain []byte) []byte {
	if !s.mode.EncryptsData() {
		return plain
	}
	stop := s.crypto()
	defer stop()
	return m.DEK.Seal(plain, aad)
}

// openData reverses sealData.
func (s *Session) openData(m *bMeta, aad, blob []byte) ([]byte, error) {
	if !s.mode.EncryptsData() {
		return blob, nil
	}
	stop := s.crypto()
	defer stop()
	pt, err := m.DEK.Open(blob, aad)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", types.ErrTampered, err)
	}
	return pt, nil
}

// fetchTable retrieves a directory table. The returned table is the
// caller's to mutate; the cache keeps its own copy.
func (s *Session) fetchTable(m *bMeta) (*bTable, error) {
	key := ckTable + s.tableKey(m.Attr.Inode)
	if v, ok := s.cache.Get(key); ok {
		return v.(*bTable).clone(), nil
	}
	blob, err := s.store.Get(wire.NSData, s.tableKey(m.Attr.Inode))
	if errors.Is(err, wire.ErrNotFound) {
		return newBTable(), nil
	}
	if err != nil {
		return nil, err
	}
	pt, err := s.openData(m, tableAAD(m.Attr.Inode), blob)
	if err != nil {
		return nil, err
	}
	t, err := decodeBTable(pt)
	if err != nil {
		return nil, err
	}
	// In the NO-ENC modes openData passes the blob through unauthenticated;
	// the encrypted modes Open() it above.
	s.cache.Put(key, t, int64(len(blob))) //sharoes-vet:allow unverified NO-ENC baseline caches unauthenticated tables by design
	return t.clone(), nil
}

// tableKV seals a table for storage and refreshes the cache with the new
// contents (write-through, matching the Sharoes client's behaviour so the
// two implementations pay symmetric network costs).
func (s *Session) tableKV(m *bMeta, t *bTable) wire.KV {
	blob := s.sealData(m, tableAAD(m.Attr.Inode), t.encode())
	s.cache.Put(ckTable+s.tableKey(m.Attr.Inode), t.clone(), int64(len(blob)))
	return wire.KV{NS: wire.NSData, Key: s.tableKey(m.Attr.Inode), Val: blob}
}

func tableAAD(ino types.Inode) []byte { return []byte(fmt.Sprintf("bt|%d", uint64(ino))) }

// pubOptMetaAAD binds a PUB-OPT symmetric metadata body to its filesystem
// and inode, so a compromised store cannot answer a metadata fetch with a
// different object's validly-sealed body.
func pubOptMetaAAD(fsid string, ino types.Inode) []byte {
	return []byte(fmt.Sprintf("bm|%s|%d", fsid, uint64(ino)))
}
func blockAAD(ino types.Inode, idx uint32) []byte {
	return []byte(fmt.Sprintf("bb|%d|%d", uint64(ino), idx))
}
