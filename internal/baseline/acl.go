package baseline

import (
	"fmt"

	"github.com/sharoes/sharoes/internal/types"
)

// The comparison systems provide no per-user grant mechanism — one of the
// expressiveness gaps the paper holds against them (§VI: "the access
// control semantics only provide read and write permissions at a file
// level"). The methods exist to satisfy vfs.FS and decline honestly.

// SetACL implements vfs.FS by declining.
func (s *Session) SetACL(string, types.UserID, types.Triplet) error {
	return fmt.Errorf("%w: %v has no ACL support", types.ErrUnsupportedPerm, s.mode)
}

// RemoveACL implements vfs.FS by declining.
func (s *Session) RemoveACL(string, types.UserID) error {
	return fmt.Errorf("%w: %v has no ACL support", types.ErrUnsupportedPerm, s.mode)
}

// GetACL implements vfs.FS; baselines have no grants.
func (s *Session) GetACL(string) ([]types.ACLEntry, error) { return nil, nil }
