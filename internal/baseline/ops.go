package baseline

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/vfs"
	"github.com/sharoes/sharoes/internal/wire"
)

func randInode() types.Inode {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("baseline: entropy unavailable: " + err.Error())
	}
	ino := types.Inode(binary.BigEndian.Uint64(b[:]))
	if ino <= types.RootInode {
		ino = types.RootInode + 1
	}
	return ino
}

// Bootstrap creates an empty baseline filesystem.
func Bootstrap(store ssp.BlobStore, mode Mode, fsid string, reg *keys.Registry,
	owner types.UserID, group types.GroupID, perm types.Perm) error {
	root := &bMeta{}
	root.Attr.Inode = types.RootInode
	root.Attr.Kind = types.KindDir
	root.Attr.Owner = owner
	root.Attr.Group = group
	root.Attr.Perm = perm
	root.Attr.MTime = time.Now().UnixNano()
	root.DEK = newDEK()
	kvs, err := sealMetaKVs(mode, fsid, reg, reg.Users(), root, nil)
	if err != nil {
		return fmt.Errorf("baseline: bootstrap: %w", err)
	}
	return store.BatchPut(kvs)
}

func newDEK() (k [16]byte) {
	if _, err := rand.Read(k[:]); err != nil {
		panic("baseline: entropy unavailable: " + err.Error())
	}
	return k
}

// resolve walks a path from the root.
func (s *Session) resolve(path string) (*bMeta, error) {
	comps, err := types.PathComponents(path)
	if err != nil {
		return nil, err
	}
	m, err := s.fetchMeta(types.RootInode)
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		if m.Attr.Kind != types.KindDir {
			return nil, types.ErrNotDir
		}
		if !s.triplet(m).CanExec() {
			return nil, types.ErrPermission
		}
		t, err := s.fetchTable(m)
		if err != nil {
			return nil, err
		}
		ino, ok := t.entries[c]
		if !ok {
			return nil, types.ErrNotExist
		}
		if m, err = s.fetchMeta(ino); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (s *Session) resolveParent(path string) (*bMeta, string, error) {
	dir, base, err := types.SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if base == "" {
		return nil, "", types.ErrInvalidPath
	}
	m, err := s.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if m.Attr.Kind != types.KindDir {
		return nil, "", types.ErrNotDir
	}
	return m, base, nil
}

// Stat implements vfs.FS.
func (s *Session) Stat(path string) (vfs.Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	_, base, err := types.SplitPath(path)
	if err != nil {
		return vfs.Info{}, err
	}
	m, err := s.resolve(path)
	if err != nil {
		return vfs.Info{}, &types.PathError{Op: "stat", Path: path, Err: err}
	}
	return vfs.Info{Name: base, Inode: m.Attr.Inode, Kind: m.Attr.Kind, Owner: m.Attr.Owner,
		Group: m.Attr.Group, Perm: m.Attr.Perm, Size: m.Attr.Size,
		MTime: time.Unix(0, m.Attr.MTime)}, nil
}

// ReadDir implements vfs.FS.
func (s *Session) ReadDir(path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	if m.Attr.Kind != types.KindDir {
		return nil, types.ErrNotDir
	}
	if !s.triplet(m).CanRead() {
		return nil, types.ErrPermission
	}
	t, err := s.fetchTable(m)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(t.entries))
	for n := range t.entries {
		names = append(names, n)
	}
	sortStrings(names)
	return names, nil
}

// Mkdir implements vfs.FS.
func (s *Session) Mkdir(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	_, err := s.create(path, perm, types.KindDir, nil)
	return err
}

// Create implements vfs.FS.
func (s *Session) Create(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	_, err := s.create(path, perm, types.KindFile, []byte{})
	return err
}

func (s *Session) create(path string, perm types.Perm, kind types.ObjKind, data []byte) (*bMeta, error) {
	p, base, err := s.resolveParent(path)
	if err != nil {
		return nil, err
	}
	pt := s.triplet(p)
	if !pt.CanWrite() || !pt.CanExec() {
		return nil, types.ErrPermission
	}
	t, err := s.fetchTable(p)
	if err != nil {
		return nil, err
	}
	if _, ok := t.entries[base]; ok {
		return nil, types.ErrExist
	}

	m := &bMeta{}
	m.Attr.Inode = randInode()
	m.Attr.Kind = kind
	m.Attr.Owner = s.user.ID
	m.Attr.Group = p.Attr.Group
	m.Attr.Perm = perm
	m.Attr.Size = uint64(len(data))
	m.Attr.MTime = time.Now().UnixNano()
	m.DEK = newDEK()

	kvs, err := s.sealMetaKVs(m)
	if err != nil {
		return nil, err
	}
	if kind == types.KindFile {
		kvs = append(kvs, s.blockKVs(m, data)...)
	}
	t.entries[base] = m.Attr.Inode
	//sharoes-vet:allow unverified NO-ENC baseline write-through of unauthenticated table by design
	kvs = append(kvs, s.tableKV(p, t))
	if err := s.store.BatchPut(kvs); err != nil {
		return nil, err
	}
	// The child inherits attributes (group) from the parent, which the
	// NO-ENC modes read unauthenticated by design.
	s.cache.Put(ckMeta+s.metaKey(m.Attr.Inode), m, int64(len(kvs[0].Val))) //sharoes-vet:allow unverified NO-ENC baseline caches metadata derived from unauthenticated parent
	return m, nil
}

// blockKVs seals file content into blocks.
func (s *Session) blockKVs(m *bMeta, data []byte) []wire.KV {
	bs := int(s.blockSize)
	n := (len(data) + bs - 1) / bs
	kvs := make([]wire.KV, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*bs, (i+1)*bs
		if hi > len(data) {
			hi = len(data)
		}
		blk := s.sealData(m, blockAAD(m.Attr.Inode, uint32(i)), data[lo:hi])
		key := s.blockKey(m.Attr.Inode, uint32(i))
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: key, Val: blk})
		pt := make([]byte, hi-lo)
		copy(pt, data[lo:hi])
		s.cache.Put(ckBlock+key, pt, int64(hi-lo))
	}
	return kvs
}

// ReadFile implements vfs.FS.
func (s *Session) ReadFile(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	if m.Attr.Kind != types.KindFile {
		return nil, types.ErrIsDir
	}
	if !s.triplet(m).CanRead() {
		return nil, types.ErrPermission
	}
	bs := uint64(s.blockSize)
	nBlocks := uint32((m.Attr.Size + bs - 1) / bs)
	out := make([]byte, 0, m.Attr.Size)
	var missing []wire.KV
	parts := make([][]byte, nBlocks)
	for i := uint32(0); i < nBlocks; i++ {
		if v, ok := s.cache.Get(ckBlock + s.blockKey(m.Attr.Inode, i)); ok {
			parts[i] = v.([]byte)
			continue
		}
		missing = append(missing, wire.KV{NS: wire.NSData, Key: s.blockKey(m.Attr.Inode, i)})
	}
	if len(missing) > 0 {
		items, err := s.store.BatchGet(missing)
		if err != nil {
			return nil, err
		}
		if len(items) != len(missing) {
			return nil, fmt.Errorf("%w: blocks missing", types.ErrTampered)
		}
		for _, it := range items {
			var idx uint32
			if _, err := fmt.Sscanf(it.Key[len(s.filePrefix(m.Attr.Inode)):], "%d", &idx); err != nil {
				return nil, fmt.Errorf("%w: foreign block key", types.ErrTampered)
			}
			pt, err := s.openData(m, blockAAD(m.Attr.Inode, idx), it.Val)
			if err != nil {
				return nil, err
			}
			parts[idx] = pt
			// NO-ENC-MD-D stores blocks in plaintext; openData passes them
			// through unauthenticated by design.
			s.cache.Put(ckBlock+it.Key, pt, int64(len(pt))) //sharoes-vet:allow unverified NO-ENC baseline caches unauthenticated blocks by design
		}
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	if uint64(len(out)) != m.Attr.Size {
		return nil, fmt.Errorf("%w: size mismatch", types.ErrTampered)
	}
	return out, nil
}

// WriteFile implements vfs.FS.
func (s *Session) WriteFile(path string, data []byte, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if errors.Is(err, types.ErrNotExist) {
		_, err := s.create(path, perm, types.KindFile, data)
		return err
	}
	if err != nil {
		return err
	}
	return s.overwrite(m, data)
}

func (s *Session) overwrite(m *bMeta, data []byte) error {
	if m.Attr.Kind != types.KindFile {
		return types.ErrIsDir
	}
	if !s.triplet(m).CanWrite() {
		return types.ErrPermission
	}
	bs := uint64(s.blockSize)
	oldBlocks := uint32((m.Attr.Size + bs - 1) / bs)
	kvs := s.blockKVs(m, data)
	newBlocks := uint32((uint64(len(data)) + bs - 1) / bs)
	for i := newBlocks; i < oldBlocks; i++ {
		key := s.blockKey(m.Attr.Inode, i)
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: key, Delete: true})
		s.cache.Delete(ckBlock + key)
	}
	m.Attr.Size = uint64(len(data))
	m.Attr.MTime = time.Now().UnixNano()
	mk, err := s.sealMetaKVs(m)
	if err != nil {
		return err
	}
	kvs = append(kvs, mk...)
	s.cache.Delete(ckMeta + s.metaKey(m.Attr.Inode))
	return s.store.BatchPut(kvs)
}

// Append implements vfs.FS.
func (s *Session) Append(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if m.Attr.Kind != types.KindFile {
		return types.ErrIsDir
	}
	if !s.triplet(m).CanWrite() {
		return types.ErrPermission
	}
	bs := uint64(s.blockSize)
	firstDirty := uint32(m.Attr.Size / bs)
	tailOff := uint64(firstDirty) * bs
	var tail []byte
	if m.Attr.Size > tailOff {
		key := s.blockKey(m.Attr.Inode, firstDirty)
		var pt []byte
		if v, ok := s.cache.Get(ckBlock + key); ok {
			pt = v.([]byte)
		} else {
			blob, err := s.store.Get(wire.NSData, key)
			if err != nil {
				return err
			}
			if pt, err = s.openData(m, blockAAD(m.Attr.Inode, firstDirty), blob); err != nil {
				return err
			}
		}
		tail = append(tail, pt...)
	}
	tail = append(tail, data...)

	var kvs []wire.KV
	for i := 0; i < len(tail); i += int(bs) {
		hi := i + int(bs)
		if hi > len(tail) {
			hi = len(tail)
		}
		idx := firstDirty + uint32(i/int(bs))
		key := s.blockKey(m.Attr.Inode, idx)
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: key,
			Val: s.sealData(m, blockAAD(m.Attr.Inode, idx), tail[i:hi])})
		pt := make([]byte, hi-i)
		copy(pt, tail[i:hi])
		s.cache.Put(ckBlock+key, pt, int64(hi-i))
	}
	m.Attr.Size += uint64(len(data))
	m.Attr.MTime = time.Now().UnixNano()
	mk, err := s.sealMetaKVs(m)
	if err != nil {
		return err
	}
	kvs = append(kvs, mk...)
	s.cache.Delete(ckMeta + s.metaKey(m.Attr.Inode))
	return s.store.BatchPut(kvs)
}

// Chmod implements vfs.FS (owner-only, like the Sharoes client; baselines
// re-encrypt nothing — they have no revocation story, one of the gaps the
// paper calls out in related work).
func (s *Session) Chmod(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if m.Attr.Owner != s.user.ID {
		return types.ErrPermission
	}
	m.Attr.Perm = perm
	kvs, err := s.sealMetaKVs(m)
	if err != nil {
		return err
	}
	s.cache.Delete(ckMeta + s.metaKey(m.Attr.Inode))
	return s.store.BatchPut(kvs)
}

// Chown implements vfs.FS.
func (s *Session) Chown(path string, owner types.UserID, group types.GroupID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if m.Attr.Owner != s.user.ID {
		return types.ErrPermission
	}
	if owner != "" {
		m.Attr.Owner = owner
	}
	if group != "" {
		m.Attr.Group = group
	}
	kvs, err := s.sealMetaKVs(m)
	if err != nil {
		return err
	}
	s.cache.Delete(ckMeta + s.metaKey(m.Attr.Inode))
	return s.store.BatchPut(kvs)
}

// Remove implements vfs.FS.
func (s *Session) Remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	p, base, err := s.resolveParent(path)
	if err != nil {
		return err
	}
	pt := s.triplet(p)
	if !pt.CanWrite() || !pt.CanExec() {
		return types.ErrPermission
	}
	m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if m.Attr.Kind == types.KindDir {
		ct, err := s.fetchTable(m)
		if err != nil {
			return err
		}
		if len(ct.entries) > 0 {
			return types.ErrNotEmpty
		}
	}
	t, err := s.fetchTable(p)
	if err != nil {
		return err
	}
	delete(t.entries, base)
	//sharoes-vet:allow unverified NO-ENC baseline write-through of unauthenticated table by design
	kvs := []wire.KV{s.tableKV(p, t)}
	kvs = append(kvs, s.deleteMetaKVs(m.Attr.Inode)...)
	items, err := s.store.List(wire.NSData, s.filePrefix(m.Attr.Inode))
	if err != nil {
		return err
	}
	for _, it := range items {
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: it.Key, Delete: true})
	}
	kvs = append(kvs, wire.KV{NS: wire.NSData, Key: s.tableKey(m.Attr.Inode), Delete: true})
	s.cache.Delete(ckMeta + s.metaKey(m.Attr.Inode))
	s.cache.Delete(ckTable + s.tableKey(m.Attr.Inode))
	s.cache.DeletePrefix(ckBlock + s.filePrefix(m.Attr.Inode))
	return s.store.BatchPut(kvs)
}

// Rename implements vfs.FS.
func (s *Session) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.rec.AddOp()
	op, oldBase, err := s.resolveParent(oldPath)
	if err != nil {
		return err
	}
	np, newBase, err := s.resolveParent(newPath)
	if err != nil {
		return err
	}
	for _, d := range []*bMeta{op, np} {
		t := s.triplet(d)
		if !t.CanWrite() || !t.CanExec() {
			return types.ErrPermission
		}
	}
	ot, err := s.fetchTable(op)
	if err != nil {
		return err
	}
	ino, ok := ot.entries[oldBase]
	if !ok {
		return types.ErrNotExist
	}
	nt := ot
	if op.Attr.Inode != np.Attr.Inode {
		if nt, err = s.fetchTable(np); err != nil {
			return err
		}
	}
	if _, ok := nt.entries[newBase]; ok {
		return types.ErrExist
	}
	delete(ot.entries, oldBase)
	nt.entries[newBase] = ino
	//sharoes-vet:allow unverified NO-ENC baseline write-through of unauthenticated table by design
	kvs := []wire.KV{s.tableKV(op, ot)}
	if op.Attr.Inode != np.Attr.Inode {
		//sharoes-vet:allow unverified NO-ENC baseline write-through of unauthenticated table by design
		kvs = append(kvs, s.tableKV(np, nt))
	}
	return s.store.BatchPut(kvs)
}
