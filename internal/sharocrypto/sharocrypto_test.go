package sharocrypto

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// testPrivateKey is shared across tests because RSA keygen is slow.
var (
	testKeyOnce sync.Once
	testKey     PrivateKey
)

func rsaTestKey(t testing.TB) PrivateKey {
	testKeyOnce.Do(func() {
		var err error
		testKey, err = NewPrivateKey()
		if err != nil {
			t.Fatal(err)
		}
	})
	return testKey
}

func TestSymSealOpenRoundTrip(t *testing.T) {
	k := NewSymKey()
	for _, msg := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("sharoes"), 1000)} {
		blob := k.Seal(msg, []byte("aad"))
		got, err := k.Open(blob, []byte("aad"))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("round trip mismatch: %d bytes in, %d out", len(msg), len(got))
		}
	}
}

func TestSymSealDistinctNonces(t *testing.T) {
	k := NewSymKey()
	a := k.Seal([]byte("same"), nil)
	b := k.Seal([]byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Error("two seals of the same plaintext produced identical ciphertext")
	}
}

func TestSymOpenRejectsWrongKey(t *testing.T) {
	k1, k2 := NewSymKey(), NewSymKey()
	blob := k1.Seal([]byte("secret"), nil)
	if _, err := k2.Open(blob, nil); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong key: err = %v, want ErrDecrypt", err)
	}
}

func TestSymOpenRejectsWrongAAD(t *testing.T) {
	k := NewSymKey()
	blob := k.Seal([]byte("secret"), []byte("inode:7"))
	if _, err := k.Open(blob, []byte("inode:8")); !errors.Is(err, ErrDecrypt) {
		t.Errorf("wrong aad: err = %v, want ErrDecrypt", err)
	}
}

func TestSymOpenRejectsTamper(t *testing.T) {
	k := NewSymKey()
	blob := k.Seal([]byte("secret data block"), nil)
	for _, i := range []int{0, gcmNonceSize, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x01
		if _, err := k.Open(mut, nil); !errors.Is(err, ErrDecrypt) {
			t.Errorf("tamper at %d: err = %v, want ErrDecrypt", i, err)
		}
	}
	if _, err := k.Open(blob[:5], nil); !errors.Is(err, ErrShortBlob) {
		t.Errorf("short blob: err = %v, want ErrShortBlob", err)
	}
}

func TestSymSealOverhead(t *testing.T) {
	k := NewSymKey()
	msg := make([]byte, 1234)
	if got := len(k.Seal(msg, nil)); got != len(msg)+SealOverhead {
		t.Errorf("overhead = %d, want %d", got-len(msg), SealOverhead)
	}
}

func TestSymKeyProperty(t *testing.T) {
	k := NewSymKey()
	f := func(msg, aad []byte) bool {
		got, err := k.Open(k.Seal(msg, aad), aad)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymKeyFromBytes(t *testing.T) {
	k := NewSymKey()
	k2, err := SymKeyFromBytes(k[:])
	if err != nil {
		t.Fatal(err)
	}
	if k != k2 {
		t.Error("round trip mismatch")
	}
	if _, err := SymKeyFromBytes(k[:10]); !errors.Is(err, ErrKeySize) {
		t.Errorf("short key err = %v", err)
	}
}

func TestSymKeyIsZero(t *testing.T) {
	var z SymKey
	if !z.IsZero() {
		t.Error("zero key not IsZero")
	}
	if NewSymKey().IsZero() {
		t.Error("random key IsZero")
	}
}

func TestSymKeyEqual(t *testing.T) {
	k := NewSymKey()
	same, err := SymKeyFromBytes(k[:])
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(same) {
		t.Error("identical keys not Equal")
	}
	if !k.Equal(k) {
		t.Error("key not Equal to itself")
	}
	if k.Equal(NewSymKey()) {
		t.Error("distinct keys Equal")
	}
	// A single flipped bit must break equality (the constant-time compare
	// covers every byte).
	for i := 0; i < SymKeySize; i++ {
		flipped := k
		flipped[i] ^= 1
		if k.Equal(flipped) {
			t.Fatalf("key Equal after flipping byte %d", i)
		}
	}
	var z SymKey
	if !z.Equal(SymKey{}) {
		t.Error("zero keys not Equal")
	}
}

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	k := NewSymKey()
	a := k.Derive("alice")
	b := k.Derive("alice")
	c := k.Derive("bob")
	if !a.Equal(b) {
		t.Error("Derive not deterministic")
	}
	if a.Equal(c) {
		t.Error("Derive collision for distinct labels")
	}
	if a.Equal(k) {
		t.Error("Derive returned base key")
	}
	if NewSymKey().Derive("alice").Equal(a) {
		t.Error("Derive ignores base key")
	}
}

func TestNameTagDistinctFromDerive(t *testing.T) {
	k := NewSymKey()
	tag := k.NameTag("file-a")
	if tag == k.NameTag("file-b") {
		t.Error("NameTag collision")
	}
	if tag != k.NameTag("file-a") {
		t.Error("NameTag not deterministic")
	}
	d := k.Derive("file-a")
	tagKey, err := SymKeyFromBytes(tag[:SymKeySize])
	if err != nil {
		t.Fatal(err)
	}
	if tagKey.Equal(d) {
		t.Error("NameTag and Derive share a keystream")
	}
}

func TestSigningRoundTrip(t *testing.T) {
	sk, vk := NewSigningPair()
	msg := []byte("directory table v3")
	sig := sk.Sign(msg)
	if err := vk.Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := vk.Verify([]byte("directory table v4"), sig); !errors.Is(err, ErrBadSig) {
		t.Errorf("forged msg: err = %v, want ErrBadSig", err)
	}
	_, vk2 := NewSigningPair()
	if err := vk2.Verify(msg, sig); !errors.Is(err, ErrBadSig) {
		t.Errorf("wrong verifier: err = %v, want ErrBadSig", err)
	}
}

func TestSigningMarshal(t *testing.T) {
	sk, vk := NewSigningPair()
	sk2, err := SignKeyFromBytes(sk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	vk2, err := VerifyKeyFromBytes(vk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("metadata object")
	if err := vk2.Verify(sk2.Sign(msg), nil); err == nil {
		t.Error("verify of nil sig succeeded")
	}
	if err := vk2.Verify(msg, sk2.Sign(msg)); err != nil {
		t.Errorf("round-tripped keys fail to verify: %v", err)
	}
	if !sk.VerifyKey().Equal(vk) {
		t.Error("VerifyKey() does not match pair")
	}
	if _, err := SignKeyFromBytes([]byte("short")); err == nil {
		t.Error("short sign key accepted")
	}
	if _, err := VerifyKeyFromBytes([]byte("short")); err == nil {
		t.Error("short verify key accepted")
	}
}

func TestZeroKeysBehave(t *testing.T) {
	var sk SignKey
	var vk VerifyKey
	if !sk.IsZero() || !vk.IsZero() {
		t.Fatal("zero values not IsZero")
	}
	if sk.Marshal() != nil || vk.Marshal() != nil {
		t.Error("zero keys marshal to non-nil")
	}
	if err := vk.Verify([]byte("m"), make([]byte, SigSize)); !errors.Is(err, ErrBadSig) {
		t.Errorf("zero verify key: err = %v", err)
	}
}

func TestRSASealOpen(t *testing.T) {
	priv := rsaTestKey(t)
	pub := priv.Public()
	msg := bytes.Repeat([]byte("superblock"), 100) // larger than one RSA block
	blob, err := pub.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := priv.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("round trip mismatch")
	}
	// Tampering with the wrapped key or body must fail.
	for _, i := range []int{0, rsaCipherLen + 3, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 1
		if _, err := priv.Open(mut); err == nil {
			t.Errorf("tamper at %d accepted", i)
		}
	}
	if _, err := priv.Open(blob[:10]); !errors.Is(err, ErrShortBlob) {
		t.Errorf("short blob err = %v", err)
	}
}

func TestRSAChunkedRoundTrip(t *testing.T) {
	priv := rsaTestKey(t)
	pub := priv.Public()
	for _, n := range []int{0, 1, rsaChunk, rsaChunk + 1, 3*rsaChunk + 17} {
		msg := bytes.Repeat([]byte{0xA7}, n)
		blob, err := pub.SealChunked(msg)
		if err != nil {
			t.Fatal(err)
		}
		wantChunks := (n + rsaChunk - 1) / rsaChunk
		if wantChunks == 0 {
			wantChunks = 1
		}
		if len(blob) != wantChunks*rsaCipherLen {
			t.Errorf("n=%d: blob len %d, want %d", n, len(blob), wantChunks*rsaCipherLen)
		}
		got, err := priv.OpenChunked(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
	if _, err := priv.OpenChunked([]byte("not a multiple")); !errors.Is(err, ErrShortBlob) {
		t.Errorf("misaligned blob err = %v", err)
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	priv := rsaTestKey(t)
	priv2, err := PrivateKeyFromBytes(priv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := PublicKeyFromBytes(priv.Public().Marshal())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := pub2.Seal([]byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := priv2.Open(blob); err != nil || string(got) != "hi" {
		t.Errorf("round-tripped keys broken: %v %q", err, got)
	}
	if priv.Public().Fingerprint() != pub2.Fingerprint() {
		t.Error("fingerprint mismatch after round trip")
	}
	if _, err := PrivateKeyFromBytes([]byte("junk")); err == nil {
		t.Error("junk private key accepted")
	}
	if _, err := PublicKeyFromBytes([]byte("junk")); err == nil {
		t.Error("junk public key accepted")
	}
}

func TestContentHash(t *testing.T) {
	a := ContentHash([]byte("block 1"))
	b := ContentHash([]byte("block 2"))
	if a == b {
		t.Error("hash collision")
	}
	if a != ContentHash([]byte("block 1")) {
		t.Error("hash not deterministic")
	}
}

func BenchmarkSymSeal1K(b *testing.B) {
	k := NewSymKey()
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		k.Seal(msg, nil)
	}
}

func BenchmarkSymOpen1K(b *testing.B) {
	k := NewSymKey()
	blob := k.Seal(make([]byte, 1024), nil)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		if _, err := k.Open(blob, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	sk, _ := NewSigningPair()
	msg := make([]byte, 256)
	for i := 0; i < b.N; i++ {
		sk.Sign(msg)
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	sk, vk := NewSigningPair()
	msg := make([]byte, 256)
	sig := sk.Sign(msg)
	for i := 0; i < b.N; i++ {
		if err := vk.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAOpenHybrid(b *testing.B) {
	priv := rsaTestKey(b)
	blob, err := priv.Public().Seal(make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.Open(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAOpenChunked512(b *testing.B) {
	priv := rsaTestKey(b)
	blob, err := priv.Public().SealChunked(make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := priv.OpenChunked(blob); err != nil {
			b.Fatal(err)
		}
	}
}
