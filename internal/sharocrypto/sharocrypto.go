// Package sharocrypto provides the cryptographic substrate of Sharoes.
//
// Key families, following the paper's terminology:
//
//   - DEK/MEK: 128-bit symmetric keys (AES-128-GCM here) used to encrypt
//     data blocks and metadata objects. GCM supplies the confidentiality of
//     the paper's AES plus ciphertext integrity.
//   - DSK/DVK and MSK/MVK: asymmetric signing/verification key pairs that
//     distinguish writers from readers. The paper uses ESIGN for speed; we
//     use Ed25519, the stdlib's fast-signature scheme of the same niche.
//   - User/group keys: 2048-bit RSA pairs (the paper's choice), used for the
//     one-time superblock unseal at mount time, split-point indirection and
//     group key distribution. The PUBLIC baseline additionally uses chunked
//     RSA over whole metadata objects, reproducing the expensive per-chunk
//     private-key operations the paper measures.
//   - Name-derived row keys: HMAC-SHA256 of an entry name under the
//     directory's DEK, implementing the exec-only CAP ("a keyed hash
//     function like MD5 or SHA1" in the paper, modern instance).
package sharocrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
)

// SymKeySize is the size of a symmetric key in bytes (128-bit AES).
const SymKeySize = 16

// Errors returned by this package.
var (
	ErrDecrypt   = errors.New("sharocrypto: decryption failed")
	ErrBadSig    = errors.New("sharocrypto: signature verification failed")
	ErrShortBlob = errors.New("sharocrypto: ciphertext too short")
	ErrKeySize   = errors.New("sharocrypto: bad key size")
)

// SymKey is a 128-bit symmetric encryption key (a DEK or MEK).
type SymKey [SymKeySize]byte

// NewSymKey generates a fresh random symmetric key.
func NewSymKey() SymKey {
	var k SymKey
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		panic("sharocrypto: entropy unavailable: " + err.Error())
	}
	return k
}

// SymKeyFromBytes builds a key from b, which must be SymKeySize long.
func SymKeyFromBytes(b []byte) (SymKey, error) {
	var k SymKey
	if len(b) != SymKeySize {
		return k, fmt.Errorf("%w: got %d want %d", ErrKeySize, len(b), SymKeySize)
	}
	copy(k[:], b)
	return k, nil
}

// IsZero reports whether the key is all zero (the "inaccessible" value).
func (k SymKey) IsZero() bool {
	var z SymKey
	return k.Equal(z)
}

// Equal reports whether two symmetric keys are identical, in constant
// time. Always use this (never == or bytes.Equal) to compare key
// material: a short-circuiting comparison leaks the length of the
// matching prefix through timing.
func (k SymKey) Equal(o SymKey) bool {
	return subtle.ConstantTimeCompare(k[:], o[:]) == 1
}

const gcmNonceSize = 12

// Seal encrypts plaintext under k with AES-128-GCM, binding aad as
// additional authenticated data. The random nonce is prepended.
func (k SymKey) Seal(plaintext, aad []byte) []byte {
	aead := k.aead()
	out := make([]byte, gcmNonceSize, gcmNonceSize+len(plaintext)+aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, out[:gcmNonceSize]); err != nil {
		panic("sharocrypto: entropy unavailable: " + err.Error())
	}
	return aead.Seal(out, out[:gcmNonceSize], plaintext, aad)
}

// Open decrypts a blob produced by Seal with the same key and aad.
func (k SymKey) Open(blob, aad []byte) ([]byte, error) {
	if len(blob) < gcmNonceSize {
		return nil, ErrShortBlob
	}
	aead := k.aead()
	pt, err := aead.Open(nil, blob[:gcmNonceSize], blob[gcmNonceSize:], aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SealOverhead is the ciphertext expansion of Seal in bytes.
const SealOverhead = gcmNonceSize + 16

func (k SymKey) aead() cipher.AEAD {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic("sharocrypto: " + err.Error()) // impossible: key size is fixed
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic("sharocrypto: " + err.Error())
	}
	return aead
}

// Derive deterministically derives a sub-key from k for the given label,
// using HMAC-SHA256. It implements both the exec-only CAP's name-derived
// row keys (label = entry name) and per-variant MEK derivation from an
// object's metadata key seed (label = CAP identifier).
func (k SymKey) Derive(label string) SymKey {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte(label))
	sum := mac.Sum(nil)
	var out SymKey
	copy(out[:], sum[:SymKeySize])
	return out
}

// NameTag computes a deterministic lookup tag for an entry name under the
// directory's key. Exec-only directory tables are indexed by this tag so a
// client that knows a name can find (and decrypt) its row without being
// able to list the table.
func (k SymKey) NameTag(name string) [32]byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte("tag\x00"))
	mac.Write([]byte(name))
	var tag [32]byte
	copy(tag[:], mac.Sum(nil))
	return tag
}

// SignKey is a signing key (a DSK or MSK). Holding it makes a principal a
// writer (DSK) or owner (MSK) of the associated object.
type SignKey struct{ priv ed25519.PrivateKey }

// VerifyKey is the matching verification key (a DVK or MVK), distributed to
// every reader so that unauthorized writes — by users or by the SSP itself —
// are detected.
type VerifyKey struct{ pub ed25519.PublicKey }

// SigSize is the size of a signature in bytes.
const SigSize = ed25519.SignatureSize

// SignKeySeedSize is the serialized size of a SignKey.
const SignKeySeedSize = ed25519.SeedSize

// VerifyKeySize is the serialized size of a VerifyKey.
const VerifyKeySize = ed25519.PublicKeySize

// NewSigningPair generates a fresh signing/verification key pair.
func NewSigningPair() (SignKey, VerifyKey) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		panic("sharocrypto: entropy unavailable: " + err.Error())
	}
	return SignKey{priv: priv}, VerifyKey{pub: pub}
}

// Sign signs msg. Per the paper, writers sign the hash of the content they
// upload; ed25519 hashes internally.
func (s SignKey) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// Verify checks sig over msg.
func (v VerifyKey) Verify(msg, sig []byte) error {
	if len(v.pub) != ed25519.PublicKeySize || !ed25519.Verify(v.pub, msg, sig) {
		return ErrBadSig
	}
	return nil
}

// VerifyKey returns the verification key matching s.
func (s SignKey) VerifyKey() VerifyKey {
	return VerifyKey{pub: s.priv.Public().(ed25519.PublicKey)}
}

// IsZero reports whether the key is unset (the "inaccessible" value).
func (s SignKey) IsZero() bool { return len(s.priv) == 0 }

// IsZero reports whether the key is unset.
func (v VerifyKey) IsZero() bool { return len(v.pub) == 0 }

// Marshal serializes the signing key as its 32-byte seed.
func (s SignKey) Marshal() []byte {
	if s.IsZero() {
		return nil
	}
	out := make([]byte, SignKeySeedSize)
	copy(out, s.priv.Seed())
	return out
}

// SignKeyFromBytes rebuilds a signing key from its seed.
func SignKeyFromBytes(b []byte) (SignKey, error) {
	if len(b) != SignKeySeedSize {
		return SignKey{}, fmt.Errorf("%w: sign key seed %d", ErrKeySize, len(b))
	}
	return SignKey{priv: ed25519.NewKeyFromSeed(b)}, nil
}

// Marshal serializes the verification key.
func (v VerifyKey) Marshal() []byte {
	if v.IsZero() {
		return nil
	}
	out := make([]byte, VerifyKeySize)
	copy(out, v.pub)
	return out
}

// VerifyKeyFromBytes rebuilds a verification key.
func VerifyKeyFromBytes(b []byte) (VerifyKey, error) {
	if len(b) != VerifyKeySize {
		return VerifyKey{}, fmt.Errorf("%w: verify key %d", ErrKeySize, len(b))
	}
	pub := make(ed25519.PublicKey, VerifyKeySize)
	copy(pub, b)
	return VerifyKey{pub: pub}, nil
}

// Equal reports whether two verification keys are the same.
func (v VerifyKey) Equal(o VerifyKey) bool { return v.pub.Equal(o.pub) }

// RSABits is the modulus size of user and group keys (the paper's choice,
// from NIST SP 800-78).
const RSABits = 2048

// PrivateKey is a principal's RSA private key — the one key a Sharoes user
// must manage themselves; everything else is distributed in-band.
type PrivateKey struct{ key *rsa.PrivateKey }

// PublicKey is the matching public key, assumed to be known to all users
// (PKI or identity-based encryption, per the paper).
type PublicKey struct{ key *rsa.PublicKey }

// NewPrivateKey generates a fresh RSA-2048 key pair.
func NewPrivateKey() (PrivateKey, error) {
	key, err := rsa.GenerateKey(rand.Reader, RSABits)
	if err != nil {
		return PrivateKey{}, fmt.Errorf("sharocrypto: rsa keygen: %w", err)
	}
	return PrivateKey{key: key}, nil
}

// Public returns the public half.
func (p PrivateKey) Public() PublicKey { return PublicKey{key: &p.key.PublicKey} }

// IsZero reports whether the key is unset.
func (p PrivateKey) IsZero() bool { return p.key == nil }

// IsZero reports whether the key is unset.
func (p PublicKey) IsZero() bool { return p.key == nil }

// Marshal serializes the private key (PKCS#1).
func (p PrivateKey) Marshal() []byte { return x509.MarshalPKCS1PrivateKey(p.key) }

// PrivateKeyFromBytes parses a key serialized by Marshal.
func PrivateKeyFromBytes(b []byte) (PrivateKey, error) {
	key, err := x509.ParsePKCS1PrivateKey(b)
	if err != nil {
		return PrivateKey{}, fmt.Errorf("sharocrypto: parse private key: %w", err)
	}
	return PrivateKey{key: key}, nil
}

// Marshal serializes the public key (PKCS#1).
func (p PublicKey) Marshal() []byte { return x509.MarshalPKCS1PublicKey(p.key) }

// PublicKeyFromBytes parses a key serialized by Marshal.
func PublicKeyFromBytes(b []byte) (PublicKey, error) {
	key, err := x509.ParsePKCS1PublicKey(b)
	if err != nil {
		return PublicKey{}, fmt.Errorf("sharocrypto: parse public key: %w", err)
	}
	return PublicKey{key: key}, nil
}

// Fingerprint returns a short stable identifier for the public key.
func (p PublicKey) Fingerprint() [32]byte { return sha256.Sum256(p.Marshal()) }

var oaepLabel = []byte("sharoes-v1")

// rsaChunk is the maximum OAEP plaintext per RSA-2048 operation.
const rsaChunk = RSABits/8 - 2*sha256.Size - 2 // 190 bytes

// rsaCipherLen is the ciphertext length of one RSA-2048 operation.
const rsaCipherLen = RSABits / 8

// Seal hybrid-encrypts msg to the public key: a fresh symmetric key is
// RSA-OAEP-wrapped and the body sealed under it. Exactly one public-key
// operation to seal and one private-key operation to open — this is the
// cost profile of the superblock unseal at mount time and of the PUB-OPT
// baseline's metadata key wrapping.
func (p PublicKey) Seal(msg []byte) ([]byte, error) {
	body := NewSymKey()
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, p.key, body[:], oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("sharocrypto: rsa seal: %w", err)
	}
	out := make([]byte, 0, len(wrapped)+len(msg)+SealOverhead)
	out = append(out, wrapped...)
	out = append(out, body.Seal(msg, oaepLabel)...)
	return out, nil
}

// Open decrypts a blob produced by PublicKey.Seal.
func (p PrivateKey) Open(blob []byte) ([]byte, error) {
	if len(blob) < rsaCipherLen {
		return nil, ErrShortBlob
	}
	keyBytes, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, p.key, blob[:rsaCipherLen], oaepLabel)
	if err != nil {
		return nil, ErrDecrypt
	}
	body, err := SymKeyFromBytes(keyBytes)
	if err != nil {
		return nil, ErrDecrypt
	}
	return body.Open(blob[rsaCipherLen:], oaepLabel)
}

// SealChunked encrypts msg entirely with RSA-OAEP, one public-key operation
// per 190-byte chunk. This is deliberately the expensive construction: it
// reproduces the PUBLIC baseline of the paper (SiRiUS/SNAD-style whole-
// metadata public-key encryption), whose per-chunk private-key decryptions
// make the Create-and-List "list" phase prohibitively slow.
func (p PublicKey) SealChunked(msg []byte) ([]byte, error) {
	n := (len(msg) + rsaChunk - 1) / rsaChunk
	if n == 0 {
		n = 1
	}
	out := make([]byte, 0, n*rsaCipherLen)
	for i := 0; i < n; i++ {
		lo := i * rsaChunk
		hi := lo + rsaChunk
		if hi > len(msg) {
			hi = len(msg)
		}
		ct, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, p.key, msg[lo:hi], oaepLabel)
		if err != nil {
			return nil, fmt.Errorf("sharocrypto: rsa chunk seal: %w", err)
		}
		out = append(out, ct...)
	}
	return out, nil
}

// OpenChunked decrypts a blob produced by SealChunked, one private-key
// operation per chunk.
func (p PrivateKey) OpenChunked(blob []byte) ([]byte, error) {
	if len(blob) == 0 || len(blob)%rsaCipherLen != 0 {
		return nil, ErrShortBlob
	}
	out := make([]byte, 0, len(blob)/rsaCipherLen*rsaChunk)
	for off := 0; off < len(blob); off += rsaCipherLen {
		pt, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, p.key, blob[off:off+rsaCipherLen], oaepLabel)
		if err != nil {
			return nil, ErrDecrypt
		}
		out = append(out, pt...)
	}
	return out, nil
}

// ContentHash returns the SHA-256 digest of content; writers sign this hash.
func ContentHash(content []byte) [32]byte { return sha256.Sum256(content) }
