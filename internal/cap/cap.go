// Package cap implements Cryptographic Access control Primitives — the
// core contribution of the Sharoes paper (§III).
//
// A CAP replicates one *nix permission setting in the outsourced storage
// model by choosing which key fields of a metadata object are accessible
// and how the directory-table columns are encrypted:
//
//	directories              files
//	---------  -----------   ---------  ----------
//	---        zero          ---        zero
//	r--        read          r--        read
//	rw-        ≡ read        r-x        ≡ read
//	r-x        read-exec     rw-        read-write
//	rwx        rw-exec       rwx        ≡ read-write
//	--x        exec-only     -w-,-wx    unsupported
//	-w-        ≡ zero        --x        unsupported
//	-wx        unsupported
//
// The exec-only CAP is the most interesting: the directory table is
// decryptable (DEK accessible) but the name column is hidden, and each
// row's (inode, MEK, MVK) is encrypted under a key derived from the entry
// name with a keyed hash — so a user who knows a name can "cd" to it but
// cannot "ls".
package cap

import (
	"errors"
	"fmt"

	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

// Class enumerates the distinct CAPs. Aliased permissions (e.g. rw- on a
// directory behaving as r--) collapse onto one class, which is what bounds
// the number of metadata replicas per object in Scheme-2.
type Class uint8

// CAP classes.
const (
	DirZero Class = iota + 1
	DirRead
	DirReadExec
	DirReadWriteExec
	DirExecOnly
	FileZero
	FileRead
	FileReadWrite
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case DirZero:
		return "dir:zero"
	case DirRead:
		return "dir:read"
	case DirReadExec:
		return "dir:read-exec"
	case DirReadWriteExec:
		return "dir:read-write-exec"
	case DirExecOnly:
		return "dir:exec-only"
	case FileZero:
		return "file:zero"
	case FileRead:
		return "file:read"
	case FileReadWrite:
		return "file:read-write"
	default:
		return fmt.Sprintf("cap(%d)", uint8(c))
	}
}

// ErrUnsupported wraps types.ErrUnsupportedPerm with the triplet involved.
var ErrUnsupported = types.ErrUnsupportedPerm

// ForDir maps a directory permission triplet onto its CAP class.
// Unsupported combinations (write-exec without read) fail closed to
// DirZero and return an error so that policy-setting paths can reject them.
func ForDir(t types.Triplet) (Class, error) {
	switch {
	case t.CanRead() && t.CanWrite() && t.CanExec():
		return DirReadWriteExec, nil
	case t.CanRead() && t.CanExec():
		return DirReadExec, nil
	case t.CanRead():
		// r-- and rw-: write is inert without exec (paper §III-A).
		return DirRead, nil
	case t.CanExec() && !t.CanWrite():
		return DirExecOnly, nil
	case t.CanExec() && t.CanWrite():
		// -wx: symmetric DEKs make writers able to read, so this cannot
		// be enforced cryptographically (paper §III-A, found in zero
		// directories across two real enterprises).
		return DirZero, fmt.Errorf("%w: directory -wx", ErrUnsupported)
	case t.CanWrite():
		// -w-: write without exec is inert; same CAP as zero.
		return DirZero, nil
	default:
		return DirZero, nil
	}
}

// ForFile maps a file permission triplet onto its CAP class. Write-only
// (symmetric DEK) and exec-only (execution implies reading plaintext) are
// unsupported, per the paper (§III-B).
func ForFile(t types.Triplet) (Class, error) {
	switch {
	case t.CanRead() && t.CanWrite():
		return FileReadWrite, nil
	case t.CanRead():
		// r-- and r-x: once decrypted the client can execute it.
		return FileRead, nil
	case t.CanWrite():
		return FileZero, fmt.Errorf("%w: file write-only", ErrUnsupported)
	case t.CanExec():
		return FileZero, fmt.Errorf("%w: file exec-only", ErrUnsupported)
	default:
		return FileZero, nil
	}
}

// For maps a triplet for the given object kind.
func For(kind types.ObjKind, t types.Triplet) (Class, error) {
	if kind == types.KindDir {
		return ForDir(t)
	}
	return ForFile(t)
}

// ValidatePerm rejects permission settings containing any unsupported
// triplet for the object kind. chmod, create and the migration tool all
// call this before installing a permission.
func ValidatePerm(kind types.ObjKind, p types.Perm) error {
	for _, c := range []types.Class{types.ClassOwner, types.ClassGroup, types.ClassOther} {
		if _, err := For(kind, p.TripletFor(c)); err != nil {
			return fmt.Errorf("%v triplet %s: %w", c, p.TripletFor(c), err)
		}
	}
	return nil
}

// Capability queries on a class.

// CanList reports whether the CAP permits listing directory entry names.
func (c Class) CanList() bool {
	return c == DirRead || c == DirReadExec || c == DirReadWriteExec
}

// CanTraverse reports whether the CAP permits descending through the
// directory to children.
func (c Class) CanTraverse() bool {
	return c == DirReadExec || c == DirReadWriteExec || c == DirExecOnly
}

// CanModifyDir reports whether the CAP permits adding and removing entries.
func (c Class) CanModifyDir() bool { return c == DirReadWriteExec }

// CanReadData reports whether the CAP permits reading file content.
func (c Class) CanReadData() bool { return c == FileRead || c == FileReadWrite }

// CanWriteData reports whether the CAP permits writing file content.
func (c Class) CanWriteData() bool { return c == FileReadWrite }

// IsDir reports whether the class applies to directories.
func (c Class) IsDir() bool { return c >= DirZero && c <= DirExecOnly }

// ID identifies one CAP variant of an object: the class plus whether this
// is the owner's copy (owner copies additionally carry the MSK and the
// metadata key seed, letting owners re-key and re-permission the object).
type ID struct {
	Class Class
	Owner bool
}

// Variant returns the stable variant identifier used in storage keys,
// directory-table rows and MEK derivation.
func (id ID) Variant() string {
	if id.Owner {
		return fmt.Sprintf("c%do", uint8(id.Class))
	}
	return fmt.Sprintf("c%d", uint8(id.Class))
}

// ParseVariant inverts Variant.
func ParseVariant(s string) (ID, error) {
	var c uint8
	var id ID
	if len(s) < 2 || s[0] != 'c' {
		return id, fmt.Errorf("cap: bad variant %q", s)
	}
	body := s[1:]
	if body[len(body)-1] == 'o' {
		id.Owner = true
		body = body[:len(body)-1]
	}
	if _, err := fmt.Sscanf(body, "%d", &c); err != nil {
		return id, fmt.Errorf("cap: bad variant %q", s)
	}
	id.Class = Class(c)
	if id.Class < DirZero || id.Class > FileReadWrite {
		return id, fmt.Errorf("cap: bad variant class %q", s)
	}
	return id, nil
}

// IDFor computes the CAP variant that a principal of the given accessor
// class receives under permission p. Unsupported triplets fail closed to
// the zero CAP (error discarded here; policy paths validate separately).
func IDFor(kind types.ObjKind, p types.Perm, class types.Class) ID {
	c, _ := For(kind, p.TripletFor(class))
	return ID{Class: c, Owner: class == types.ClassOwner}
}

// IDs returns the distinct CAP variants an object with permission p
// requires: one per accessor class, deduplicated (group and other classes
// sharing a triplet share a variant — the storage saving of Scheme-2).
// The owner variant is always distinct because it carries owner keys.
func IDs(kind types.ObjKind, p types.Perm) []ID {
	owner := IDFor(kind, p, types.ClassOwner)
	group := IDFor(kind, p, types.ClassGroup)
	other := IDFor(kind, p, types.ClassOther)
	out := []ID{owner, group}
	if other != group {
		out = append(out, other)
	}
	return out
}

// ErrNoKeys reports an access attempt whose CAP withholds the needed keys.
var ErrNoKeys = errors.New("cap: keys not accessible in this CAP")

// tableKeyLabel derives the per-variant directory-table key label.
func tableKeyLabel(variant string) string { return "table|" + variant }

// TableKey derives the DEKthis for one variant's view of a directory table
// from the directory's data seed. Distinct variants get distinct keys so a
// names-only reader cannot fetch and decrypt the full view.
func TableKey(m *meta.Metadata, variant string) sharocrypto.SymKey {
	return m.Keys.DataSeed.Derive(tableKeyLabel(variant))
}

// Filter produces the CAP view of a full metadata object: attributes stay
// visible (stat works for anyone holding the variant MEK), key fields are
// included or withheld per the CAP design of Figures 4 and 5.
//
// full must carry the complete key set (creator/owner knowledge).
//
// Owner variants carry the complete key set regardless of the owner's own
// triplet: an owner can always chmod to grant themselves access, so
// withholding keys from the owner protects nothing, while holding them is
// what makes re-keying (revocation) and re-permissioning possible without
// out-of-band key escrow. The client still enforces the owner's triplet as
// policy, exactly as a local filesystem does.
func Filter(full *meta.Metadata, id ID, variant string) *meta.Metadata {
	out := &meta.Metadata{Attr: full.Attr}
	if id.Owner {
		out.Keys = full.Keys
		if id.Class.IsDir() {
			// The DEK slot of a directory variant always holds that
			// variant's derived table key.
			out.Keys.DEK = TableKey(full, variant)
		}
		return out
	}
	switch id.Class {
	case DirRead, DirReadExec, DirExecOnly:
		out.Keys.DEK = TableKey(full, variant)
		out.Keys.DVK = full.Keys.DVK
	case DirReadWriteExec:
		out.Keys.DEK = TableKey(full, variant)
		out.Keys.DVK = full.Keys.DVK
		out.Keys.DSK = full.Keys.DSK
		out.Keys.DataSeed = full.Keys.DataSeed
	case FileRead:
		out.Keys.DEK = full.Keys.DEK
		out.Keys.DVK = full.Keys.DVK
	case FileReadWrite:
		out.Keys.DEK = full.Keys.DEK
		out.Keys.DVK = full.Keys.DVK
		out.Keys.DSK = full.Keys.DSK
	case DirZero, FileZero:
		// no keys
	}
	return out
}

// MEKFor derives the MEK of one variant from the object's metadata seed.
// Knowing the seed (owner knowledge) is knowing every variant's MEK, which
// is what lets owners rewrite all CAP copies on chmod and chown.
func MEKFor(metaSeed sharocrypto.SymKey, variant string) sharocrypto.SymKey {
	return metaSeed.Derive("mek|" + variant)
}
