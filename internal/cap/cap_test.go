package cap

import (
	"errors"
	"testing"

	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

func tr(s string) types.Triplet {
	var t types.Triplet
	if s[0] == 'r' {
		t |= types.TripletRead
	}
	if s[1] == 'w' {
		t |= types.TripletWrite
	}
	if s[2] == 'x' {
		t |= types.TripletExec
	}
	return t
}

// TestForDirMapping checks every directory triplet against Figure 4.
func TestForDirMapping(t *testing.T) {
	cases := []struct {
		trip    string
		want    Class
		wantErr bool
	}{
		{"---", DirZero, false},
		{"r--", DirRead, false},
		{"rw-", DirRead, false}, // same CAP as read: write inert without exec
		{"r-x", DirReadExec, false},
		{"rwx", DirReadWriteExec, false},
		{"-w-", DirZero, false}, // same CAP as zero
		{"--x", DirExecOnly, false},
		{"-wx", DirZero, true}, // unsupported, fails closed
	}
	for _, c := range cases {
		got, err := ForDir(tr(c.trip))
		if got != c.want {
			t.Errorf("ForDir(%s) = %v, want %v", c.trip, got, c.want)
		}
		if (err != nil) != c.wantErr {
			t.Errorf("ForDir(%s) err = %v", c.trip, err)
		}
		if err != nil && !errors.Is(err, types.ErrUnsupportedPerm) {
			t.Errorf("ForDir(%s) err not ErrUnsupportedPerm: %v", c.trip, err)
		}
	}
}

// TestForFileMapping checks every file triplet against Figure 5.
func TestForFileMapping(t *testing.T) {
	cases := []struct {
		trip    string
		want    Class
		wantErr bool
	}{
		{"---", FileZero, false},
		{"r--", FileRead, false},
		{"r-x", FileRead, false}, // same CAP as read
		{"rw-", FileReadWrite, false},
		{"rwx", FileReadWrite, false}, // same CAP as read-write
		{"-w-", FileZero, true},       // symmetric DEK: writers can read
		{"-wx", FileZero, true},
		{"--x", FileZero, true}, // execution implies reading plaintext
	}
	for _, c := range cases {
		got, err := ForFile(tr(c.trip))
		if got != c.want {
			t.Errorf("ForFile(%s) = %v, want %v", c.trip, got, c.want)
		}
		if (err != nil) != c.wantErr {
			t.Errorf("ForFile(%s) err = %v", c.trip, err)
		}
	}
}

func TestValidatePerm(t *testing.T) {
	ok := []struct {
		kind types.ObjKind
		perm string
	}{
		{types.KindDir, "755"}, {types.KindDir, "751"}, {types.KindDir, "700"},
		{types.KindDir, "711"}, {types.KindDir, "444"}, {types.KindDir, "000"},
		{types.KindFile, "644"}, {types.KindFile, "600"}, {types.KindFile, "755"},
		{types.KindFile, "000"}, {types.KindFile, "440"},
	}
	for _, c := range ok {
		p, _ := types.ParsePerm(c.perm)
		if err := ValidatePerm(c.kind, p); err != nil {
			t.Errorf("ValidatePerm(%v, %s) = %v, want nil", c.kind, c.perm, err)
		}
	}
	bad := []struct {
		kind types.ObjKind
		perm string
	}{
		{types.KindDir, "753"},  // other = -wx
		{types.KindDir, "735"},  // group = -wx
		{types.KindFile, "642"}, // other = -w-
		{types.KindFile, "641"}, // other = --x
		{types.KindFile, "264"}, // owner = -w-
	}
	for _, c := range bad {
		p, _ := types.ParsePerm(c.perm)
		if err := ValidatePerm(c.kind, p); !errors.Is(err, types.ErrUnsupportedPerm) {
			t.Errorf("ValidatePerm(%v, %s) = %v, want ErrUnsupportedPerm", c.kind, c.perm, err)
		}
	}
}

func TestCapabilityQueries(t *testing.T) {
	if !DirRead.CanList() || DirRead.CanTraverse() || DirRead.CanModifyDir() {
		t.Error("DirRead queries wrong")
	}
	if !DirReadExec.CanList() || !DirReadExec.CanTraverse() || DirReadExec.CanModifyDir() {
		t.Error("DirReadExec queries wrong")
	}
	if !DirReadWriteExec.CanList() || !DirReadWriteExec.CanTraverse() || !DirReadWriteExec.CanModifyDir() {
		t.Error("DirReadWriteExec queries wrong")
	}
	if DirExecOnly.CanList() || !DirExecOnly.CanTraverse() || DirExecOnly.CanModifyDir() {
		t.Error("DirExecOnly queries wrong")
	}
	if DirZero.CanList() || DirZero.CanTraverse() {
		t.Error("DirZero queries wrong")
	}
	if !FileRead.CanReadData() || FileRead.CanWriteData() {
		t.Error("FileRead queries wrong")
	}
	if !FileReadWrite.CanReadData() || !FileReadWrite.CanWriteData() {
		t.Error("FileReadWrite queries wrong")
	}
	if FileZero.CanReadData() || FileZero.CanWriteData() {
		t.Error("FileZero queries wrong")
	}
	for _, c := range []Class{DirZero, DirRead, DirReadExec, DirReadWriteExec, DirExecOnly} {
		if !c.IsDir() {
			t.Errorf("%v.IsDir() = false", c)
		}
	}
	for _, c := range []Class{FileZero, FileRead, FileReadWrite} {
		if c.IsDir() {
			t.Errorf("%v.IsDir() = true", c)
		}
	}
}

func TestVariantRoundTrip(t *testing.T) {
	seen := make(map[string]bool)
	for _, class := range []Class{DirZero, DirRead, DirReadExec, DirReadWriteExec, DirExecOnly, FileZero, FileRead, FileReadWrite} {
		for _, owner := range []bool{false, true} {
			id := ID{Class: class, Owner: owner}
			v := id.Variant()
			if seen[v] {
				t.Errorf("variant collision: %q", v)
			}
			seen[v] = true
			got, err := ParseVariant(v)
			if err != nil {
				t.Fatalf("ParseVariant(%q): %v", v, err)
			}
			if got != id {
				t.Errorf("ParseVariant(%q) = %+v, want %+v", v, got, id)
			}
		}
	}
	for _, bad := range []string{"", "c", "x3", "c99", "c0", "cxo"} {
		if _, err := ParseVariant(bad); err == nil {
			t.Errorf("ParseVariant(%q) succeeded", bad)
		}
	}
}

func TestIDForAndIDs(t *testing.T) {
	p, _ := types.ParsePerm("751") // owner rwx, group r-x, other --x
	if id := IDFor(types.KindDir, p, types.ClassOwner); id.Class != DirReadWriteExec || !id.Owner {
		t.Errorf("owner id = %+v", id)
	}
	if id := IDFor(types.KindDir, p, types.ClassGroup); id.Class != DirReadExec || id.Owner {
		t.Errorf("group id = %+v", id)
	}
	if id := IDFor(types.KindDir, p, types.ClassOther); id.Class != DirExecOnly {
		t.Errorf("other id = %+v", id)
	}
	ids := IDs(types.KindDir, p)
	if len(ids) != 3 {
		t.Errorf("IDs(751) = %v", ids)
	}

	// Group and other sharing a triplet share a variant: that is the
	// Scheme-2 saving (≤ number of distinct CAPs, not number of users).
	p2, _ := types.ParsePerm("755")
	ids2 := IDs(types.KindDir, p2)
	if len(ids2) != 2 {
		t.Errorf("IDs(755) = %v, want 2 variants (owner + shared r-x)", ids2)
	}

	// Owner variant is distinct even when triplets all match.
	p3, _ := types.ParsePerm("777")
	ids3 := IDs(types.KindDir, p3)
	if len(ids3) != 2 {
		t.Errorf("IDs(777) = %v", ids3)
	}
	if !ids3[0].Owner || ids3[1].Owner {
		t.Errorf("IDs(777) owner placement: %v", ids3)
	}
}

func fullDirMeta(t *testing.T) *testMetaBundle {
	t.Helper()
	return newTestMeta(t, types.KindDir, "755")
}

func TestFilterDirClasses(t *testing.T) {
	b := fullDirMeta(t)
	m := b.full

	zero := Filter(m, ID{Class: DirZero}, ID{Class: DirZero}.Variant())
	if !zero.Keys.DEK.IsZero() || !zero.Keys.DVK.IsZero() || !zero.Keys.DSK.IsZero() ||
		!zero.Keys.MSK.IsZero() || !zero.Keys.DataSeed.IsZero() || !zero.Keys.MetaSeed.IsZero() {
		t.Error("DirZero leaked keys")
	}
	if !meta.AttrEqual(zero.Attr, m.Attr) {
		t.Error("DirZero lost attributes")
	}

	read := Filter(m, ID{Class: DirRead}, ID{Class: DirRead}.Variant())
	if read.Keys.DEK.IsZero() || read.Keys.DVK.IsZero() {
		t.Error("DirRead missing DEK/DVK")
	}
	if !read.Keys.DSK.IsZero() || !read.Keys.DataSeed.IsZero() || !read.Keys.MSK.IsZero() {
		t.Error("DirRead leaked write/owner keys")
	}

	rx := Filter(m, ID{Class: DirReadExec}, ID{Class: DirReadExec}.Variant())
	if rx.Keys.DEK.IsZero() || rx.Keys.DVK.IsZero() || !rx.Keys.DSK.IsZero() {
		t.Error("DirReadExec keys wrong")
	}

	rwx := Filter(m, ID{Class: DirReadWriteExec}, ID{Class: DirReadWriteExec}.Variant())
	if rwx.Keys.DEK.IsZero() || rwx.Keys.DVK.IsZero() || rwx.Keys.DSK.IsZero() || rwx.Keys.DataSeed.IsZero() {
		t.Error("DirReadWriteExec missing write keys")
	}
	if !rwx.Keys.MSK.IsZero() || !rwx.Keys.MetaSeed.IsZero() {
		t.Error("non-owner rwx leaked owner keys")
	}

	execOnly := Filter(m, ID{Class: DirExecOnly}, ID{Class: DirExecOnly}.Variant())
	if execOnly.Keys.DEK.IsZero() || execOnly.Keys.DVK.IsZero() || !execOnly.Keys.DSK.IsZero() {
		t.Error("DirExecOnly keys wrong")
	}

	// Distinct variants get distinct derived table DEKs.
	if read.Keys.DEK.Equal(rx.Keys.DEK) || rx.Keys.DEK.Equal(execOnly.Keys.DEK) {
		t.Error("variant table keys not distinct")
	}

	owner := Filter(m, ID{Class: DirReadWriteExec, Owner: true}, ID{Class: DirReadWriteExec, Owner: true}.Variant())
	if owner.Keys.MSK.IsZero() || owner.Keys.MetaSeed.IsZero() || owner.Keys.DataSeed.IsZero() {
		t.Error("owner variant missing owner keys")
	}
	// Owners hold the full key set even under a restrictive own-triplet
	// (they can always chmod themselves back in); enforcement of the
	// owner triplet is client policy.
	ownerZero := Filter(m, ID{Class: DirZero, Owner: true}, ID{Class: DirZero, Owner: true}.Variant())
	if ownerZero.Keys.MSK.IsZero() || ownerZero.Keys.DEK.IsZero() || ownerZero.Keys.DataSeed.IsZero() {
		t.Error("restricted owner variant lost re-keying ability")
	}
}

func TestFilterFileClasses(t *testing.T) {
	b := newTestMeta(t, types.KindFile, "644")
	m := b.full

	zero := Filter(m, ID{Class: FileZero}, ID{Class: FileZero}.Variant())
	if !zero.Keys.DEK.IsZero() {
		t.Error("FileZero leaked DEK")
	}
	read := Filter(m, ID{Class: FileRead}, ID{Class: FileRead}.Variant())
	if read.Keys.DEK != m.Keys.DEK || read.Keys.DVK.IsZero() || !read.Keys.DSK.IsZero() {
		t.Error("FileRead keys wrong")
	}
	rw := Filter(m, ID{Class: FileReadWrite}, ID{Class: FileReadWrite}.Variant())
	if rw.Keys.DEK != m.Keys.DEK || rw.Keys.DSK.IsZero() {
		t.Error("FileReadWrite keys wrong")
	}
	if !rw.Keys.MSK.IsZero() {
		t.Error("non-owner rw leaked MSK")
	}
	owner := Filter(m, ID{Class: FileReadWrite, Owner: true}, ID{Class: FileReadWrite, Owner: true}.Variant())
	if owner.Keys.MSK.IsZero() || owner.Keys.MetaSeed.IsZero() {
		t.Error("file owner variant missing owner keys")
	}
}

func TestMEKForDistinct(t *testing.T) {
	seed := sharocrypto.NewSymKey()
	a := MEKFor(seed, "c4o")
	b := MEKFor(seed, "c3")
	if a == b {
		t.Error("MEKs collide across variants")
	}
	if a != MEKFor(seed, "c4o") {
		t.Error("MEK derivation not deterministic")
	}
	if MEKFor(sharocrypto.NewSymKey(), "c4o") == a {
		t.Error("MEK ignores seed")
	}
}
