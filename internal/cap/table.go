package cap

import (
	"fmt"
	"sort"

	"github.com/sharoes/sharoes/internal/binenc"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

// view kinds on the wire.
const (
	viewFull  = 1 // all four columns (read-exec, read-write-exec)
	viewNames = 2 // name column only (read, read-write)
	viewExec  = 3 // name-keyed encrypted rows (exec-only)
)

// SealTableView produces the sealed view of a directory table for one CAP
// variant. dirFull must be the directory's full metadata (creator/writer
// knowledge: DataSeed and DSK present).
//
//   - read CAPs see only the name column;
//   - read-exec and read-write-exec CAPs see all columns;
//   - the exec-only CAP sees rows encrypted under keys derived from each
//     entry's name (paper §III-A), indexed by a keyed-hash tag;
//   - zero CAPs store the full view sealed under a derived key their
//     holders never receive: opaque today, but ready to serve its rows
//     the moment the owner relaxes the permission (chmod does not need
//     to reconstruct other owners' child keys).
//
// The view plaintext is sealed with the variant's derived table key and
// signed with the directory's DSK.
func SealTableView(table *meta.DirTable, dirFull *meta.Metadata, id ID, variant string) ([]byte, error) {
	if dirFull.Keys.DataSeed.IsZero() || dirFull.Keys.DSK.IsZero() {
		return nil, fmt.Errorf("cap: seal table view: %w", ErrNoKeys)
	}
	tkey := TableKey(dirFull, variant)
	var plain []byte
	switch {
	case id.Class == DirExecOnly && !id.Owner:
		plain = encodeExecView(table, tkey)
	case id.Class.CanList() && id.Class.CanTraverse(), id.Owner:
		// Owners keep the full view regardless of their own triplet so
		// that re-permissioning can rebuild every view.
		plain = encodeFullView(table)
	case id.Class.CanList():
		plain = encodeNamesView(table)
	case id.Class == DirExecOnly:
		plain = encodeExecView(table, tkey)
	default:
		// Zero CAP: full rows, sealed under a key its holders lack.
		plain = encodeFullView(table)
	}
	aad := meta.TableAAD(dirFull.Attr.Inode, variant)
	return meta.SealSigned(tkey, dirFull.Keys.DSK, aad, plain), nil
}

func encodeFullView(t *meta.DirTable) []byte {
	var w binenc.Writer
	w.Byte(viewFull)
	w.BytesField(t.Encode())
	return w.Bytes()
}

func encodeNamesView(t *meta.DirTable) []byte {
	var w binenc.Writer
	w.Byte(viewNames)
	w.Uvarint(uint64(t.Len()))
	for _, name := range t.Names() {
		w.String(name)
	}
	return w.Bytes()
}

// encodeExecView encrypts each row under a key derived from its name, and
// indexes rows by a keyed-hash tag of the name. Rows are sorted by tag so
// the encoding leaks no name ordering.
func encodeExecView(t *meta.DirTable, tkey sharocrypto.SymKey) []byte {
	type row struct {
		tag    [32]byte
		sealed []byte
	}
	rows := make([]row, 0, t.Len())
	for i := range t.Entries {
		e := &t.Entries[i]
		rowKey := tkey.Derive("row|" + e.Name)
		var body binenc.Writer
		body.Uvarint(uint64(e.Inode))
		body.String(e.Variant)
		body.Bool(e.Split)
		if !e.Split {
			body.Raw(e.MEK[:])
			body.BytesField(e.MVK.Marshal())
		}
		tag := tkey.NameTag(e.Name)
		rows = append(rows, row{tag: tag, sealed: rowKey.Seal(body.Bytes(), tag[:])})
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i].tag {
			if rows[i].tag[k] != rows[j].tag[k] {
				return rows[i].tag[k] < rows[j].tag[k]
			}
		}
		return false
	})
	var w binenc.Writer
	w.Byte(viewExec)
	w.Uvarint(uint64(len(rows)))
	for _, r := range rows {
		w.Raw(r.tag[:])
		w.BytesField(r.sealed)
	}
	return w.Bytes()
}

// View is a decrypted directory-table view. What it exposes depends on the
// CAP it was sealed for.
type View struct {
	tkey  sharocrypto.SymKey
	names []string            // viewNames
	full  *meta.DirTable      // viewFull
	exec  map[[32]byte][]byte // viewExec: tag → sealed row
}

// OpenView verifies and decrypts a sealed table view. tkey is the DEKthis
// from the caller's metadata variant; dvk the directory's DVK. The view
// self-describes its shape; which shape the caller can decrypt is
// determined by which derived table key their CAP granted them.
func OpenView(variant string, tkey sharocrypto.SymKey, dvk sharocrypto.VerifyKey, ino types.Inode, blob []byte) (*View, error) {
	aad := meta.TableAAD(ino, variant)
	plain, err := meta.OpenVerified(tkey, dvk, aad, blob)
	if err != nil {
		return nil, err
	}
	r := binenc.NewReader(plain)
	kind, err := r.Byte()
	if err != nil {
		return nil, badView(err)
	}
	v := &View{tkey: tkey}
	switch kind {
	case viewFull:
		raw, err := r.BytesField()
		if err != nil {
			return nil, badView(err)
		}
		if v.full, err = meta.DecodeTable(raw); err != nil {
			return nil, badView(err)
		}
	case viewNames:
		n, err := r.Uvarint()
		if err != nil {
			return nil, badView(err)
		}
		if n > uint64(r.Remaining()) {
			return nil, badView(fmt.Errorf("absurd name count %d", n))
		}
		v.names = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			name, err := r.String()
			if err != nil {
				return nil, badView(err)
			}
			v.names = append(v.names, name)
		}
	case viewExec:
		n, err := r.Uvarint()
		if err != nil {
			return nil, badView(err)
		}
		if n > uint64(r.Remaining()) {
			return nil, badView(fmt.Errorf("absurd row count %d", n))
		}
		v.exec = make(map[[32]byte][]byte, n)
		for i := uint64(0); i < n; i++ {
			tagRaw, err := r.Raw(32)
			if err != nil {
				return nil, badView(err)
			}
			var tag [32]byte
			copy(tag[:], tagRaw)
			sealed, err := r.BytesField()
			if err != nil {
				return nil, badView(err)
			}
			v.exec[tag] = append([]byte(nil), sealed...)
		}
	default:
		return nil, badView(fmt.Errorf("unknown view kind %d", kind))
	}
	return v, nil
}

func badView(err error) error { return fmt.Errorf("%w: view: %w", meta.ErrBadEncoding, err) }

// Names lists the entry names — the "ls" operation. It fails with
// ErrNoKeys for exec-only views, whose whole point is hiding names.
func (v *View) Names() ([]string, error) {
	switch {
	case v.full != nil:
		return v.full.Names(), nil
	case v.names != nil:
		return v.names, nil
	default:
		return nil, fmt.Errorf("cap: list names: %w", ErrNoKeys)
	}
}

// Lookup resolves an entry by name — the traversal operation. Name-only
// views cannot traverse (read permission without exec); exec-only views
// derive the row key from the queried name.
func (v *View) Lookup(name string) (*meta.DirEntry, error) {
	switch {
	case v.full != nil:
		return v.full.Lookup(name)
	case v.exec != nil:
		tag := v.tkey.NameTag(name)
		sealed, ok := v.exec[tag]
		if !ok {
			return nil, fmt.Errorf("%w: %q", meta.ErrNoEntry, name)
		}
		rowKey := v.tkey.Derive("row|" + name)
		body, err := rowKey.Open(sealed, tag[:])
		if err != nil {
			return nil, fmt.Errorf("%w: row for %q", types.ErrTampered, name)
		}
		r := binenc.NewReader(body)
		e := meta.DirEntry{Name: name}
		ino, err := r.Uvarint()
		if err != nil {
			return nil, badView(err)
		}
		e.Inode = types.Inode(ino)
		if e.Variant, err = r.String(); err != nil {
			return nil, badView(err)
		}
		if e.Split, err = r.Bool(); err != nil {
			return nil, badView(err)
		}
		if !e.Split {
			raw, err := r.Raw(sharocrypto.SymKeySize)
			if err != nil {
				return nil, badView(err)
			}
			copy(e.MEK[:], raw)
			mvkRaw, err := r.BytesField()
			if err != nil {
				return nil, badView(err)
			}
			if len(mvkRaw) > 0 {
				if e.MVK, err = sharocrypto.VerifyKeyFromBytes(mvkRaw); err != nil {
					return nil, badView(err)
				}
			}
		}
		return &e, nil
	default:
		return nil, fmt.Errorf("cap: traverse: %w", ErrNoKeys)
	}
}

// Full returns the underlying table when all columns are visible (writer
// views); ErrNoKeys otherwise.
func (v *View) Full() (*meta.DirTable, error) {
	if v.full == nil {
		return nil, fmt.Errorf("cap: full table: %w", ErrNoKeys)
	}
	return v.full, nil
}

// Len returns the number of entries visible in the view.
func (v *View) Len() int {
	switch {
	case v.full != nil:
		return v.full.Len()
	case v.names != nil:
		return len(v.names)
	default:
		return len(v.exec)
	}
}

// NewFullView wraps an already-known table as a full (writer) view — used
// to refresh a writer's own view cache after it re-encrypts the table,
// without a wasted fetch-and-decrypt round trip. The view takes ownership
// of t.
func NewFullView(t *meta.DirTable) *View { return &View{full: t} }

// EmptyView returns the view of an empty directory table for the given
// CAP, used when a directory legitimately has no stored view yet.
func EmptyView(id ID) *View {
	switch {
	case id.Owner, id.Class.CanList() && id.Class.CanTraverse():
		return &View{full: &meta.DirTable{}}
	case id.Class.CanList():
		return &View{names: []string{}}
	default:
		return &View{exec: map[[32]byte][]byte{}}
	}
}

// Reconstruct rebuilds the logical directory table underlying the view.
// Full views reconstruct exactly; names-only views yield name-only rows
// (all a names view ever stores); exec-only views are reassembled row by
// row from the supplied name list, which a directory writer obtains from
// their own full view.
func (v *View) Reconstruct(names []string) (*meta.DirTable, error) {
	switch {
	case v.full != nil:
		return v.full.Clone(), nil
	case v.names != nil:
		t := &meta.DirTable{}
		for _, name := range v.names {
			if err := t.Insert(meta.DirEntry{Name: name}); err != nil {
				return nil, err
			}
		}
		return t, nil
	default:
		t := &meta.DirTable{}
		for _, name := range names {
			e, err := v.Lookup(name)
			if err != nil {
				// A name the writer knows that is absent from this view
				// indicates view skew; surface it.
				return nil, fmt.Errorf("cap: reconstruct: %q: %w", name, err)
			}
			if err := t.Insert(*e); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
}
