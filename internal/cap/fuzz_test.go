package cap

import (
	"bytes"
	"errors"
	"testing"

	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

// fuzzDir builds a deterministic directory metadata object with full
// owner keys, so sealing is reproducible across fuzz runs.
func fuzzDir(tb testing.TB) *meta.Metadata {
	seed, err := sharocrypto.SymKeyFromBytes(bytes.Repeat([]byte{0x5a}, sharocrypto.SymKeySize))
	if err != nil {
		tb.Fatal(err)
	}
	sk, err := sharocrypto.SignKeyFromBytes(bytes.Repeat([]byte{0x2b}, sharocrypto.SignKeySeedSize))
	if err != nil {
		tb.Fatal(err)
	}
	return &meta.Metadata{
		Attr: meta.Attr{Inode: 7, Kind: types.KindDir, Owner: "alice", Group: "eng", Perm: 0o750},
		Keys: meta.KeySet{
			DEK: seed.Derive("dek"), DataSeed: seed,
			DVK: sk.VerifyKey(), DSK: sk,
		},
	}
}

// FuzzOpenView exercises the sealed directory-view codec. Random blobs
// must be rejected by authentication; to reach the parser behind it, the
// fuzz input is also sealed under the real table key and fed through —
// so arbitrary bytes flow through every view-kind branch. Accepted views
// must then survive Names/Lookup without panicking.
func FuzzOpenView(f *testing.F) {
	dir := fuzzDir(f)
	const variant = "u/alice"
	tab := &meta.DirTable{Entries: []meta.DirEntry{
		{Name: "doc.txt", Inode: 11, Variant: "u/alice", MEK: dir.Keys.DEK, MVK: dir.Keys.DVK},
		{Name: "src", Inode: 12, Split: true},
	}}
	for _, id := range []ID{
		{Class: DirReadWriteExec, Owner: true},
		{Class: DirRead},
		{Class: DirExecOnly},
	} {
		blob, err := SealTableView(tab, dir, id, variant)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte("not a sealed view at all"))

	tkey := TableKey(dir, variant)
	dvk := dir.Keys.DVK
	ino := dir.Attr.Inode

	f.Fuzz(func(t *testing.T, b []byte) {
		// Arbitrary blob straight at the authenticated opener: anything
		// not produced by SealSigned under our keys must fail cleanly.
		if v, err := OpenView(variant, tkey, dvk, ino, b); err == nil {
			exerciseView(t, v)
		}

		// Same bytes as view *plaintext*, sealed under the real keys:
		// this drives the parser behind authentication with hostile
		// input, the case a compromised writer key would produce.
		sealed := meta.SealSigned(tkey, dir.Keys.DSK, meta.TableAAD(ino, variant), b)
		v, err := OpenView(variant, tkey, dvk, ino, sealed)
		if err != nil {
			return
		}
		exerciseView(t, v)
	})
}

// exerciseView drives the accessors of an accepted view; none may panic,
// whatever shape the fuzzer talked the parser into.
func exerciseView(t *testing.T, v *View) {
	t.Helper()
	if names, err := v.Names(); err == nil {
		for _, n := range names {
			// Name-only views list without traversing (read permission
			// without exec), so ErrNoKeys is legitimate here; anything
			// else on a listed name is a parser inconsistency.
			if _, err := v.Lookup(n); err != nil && !errors.Is(err, ErrNoKeys) {
				t.Fatalf("listed name %q does not look up: %v", n, err)
			}
		}
	}
	v.Lookup("doc.txt")
	v.Lookup("absent-name")
}
