package cap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

// testMetaBundle bundles a full metadata object and its key material.
type testMetaBundle struct {
	full *meta.Metadata
}

func newTestMeta(t testing.TB, kind types.ObjKind, perm string) *testMetaBundle {
	t.Helper()
	p, err := types.ParsePerm(perm)
	if err != nil {
		t.Fatal(err)
	}
	dsk, dvk := sharocrypto.NewSigningPair()
	msk, _ := sharocrypto.NewSigningPair()
	return &testMetaBundle{full: &meta.Metadata{
		Attr: meta.Attr{Inode: 100, Kind: kind, Owner: "alice", Group: "eng", Perm: p, MTime: 1},
		Keys: meta.KeySet{
			DEK:      sharocrypto.NewSymKey(),
			DataSeed: sharocrypto.NewSymKey(),
			DVK:      dvk,
			DSK:      dsk,
			MSK:      msk,
			MetaSeed: sharocrypto.NewSymKey(),
		},
	}}
}

func testTable(t testing.TB) *meta.DirTable {
	t.Helper()
	_, mvk := sharocrypto.NewSigningPair()
	tbl := &meta.DirTable{}
	entries := []meta.DirEntry{
		{Name: "report.txt", Inode: 201, Variant: "c7", MEK: sharocrypto.NewSymKey(), MVK: mvk},
		{Name: "src", Inode: 202, Variant: "c3", MEK: sharocrypto.NewSymKey(), MVK: mvk},
		{Name: "secret-plan.doc", Inode: 203, Variant: "c7", MEK: sharocrypto.NewSymKey(), MVK: mvk},
	}
	for _, e := range entries {
		if err := tbl.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func sealAndOpen(t *testing.T, tbl *meta.DirTable, b *testMetaBundle, id ID) *View {
	t.Helper()
	blob, err := SealTableView(tbl, b.full, id, id.Variant())
	if err != nil {
		t.Fatal(err)
	}
	filtered := Filter(b.full, id, id.Variant())
	v, err := OpenView(id.Variant(), filtered.Keys.DEK, filtered.Keys.DVK, b.full.Attr.Inode, blob)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestReadViewNamesOnly(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	v := sealAndOpen(t, tbl, b, ID{Class: DirRead})

	names, err := v.Names()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"report.txt", "secret-plan.doc", "src"}) {
		t.Errorf("names = %v", names)
	}
	// Read permission allows "ls" but not "cd": lookup must fail.
	if _, err := v.Lookup("src"); !errors.Is(err, ErrNoKeys) {
		t.Errorf("read-view lookup: %v", err)
	}
	if _, err := v.Full(); !errors.Is(err, ErrNoKeys) {
		t.Errorf("read-view full: %v", err)
	}
	if v.Len() != 3 {
		t.Errorf("len = %d", v.Len())
	}
}

func TestReadExecViewFullAccess(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	v := sealAndOpen(t, tbl, b, ID{Class: DirReadExec})

	names, err := v.Names()
	if err != nil || len(names) != 3 {
		t.Fatalf("names = %v, %v", names, err)
	}
	e, err := v.Lookup("src")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tbl.Lookup("src")
	if e.Inode != want.Inode || e.MEK != want.MEK || !e.MVK.Equal(want.MVK) || e.Variant != want.Variant {
		t.Errorf("entry = %+v, want %+v", e, want)
	}
	if _, err := v.Full(); err != nil {
		t.Errorf("rx view full: %v", err)
	}
}

func TestExecOnlyView(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	v := sealAndOpen(t, tbl, b, ID{Class: DirExecOnly})

	// "ls" must fail.
	if _, err := v.Names(); !errors.Is(err, ErrNoKeys) {
		t.Errorf("exec-only names: %v", err)
	}
	// "cd known-name" must work and return the right keys.
	e, err := v.Lookup("secret-plan.doc")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tbl.Lookup("secret-plan.doc")
	if e.Inode != want.Inode || e.MEK != want.MEK || !e.MVK.Equal(want.MVK) {
		t.Errorf("entry = %+v, want %+v", e, want)
	}
	// Unknown names are indistinguishable from absent ones.
	if _, err := v.Lookup("no-such-name"); !errors.Is(err, meta.ErrNoEntry) {
		t.Errorf("unknown name: %v", err)
	}
	if v.Len() != 3 {
		t.Errorf("len = %d", v.Len())
	}
}

// TestExecOnlyViewHidesNames verifies the sealed exec-only view plaintext
// does not contain entry names: the name column is cryptographically
// removed, not just elided from the API.
func TestExecOnlyViewHidesNames(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	id := ID{Class: DirExecOnly}
	blob, err := SealTableView(tbl, b.full, id, id.Variant())
	if err != nil {
		t.Fatal(err)
	}
	// Decrypt the outer envelope the way a legitimate exec-only holder
	// would, and scan the plaintext for names.
	filtered := Filter(b.full, id, id.Variant())
	plain, err := meta.OpenVerified(filtered.Keys.DEK, filtered.Keys.DVK,
		meta.TableAAD(b.full.Attr.Inode, id.Variant()), blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"report.txt", "src", "secret-plan.doc"} {
		if bytes.Contains(plain, []byte(name)) {
			t.Errorf("exec-only view plaintext contains name %q", name)
		}
	}
}

func TestViewVariantIsolation(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)

	// Seal the full (rx) view; try to open it with the read variant's key.
	rxID := ID{Class: DirReadExec}
	blob, err := SealTableView(tbl, b.full, rxID, rxID.Variant())
	if err != nil {
		t.Fatal(err)
	}
	readKeys := Filter(b.full, ID{Class: DirRead}, ID{Class: DirRead}.Variant())
	if _, err := OpenView(rxID.Variant(), readKeys.Keys.DEK, readKeys.Keys.DVK, b.full.Attr.Inode, blob); !errors.Is(err, types.ErrTampered) {
		t.Errorf("read-CAP key opened the rx view: %v", err)
	}
}

func TestViewTamperDetection(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	id := ID{Class: DirReadExec}
	blob, err := SealTableView(tbl, b.full, id, id.Variant())
	if err != nil {
		t.Fatal(err)
	}
	filtered := Filter(b.full, id, id.Variant())
	mut := append([]byte(nil), blob...)
	mut[len(mut)/3] ^= 0x10
	if _, err := OpenView(id.Variant(), filtered.Keys.DEK, filtered.Keys.DVK, b.full.Attr.Inode, mut); !errors.Is(err, types.ErrTampered) {
		t.Errorf("tampered view accepted: %v", err)
	}
	// Serving the view under the wrong inode (SSP swap) must fail.
	if _, err := OpenView(id.Variant(), filtered.Keys.DEK, filtered.Keys.DVK, b.full.Attr.Inode+1, blob); !errors.Is(err, types.ErrTampered) {
		t.Errorf("relocated view accepted: %v", err)
	}
}

func TestViewForgeryBySSPRejected(t *testing.T) {
	// A malicious SSP (or a reader) knows the table key of a read-only
	// variant but not the DSK; a view it fabricates must not verify.
	b := fullDirMeta(t)
	tbl := testTable(t)
	id := ID{Class: DirRead}
	filtered := Filter(b.full, id, id.Variant())

	forgerDSK, _ := sharocrypto.NewSigningPair()
	forged := meta.SealSigned(filtered.Keys.DEK, forgerDSK,
		meta.TableAAD(b.full.Attr.Inode, id.Variant()), encodeNamesView(tbl))
	if _, err := OpenView(id.Variant(), filtered.Keys.DEK, filtered.Keys.DVK, b.full.Attr.Inode, forged); !errors.Is(err, types.ErrTampered) {
		t.Errorf("forged view accepted: %v", err)
	}
}

func TestSplitEntriesInViews(t *testing.T) {
	b := fullDirMeta(t)
	tbl := &meta.DirTable{}
	tbl.Insert(meta.DirEntry{Name: "diverged", Inode: 300, Split: true})

	for _, id := range []ID{{Class: DirReadExec}, {Class: DirExecOnly}} {
		v := sealAndOpen(t, tbl, b, id)
		e, err := v.Lookup("diverged")
		if err != nil {
			t.Fatalf("%v: %v", id.Class, err)
		}
		if !e.Split || e.Inode != 300 || !e.MEK.IsZero() {
			t.Errorf("%v: split entry = %+v", id.Class, e)
		}
	}
}

func TestOwnerViewAlwaysFull(t *testing.T) {
	// Even an owner whose own triplet is exec-only keeps the full view so
	// chmod can rebuild everything.
	b := newTestMeta(t, types.KindDir, "111")
	tbl := testTable(t)
	id := ID{Class: DirExecOnly, Owner: true}
	v := sealAndOpen(t, tbl, b, id)
	if _, err := v.Full(); err != nil {
		t.Errorf("owner view not full: %v", err)
	}
}

func TestSealTableViewRequiresWriterKeys(t *testing.T) {
	b := fullDirMeta(t)
	crippled := *b.full
	crippled.Keys.DataSeed = sharocrypto.SymKey{}
	if _, err := SealTableView(testTable(t), &crippled, ID{Class: DirRead}, "c2"); !errors.Is(err, ErrNoKeys) {
		t.Errorf("seal without seed: %v", err)
	}
	crippled = *b.full
	crippled.Keys.DSK = sharocrypto.SignKey{}
	if _, err := SealTableView(testTable(t), &crippled, ID{Class: DirRead}, "c2"); !errors.Is(err, ErrNoKeys) {
		t.Errorf("seal without DSK: %v", err)
	}
}

func TestEmptyTableViews(t *testing.T) {
	b := fullDirMeta(t)
	empty := &meta.DirTable{}
	for _, id := range []ID{{Class: DirRead}, {Class: DirReadExec}, {Class: DirExecOnly}} {
		v := sealAndOpen(t, empty, b, id)
		if v.Len() != 0 {
			t.Errorf("%v: empty table len = %d", id.Class, v.Len())
		}
	}
}

func TestOpenViewGarbage(t *testing.T) {
	b := fullDirMeta(t)
	id := ID{Class: DirReadExec}
	filtered := Filter(b.full, id, id.Variant())
	if _, err := OpenView(id.Variant(), filtered.Keys.DEK, filtered.Keys.DVK, b.full.Attr.Inode, []byte("junk")); err == nil {
		t.Error("garbage view accepted")
	}
}

func BenchmarkSealFullView100(b *testing.B) {
	bundle := newTestMeta(b, types.KindDir, "755")
	_, mvk := sharocrypto.NewSigningPair()
	tbl := &meta.DirTable{}
	for i := 0; i < 100; i++ {
		tbl.Insert(meta.DirEntry{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Inode: types.Inode(i),
			Variant: "c7", MEK: sharocrypto.NewSymKey(), MVK: mvk})
	}
	id := ID{Class: DirReadExec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SealTableView(tbl, bundle.full, id, id.Variant()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealExecView100(b *testing.B) {
	bundle := newTestMeta(b, types.KindDir, "711")
	_, mvk := sharocrypto.NewSigningPair()
	tbl := &meta.DirTable{}
	for i := 0; i < 100; i++ {
		tbl.Insert(meta.DirEntry{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Inode: types.Inode(i),
			Variant: "c7", MEK: sharocrypto.NewSymKey(), MVK: mvk})
	}
	id := ID{Class: DirExecOnly}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SealTableView(tbl, bundle.full, id, id.Variant()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEmptyView(t *testing.T) {
	for _, id := range []ID{
		{Class: DirReadWriteExec}, {Class: DirRead}, {Class: DirExecOnly},
		{Class: DirZero, Owner: true},
	} {
		v := EmptyView(id)
		if v.Len() != 0 {
			t.Errorf("%+v: len = %d", id, v.Len())
		}
	}
	if _, err := EmptyView(ID{Class: DirRead}).Names(); err != nil {
		t.Errorf("empty names view: %v", err)
	}
	if _, err := EmptyView(ID{Class: DirExecOnly}).Lookup("x"); !errors.Is(err, meta.ErrNoEntry) {
		t.Errorf("empty exec view lookup: %v", err)
	}
}

func TestReconstruct(t *testing.T) {
	b := fullDirMeta(t)
	tbl := testTable(t)
	names := tbl.Names()

	// Full view reconstructs exactly.
	vFull := sealAndOpen(t, tbl, b, ID{Class: DirReadExec})
	got, err := vFull.Reconstruct(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("full reconstruct len = %d", got.Len())
	}
	e, _ := got.Lookup("src")
	want, _ := tbl.Lookup("src")
	if e.MEK != want.MEK {
		t.Error("full reconstruct lost keys")
	}
	// Mutating the reconstruction must not affect the view.
	got.Remove("src")
	if vFull.Len() != 3 {
		t.Error("reconstruct aliased view")
	}

	// Names view yields name-only rows.
	vNames := sealAndOpen(t, tbl, b, ID{Class: DirRead})
	got, err = vNames.Reconstruct(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("names reconstruct len = %d", got.Len())
	}
	if e, _ := got.Lookup("src"); !e.MEK.IsZero() {
		t.Error("names reconstruct invented keys")
	}

	// Exec view reassembles from the name list.
	vExec := sealAndOpen(t, tbl, b, ID{Class: DirExecOnly})
	got, err = vExec.Reconstruct(names)
	if err != nil {
		t.Fatal(err)
	}
	e, _ = got.Lookup("secret-plan.doc")
	want, _ = tbl.Lookup("secret-plan.doc")
	if e.Inode != want.Inode || e.MEK != want.MEK {
		t.Error("exec reconstruct mismatch")
	}
	// A bogus name surfaces skew.
	if _, err := vExec.Reconstruct([]string{"ghost"}); err == nil {
		t.Error("reconstruct with unknown name succeeded")
	}
}

// TestViewPropertyRoundTrip: random tables survive every view shape.
func TestViewPropertyRoundTrip(t *testing.T) {
	b := fullDirMeta(t)
	_, mvk := sharocrypto.NewSigningPair()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tbl := &meta.DirTable{}
		n := rng.Intn(20)
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("n%c%d", 'a'+rng.Intn(26), rng.Intn(1000))
			if _, err := tbl.Lookup(name); err == nil {
				continue
			}
			e := meta.DirEntry{Name: name, Inode: types.Inode(rng.Uint64() | 2), Split: rng.Intn(5) == 0}
			if !e.Split {
				// Split rows carry no keys by design; direct rows do.
				e.Variant, e.MEK, e.MVK = "o", sharocrypto.NewSymKey(), mvk
			}
			tbl.Insert(e)
			names = append(names, name)
		}
		for _, id := range []ID{{Class: DirReadExec}, {Class: DirExecOnly}, {Class: DirRead}} {
			v := sealAndOpen(t, tbl, b, id)
			if v.Len() != tbl.Len() {
				t.Fatalf("trial %d %v: len %d != %d", trial, id.Class, v.Len(), tbl.Len())
			}
			if id.Class == DirRead {
				continue
			}
			for _, name := range names {
				got, err := v.Lookup(name)
				if err != nil {
					t.Fatalf("trial %d %v lookup %q: %v", trial, id.Class, name, err)
				}
				want, _ := tbl.Lookup(name)
				if got.Inode != want.Inode || got.MEK != want.MEK || got.Split != want.Split {
					t.Fatalf("trial %d %v: entry mismatch for %q", trial, id.Class, name)
				}
			}
		}
	}
}
