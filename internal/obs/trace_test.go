package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer("client")
	root := tr.Start("client.stat", ClassNone)
	child := tr.Start("resolve", ClassNone)
	leaf := tr.Start("crypto.open-meta", ClassCrypto)
	leaf.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order: leaf, child, root.
	gotLeaf, gotChild, gotRoot := spans[0], spans[1], spans[2]
	if gotRoot.Parent != 0 {
		t.Fatalf("root has parent %d", gotRoot.Parent)
	}
	if gotChild.Parent != gotRoot.ID || gotLeaf.Parent != gotChild.ID {
		t.Fatal("parent chain broken")
	}
	if gotChild.Trace != gotRoot.Trace || gotLeaf.Trace != gotRoot.Trace {
		t.Fatal("trace IDs diverge within one tree")
	}
	for _, sp := range spans {
		if sp.Dur <= 0 {
			t.Fatalf("span %s has duration %v", sp.Name, sp.Dur)
		}
	}

	// A second root opens a fresh trace.
	r2 := tr.Start("client.mkdir", ClassNone)
	r2.End()
	if got := tr.Spans()[3]; got.Trace == gotRoot.Trace {
		t.Fatal("new root reused old trace ID")
	}
}

func TestStartRemoteJoinsTrace(t *testing.T) {
	client := NewTracer("client")
	server := NewTracer("ssp")

	root := client.Start("client.stat", ClassNone)
	tid, sid := client.Current()
	if tid != root.Trace || sid != root.ID {
		t.Fatal("Current does not report the open root")
	}
	remote := server.StartRemote(tid, sid, "ssp.get", ClassNone)
	remote.End()
	root.End()

	ss := server.Spans()
	if len(ss) != 1 {
		t.Fatalf("server spans = %d", len(ss))
	}
	if ss[0].Trace != root.Trace || ss[0].Parent != root.ID {
		t.Fatal("remote span did not join the client trace")
	}
	if ss[0].Proc != "ssp" {
		t.Fatalf("remote span proc = %q", ss[0].Proc)
	}

	// Zero trace ID (untraced peer) must produce no span.
	if sp := server.StartRemote(0, 0, "ssp.get", ClassNone); sp != nil {
		t.Fatal("StartRemote with zero trace returned a span")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", ClassCrypto)
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	sp.Annotate("k", "v") // must not panic
	sp.End()
	if tid, sid := tr.Current(); tid != 0 || sid != 0 {
		t.Fatal("nil tracer Current not zero")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
}

func TestDoubleEndAndAnnotate(t *testing.T) {
	tr := NewTracer("client")
	sp := tr.Start("op", ClassNone)
	sp.Annotate("path", "/a/b")
	sp.End()
	sp.End() // no-op
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
	at := tr.Spans()[0].Attrs()
	if len(at) != 1 || at[0].Key != "path" || at[0].Val != "/a/b" {
		t.Fatalf("attrs = %v", at)
	}
}

func TestSpanLimit(t *testing.T) {
	tr := NewTracer("client")
	tr.limit = 4
	for i := 0; i < 10; i++ {
		tr.Start("op", ClassNone).End()
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestDecompose(t *testing.T) {
	spans := []*Span{
		{Name: "root", Class: ClassNone, Dur: time.Second},
		{Name: "rpc", Class: ClassNetwork, Dur: 300 * time.Millisecond},
		{Name: "rpc", Class: ClassNetwork, Dur: 200 * time.Millisecond},
		{Name: "seal", Class: ClassCrypto, Dur: 50 * time.Millisecond},
	}
	d := Decompose(spans)
	if d[ClassNetwork] != 500*time.Millisecond {
		t.Fatalf("network = %v", d[ClassNetwork])
	}
	if d[ClassCrypto] != 50*time.Millisecond {
		t.Fatalf("crypto = %v", d[ClassCrypto])
	}
	if _, ok := d[ClassNone]; ok {
		t.Fatal("structural spans must not be decomposed")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	client := NewTracer("client")
	server := NewTracer("ssp")
	root := client.Start("client.create", ClassNone)
	rpc := client.Start("rpc.batchput", ClassNetwork)
	rpc.Annotate("bytes_out", "512")
	tid, sid := client.Current()
	remote := server.StartRemote(tid, sid, "ssp.batchput", ClassNone)
	time.Sleep(time.Millisecond)
	remote.End()
	rpc.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, client.Spans(), server.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var meta, complete int
	pids := map[int]bool{}
	tids := map[uint64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			pids[ev.Pid] = true
			tids[ev.Tid] = true
			if ev.Dur <= 0 {
				t.Errorf("event %s has dur %v", ev.Name, ev.Dur)
			}
			if ev.Ts < 0 {
				t.Errorf("event %s has negative ts", ev.Name)
			}
		}
	}
	if meta != 2 {
		t.Fatalf("process metadata events = %d, want 2 (client + ssp)", meta)
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2", len(pids))
	}
	// All three spans belong to one trace → one thread lane.
	if len(tids) != 1 {
		t.Fatalf("distinct tids = %d, want 1", len(tids))
	}
	if v, ok := doc.TraceEvents[2].Args["bytes_out"]; ok && v != "512" {
		t.Fatalf("annotation lost: %v", v)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}
