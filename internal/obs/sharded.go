package obs

import (
	"sync/atomic"
	"unsafe"
)

// numShards is the stripe count of a ShardedInt64. A small power of two:
// enough to spread a handful of concurrent sessions off a single cache
// line without bloating every counter (each shard is one padded line).
const numShards = 8

// cacheLine is the assumed coherence-granule size. 64 bytes covers
// x86-64 and most arm64 parts; being wrong only costs a little false
// sharing, never correctness.
const cacheLine = 64

// paddedInt64 is an atomic.Int64 padded out to its own cache line so
// that adjacent shards never false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ShardedInt64 is a monotonic-cost striped counter: Add touches one of
// numShards cache-line-padded atomics, Load sums them. Writes from
// concurrent goroutines land on (probabilistically) distinct lines, so
// hot-path increments do not serialize on one cache line the way a
// single atomic does. Load is O(numShards) and only loosely consistent
// with concurrent Adds — exactly the trade a metrics counter wants.
//
// The zero value is ready to use.
type ShardedInt64 struct {
	shards [numShards]paddedInt64
}

// shardIndex picks the stripe for the calling goroutine. Go exposes no
// goroutine or P identity, so the index is derived from the address of a
// stack variable: goroutine stacks live in distinct heap allocations, so
// different goroutines hash to different stripes with high probability,
// while correctness never depends on the choice. The shift skips the
// low, always-aligned address bits.
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p >> 9) & (numShards - 1))
}

// Add adds delta to the counter.
func (s *ShardedInt64) Add(delta int64) {
	if s == nil {
		return
	}
	s.shards[shardIndex()].v.Add(delta)
}

// Load returns the sum over all shards.
func (s *ShardedInt64) Load() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for i := range s.shards {
		sum += s.shards[i].v.Load()
	}
	return sum
}

// Reset zeroes every shard. Concurrent Adds may survive a Reset; like
// Load, it is loosely consistent by design.
func (s *ShardedInt64) Reset() {
	if s == nil {
		return
	}
	for i := range s.shards {
		s.shards[i].v.Store(0)
	}
}
