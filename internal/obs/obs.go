// Package obs is the Sharoes observability layer: a stdlib-only metrics
// and tracing subsystem shared by the client filesystem, the SSP server
// and the benchmark harness.
//
// It provides three cooperating mechanisms:
//
//   - a metrics Registry of named sharded counters, gauges and
//     fixed-bucket latency histograms (with p50/p95/p99 estimation),
//     cheap enough for hot paths and safe under -race;
//
//   - hierarchical trace Spans on the monotonic clock, recording each
//     client operation's tree — resolve → CAP unwrap → RPC → crypto —
//     with a Chrome trace_event JSON exporter. A trace ID propagated
//     through the wire protocol lets SSP-side spans join client traces;
//
//   - a CostAccount accumulating time per cost Class. The paper's
//     Figure 13 NETWORK / CRYPTO / OTHER decomposition is a view over
//     the same stopwatches that emit classed spans: internal/stats keeps
//     its Recorder API as a thin adapter over CostAccount.
//
// Every type follows the nil-receiver discipline of internal/stats: a nil
// *Registry, *Tracer, *Span, *Counter, *Gauge, *Histogram or *CostAccount
// discards all measurements, so instrumentation call sites never need nil
// checks and uninstrumented runs pay almost nothing.
//
// Security invariant: span names, annotations and metric names are
// operational labels that may end up in logs, debug endpoints and
// committed benchmark artifacts. Key material must never be routed into
// them — the sharoes-vet keyleak analyzer enforces this statically.
package obs

import "time"

// Class is a cost bucket for classed spans and the CostAccount,
// mirroring the paper's Figure 13 decomposition.
type Class uint8

// Cost classes. ClassNone marks structural spans (operation roots,
// resolve steps) that are not charged to any bucket.
const (
	ClassNone Class = iota
	ClassNetwork
	ClassCrypto
	ClassOther
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNetwork:
		return "NETWORK"
	case ClassCrypto:
		return "CRYPTO"
	case ClassOther:
		return "OTHER"
	default:
		return "NONE"
	}
}

// CostAccount accumulates wall time per cost class plus operation and
// byte counters. It is the substrate behind stats.Recorder and is safe
// for concurrent use; the zero value is ready to use.
type CostAccount struct {
	nanos     [numClasses]ShardedInt64
	ops       ShardedInt64
	cryptoOps ShardedInt64
	bytesOut  ShardedInt64
	bytesIn   ShardedInt64
}

// AddClass charges d to class c. ClassNone is discarded.
func (a *CostAccount) AddClass(c Class, d time.Duration) {
	if a == nil || c == ClassNone || c >= numClasses {
		return
	}
	a.nanos[c].Add(int64(d))
	if c == ClassCrypto {
		a.cryptoOps.Add(1)
	}
}

// Time starts a stopwatch charging class c; call the returned func to
// stop it. Usage: defer a.Time(obs.ClassCrypto)().
func (a *CostAccount) Time(c Class) func() {
	if a == nil {
		return func() {}
	}
	start := time.Now()
	return func() { a.AddClass(c, time.Since(start)) }
}

// AddOp counts one completed filesystem operation.
func (a *CostAccount) AddOp() {
	if a == nil {
		return
	}
	a.ops.Add(1)
}

// AddBytes records wire traffic: out is bytes sent to the SSP, in is
// bytes received from it.
func (a *CostAccount) AddBytes(out, in int) {
	if a == nil {
		return
	}
	a.bytesOut.Add(int64(out))
	a.bytesIn.Add(int64(in))
}

// ClassNanos returns the accumulated time for class c.
func (a *CostAccount) ClassNanos(c Class) int64 {
	if a == nil || c >= numClasses {
		return 0
	}
	return a.nanos[c].Load()
}

// Ops returns the operation count.
func (a *CostAccount) Ops() int64 {
	if a == nil {
		return 0
	}
	return a.ops.Load()
}

// CryptoOps returns the number of timed crypto sections.
func (a *CostAccount) CryptoOps() int64 {
	if a == nil {
		return 0
	}
	return a.cryptoOps.Load()
}

// Bytes returns the wire traffic counters (out, in).
func (a *CostAccount) Bytes() (out, in int64) {
	if a == nil {
		return 0, 0
	}
	return a.bytesOut.Load(), a.bytesIn.Load()
}

// Reset zeroes all counters.
func (a *CostAccount) Reset() {
	if a == nil {
		return
	}
	for i := range a.nanos {
		a.nanos[i].Reset()
	}
	a.ops.Reset()
	a.cryptoOps.Reset()
	a.bytesOut.Reset()
	a.bytesIn.Reset()
}
