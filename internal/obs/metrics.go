package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonic counter backed by a sharded atomic.
type Counter struct {
	v ShardedInt64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous value (e.g. live connections).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- histogram -------------------------------------------------------------

// Histogram bucketing: bucket i covers (upper(i-1), upper(i)] nanoseconds
// with upper(i) = 1µs·2^i, i = 0..numFiniteBuckets-1, spanning 1 µs to
// ~137 s; one final bucket catches overflow. Fixed geometric buckets keep
// Observe allocation-free and branch-cheap, at the price of a bounded
// (≤ 2×) relative quantile error — the right trade for latency telemetry.
const (
	numFiniteBuckets = 28
	numBuckets       = numFiniteBuckets + 1
	bucketBaseNanos  = 1000 // 1 µs
)

// BucketUpperNanos returns the inclusive upper bound of finite bucket i
// in nanoseconds.
func BucketUpperNanos(i int) int64 {
	return bucketBaseNanos << uint(i)
}

// bucketFor returns the bucket index for a duration of n nanoseconds.
func bucketFor(n int64) int {
	if n <= bucketBaseNanos {
		return 0
	}
	for i := 1; i < numFiniteBuckets; i++ {
		if n <= BucketUpperNanos(i) {
			return i
		}
	}
	return numFiniteBuckets // overflow
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     ShardedInt64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.buckets[bucketFor(n)].Add(1)
	h.sum.Add(n)
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, and the mergeable
// value the benchmark harness aggregates across repetitions.
type HistSnapshot struct {
	Count    int64
	SumNanos int64
	Buckets  [numBuckets]int64
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the containing bucket. The overflow bucket is clamped to the
// last finite bound. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == numBuckets-1 {
			if i >= numFiniteBuckets {
				return time.Duration(BucketUpperNanos(numFiniteBuckets - 1))
			}
			lo := int64(0)
			if i > 0 {
				lo = BucketUpperNanos(i - 1)
			}
			hi := BucketUpperNanos(i)
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum = next
	}
	return 0
}

// --- registry --------------------------------------------------------------

// Registry is a named metric namespace. Metric handles are get-or-create
// and stable: hot paths should look a handle up once and cache it. A nil
// *Registry hands out nil handles, whose methods discard everything.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistJSON is the JSON rendering of one histogram.
type HistJSON struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
}

// RegistrySnapshot is a point-in-time copy of every metric, in the shape
// served by the SSP debug endpoint and flushed on shutdown.
type RegistrySnapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistJSON `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistJSON{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		snap.Histograms[name] = HistJSON{
			Count:  s.Count,
			MeanNs: int64(s.Mean()),
			P50Ns:  int64(s.Quantile(0.50)),
			P95Ns:  int64(s.Quantile(0.95)),
			P99Ns:  int64(s.Quantile(0.99)),
		}
	}
	return snap
}

// WriteJSON writes the expvar-style metrics snapshot to w with sorted,
// stable key order (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns all registered metric names, sorted; used by tests and
// the debug endpoint index.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
