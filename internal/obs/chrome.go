package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace_event record. Complete ("X") events carry a
// start timestamp and duration in microseconds; metadata ("M") events
// name processes. The format is consumed by chrome://tracing and
// https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace merges span groups — typically one tracer's client
// spans and one tracer's SSP spans — into a single Chrome trace_event
// JSON document. Each distinct Proc label becomes a process; each trace
// ID becomes a thread lane, so one filesystem operation's client and
// server spans line up on a shared timeline. Timestamps are offsets from
// the earliest span, computed on the monotonic clock.
func WriteChromeTrace(w io.Writer, groups ...[]*Span) error {
	var all []*Span
	for _, g := range groups {
		for _, sp := range g {
			if sp != nil {
				all = append(all, sp)
			}
		}
	}
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if len(all) > 0 {
		base := all[0].Start
		for _, sp := range all[1:] {
			if sp.Start.Before(base) {
				base = sp.Start
			}
		}

		// Stable process numbering by first appearance of the label,
		// then sorted for determinism.
		var procs []string
		seen := map[string]bool{}
		for _, sp := range all {
			if !seen[sp.Proc] {
				seen[sp.Proc] = true
				procs = append(procs, sp.Proc)
			}
		}
		sort.Strings(procs)
		pid := make(map[string]int, len(procs))
		for i, p := range procs {
			pid[p] = i + 1
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: i + 1,
				Args: map[string]any{"name": p},
			})
		}

		for _, sp := range all {
			args := map[string]any{
				"trace":  uint64(sp.Trace),
				"span":   uint64(sp.ID),
				"parent": uint64(sp.Parent),
			}
			for _, at := range sp.Attrs() {
				args[at.Key] = at.Val
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: sp.Name,
				Cat:  sp.Class.String(),
				Ph:   "X",
				Ts:   float64(sp.Start.Sub(base).Nanoseconds()) / 1e3,
				Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
				Pid:  pid[sp.Proc],
				Tid:  uint64(sp.Trace),
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(trace); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}
