package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestRaceRegistry hammers one registry from many goroutines — the
// shape of concurrent client sessions sharing a metrics namespace —
// while a reader snapshots continuously. Run with -race.
func TestRaceRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			var buf bytes.Buffer
			_ = r.WriteJSON(&buf)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops")
			h := r.Histogram("lat.ns")
			g := r.Gauge("live")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				g.Add(1)
				g.Add(-1)
				// Interleave get-or-create with a shared name to stress
				// the registry maps too.
				r.Counter("w").Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	if got := r.Counter("ops").Value(); got != workers*iters {
		t.Fatalf("ops = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat.ns").Snapshot().Count; got != workers*iters {
		t.Fatalf("hist count = %d, want %d", got, workers*iters)
	}
}

// TestRaceCostAccount exercises the sharded counters from concurrent
// goroutines and checks the final sums are exact.
func TestRaceCostAccount(t *testing.T) {
	var a CostAccount
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a.AddClass(ClassNetwork, time.Microsecond)
				a.AddClass(ClassCrypto, time.Microsecond)
				a.AddOp()
				a.AddBytes(1, 2)
			}
		}()
	}
	wg.Wait()
	if got := a.ClassNanos(ClassNetwork); got != int64(workers*iters)*1000 {
		t.Fatalf("network nanos = %d", got)
	}
	if got := a.Ops(); got != workers*iters {
		t.Fatalf("ops = %d", got)
	}
	out, in := a.Bytes()
	if out != workers*iters || in != 2*workers*iters {
		t.Fatalf("bytes = %d/%d", out, in)
	}
}

// TestRaceTracer runs a stacked client tracer and a shared server
// tracer concurrently: sessions serialize their own span stacks, but a
// server tracer receives StartRemote/End from many handler goroutines.
func TestRaceTracer(t *testing.T) {
	server := NewTracer("ssp")
	const handlers = 8
	const iters = 500

	var wg sync.WaitGroup
	for h := 0; h < handlers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			client := NewTracer("client") // one session each
			for i := 0; i < iters; i++ {
				root := client.Start("client.op", ClassNone)
				tid, sid := client.Current()
				remote := server.StartRemote(tid, sid, "ssp.get", ClassNone)
				remote.Annotate("h", "x")
				remote.End()
				root.End()
			}
			if got := len(client.Spans()); got != iters {
				t.Errorf("client spans = %d, want %d", got, iters)
			}
		}(h)
	}
	// Concurrent span reader.
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, sp := range server.Spans() {
					_ = sp.Attrs()
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rd.Wait()

	if got := len(server.Spans()); got != handlers*iters {
		t.Fatalf("server spans = %d, want %d", got, handlers*iters)
	}
}
