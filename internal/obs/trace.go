package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one operation tree across processes: the client
// allocates it at the operation root and propagates it through
// wire.Request so SSP-side spans join the same trace.
type TraceID uint64

// SpanID identifies one span within a process group.
type SpanID uint64

// idCounter allocates trace and span IDs. A process-global monotonic
// counter is sufficient: IDs only need to be unique within the set of
// tracers whose spans are merged into one export, and they must not be
// derived from randomness (sharoes-vet forbids math/rand outside
// workloads, and crypto/rand is wasted on non-secret labels).
var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// Attr is one span annotation. Values are operational labels — never put
// key material or plaintext content in them.
type Attr struct {
	Key string
	Val string
}

// Span is one timed region. Exported fields are read-only after End;
// mutate only through Annotate.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Class  Class
	Proc   string // owning tracer's process label ("client", "ssp")

	Start time.Time // carries a monotonic reading
	Dur   time.Duration

	tr       *Tracer
	detached bool // not on the tracer's span stack (remote spans)

	mu    sync.Mutex
	attrs []Attr
}

// Annotate attaches a key/value label to the span. Safe on a nil span
// and safe for concurrent use.
func (sp *Span) Annotate(key, val string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Val: val})
	sp.mu.Unlock()
}

// Attrs returns a copy of the span's annotations.
func (sp *Span) Attrs() []Attr {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Attr, len(sp.attrs))
	copy(out, sp.attrs)
	return out
}

// End finishes the span: its duration is fixed from the monotonic clock
// and it is moved to the tracer's finished-span buffer. Safe on a nil
// span; ending twice is a no-op.
func (sp *Span) End() {
	if sp == nil || sp.tr == nil {
		return
	}
	sp.tr.end(sp)
}

// Tracer collects spans for one process ("client" or "ssp"). Starting a
// span with an empty stack opens a new trace; nested Starts parent to
// the innermost open span. The stack makes instrumentation call sites
// context-free — the Sharoes session serializes operations, so at most
// one operation tree is open per tracer at a time — while remaining
// mutex-guarded so misuse can never corrupt memory.
//
// A nil *Tracer hands out nil spans: tracing disabled costs one branch.
type Tracer struct {
	proc string

	mu    sync.Mutex
	stack []*Span
	spans []*Span
	drops int64
	limit int
}

// DefaultSpanLimit bounds the finished spans a tracer retains; beyond
// it, spans are counted but dropped, so tracing a long run degrades
// instead of exhausting memory.
const DefaultSpanLimit = 1 << 17

// NewTracer returns a tracer labelled with proc ("client", "ssp").
func NewTracer(proc string) *Tracer {
	return &Tracer{proc: proc, limit: DefaultSpanLimit}
}

// Start opens a span named name with cost class class. With no span
// open it roots a new trace; otherwise it becomes a child of the
// innermost open span.
func (t *Tracer) Start(name string, class Class) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name, Class: class, Proc: t.proc, tr: t}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		sp.Trace = top.Trace
		sp.Parent = top.ID
	} else {
		sp.Trace = TraceID(nextID())
	}
	sp.ID = SpanID(nextID())
	t.stack = append(t.stack, sp)
	t.mu.Unlock()
	sp.Start = time.Now()
	return sp
}

// StartRemote opens a detached span joining a trace started elsewhere —
// the SSP serving a request carrying the client's trace ID. Detached
// spans never touch the span stack, so concurrent connection handlers
// can share one tracer.
func (t *Tracer) StartRemote(trace TraceID, parent SpanID, name string, class Class) *Span {
	if t == nil || trace == 0 {
		return nil
	}
	sp := &Span{
		Trace: trace, ID: SpanID(nextID()), Parent: parent,
		Name: name, Class: class, Proc: t.proc, tr: t, detached: true,
	}
	sp.Start = time.Now()
	return sp
}

// Current returns the innermost open span's trace and span ID, or zeros
// when no span is open. The RPC layer uses it to stamp outgoing
// requests.
func (t *Tracer) Current() (TraceID, SpanID) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		return t.stack[n-1].Trace, t.stack[n-1].ID
	}
	return 0, 0
}

func (t *Tracer) end(sp *Span) {
	dur := time.Since(sp.Start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp.Dur != 0 || sp.tr == nil {
		return // already ended
	}
	sp.Dur = dur
	if dur == 0 {
		sp.Dur = 1 // preserve "ended" even for sub-ns spans
	}
	if !sp.detached {
		// Pop sp; tolerate out-of-order ends by unwinding to it.
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == sp {
				t.stack = t.stack[:i]
				break
			}
		}
	}
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, sp)
	} else {
		t.drops++
	}
}

// Spans returns the finished spans, in end order. The returned slice is
// a copy; the spans themselves are shared and must be treated read-only.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports spans discarded over the retention limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Reset discards all finished spans (open spans are unaffected).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
	t.drops = 0
}

// Decompose sums classed span durations per class — the Figure 13
// NETWORK / CRYPTO view recomputed purely from a trace. Structural
// (ClassNone) spans contribute nothing, so nesting them around classed
// leaves does not double count.
func Decompose(spans []*Span) map[Class]time.Duration {
	out := make(map[Class]time.Duration)
	for _, sp := range spans {
		if sp.Class != ClassNone {
			out[sp.Class] += sp.Dur
		}
	}
	return out
}
