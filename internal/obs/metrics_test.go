package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestShardedInt64(t *testing.T) {
	var s ShardedInt64
	if s.Load() != 0 {
		t.Fatalf("zero value loads %d", s.Load())
	}
	s.Add(5)
	s.Add(-2)
	if got := s.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
	s.Reset()
	if got := s.Load(); got != 0 {
		t.Fatalf("after Reset, Load = %d", got)
	}
	// nil receiver discards
	var np *ShardedInt64
	np.Add(1)
	if np.Load() != 0 {
		t.Fatal("nil ShardedInt64 not inert")
	}
}

func TestBucketBoundaries(t *testing.T) {
	// Bucket 0 covers (0, 1µs]; each boundary value must land in the
	// bucket it bounds, and one nanosecond more must land in the next.
	cases := []struct {
		nanos int64
		want  int
	}{
		{0, 0},
		{1, 0},
		{bucketBaseNanos, 0},       // exactly 1µs → bucket 0
		{bucketBaseNanos + 1, 1},   // 1µs+1ns → bucket 1
		{2 * bucketBaseNanos, 1},   // 2µs → bucket 1
		{2*bucketBaseNanos + 1, 2}, // 2µs+1 → bucket 2
		{BucketUpperNanos(10), 10},
		{BucketUpperNanos(10) + 1, 11},
		{BucketUpperNanos(numFiniteBuckets - 1), numFiniteBuckets - 1},
		{BucketUpperNanos(numFiniteBuckets-1) + 1, numFiniteBuckets}, // overflow
		{1 << 62, numFiniteBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.nanos); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.nanos, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations of 1.5µs: all in bucket 1 (1µs, 2µs].
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Nanosecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean(); got != 1500*time.Nanosecond {
		t.Fatalf("mean = %v", got)
	}
	// Every quantile of a single-bucket population must stay inside
	// that bucket's bounds.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < 0 || v > 2*time.Microsecond {
			t.Errorf("q%.2f = %v outside bucket (0, 2µs]", q, v)
		}
	}
	// Median of the interpolation must sit near the bucket midpoint.
	if med := s.Quantile(0.5); med < time.Microsecond || med > 2*time.Microsecond {
		t.Errorf("median %v not in (1µs, 2µs]", med)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	} {
		for i := 0; i < 10; i++ {
			h.Observe(d)
		}
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// p99 of this population must land in the top decade.
	if p99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want ≥ 50ms", p99)
	}
	if p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ≤ 2ms", p50)
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Hour)
	s := h.Snapshot()
	if s.Buckets[numFiniteBuckets] != 1 {
		t.Fatal("overflow observation not in overflow bucket")
	}
	want := time.Duration(BucketUpperNanos(numFiniteBuckets - 1))
	if got := s.Quantile(0.99); got != want {
		t.Fatalf("overflow quantile = %v, want clamp to %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 2 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if sa.SumNanos != int64(time.Millisecond+time.Second) {
		t.Fatalf("merged sum = %d", sa.SumNanos)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ops")
	if c != r.Counter("test.ops") {
		t.Fatal("counter handle not stable")
	}
	c.Inc()
	c.Add(2)
	r.Gauge("test.conns").Set(7)
	r.Histogram("test.lat.ns").Observe(3 * time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["test.ops"] != 3 {
		t.Fatalf("counter = %d", snap.Counters["test.ops"])
	}
	if snap.Gauges["test.conns"] != 7 {
		t.Fatalf("gauge = %d", snap.Gauges["test.conns"])
	}
	hj := snap.Histograms["test.lat.ns"]
	if hj.Count != 1 || hj.MeanNs != int64(3*time.Millisecond) {
		t.Fatalf("hist json = %+v", hj)
	}
	if hj.P50Ns <= 0 || hj.P99Ns < hj.P50Ns {
		t.Fatalf("hist quantiles = %+v", hj)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded RegistrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if decoded.Counters["test.ops"] != 3 {
		t.Fatalf("decoded counter = %d", decoded.Counters["test.ops"])
	}

	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

func TestCostAccount(t *testing.T) {
	var a CostAccount
	a.AddClass(ClassNetwork, 10*time.Millisecond)
	a.AddClass(ClassCrypto, 5*time.Millisecond)
	a.AddClass(ClassOther, time.Millisecond)
	a.AddClass(ClassNone, time.Hour) // discarded
	a.AddOp()
	a.AddBytes(100, 200)

	if got := a.ClassNanos(ClassNetwork); got != int64(10*time.Millisecond) {
		t.Fatalf("network = %d", got)
	}
	if got := a.CryptoOps(); got != 1 {
		t.Fatalf("cryptoOps = %d", got)
	}
	if got := a.Ops(); got != 1 {
		t.Fatalf("ops = %d", got)
	}
	out, in := a.Bytes()
	if out != 100 || in != 200 {
		t.Fatalf("bytes = %d/%d", out, in)
	}

	stop := a.Time(ClassCrypto)
	stop()
	if a.CryptoOps() != 2 {
		t.Fatal("Time did not charge crypto")
	}

	a.Reset()
	if a.Ops() != 0 || a.ClassNanos(ClassCrypto) != 0 {
		t.Fatal("Reset incomplete")
	}

	var nilA *CostAccount
	nilA.AddClass(ClassCrypto, time.Second)
	nilA.Time(ClassNetwork)()
	if nilA.Ops() != 0 {
		t.Fatal("nil account not inert")
	}
}
