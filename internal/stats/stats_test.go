package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderAddAndSnapshot(t *testing.T) {
	var r Recorder
	r.Add(Network, 100*time.Millisecond)
	r.Add(Crypto, 10*time.Millisecond)
	r.Add(Other, 5*time.Millisecond)
	r.AddOp()
	r.AddBytes(128, 4096)

	s := r.Snapshot()
	if s.Network != 100*time.Millisecond || s.Crypto != 10*time.Millisecond || s.Other != 5*time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Ops != 1 || s.BytesOut != 128 || s.BytesIn != 4096 {
		t.Errorf("counters = %+v", s)
	}
	if s.CryptoOps != 1 {
		t.Errorf("cryptoOps = %d", s.CryptoOps)
	}
	if s.Total() != 115*time.Millisecond {
		t.Errorf("Total = %v", s.Total())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Network, time.Second)
	r.AddOp()
	r.AddBytes(1, 2)
	r.Reset()
	r.Time(Crypto)()
	if s := r.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
}

func TestTime(t *testing.T) {
	var r Recorder
	stop := r.Time(Crypto)
	time.Sleep(2 * time.Millisecond)
	stop()
	if got := r.Snapshot().Crypto; got < time.Millisecond {
		t.Errorf("timed crypto = %v, want >= 1ms", got)
	}
}

func TestReset(t *testing.T) {
	var r Recorder
	r.Add(Network, time.Second)
	r.AddOp()
	r.AddBytes(10, 20)
	r.Reset()
	if s := r.Snapshot(); s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{Network: time.Second, Ops: 3, BytesIn: 100}
	b := Snapshot{Network: 3 * time.Second, Crypto: time.Second, Ops: 5, BytesIn: 400}
	d := b.Sub(a)
	if d.Network != 2*time.Second || d.Crypto != time.Second || d.Ops != 2 || d.BytesIn != 300 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestCryptoFraction(t *testing.T) {
	s := Snapshot{Network: 93 * time.Millisecond, Crypto: 7 * time.Millisecond}
	if f := s.CryptoFraction(); f < 0.069 || f > 0.071 {
		t.Errorf("CryptoFraction = %v, want ~0.07", f)
	}
	if (Snapshot{}).CryptoFraction() != 0 {
		t.Error("empty snapshot fraction != 0")
	}
}

func TestBreakdownFrom(t *testing.T) {
	a := Snapshot{}
	b := Snapshot{Network: 80 * time.Millisecond, Crypto: 5 * time.Millisecond}
	br := BreakdownFrom("getattr", a, b, 100*time.Millisecond)
	if br.Network != 80*time.Millisecond || br.Crypto != 5*time.Millisecond || br.Other != 15*time.Millisecond {
		t.Errorf("breakdown = %+v", br)
	}
	if br.Total() != 100*time.Millisecond {
		t.Errorf("Total = %v", br.Total())
	}
	// OTHER never goes negative even when instrumented time exceeds wall time.
	br = BreakdownFrom("x", a, b, 10*time.Millisecond)
	if br.Other != 0 {
		t.Errorf("negative other clamped: %v", br.Other)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(Network, time.Microsecond)
				r.AddOp()
				r.AddBytes(1, 1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Ops != 8000 || s.BytesOut != 8000 || s.Network != 8000*time.Microsecond {
		t.Errorf("concurrent totals = %+v", s)
	}
}

func TestComponentString(t *testing.T) {
	if Network.String() != "NETWORK" || Crypto.String() != "CRYPTO" || Other.String() != "OTHER" {
		t.Error("component strings wrong")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Network: time.Millisecond, Ops: 2}
	if str := s.String(); !strings.Contains(str, "ops=2") {
		t.Errorf("String = %q", str)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("objects", 5)
	c.Add("objects", 3)
	c.Add("bytes", 100)
	if c.Get("objects") != 8 || c.Get("bytes") != 100 || c.Get("missing") != 0 {
		t.Errorf("counter values wrong: %v", c.All())
	}
	all := c.All()
	all["objects"] = 0 // must be a copy
	if c.Get("objects") != 8 {
		t.Error("All returned live map")
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	before := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(before) {
		t.Error("clock did not advance")
	}
}
