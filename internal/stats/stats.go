// Package stats instruments Sharoes operations, decomposing wall-clock time
// into the three components the paper reports in Figure 13: NETWORK (wire
// transfer), CRYPTO (encryption, decryption, signing, verification) and
// OTHER (everything else — serialization, cache management, bookkeeping).
//
// Since the internal/obs observability layer landed, this package is a
// thin adapter: a Recorder is a view over an obs.CostAccount, the same
// accumulator charged by the stopwatches that emit classed trace spans.
// The decomposition reported here and the one recomputed from a trace
// (obs.Decompose) therefore agree by construction — there is one timing
// mechanism, not two.
package stats

import (
	"fmt"
	"sync"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
)

// Component identifies a cost bucket.
type Component uint8

// Cost components, matching the paper's Figure 13 decomposition.
const (
	Network Component = iota
	Crypto
	Other
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case Network:
		return "NETWORK"
	case Crypto:
		return "CRYPTO"
	default:
		return "OTHER"
	}
}

// class maps a component to its obs cost class.
func (c Component) class() obs.Class {
	switch c {
	case Network:
		return obs.ClassNetwork
	case Crypto:
		return obs.ClassCrypto
	default:
		return obs.ClassOther
	}
}

// Recorder accumulates time per component plus operation and byte counters.
// It is safe for concurrent use. The zero value is ready to use; a nil
// *Recorder discards all measurements, so instrumentation call sites never
// need nil checks. It adapts the legacy API onto obs.CostAccount.
type Recorder struct {
	acc obs.CostAccount
}

// Account exposes the underlying obs accumulator, so span-emitting
// stopwatches can charge the same substrate. Returns nil on a nil
// Recorder (and a nil *obs.CostAccount discards everything).
func (r *Recorder) Account() *obs.CostAccount {
	if r == nil {
		return nil
	}
	return &r.acc
}

// Add charges d to component c.
func (r *Recorder) Add(c Component, d time.Duration) {
	r.Account().AddClass(c.class(), d)
}

// Time starts a timer for component c; call the returned func to stop it.
// Usage: defer r.Time(stats.Crypto)().
func (r *Recorder) Time(c Component) func() {
	return r.Account().Time(c.class())
}

// AddOp counts one completed filesystem operation.
func (r *Recorder) AddOp() {
	r.Account().AddOp()
}

// AddBytes records wire traffic: out is bytes sent to the SSP, in is bytes
// received from it.
func (r *Recorder) AddBytes(out, in int) {
	r.Account().AddBytes(out, in)
}

// Snapshot is a point-in-time copy of a Recorder's counters.
type Snapshot struct {
	Network   time.Duration
	Crypto    time.Duration
	Other     time.Duration
	Ops       int64
	BytesOut  int64
	BytesIn   int64
	CryptoOps int64
}

// Snapshot returns the current counters. Safe on a nil Recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	a := r.Account()
	out, in := a.Bytes()
	return Snapshot{
		Network:   time.Duration(a.ClassNanos(obs.ClassNetwork)),
		Crypto:    time.Duration(a.ClassNanos(obs.ClassCrypto)),
		Other:     time.Duration(a.ClassNanos(obs.ClassOther)),
		Ops:       a.Ops(),
		BytesOut:  out,
		BytesIn:   in,
		CryptoOps: a.CryptoOps(),
	}
}

// Reset zeroes all counters.
func (r *Recorder) Reset() {
	r.Account().Reset()
}

// Sub returns the component-wise difference s - o. Use it to isolate the
// cost of a single operation between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Network:   s.Network - o.Network,
		Crypto:    s.Crypto - o.Crypto,
		Other:     s.Other - o.Other,
		Ops:       s.Ops - o.Ops,
		BytesOut:  s.BytesOut - o.BytesOut,
		BytesIn:   s.BytesIn - o.BytesIn,
		CryptoOps: s.CryptoOps - o.CryptoOps,
	}
}

// Total returns the sum of the three time components.
func (s Snapshot) Total() time.Duration { return s.Network + s.Crypto + s.Other }

// CryptoFraction returns the CRYPTO share of total time (0 when total is 0).
// The paper's headline claim for Figure 13 is that this stays below 7%.
func (s Snapshot) CryptoFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Crypto) / float64(t)
}

// String renders the snapshot in a compact human-readable form.
func (s Snapshot) String() string {
	return fmt.Sprintf("net=%v crypto=%v other=%v ops=%d out=%dB in=%dB",
		s.Network.Round(time.Microsecond), s.Crypto.Round(time.Microsecond),
		s.Other.Round(time.Microsecond), s.Ops, s.BytesOut, s.BytesIn)
}

// OpBreakdown is the per-operation cost decomposition used by Figure 13.
type OpBreakdown struct {
	Op      string
	Network time.Duration
	Crypto  time.Duration
	Other   time.Duration
}

// Total returns the total duration of the operation.
func (b OpBreakdown) Total() time.Duration { return b.Network + b.Crypto + b.Other }

// BreakdownFrom derives an OpBreakdown for a named operation that ran
// between snapshots a and b and took wallTotal overall. NETWORK and CRYPTO
// come from the recorder; OTHER is the remainder of wall time, exactly as
// the paper computes it.
func BreakdownFrom(op string, a, b Snapshot, wallTotal time.Duration) OpBreakdown {
	d := b.Sub(a)
	other := wallTotal - d.Network - d.Crypto
	if other < 0 {
		other = 0
	}
	return OpBreakdown{Op: op, Network: d.Network, Crypto: d.Crypto, Other: other}
}

// Clock abstracts time measurement so simulations can substitute virtual
// time. The package-level functions use the real clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// Counter is a simple named monotonic counter set, used by the SSP server
// to expose storage statistics for the Scheme-1/Scheme-2 experiment.
type Counter struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: make(map[string]int64)} }

// Add increments name by delta.
func (c *Counter) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] += delta
}

// Get returns the current value of name.
func (c *Counter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// All returns a copy of every counter.
func (c *Counter) All() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
