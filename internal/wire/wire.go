// Package wire defines the binary protocol spoken between Sharoes clients
// and the SSP data-serving tool.
//
// The SSP performs no computation on the data it stores (paper §IV): it is
// a big hashtable of opaque encrypted blobs, so the protocol is a small
// key-value vocabulary — get, put, delete, list, and batched variants —
// over namespaced string keys. Messages are length-prefixed with compact
// varint-encoded fields; wire size matters because the benchmarks are
// dominated by a bandwidth-shaped WAN link.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Op identifies a request operation.
type Op uint8

// Protocol operations.
const (
	OpPing Op = iota + 1
	OpGet
	OpPut
	OpDelete
	OpList     // keys (and values) under a prefix
	OpBatchGet // many gets in one round trip
	OpBatchPut // many puts (and deletes) in one round trip
	OpStats    // storage statistics (object count, byte total)
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpBatchGet:
		return "batchget"
	case OpBatchPut:
		return "batchput"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// NS is a key namespace at the SSP.
type NS uint8

// Namespaces. The SSP indexes encrypted metadata objects and data blocks by
// inode number plus user/CAP identifier (paper §IV); the remaining
// namespaces hold superblocks, group key blocks and split-point pointers.
const (
	NSMeta NS = iota + 1
	NSData
	NSSuper
	NSGroupKey
	NSSplit
	NSSys
)

// String implements fmt.Stringer.
func (n NS) String() string {
	switch n {
	case NSMeta:
		return "meta"
	case NSData:
		return "data"
	case NSSuper:
		return "super"
	case NSGroupKey:
		return "groupkey"
	case NSSplit:
		return "split"
	case NSSys:
		return "sys"
	default:
		return fmt.Sprintf("ns(%d)", uint8(n))
	}
}

// KV is a namespaced key-value pair. In batch puts a nil Val with Delete
// set removes the key.
type KV struct {
	NS     NS
	Key    string
	Val    []byte
	Delete bool
}

// Request is a client request.
type Request struct {
	Op     Op
	NS     NS
	Key    string
	Val    []byte
	Prefix string // OpList
	Items  []KV   // OpBatchGet (keys only) / OpBatchPut

	// TraceID and SpanID propagate the client's observability trace so
	// SSP-side spans can join it (internal/obs). They are encoded as an
	// optional trailing extension: a zero TraceID is omitted entirely
	// (the frame is byte-identical to the pre-extension format), and
	// decoders treat a missing or malformed tail as "untraced", so old
	// and new peers interoperate in both directions. SpanID is
	// meaningful only alongside a nonzero TraceID.
	TraceID uint64
	SpanID  uint64

	// ReqID multiplexes concurrent requests over one connection: a
	// pipelined client tags each request with a nonzero ReqID and the
	// server echoes it in the matching Response, so replies can complete
	// out of order. Zero means unmultiplexed (the pre-extension serial
	// protocol, where replies are matched by arrival order). Encoded as
	// a further trailing uvarint after the trace extension; when the
	// request is untraced but multiplexed, an explicit zero TraceID is
	// written first so the tail stays self-describing. Old decoders
	// ignore the extra bytes; frames with TraceID == 0 and ReqID == 0
	// remain byte-identical to the original format.
	ReqID uint64
}

// Status is a response status code.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusBadRequest
	StatusError
)

// Response is the SSP's reply.
type Response struct {
	Status Status
	Err    string
	Val    []byte
	Items  []KV // list / batch-get results; absent batch-get keys are omitted

	// ReqID echoes the request's ReqID so a pipelined client can match
	// out-of-order replies (see Request.ReqID). Encoded as an optional
	// trailing uvarint: zero is omitted, keeping unmultiplexed frames
	// byte-identical to the pre-extension format, and decoders treat a
	// missing or malformed tail as zero.
	ReqID uint64
}

// Protocol errors.
var (
	ErrNotFound    = errors.New("wire: key not found")
	ErrTooLarge    = errors.New("wire: message exceeds size limit")
	ErrBadMessage  = errors.New("wire: malformed message")
	ErrRemote      = errors.New("wire: remote error")
	ErrUnknownOp   = errors.New("wire: unknown operation")
	errShortBuffer = errors.New("wire: truncated field")
)

// MaxMessageSize bounds a single framed message (64 MiB), protecting both
// sides from hostile length prefixes.
const MaxMessageSize = 64 << 20

// --- low-level encoding ----------------------------------------------------

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

// Append-style twins of the helpers above: the v2 codec and the batched
// frame packers build messages into reusable byte slices instead of
// throwaway bytes.Buffers, so the steady-state encode path allocates
// nothing.

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendKV(dst []byte, kv KV) []byte {
	dst = append(dst, byte(kv.NS))
	dst = appendString(dst, kv.Key)
	dst = appendBytes(dst, kv.Val)
	if kv.Delete {
		return append(dst, 1)
	}
	return append(dst, 0)
}

type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortBuffer
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, errShortBuffer
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) byteVal() (byte, error) {
	if len(r.b) == 0 {
		return 0, errShortBuffer
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func encodeKV(buf *bytes.Buffer, kv KV) {
	buf.WriteByte(byte(kv.NS))
	putString(buf, kv.Key)
	putBytes(buf, kv.Val)
	if kv.Delete {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

func decodeKV(r *reader, copyVals bool) (KV, error) {
	var kv KV
	ns, err := r.byteVal()
	if err != nil {
		return kv, err
	}
	kv.NS = NS(ns)
	if kv.Key, err = r.str(); err != nil {
		return kv, err
	}
	val, err := r.bytes()
	if err != nil {
		return kv, err
	}
	if len(val) > 0 {
		if copyVals {
			kv.Val = append([]byte(nil), val...)
		} else {
			kv.Val = val
		}
	}
	del, err := r.byteVal()
	if err != nil {
		return kv, err
	}
	kv.Delete = del == 1
	return kv, nil
}

// appendRequestBody appends the request's common body — op, ns, key, val,
// prefix, items — shared byte-for-byte by the v1 codec (which follows it
// with trailing-uvarint extensions) and the v2 codec (which precedes it
// with the self-describing header).
func appendRequestBody(dst []byte, q *Request) []byte {
	dst = append(dst, byte(q.Op), byte(q.NS))
	dst = appendString(dst, q.Key)
	dst = appendBytes(dst, q.Val)
	dst = appendString(dst, q.Prefix)
	dst = appendUvarint(dst, uint64(len(q.Items)))
	for _, kv := range q.Items {
		dst = appendKV(dst, kv)
	}
	return dst
}

// AppendRequest appends the v1 encoding of q to dst and returns the
// extended slice. Encode is AppendRequest(nil, q).
func AppendRequest(dst []byte, q *Request) []byte {
	dst = appendRequestBody(dst, q)
	// Optional trailing extensions (see Request.TraceID and
	// Request.ReqID). Untraced, unmultiplexed requests stay
	// byte-identical to the pre-extension encoding.
	if q.TraceID != 0 {
		dst = appendUvarint(dst, q.TraceID)
		dst = appendUvarint(dst, q.SpanID)
		if q.ReqID != 0 {
			dst = appendUvarint(dst, q.ReqID)
		}
	} else if q.ReqID != 0 {
		dst = appendUvarint(dst, 0) // explicit "untraced" so the tail stays ordered
		dst = appendUvarint(dst, q.ReqID)
	}
	return dst
}

// Encode serializes the request (v1 codec).
func (q *Request) Encode() []byte { return AppendRequest(nil, q) }

// decodeRequestBody parses the shared request body into q. With copyVals
// false the request's Val and item Vals alias b — the borrowed decode
// used by the pooled-buffer hot path.
func decodeRequestBody(r *reader, q *Request, copyVals bool) error {
	op, err := r.byteVal()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	q.Op = Op(op)
	ns, err := r.byteVal()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	q.NS = NS(ns)
	if q.Key, err = r.str(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	val, err := r.bytes()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if len(val) > 0 {
		if copyVals {
			q.Val = append([]byte(nil), val...)
		} else {
			q.Val = val
		}
	}
	if q.Prefix, err = r.str(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	n, err := r.uvarint()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if n > uint64(len(r.b)) { // each KV takes at least a few bytes
		return fmt.Errorf("%w: absurd item count %d", ErrBadMessage, n)
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r, copyVals)
		if err != nil {
			return fmt.Errorf("%w: item %d: %w", ErrBadMessage, i, err)
		}
		q.Items = append(q.Items, kv)
	}
	return nil
}

// decodeRequestTail parses the v1 trailing extensions: pre-extension
// frames end after the body; a well-formed tail carries TraceID (then
// SpanID when traced) then optionally ReqID. Anything else — including
// trailing garbage old decoders also ignored — degrades to the zero
// values rather than being rejected, keeping acceptance identical across
// codec versions.
func decodeRequestTail(r *reader, q *Request) {
	if len(r.b) == 0 {
		return
	}
	tid, err := r.uvarint()
	if err != nil {
		return
	}
	if tid != 0 {
		sid, err := r.uvarint()
		if err != nil {
			return // trace truncated: untraced, no ReqID
		}
		q.TraceID = tid
		q.SpanID = sid
	}
	if rid, err := r.uvarint(); err == nil {
		q.ReqID = rid
	}
}

// DecodeRequest parses a v1 request payload. Val and item Vals are owned
// copies; use DecodeRequestBorrowed on the pooled hot path.
func DecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	var q Request
	if err := decodeRequestBody(r, &q, true); err != nil {
		return nil, err
	}
	decodeRequestTail(r, &q)
	return &q, nil
}

// DecodeRequestBorrowed parses a v1 request payload without copying: the
// request's Val and item Vals alias b, so the request is only valid while
// b is. Pair with Buf's Release discipline; call Detach to take
// ownership.
func DecodeRequestBorrowed(b []byte) (*Request, error) {
	r := &reader{b: b}
	var q Request
	if err := decodeRequestBody(r, &q, false); err != nil {
		return nil, err
	}
	decodeRequestTail(r, &q)
	return &q, nil
}

// Detach copies every borrowed byte slice in q into owned memory, making
// the request safe to retain after its backing buffer is released.
func (q *Request) Detach() {
	if len(q.Val) > 0 {
		q.Val = append([]byte(nil), q.Val...)
	}
	for i := range q.Items {
		if len(q.Items[i].Val) > 0 {
			q.Items[i].Val = append([]byte(nil), q.Items[i].Val...)
		}
	}
}

// appendResponseBody appends the response's common body — status, err,
// val, items — shared by the v1 and v2 codecs.
func appendResponseBody(dst []byte, p *Response) []byte {
	dst = append(dst, byte(p.Status))
	dst = appendString(dst, p.Err)
	dst = appendBytes(dst, p.Val)
	dst = appendUvarint(dst, uint64(len(p.Items)))
	for _, kv := range p.Items {
		dst = appendKV(dst, kv)
	}
	return dst
}

// AppendResponse appends the v1 encoding of p to dst and returns the
// extended slice. Encode is AppendResponse(nil, p).
func AppendResponse(dst []byte, p *Response) []byte {
	dst = appendResponseBody(dst, p)
	// Optional multiplexing extension (see Response.ReqID). Unmultiplexed
	// responses stay byte-identical to the pre-extension encoding.
	if p.ReqID != 0 {
		dst = appendUvarint(dst, p.ReqID)
	}
	return dst
}

// Encode serializes the response (v1 codec).
func (p *Response) Encode() []byte { return AppendResponse(nil, p) }

// decodeResponseBody parses the shared response body into p, borrowing
// Val and item Vals from b when copyVals is false.
func decodeResponseBody(r *reader, p *Response, copyVals bool) error {
	st, err := r.byteVal()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	p.Status = Status(st)
	if p.Err, err = r.str(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	val, err := r.bytes()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if len(val) > 0 {
		if copyVals {
			p.Val = append([]byte(nil), val...)
		} else {
			p.Val = val
		}
	}
	n, err := r.uvarint()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if n > uint64(len(r.b)) {
		return fmt.Errorf("%w: absurd item count %d", ErrBadMessage, n)
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r, copyVals)
		if err != nil {
			return fmt.Errorf("%w: item %d: %w", ErrBadMessage, i, err)
		}
		p.Items = append(p.Items, kv)
	}
	return nil
}

// DecodeResponse parses a v1 response payload. Val and item Vals are
// owned copies; use DecodeResponseBorrowed on the pooled hot path.
func DecodeResponse(b []byte) (*Response, error) {
	r := &reader{b: b}
	var p Response
	if err := decodeResponseBody(r, &p, true); err != nil {
		return nil, err
	}
	// Multiplexing extension: pre-extension frames end here; a
	// well-formed tail is a single ReqID uvarint. A malformed tail
	// degrades to zero (unmultiplexed) rather than being rejected.
	if len(r.b) > 0 {
		if rid, err := r.uvarint(); err == nil {
			p.ReqID = rid
		}
	}
	return &p, nil
}

// DecodeResponseBorrowed parses a v1 response payload without copying:
// Val and item Vals alias b. Pair with Buf's Release discipline; call
// Detach to take ownership.
func DecodeResponseBorrowed(b []byte) (*Response, error) {
	r := &reader{b: b}
	var p Response
	if err := decodeResponseBody(r, &p, false); err != nil {
		return nil, err
	}
	if len(r.b) > 0 {
		if rid, err := r.uvarint(); err == nil {
			p.ReqID = rid
		}
	}
	return &p, nil
}

// Detach copies every borrowed byte slice in p into owned memory, making
// the response safe to retain after its backing buffer is released.
func (p *Response) Detach() {
	if len(p.Val) > 0 {
		p.Val = append([]byte(nil), p.Val...)
	}
	for i := range p.Items {
		if len(p.Items[i].Val) > 0 {
			p.Items[i].Val = append([]byte(nil), p.Items[i].Val...)
		}
	}
}

// --- framing ----------------------------------------------------------------

// WriteFrame writes a length-prefixed message and returns the number of
// bytes put on the wire.
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxMessageSize {
		return 0, ErrTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 4, err
	}
	return 4 + len(payload), nil
}

// ReadFrame reads one length-prefixed message and returns the payload and
// the number of bytes consumed from the wire.
func ReadFrame(r io.Reader) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, 4, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 4, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	return payload, 4 + int(n), nil
}

// Codec frames requests and responses over a connection, buffering writes
// and counting wire bytes in each direction.
type Codec struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// BytesOut and BytesIn count wire traffic through this codec.
	BytesOut int64
	BytesIn  int64
}

// NewCodec wraps conn.
func NewCodec(conn net.Conn) *Codec {
	return &Codec{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32*1024),
		bw:   bufio.NewWriterSize(conn, 32*1024),
	}
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

func (c *Codec) send(payload []byte) error {
	n, err := WriteFrame(c.bw, payload)
	c.BytesOut += int64(n)
	if err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Codec) recv() ([]byte, error) {
	payload, n, err := ReadFrame(c.br)
	c.BytesIn += int64(n)
	return payload, err
}

// SendRequest writes a request frame.
func (c *Codec) SendRequest(q *Request) error { return c.send(q.Encode()) }

// ReadRequest reads the next request frame.
func (c *Codec) ReadRequest() (*Request, error) {
	payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	return DecodeRequest(payload)
}

// SendResponse writes a response frame.
func (c *Codec) SendResponse(p *Response) error { return c.send(p.Encode()) }

// ReadResponse reads the next response frame.
func (c *Codec) ReadResponse() (*Response, error) {
	payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}

// Call performs one request/response round trip.
func (c *Codec) Call(q *Request) (*Response, error) {
	if err := c.SendRequest(q); err != nil {
		return nil, err
	}
	return c.ReadResponse()
}

// AsError converts a non-OK response into an error.
func (p *Response) AsError() error {
	switch p.Status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusBadRequest:
		return fmt.Errorf("%w: bad request: %s", ErrRemote, p.Err)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, p.Err)
	}
}
