// Package wire defines the binary protocol spoken between Sharoes clients
// and the SSP data-serving tool.
//
// The SSP performs no computation on the data it stores (paper §IV): it is
// a big hashtable of opaque encrypted blobs, so the protocol is a small
// key-value vocabulary — get, put, delete, list, and batched variants —
// over namespaced string keys. Messages are length-prefixed with compact
// varint-encoded fields; wire size matters because the benchmarks are
// dominated by a bandwidth-shaped WAN link.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Op identifies a request operation.
type Op uint8

// Protocol operations.
const (
	OpPing Op = iota + 1
	OpGet
	OpPut
	OpDelete
	OpList     // keys (and values) under a prefix
	OpBatchGet // many gets in one round trip
	OpBatchPut // many puts (and deletes) in one round trip
	OpStats    // storage statistics (object count, byte total)
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpBatchGet:
		return "batchget"
	case OpBatchPut:
		return "batchput"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// NS is a key namespace at the SSP.
type NS uint8

// Namespaces. The SSP indexes encrypted metadata objects and data blocks by
// inode number plus user/CAP identifier (paper §IV); the remaining
// namespaces hold superblocks, group key blocks and split-point pointers.
const (
	NSMeta NS = iota + 1
	NSData
	NSSuper
	NSGroupKey
	NSSplit
	NSSys
)

// String implements fmt.Stringer.
func (n NS) String() string {
	switch n {
	case NSMeta:
		return "meta"
	case NSData:
		return "data"
	case NSSuper:
		return "super"
	case NSGroupKey:
		return "groupkey"
	case NSSplit:
		return "split"
	case NSSys:
		return "sys"
	default:
		return fmt.Sprintf("ns(%d)", uint8(n))
	}
}

// KV is a namespaced key-value pair. In batch puts a nil Val with Delete
// set removes the key.
type KV struct {
	NS     NS
	Key    string
	Val    []byte
	Delete bool
}

// Request is a client request.
type Request struct {
	Op     Op
	NS     NS
	Key    string
	Val    []byte
	Prefix string // OpList
	Items  []KV   // OpBatchGet (keys only) / OpBatchPut

	// TraceID and SpanID propagate the client's observability trace so
	// SSP-side spans can join it (internal/obs). They are encoded as an
	// optional trailing extension: a zero TraceID is omitted entirely
	// (the frame is byte-identical to the pre-extension format), and
	// decoders treat a missing or malformed tail as "untraced", so old
	// and new peers interoperate in both directions. SpanID is
	// meaningful only alongside a nonzero TraceID.
	TraceID uint64
	SpanID  uint64

	// ReqID multiplexes concurrent requests over one connection: a
	// pipelined client tags each request with a nonzero ReqID and the
	// server echoes it in the matching Response, so replies can complete
	// out of order. Zero means unmultiplexed (the pre-extension serial
	// protocol, where replies are matched by arrival order). Encoded as
	// a further trailing uvarint after the trace extension; when the
	// request is untraced but multiplexed, an explicit zero TraceID is
	// written first so the tail stays self-describing. Old decoders
	// ignore the extra bytes; frames with TraceID == 0 and ReqID == 0
	// remain byte-identical to the original format.
	ReqID uint64
}

// Status is a response status code.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusBadRequest
	StatusError
)

// Response is the SSP's reply.
type Response struct {
	Status Status
	Err    string
	Val    []byte
	Items  []KV // list / batch-get results; absent batch-get keys are omitted

	// ReqID echoes the request's ReqID so a pipelined client can match
	// out-of-order replies (see Request.ReqID). Encoded as an optional
	// trailing uvarint: zero is omitted, keeping unmultiplexed frames
	// byte-identical to the pre-extension format, and decoders treat a
	// missing or malformed tail as zero.
	ReqID uint64
}

// Protocol errors.
var (
	ErrNotFound    = errors.New("wire: key not found")
	ErrTooLarge    = errors.New("wire: message exceeds size limit")
	ErrBadMessage  = errors.New("wire: malformed message")
	ErrRemote      = errors.New("wire: remote error")
	ErrUnknownOp   = errors.New("wire: unknown operation")
	errShortBuffer = errors.New("wire: truncated field")
)

// MaxMessageSize bounds a single framed message (64 MiB), protecting both
// sides from hostile length prefixes.
const MaxMessageSize = 64 << 20

// --- low-level encoding ----------------------------------------------------

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortBuffer
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, errShortBuffer
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func (r *reader) byteVal() (byte, error) {
	if len(r.b) == 0 {
		return 0, errShortBuffer
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func encodeKV(buf *bytes.Buffer, kv KV) {
	buf.WriteByte(byte(kv.NS))
	putString(buf, kv.Key)
	putBytes(buf, kv.Val)
	if kv.Delete {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

func decodeKV(r *reader) (KV, error) {
	var kv KV
	ns, err := r.byteVal()
	if err != nil {
		return kv, err
	}
	kv.NS = NS(ns)
	if kv.Key, err = r.str(); err != nil {
		return kv, err
	}
	val, err := r.bytes()
	if err != nil {
		return kv, err
	}
	if len(val) > 0 {
		kv.Val = append([]byte(nil), val...)
	}
	del, err := r.byteVal()
	if err != nil {
		return kv, err
	}
	kv.Delete = del == 1
	return kv, nil
}

// Encode serializes the request.
func (q *Request) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(q.Op))
	buf.WriteByte(byte(q.NS))
	putString(&buf, q.Key)
	putBytes(&buf, q.Val)
	putString(&buf, q.Prefix)
	putUvarint(&buf, uint64(len(q.Items)))
	for _, kv := range q.Items {
		encodeKV(&buf, kv)
	}
	// Optional trailing extensions (see Request.TraceID and
	// Request.ReqID). Untraced, unmultiplexed requests stay
	// byte-identical to the pre-extension encoding.
	if q.TraceID != 0 {
		putUvarint(&buf, q.TraceID)
		putUvarint(&buf, q.SpanID)
		if q.ReqID != 0 {
			putUvarint(&buf, q.ReqID)
		}
	} else if q.ReqID != 0 {
		putUvarint(&buf, 0) // explicit "untraced" so the tail stays ordered
		putUvarint(&buf, q.ReqID)
	}
	return buf.Bytes()
}

// DecodeRequest parses a request payload.
func DecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	var q Request
	op, err := r.byteVal()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	q.Op = Op(op)
	ns, err := r.byteVal()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	q.NS = NS(ns)
	if q.Key, err = r.str(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	val, err := r.bytes()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if len(val) > 0 {
		q.Val = append([]byte(nil), val...)
	}
	if q.Prefix, err = r.str(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if n > uint64(len(r.b)) { // each KV takes at least a few bytes
		return nil, fmt.Errorf("%w: absurd item count %d", ErrBadMessage, n)
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r)
		if err != nil {
			return nil, fmt.Errorf("%w: item %d: %w", ErrBadMessage, i, err)
		}
		q.Items = append(q.Items, kv)
	}
	// Trailing extensions: pre-extension frames end here; a well-formed
	// tail carries TraceID (then SpanID when traced) then optionally
	// ReqID. Anything else — including trailing garbage old decoders
	// also ignored — degrades to the zero values rather than being
	// rejected, keeping acceptance identical across codec versions.
	if len(r.b) > 0 {
		if tid, err := r.uvarint(); err == nil {
			if tid != 0 {
				if sid, err := r.uvarint(); err == nil {
					q.TraceID = tid
					q.SpanID = sid
				} else {
					return &q, nil // trace truncated: untraced, no ReqID
				}
			}
			if rid, err := r.uvarint(); err == nil {
				q.ReqID = rid
			}
		}
	}
	return &q, nil
}

// Encode serializes the response.
func (p *Response) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(p.Status))
	putString(&buf, p.Err)
	putBytes(&buf, p.Val)
	putUvarint(&buf, uint64(len(p.Items)))
	for _, kv := range p.Items {
		encodeKV(&buf, kv)
	}
	// Optional multiplexing extension (see Response.ReqID). Unmultiplexed
	// responses stay byte-identical to the pre-extension encoding.
	if p.ReqID != 0 {
		putUvarint(&buf, p.ReqID)
	}
	return buf.Bytes()
}

// DecodeResponse parses a response payload.
func DecodeResponse(b []byte) (*Response, error) {
	r := &reader{b: b}
	var p Response
	st, err := r.byteVal()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	p.Status = Status(st)
	if p.Err, err = r.str(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	val, err := r.bytes()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if len(val) > 0 {
		p.Val = append([]byte(nil), val...)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: absurd item count %d", ErrBadMessage, n)
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r)
		if err != nil {
			return nil, fmt.Errorf("%w: item %d: %w", ErrBadMessage, i, err)
		}
		p.Items = append(p.Items, kv)
	}
	// Multiplexing extension: pre-extension frames end here; a
	// well-formed tail is a single ReqID uvarint. A malformed tail
	// degrades to zero (unmultiplexed) rather than being rejected.
	if len(r.b) > 0 {
		if rid, err := r.uvarint(); err == nil {
			p.ReqID = rid
		}
	}
	return &p, nil
}

// --- framing ----------------------------------------------------------------

// WriteFrame writes a length-prefixed message and returns the number of
// bytes put on the wire.
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxMessageSize {
		return 0, ErrTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 4, err
	}
	return 4 + len(payload), nil
}

// ReadFrame reads one length-prefixed message and returns the payload and
// the number of bytes consumed from the wire.
func ReadFrame(r io.Reader) ([]byte, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, 4, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 4, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	return payload, 4 + int(n), nil
}

// Codec frames requests and responses over a connection, buffering writes
// and counting wire bytes in each direction.
type Codec struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// BytesOut and BytesIn count wire traffic through this codec.
	BytesOut int64
	BytesIn  int64
}

// NewCodec wraps conn.
func NewCodec(conn net.Conn) *Codec {
	return &Codec{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32*1024),
		bw:   bufio.NewWriterSize(conn, 32*1024),
	}
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

func (c *Codec) send(payload []byte) error {
	n, err := WriteFrame(c.bw, payload)
	c.BytesOut += int64(n)
	if err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Codec) recv() ([]byte, error) {
	payload, n, err := ReadFrame(c.br)
	c.BytesIn += int64(n)
	return payload, err
}

// SendRequest writes a request frame.
func (c *Codec) SendRequest(q *Request) error { return c.send(q.Encode()) }

// ReadRequest reads the next request frame.
func (c *Codec) ReadRequest() (*Request, error) {
	payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	return DecodeRequest(payload)
}

// SendResponse writes a response frame.
func (c *Codec) SendResponse(p *Response) error { return c.send(p.Encode()) }

// ReadResponse reads the next response frame.
func (c *Codec) ReadResponse() (*Response, error) {
	payload, err := c.recv()
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}

// Call performs one request/response round trip.
func (c *Codec) Call(q *Request) (*Response, error) {
	if err := c.SendRequest(q); err != nil {
		return nil, err
	}
	return c.ReadResponse()
}

// AsError converts a non-OK response into an error.
func (p *Response) AsError() error {
	switch p.Status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusBadRequest:
		return fmt.Errorf("%w: bad request: %s", ErrRemote, p.Err)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, p.Err)
	}
}
