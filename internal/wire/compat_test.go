package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// oldEncodeRequest replicates the pre-trace-extension request encoder
// byte for byte: op, ns, key, val, prefix, items — and nothing after.
func oldEncodeRequest(q *Request) []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(q.Op))
	buf.WriteByte(byte(q.NS))
	putString(&buf, q.Key)
	putBytes(&buf, q.Val)
	putString(&buf, q.Prefix)
	putUvarint(&buf, uint64(len(q.Items)))
	for _, kv := range q.Items {
		encodeKV(&buf, kv)
	}
	return buf.Bytes()
}

// oldDecodeRequest replicates the pre-extension decoder, including its
// defining property for forward compatibility: bytes after the item list
// are ignored.
func oldDecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	var q Request
	op, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	q.Op = Op(op)
	ns, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	q.NS = NS(ns)
	if q.Key, err = r.str(); err != nil {
		return nil, err
	}
	val, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(val) > 0 {
		q.Val = append([]byte(nil), val...)
	}
	if q.Prefix, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r, true)
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, kv)
	}
	return &q, nil // trailing bytes ignored
}

// TestOldFramesDecodeUnderNewCodec: frames produced by the pre-extension
// encoder must decode under the current codec as untraced requests.
func TestOldFramesDecodeUnderNewCodec(t *testing.T) {
	for _, q := range seedRequests() {
		q.TraceID, q.SpanID, q.ReqID = 0, 0, 0 // the old codec cannot express these
		old := oldEncodeRequest(q)
		got, err := DecodeRequest(old)
		if err != nil {
			t.Fatalf("old frame for %v rejected: %v", q.Op, err)
		}
		if got.TraceID != 0 || got.SpanID != 0 {
			t.Fatalf("old frame decoded with trace %d/%d", got.TraceID, got.SpanID)
		}
		if !reflect.DeepEqual(normalizeReq(q), normalizeReq(got)) {
			t.Fatalf("old frame round trip diverged:\n  %+v\n  %+v", q, got)
		}
	}
}

// TestNewFramesDecodeUnderOldCodec: traced frames from the current
// encoder must decode under the old codec — the extension rides in the
// trailing bytes the old decoder ignores.
func TestNewFramesDecodeUnderOldCodec(t *testing.T) {
	for _, q := range seedRequests() {
		q.TraceID = 0xCAFE
		q.SpanID = 42
		framed := q.Encode()
		got, err := oldDecodeRequest(framed)
		if err != nil {
			t.Fatalf("traced frame for %v rejected by old codec: %v", q.Op, err)
		}
		want := *q
		want.TraceID, want.SpanID, want.ReqID = 0, 0, 0
		if !reflect.DeepEqual(normalizeReq(&want), normalizeReq(got)) {
			t.Fatalf("old codec misread traced frame:\n  %+v\n  %+v", want, got)
		}
	}
}

// TestUntracedFramesAreByteIdentical: with TraceID zero the new encoder
// must produce exactly the old wire bytes, so the benchmarks' measured
// wire sizes are unchanged when tracing is off.
func TestUntracedFramesAreByteIdentical(t *testing.T) {
	for _, q := range seedRequests() {
		q.TraceID, q.SpanID, q.ReqID = 0, 0, 0
		if !bytes.Equal(q.Encode(), oldEncodeRequest(q)) {
			t.Fatalf("untraced encoding of %v differs from pre-extension bytes", q.Op)
		}
	}
}

// TestTraceExtensionRoundTrip: traced frames survive the current
// encode/decode pair with IDs intact.
func TestTraceExtensionRoundTrip(t *testing.T) {
	q := &Request{Op: OpGet, NS: NSMeta, Key: "m/1/o", TraceID: 7, SpanID: 9}
	got, err := DecodeRequest(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 7 || got.SpanID != 9 {
		t.Fatalf("trace ids = %d/%d, want 7/9", got.TraceID, got.SpanID)
	}
	// Varint-boundary values.
	q = &Request{Op: OpPing, TraceID: 1<<64 - 1, SpanID: 1 << 63}
	got, err = DecodeRequest(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 1<<64-1 || got.SpanID != 1<<63 {
		t.Fatalf("trace ids = %d/%d", got.TraceID, got.SpanID)
	}
}

// TestMalformedTraceTailIgnored: a truncated or garbled tail downgrades
// to "untraced" instead of rejecting the frame.
func TestMalformedTraceTailIgnored(t *testing.T) {
	base := oldEncodeRequest(&Request{Op: OpGet, NS: NSData, Key: "k"})
	cases := map[string][]byte{
		"half varint":        append(append([]byte(nil), base...), 0x80),
		"tid only":           append(append([]byte(nil), base...), 0x07),
		"tid, torn sid":      append(append([]byte(nil), base...), 0x07, 0xFF),
		"zero tid with junk": append(append([]byte(nil), base...), 0x00, 0x01, 0x02),
	}
	for name, b := range cases {
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("%s: rejected: %v", name, err)
		}
		if got.TraceID != 0 {
			t.Fatalf("%s: trace id %d from malformed tail", name, got.TraceID)
		}
	}
}

// --- multiplexing (ReqID) extension compatibility --------------------------

// oldEncodeResponse replicates the pre-ReqID response encoder byte for
// byte: status, err, val, items — and nothing after.
func oldEncodeResponse(p *Response) []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(p.Status))
	putString(&buf, p.Err)
	putBytes(&buf, p.Val)
	putUvarint(&buf, uint64(len(p.Items)))
	for _, kv := range p.Items {
		encodeKV(&buf, kv)
	}
	return buf.Bytes()
}

// oldDecodeResponse replicates the pre-ReqID response decoder, which
// ignored any bytes after the item list.
func oldDecodeResponse(b []byte) (*Response, error) {
	r := &reader{b: b}
	var p Response
	st, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	p.Status = Status(st)
	if p.Err, err = r.str(); err != nil {
		return nil, err
	}
	val, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if len(val) > 0 {
		p.Val = append([]byte(nil), val...)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		kv, err := decodeKV(r, true)
		if err != nil {
			return nil, err
		}
		p.Items = append(p.Items, kv)
	}
	return &p, nil // trailing bytes ignored
}

// TestReqIDRoundTrip: every traced × multiplexed combination survives the
// current encode/decode pair with all three IDs intact.
func TestReqIDRoundTrip(t *testing.T) {
	cases := []struct {
		name          string
		tid, sid, rid uint64
	}{
		{"mux only", 0, 0, 5},
		{"traced mux", 7, 9, 5},
		{"neither", 0, 0, 0},
		{"traced only", 7, 9, 0},
		{"varint boundary", 1<<64 - 1, 1 << 63, 1<<64 - 1},
	}
	for _, tc := range cases {
		q := &Request{Op: OpGet, NS: NSMeta, Key: "m/1/o", TraceID: tc.tid, SpanID: tc.sid, ReqID: tc.rid}
		got, err := DecodeRequest(q.Encode())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.TraceID != tc.tid || got.SpanID != tc.sid || got.ReqID != tc.rid {
			t.Fatalf("%s: decoded %d/%d/%d, want %d/%d/%d", tc.name,
				got.TraceID, got.SpanID, got.ReqID, tc.tid, tc.sid, tc.rid)
		}
	}
	for _, rid := range []uint64{0, 5, 1<<64 - 1} {
		p := &Response{Status: StatusOK, Val: []byte("v"), ReqID: rid}
		got, err := DecodeResponse(p.Encode())
		if err != nil {
			t.Fatalf("resp rid=%d: %v", rid, err)
		}
		if got.ReqID != rid {
			t.Fatalf("resp decoded rid %d, want %d", got.ReqID, rid)
		}
	}
}

// TestUnmultiplexedResponsesAreByteIdentical: with ReqID zero the new
// response encoder must produce exactly the pre-extension wire bytes.
func TestUnmultiplexedResponsesAreByteIdentical(t *testing.T) {
	for _, p := range seedResponses() {
		p.ReqID = 0
		if !bytes.Equal(p.Encode(), oldEncodeResponse(p)) {
			t.Fatalf("unmultiplexed encoding of status %d differs from pre-extension bytes", p.Status)
		}
	}
}

// TestMuxFramesInteropWithOldCodec: multiplexed frames (requests and
// responses) must decode under the old codec, which sees the ReqID as
// ignorable trailing bytes; and old frames must decode under the new
// codec with ReqID zero.
func TestMuxFramesInteropWithOldCodec(t *testing.T) {
	for _, q := range seedRequests() {
		q.ReqID = 99
		got, err := oldDecodeRequest(q.Encode())
		if err != nil {
			t.Fatalf("mux frame for %v rejected by old codec: %v", q.Op, err)
		}
		want := *q
		want.TraceID, want.SpanID, want.ReqID = 0, 0, 0
		if !reflect.DeepEqual(normalizeReq(&want), normalizeReq(got)) {
			t.Fatalf("old codec misread mux frame:\n  %+v\n  %+v", want, got)
		}
	}
	for _, p := range seedResponses() {
		p.ReqID = 99
		got, err := oldDecodeResponse(p.Encode())
		if err != nil {
			t.Fatalf("mux response rejected by old codec: %v", err)
		}
		want := *p
		want.ReqID = 0
		if !reflect.DeepEqual(normalizeResp(&want), normalizeResp(got)) {
			t.Fatalf("old codec misread mux response:\n  %+v\n  %+v", want, got)
		}
		// And the reverse direction: a pre-extension frame decodes under
		// the current codec as unmultiplexed.
		want.ReqID = 0
		got2, err := DecodeResponse(oldEncodeResponse(&want))
		if err != nil {
			t.Fatalf("old response rejected by new codec: %v", err)
		}
		if got2.ReqID != 0 {
			t.Fatalf("old response decoded with req id %d", got2.ReqID)
		}
	}
}

// TestMalformedReqIDTailIgnored: a garbled response tail downgrades to
// "unmultiplexed" instead of rejecting the frame.
func TestMalformedReqIDTailIgnored(t *testing.T) {
	base := oldEncodeResponse(&Response{Status: StatusOK, Val: []byte("v")})
	cases := map[string][]byte{
		"half varint": append(append([]byte(nil), base...), 0x80),
		"overlong":    append(append([]byte(nil), base...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, b := range cases {
		got, err := DecodeResponse(b)
		if err != nil {
			t.Fatalf("%s: rejected: %v", name, err)
		}
		if got.ReqID != 0 {
			t.Fatalf("%s: req id %d from malformed tail", name, got.ReqID)
		}
	}
}
