package wire

import (
	"encoding/binary"
	"fmt"
)

// Wire v2: self-describing frames.
//
// The v1 codec identified messages purely by context (requests flow one
// way, responses the other) and accreted three trailing-uvarint
// extensions (TraceID, SpanID, ReqID) that depended on lenient-tail
// parsing. v2 supersedes that pattern with a self-describing header in
// the style of Celestia's ADR-009 universal share encoding: every
// message names its own version and kind, and optional metadata lives in
// a typed extension block up front instead of an untyped tail.
//
// A v2 message (inside the unchanged outer 4-byte length framing) is:
//
//	msg  := magic version info [ext] body
//	magic   = 0x53 ('S')
//	version = 0x02
//	info    = bits 0-3: kind; bit 4: hasExt; bits 5-7 reserved (must be 0)
//	ext     = uvarint n, then n × (uvarint id, uvarint val); unknown ids
//	          are skipped, so new extensions never break old v2 peers
//	body    = kind-specific, sharing the v1 body codecs byte-for-byte
//
// Kinds:
//
//	KindRequest  — body is the v1 request body (no trailing hacks);
//	               TraceID/SpanID/ReqID ride in the ext block
//	KindResponse — body is the v1 response body; ReqID in the ext block
//	KindHello    — version negotiation opener; body is uvarint maxver,
//	               uvarint caps (see HelloFrame for the dual encoding)
//	KindHelloAck — server's acceptance; body is uvarint version, uvarint caps
//	KindPack     — batch container: uvarint n, then n × (u32 len, msg);
//	               sub-messages must not themselves be packs
//
// Magic disambiguation: 0x53 can never start a valid v1 request (v1 ops
// are 1..8) and a v1 response starting with 0x53 would have an absurd
// status, so IsV2 cleanly splits the two codecs per frame and peers can
// negotiate without an extra round trip.
const (
	Magic    = 0x53 // 'S' for Sharoes
	Version2 = 0x02

	infoKindMask = 0x0f
	infoHasExt   = 0x10
)

// Frame kinds (info bits 0-3).
const (
	KindRequest  = 1
	KindResponse = 2
	KindHello    = 3
	KindHelloAck = 4
	KindPack     = 5
)

// Extension IDs. All values are uvarints; unknown IDs are skipped by
// decoders so the set can grow without version bumps.
const (
	ExtTraceID    = 1
	ExtSpanID     = 2
	ExtReqID      = 3
	ExtShardRoute = 4 // reserved: shard-routing hint for proxy tiers
)

// maxExtCount bounds the extension block so a corrupt count can't stall
// the parser. Far above any real use (we define four IDs).
const maxExtCount = 64

// MaxPackFrames bounds the sub-messages in one pack; it is both the
// encoder's coalescing limit and the decoder's sanity bound.
const MaxPackFrames = 256

// IsV2 reports whether payload b is a v2 message. False means the frame
// should be handed to the v1 codec (or is garbage the v1 codec will
// reject).
func IsV2(b []byte) bool {
	if len(b) < 3 || b[0] != Magic || b[1] != Version2 {
		return false
	}
	kind := b[2] & infoKindMask
	return kind >= KindRequest && kind <= KindPack
}

// Msg is a decoded v2 message. Exactly one of the kind-specific fields
// is meaningful, selected by Kind.
type Msg struct {
	Kind int

	Req  Request  // KindRequest
	Resp Response // KindResponse

	HelloVer  uint64 // KindHello (peer's max version) / KindHelloAck (chosen)
	HelloCaps uint64 // capability bits; none defined yet

	// Pack holds each sub-message's raw bytes, aliasing the input
	// buffer. KindPack only; decode each element with DecodeV2.
	Pack [][]byte
}

// appendV2Header appends magic, version, info, and — when the request's
// metadata calls for it — the extension block.
func appendV2Header(dst []byte, kind int, exts ...[2]uint64) []byte {
	info := byte(kind)
	if len(exts) > 0 {
		info |= infoHasExt
	}
	dst = append(dst, Magic, Version2, info)
	if len(exts) > 0 {
		dst = appendUvarint(dst, uint64(len(exts)))
		for _, e := range exts {
			dst = appendUvarint(dst, e[0])
			dst = appendUvarint(dst, e[1])
		}
	}
	return dst
}

// AppendRequestV2 appends the v2 encoding of q to dst. TraceID, SpanID,
// and ReqID travel in the extension block; the body is the shared v1
// request body with no trailing extensions. Each extension is emitted
// independently when nonzero — unlike the v1 tail, whose positional
// grammar could not represent a span without a trace — so every
// decodable combination re-encodes to the same message.
func AppendRequestV2(dst []byte, q *Request) []byte {
	var exts [3][2]uint64
	n := 0
	if q.TraceID != 0 {
		exts[n] = [2]uint64{ExtTraceID, q.TraceID}
		n++
	}
	if q.SpanID != 0 {
		exts[n] = [2]uint64{ExtSpanID, q.SpanID}
		n++
	}
	if q.ReqID != 0 {
		exts[n] = [2]uint64{ExtReqID, q.ReqID}
		n++
	}
	dst = appendV2Header(dst, KindRequest, exts[:n]...)
	return appendRequestBody(dst, q)
}

// EncodeV2 serializes the request as a v2 message.
func (q *Request) EncodeV2() []byte { return AppendRequestV2(nil, q) }

// AppendResponseV2 appends the v2 encoding of p to dst. ReqID travels in
// the extension block.
func AppendResponseV2(dst []byte, p *Response) []byte {
	if p.ReqID != 0 {
		dst = appendV2Header(dst, KindResponse, [2]uint64{ExtReqID, p.ReqID})
	} else {
		dst = appendV2Header(dst, KindResponse)
	}
	return appendResponseBody(dst, p)
}

// EncodeV2 serializes the response as a v2 message.
func (p *Response) EncodeV2() []byte { return AppendResponseV2(nil, p) }

// HelloFrame returns the client's version-negotiation opener. The nine
// bytes are crafted to parse BOTH ways:
//
//   - As v2: magic 0x53, version 0x02, info 0x03 (KindHello, no ext),
//     body maxver=2 caps=0, then padding a v2 decoder ignores.
//   - As v1: op 0x53 (unknown), ns 0x02, key of length 3, empty val,
//     empty prefix, zero items — a well-formed request for an op the
//     server doesn't know.
//
// So a v1 server answers it with a normal StatusBadRequest response
// (its first response on the conn, since hello carries no ReqID and
// ReqID-0 requests dispatch serially) instead of killing the
// connection, and the client takes that as "speak v1". A v2 server
// recognizes the magic and replies KindHelloAck.
func HelloFrame() []byte {
	return []byte{Magic, Version2, KindHello, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00}
}

// AppendHelloAck appends the server's negotiation acceptance: the
// version both sides will speak and the server's capability bits.
func AppendHelloAck(dst []byte, version, caps uint64) []byte {
	dst = appendV2Header(dst, KindHelloAck)
	dst = appendUvarint(dst, version)
	return appendUvarint(dst, caps)
}

// DecodeV2 parses a v2 message. Byte slices in the result (request/
// response Vals, pack elements) alias b — the zero-copy contract; call
// Req.Detach/Resp.Detach to take ownership, and hold the backing Buf
// until every borrowed slice is dead.
func DecodeV2(b []byte) (*Msg, error) {
	var m Msg
	if err := DecodeV2Into(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeV2Into parses a v2 message into m, reusing m's allocations
// (Items and Pack slices are truncated and re-grown). Borrowed-aliasing
// rules match DecodeV2. Corrupt input — wrong magic, unknown version,
// bad kind, truncated header — returns ErrBadMessage, never panics.
func DecodeV2Into(b []byte, m *Msg) error {
	if len(b) < 3 {
		return fmt.Errorf("%w: short v2 header (%d bytes)", ErrBadMessage, len(b))
	}
	if b[0] != Magic {
		return fmt.Errorf("%w: bad magic 0x%02x", ErrBadMessage, b[0])
	}
	if b[1] != Version2 {
		return fmt.Errorf("%w: unsupported wire version %d", ErrBadMessage, b[1])
	}
	info := b[2]
	kind := int(info & infoKindMask)
	if kind < KindRequest || kind > KindPack {
		return fmt.Errorf("%w: unknown frame kind %d", ErrBadMessage, kind)
	}
	*m = Msg{Kind: kind, Req: Request{Items: m.Req.Items[:0]},
		Resp: Response{Items: m.Resp.Items[:0]}, Pack: m.Pack[:0]}
	r := &reader{b: b[3:]}

	var traceID, spanID, reqID uint64
	if info&infoHasExt != 0 {
		n, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("%w: ext count: %w", ErrBadMessage, err)
		}
		if n > maxExtCount {
			return fmt.Errorf("%w: absurd ext count %d", ErrBadMessage, n)
		}
		for i := uint64(0); i < n; i++ {
			id, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("%w: ext %d id: %w", ErrBadMessage, i, err)
			}
			val, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("%w: ext %d val: %w", ErrBadMessage, i, err)
			}
			switch id {
			case ExtTraceID:
				traceID = val
			case ExtSpanID:
				spanID = val
			case ExtReqID:
				reqID = val
				// Unknown IDs (including ExtShardRoute, which no layer
				// emits yet) are skipped for forward compatibility.
			}
		}
	}

	switch kind {
	case KindRequest:
		if err := decodeRequestBody(r, &m.Req, false); err != nil {
			return err
		}
		m.Req.TraceID, m.Req.SpanID, m.Req.ReqID = traceID, spanID, reqID
	case KindResponse:
		if err := decodeResponseBody(r, &m.Resp, false); err != nil {
			return err
		}
		m.Resp.ReqID = reqID
	case KindHello, KindHelloAck:
		ver, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("%w: hello version: %w", ErrBadMessage, err)
		}
		caps, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("%w: hello caps: %w", ErrBadMessage, err)
		}
		m.HelloVer, m.HelloCaps = ver, caps
		// Trailing bytes are padding (HelloFrame carries some so the
		// opener also parses as a v1 request) — ignored by design.
	case KindPack:
		n, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("%w: pack count: %w", ErrBadMessage, err)
		}
		if n > MaxPackFrames {
			return fmt.Errorf("%w: absurd pack count %d", ErrBadMessage, n)
		}
		for i := uint64(0); i < n; i++ {
			if len(r.b) < 4 {
				return fmt.Errorf("%w: pack %d: short length", ErrBadMessage, i)
			}
			sz := binary.BigEndian.Uint32(r.b)
			r.b = r.b[4:]
			if uint64(sz) > uint64(len(r.b)) {
				return fmt.Errorf("%w: pack %d: length %d exceeds remaining %d", ErrBadMessage, i, sz, len(r.b))
			}
			sub := r.b[:sz]
			r.b = r.b[sz:]
			// Nested packs are rejected: they would let a small frame
			// claim quadratic decode work and complicate refcounting.
			if IsV2(sub) && sub[2]&infoKindMask == KindPack {
				return fmt.Errorf("%w: pack %d: nested pack", ErrBadMessage, i)
			}
			m.Pack = append(m.Pack, sub)
		}
	}
	return nil
}

// Pack accumulates v2 messages into one batch frame so a burst of
// queued sends pays a single length-prefixed write — one syscall, one
// netsim transmit event — instead of one per message.
//
// Usage: Reset, Add* for each message, then Payload. The builder reuses
// its buffer across Reset cycles, so a long-lived writer goroutine
// amortizes to zero allocations.
type Pack struct {
	buf []byte
	n   int
}

// packHeaderLen reserves room for the pack wrapper: 3 header bytes plus
// a worst-case uvarint count. Payload trims the slack.
const packHeaderLen = 3 + binary.MaxVarintLen32

// Reset clears the builder for a new batch, keeping its capacity.
func (pk *Pack) Reset() {
	if pk.buf == nil {
		pk.buf = make([]byte, packHeaderLen, 4096)
	}
	pk.buf = pk.buf[:packHeaderLen]
	pk.n = 0
}

// Len reports the number of messages added since Reset.
func (pk *Pack) Len() int { return pk.n }

// Size reports the builder's current payload size in bytes, for bounding
// a batch before it crosses a size class.
func (pk *Pack) Size() int { return len(pk.buf) }

// add frames one encoded sub-message, returning its encoded length for
// per-message byte attribution.
func (pk *Pack) add(encode func([]byte) []byte) int {
	lenAt := len(pk.buf)
	pk.buf = append(pk.buf, 0, 0, 0, 0)
	start := len(pk.buf)
	pk.buf = encode(pk.buf)
	sz := len(pk.buf) - start
	binary.BigEndian.PutUint32(pk.buf[lenAt:], uint32(sz))
	pk.n++
	return sz
}

// AddRequest appends a v2-encoded request, returning its sub-message
// length in bytes.
func (pk *Pack) AddRequest(q *Request) int {
	return pk.add(func(dst []byte) []byte { return AppendRequestV2(dst, q) })
}

// AddResponse appends a v2-encoded response, returning its sub-message
// length in bytes.
func (pk *Pack) AddResponse(p *Response) int {
	return pk.add(func(dst []byte) []byte { return AppendResponseV2(dst, p) })
}

// Payload returns the finished frame payload, valid until the next
// Reset. A single-message batch is unwrapped — the bare message is
// returned without the pack envelope, so peers only ever see packs when
// batching actually coalesced something.
func (pk *Pack) Payload() []byte {
	if pk.n == 1 {
		return pk.buf[packHeaderLen+4:]
	}
	// Write the header directly before the first length prefix by
	// right-aligning it in the reserved space.
	count := uint64(pk.n)
	var cnt [binary.MaxVarintLen32]byte
	cn := binary.PutUvarint(cnt[:], count)
	start := packHeaderLen - 3 - cn
	b := pk.buf[start:]
	b[0], b[1], b[2] = Magic, Version2, KindPack
	copy(b[3:], cnt[:cn])
	return b
}
