package wire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpPing},
		{Op: OpGet, NS: NSMeta, Key: "m/42/c/3"},
		{Op: OpPut, NS: NSData, Key: "b/7", Val: []byte{1, 2, 3}},
		{Op: OpList, NS: NSSuper, Prefix: "u/"},
		{Op: OpBatchGet, NS: NSMeta, Items: []KV{
			{NS: NSMeta, Key: "a"}, {NS: NSData, Key: "b"},
		}},
		{Op: OpBatchPut, Items: []KV{
			{NS: NSMeta, Key: "a", Val: []byte("v1")},
			{NS: NSData, Key: "b", Delete: true},
		}},
	}
	for _, q := range cases {
		got, err := DecodeRequest(q.Encode())
		if err != nil {
			t.Fatalf("%v: %v", q.Op, err)
		}
		if !reflect.DeepEqual(got, q) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", q.Op, got, q)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK},
		{Status: StatusOK, Val: []byte("blob")},
		{Status: StatusNotFound},
		{Status: StatusError, Err: "disk on fire"},
		{Status: StatusOK, Items: []KV{
			{NS: NSMeta, Key: "k1", Val: []byte("v1")},
			{NS: NSMeta, Key: "k2", Val: []byte("v2")},
		}},
	}
	for _, p := range cases {
		got, err := DecodeResponse(p.Encode())
		if err != nil {
			t.Fatalf("%v: %v", p.Status, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}
	}
}

func TestRequestPropertyRoundTrip(t *testing.T) {
	f := func(key string, val []byte, prefix string, itemKey string, itemVal []byte, del bool) bool {
		q := &Request{Op: OpPut, NS: NSData, Key: key, Prefix: prefix}
		if len(val) > 0 {
			q.Val = val
		}
		q.Items = []KV{{NS: NSMeta, Key: itemKey, Delete: del}}
		if len(itemVal) > 0 {
			q.Items[0].Val = itemVal
		}
		got, err := DecodeRequest(q.Encode())
		return err == nil && reflect.DeepEqual(got, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2, 200}, bytes.Repeat([]byte{0xFF}, 10)} {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("DecodeRequest(%v) accepted garbage", b)
		}
	}
	if _, err := DecodeResponse([]byte{1, 0xFF}); err == nil {
		t.Error("DecodeResponse accepted garbage")
	}
	// Absurd item counts must be rejected rather than looping.
	var buf bytes.Buffer
	buf.Write([]byte{byte(OpBatchPut), 0, 0, 0, 0}) // op, ns, key="", val="", prefix=""
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge varint count
	if _, err := DecodeRequest(buf.Bytes()); !errors.Is(err, ErrBadMessage) {
		t.Errorf("huge item count: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("sharoes frame")
	n, err := WriteFrame(&buf, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4+len(payload) {
		t.Errorf("wrote %d bytes", n)
	}
	got, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != n || !bytes.Equal(got, payload) {
		t.Errorf("got %q (%d bytes)", got, rn)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if _, err := WriteFrame(new(bytes.Buffer), make([]byte, MaxMessageSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized write: %v", err)
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB claimed length
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized read: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello"))
	trunc := buf.Bytes()[:6]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewCodec(a), NewCodec(b)
	defer ca.Close()
	defer cb.Close()

	go func() {
		q, err := cb.ReadRequest()
		if err != nil {
			t.Error(err)
			return
		}
		if q.Op != OpGet || q.Key != "m/1" {
			t.Errorf("server got %+v", q)
		}
		cb.SendResponse(&Response{Status: StatusOK, Val: []byte("metadata")})
	}()

	resp, err := ca.Call(&Request{Op: OpGet, NS: NSMeta, Key: "m/1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Val) != "metadata" {
		t.Errorf("resp = %+v", resp)
	}
	if ca.BytesOut == 0 || ca.BytesIn == 0 {
		t.Error("codec byte counters not updated")
	}
}

func TestResponseAsError(t *testing.T) {
	if err := (&Response{Status: StatusOK}).AsError(); err != nil {
		t.Errorf("OK: %v", err)
	}
	if err := (&Response{Status: StatusNotFound}).AsError(); !errors.Is(err, ErrNotFound) {
		t.Errorf("NotFound: %v", err)
	}
	if err := (&Response{Status: StatusBadRequest, Err: "x"}).AsError(); !errors.Is(err, ErrRemote) {
		t.Errorf("BadRequest: %v", err)
	}
	if err := (&Response{Status: StatusError, Err: "y"}).AsError(); !errors.Is(err, ErrRemote) {
		t.Errorf("Error: %v", err)
	}
}

func TestOpAndNSStrings(t *testing.T) {
	ops := map[Op]string{OpPing: "ping", OpGet: "get", OpPut: "put", OpDelete: "delete",
		OpList: "list", OpBatchGet: "batchget", OpBatchPut: "batchput", OpStats: "stats", Op(99): "op(99)"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	nss := map[NS]string{NSMeta: "meta", NSData: "data", NSSuper: "super",
		NSGroupKey: "groupkey", NSSplit: "split", NSSys: "sys", NS(42): "ns(42)"}
	for ns, want := range nss {
		if ns.String() != want {
			t.Errorf("NS %d.String() = %q, want %q", ns, ns.String(), want)
		}
	}
}

func BenchmarkRequestEncode(b *testing.B) {
	q := &Request{Op: OpPut, NS: NSData, Key: "b/123456/c/2", Val: make([]byte, 4096)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Encode()
	}
}

func BenchmarkRequestDecode(b *testing.B) {
	q := &Request{Op: OpPut, NS: NSData, Key: "b/123456/c/2", Val: make([]byte, 4096)}
	payload := q.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(payload); err != nil {
			b.Fatal(err)
		}
	}
}
