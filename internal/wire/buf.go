package wire

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Buf is a pooled, refcounted frame buffer. The read hot path acquires one
// per frame (ReadFrameBuf), hands payload sub-slices to decoders and
// handlers, and returns the memory to its size-class pool on the final
// Release — so a pipelined connection stops allocating per frame.
//
// Ownership discipline: every AcquireBuf/ReadFrameBuf creates an
// obligation to call Release exactly once per reference. A holder that
// hands a sub-slice to another goroutine must Retain first and the
// receiver must Release when done (the sharded server does this for pack
// frames: one buffer, one reference per sub-message). After the final
// Release every sub-slice of Bytes is invalid — the memory may be handed
// to a concurrent reader. The sharoes-vet resleak analyzer enforces the
// Release obligation on all paths.
type Buf struct {
	data []byte
	n    int
	pool *sync.Pool // nil for oversize (unpooled) buffers
	refs atomic.Int32
}

// bufClasses are the pooled size classes. A frame larger than the last
// class gets a plain allocation (rare: MaxMessageSize frames only occur
// on bulk List/BatchGet replies).
var bufClasses = [...]int{1 << 10, 16 << 10, 256 << 10, 4 << 20}

var bufPools = func() [len(bufClasses)]*sync.Pool {
	var pools [len(bufClasses)]*sync.Pool
	for i, size := range bufClasses {
		size := size
		pools[i] = &sync.Pool{New: func() any {
			return &Buf{data: make([]byte, size)}
		}}
	}
	return pools
}()

// AcquireBuf returns a buffer with at least n usable bytes and one
// reference. Bytes() has length exactly n; contents are undefined.
func AcquireBuf(n int) *Buf {
	for i, size := range bufClasses {
		if n <= size {
			b := bufPools[i].Get().(*Buf)
			b.pool = bufPools[i]
			b.n = n
			b.refs.Store(1)
			return b
		}
	}
	b := &Buf{data: make([]byte, n), n: n}
	b.refs.Store(1)
	return b
}

// Bytes returns the buffer's payload slice. Valid until the final
// Release.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Retain adds a reference; each Retain requires a matching Release.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops one reference; the last one returns the memory to its
// pool. Releasing more times than retained is a bug and panics rather
// than silently corrupting a concurrently reused buffer.
func (b *Buf) Release() {
	switch refs := b.refs.Add(-1); {
	case refs == 0:
		if b.pool != nil {
			b.pool.Put(b)
		}
	case refs < 0:
		panic(fmt.Sprintf("wire: Buf over-released (refs %d)", refs))
	}
}

// ReadFrameBuf reads one length-prefixed message into a pooled buffer and
// returns it with the number of bytes consumed from the wire. The caller
// owns one reference and must Release it when every sub-slice of the
// payload is dead.
func ReadFrameBuf(r io.Reader) (*Buf, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	if n > MaxMessageSize {
		return nil, 4, ErrTooLarge
	}
	buf := AcquireBuf(int(n))
	if _, err := io.ReadFull(r, buf.Bytes()); err != nil {
		buf.Release()
		return nil, 4, fmt.Errorf("%w: %w", ErrBadMessage, err)
	}
	return buf, 4 + int(n), nil
}
