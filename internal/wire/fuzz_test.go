package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz seeds: every valid encoding the unit tests exercise plus the
// corrupt-frame table, so the fuzzer starts from both sides of the
// accept/reject boundary.
func seedRequests() []*Request {
	return []*Request{
		{Op: OpPing},
		{Op: OpGet, NS: NSMeta, Key: "m/1/u/alice"},
		{Op: OpPut, NS: NSData, Key: "f/9/0/3", Val: []byte("sealed-bytes")},
		{Op: OpDelete, NS: NSSuper, Key: "sb/corp/alice"},
		{Op: OpList, NS: NSData, Prefix: "f/9/"},
		{Op: OpBatchGet, Items: []KV{{NS: NSMeta, Key: "a"}, {NS: NSData, Key: "b"}}},
		{Op: OpBatchPut, Items: []KV{
			{NS: NSMeta, Key: "a", Val: []byte("x")},
			{NS: NSData, Key: "b", Delete: true},
		}},
		{Op: OpStats},
		// Trace-extension frame: nonzero TraceID appends the optional
		// trailing TraceID/SpanID uvarints (see Request.TraceID).
		{Op: OpGet, NS: NSMeta, Key: "m/1/u/alice", TraceID: 7, SpanID: 9},
		// Multiplexing-extension frames (see Request.ReqID): traced and
		// untraced, the latter carrying the explicit zero TraceID.
		{Op: OpGet, NS: NSMeta, Key: "m/1/u/alice", TraceID: 7, SpanID: 9, ReqID: 3},
		{Op: OpPut, NS: NSData, Key: "f/9/0/3", Val: []byte("sealed-bytes"), ReqID: 1<<64 - 1},
	}
}

func seedResponses() []*Response {
	return []*Response{
		{Status: StatusOK},
		{Status: StatusOK, Val: []byte("blob")},
		{Status: StatusNotFound},
		{Status: StatusBadRequest, Err: "unknown op"},
		{Status: StatusError, Err: "disk full"},
		{Status: StatusOK, Items: []KV{{NS: NSData, Key: "k", Val: []byte("v")}}},
		// Multiplexing-extension frames (see Response.ReqID).
		{Status: StatusOK, Val: []byte("blob"), ReqID: 3},
		{Status: StatusNotFound, ReqID: 1<<64 - 1},
	}
}

// FuzzDecodeRequest checks that DecodeRequest never panics on arbitrary
// input and that accepted inputs survive an encode/decode round trip.
func FuzzDecodeRequest(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(q.Encode())
	}
	for _, tc := range corruptFrames {
		f.Add(tc.b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeRequest(b)
		if err != nil {
			if q != nil {
				t.Fatal("non-nil request alongside error")
			}
			return
		}
		// Accepted input: the decoded value must be stable under
		// re-encoding (Encode is canonical, so one more decode must
		// reproduce it exactly).
		re := q.Encode()
		q2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeReq(q), normalizeReq(q2)) {
			t.Fatalf("round trip diverged:\n  %+v\n  %+v", q, q2)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for _, p := range seedResponses() {
		f.Add(p.Encode())
	}
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodeResponse(b)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil response alongside error")
			}
			return
		}
		re := p.Encode()
		p2, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeResp(p), normalizeResp(p2)) {
			t.Fatalf("round trip diverged:\n  %+v\n  %+v", p, p2)
		}
	})
}

// FuzzReadFrame checks the framing layer: hostile length prefixes must be
// rejected by the size limit, and every accepted frame must return
// exactly the payload written.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		if n != 4+len(payload) {
			t.Fatalf("consumed %d bytes for %d-byte payload", n, len(payload))
		}
		if len(payload) > MaxMessageSize {
			t.Fatalf("oversized payload accepted: %d", len(payload))
		}
	})
}

// normalizeReq maps empty and nil slices together for comparison (the
// wire format does not distinguish them).
func normalizeReq(q *Request) *Request {
	out := *q
	if len(out.Val) == 0 {
		out.Val = nil
	}
	out.Items = normalizeKVs(out.Items)
	return &out
}

func normalizeResp(p *Response) *Response {
	out := *p
	if len(out.Val) == 0 {
		out.Val = nil
	}
	out.Items = normalizeKVs(out.Items)
	return &out
}

func normalizeKVs(items []KV) []KV {
	if len(items) == 0 {
		return nil
	}
	out := make([]KV, len(items))
	for i, kv := range items {
		if len(kv.Val) == 0 {
			kv.Val = nil
		}
		out[i] = kv
	}
	return out
}
