package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestV2RequestRoundTrip(t *testing.T) {
	for _, q := range seedRequests() {
		b := q.EncodeV2()
		if !IsV2(b) {
			t.Fatalf("IsV2 false for v2 encoding of %+v", q)
		}
		m, err := DecodeV2(b)
		if err != nil {
			t.Fatalf("DecodeV2(%+v): %v", q, err)
		}
		if m.Kind != KindRequest {
			t.Fatalf("kind = %d, want KindRequest", m.Kind)
		}
		if !reflect.DeepEqual(normalizeReq(q), normalizeReq(&m.Req)) {
			t.Fatalf("round trip diverged:\n  %+v\n  %+v", q, &m.Req)
		}
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	for _, p := range seedResponses() {
		b := p.EncodeV2()
		if !IsV2(b) {
			t.Fatalf("IsV2 false for v2 encoding of %+v", p)
		}
		m, err := DecodeV2(b)
		if err != nil {
			t.Fatalf("DecodeV2(%+v): %v", p, err)
		}
		if m.Kind != KindResponse {
			t.Fatalf("kind = %d, want KindResponse", m.Kind)
		}
		if !reflect.DeepEqual(normalizeResp(p), normalizeResp(&m.Resp)) {
			t.Fatalf("round trip diverged:\n  %+v\n  %+v", p, &m.Resp)
		}
	}
}

// TestV2NotConfusedWithV1 checks the magic split: no v1 seed encoding may
// pass IsV2 (v1 ops and statuses never collide with the 0x53 magic).
func TestV2NotConfusedWithV1(t *testing.T) {
	for _, q := range seedRequests() {
		if IsV2(q.Encode()) {
			t.Fatalf("v1 request encoding classified as v2: %+v", q)
		}
	}
	for _, p := range seedResponses() {
		if IsV2(p.Encode()) {
			t.Fatalf("v1 response encoding classified as v2: %+v", p)
		}
	}
}

// TestHelloDualParse pins the negotiation opener's double life: a v2 peer
// must see KindHello with maxver 2, while a v1 peer — both the current
// lenient decoder and the frozen pre-extension replica — must accept the
// same bytes as a well-formed request for an unknown op, so old servers
// answer StatusBadRequest instead of dropping the connection.
func TestHelloDualParse(t *testing.T) {
	hello := HelloFrame()
	if !IsV2(hello) {
		t.Fatal("hello frame not recognized as v2")
	}
	m, err := DecodeV2(hello)
	if err != nil {
		t.Fatalf("DecodeV2(hello): %v", err)
	}
	if m.Kind != KindHello || m.HelloVer != 2 || m.HelloCaps != 0 {
		t.Fatalf("hello decoded as kind=%d ver=%d caps=%d, want kind=%d ver=2 caps=0",
			m.Kind, m.HelloVer, m.HelloCaps, KindHello)
	}
	for name, dec := range map[string]func([]byte) (*Request, error){
		"current": DecodeRequest,
		"old":     oldDecodeRequest,
	} {
		q, err := dec(hello)
		if err != nil {
			t.Fatalf("%s v1 decoder rejected hello frame: %v", name, err)
		}
		if q.Op == OpPing || (q.Op >= OpGet && q.Op <= OpStats) {
			t.Fatalf("%s v1 decoder parsed hello as known op %d", name, q.Op)
		}
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	b := AppendHelloAck(nil, 2, 0)
	m, err := DecodeV2(b)
	if err != nil {
		t.Fatalf("DecodeV2(helloack): %v", err)
	}
	if m.Kind != KindHelloAck || m.HelloVer != 2 || m.HelloCaps != 0 {
		t.Fatalf("helloack decoded as kind=%d ver=%d caps=%d", m.Kind, m.HelloVer, m.HelloCaps)
	}
}

// TestV2Corrupt drives the parser through hostile headers: every case
// must surface ErrBadMessage — never panic, never misparse.
func TestV2Corrupt(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", []byte{Magic, Version2}},
		{"bad magic", []byte{0x54, Version2, KindRequest, byte(OpPing), 0, 0, 0, 0, 0}},
		{"future version", []byte{Magic, 0x03, KindRequest, byte(OpPing), 0, 0, 0, 0, 0}},
		{"zero version", []byte{Magic, 0x00, KindRequest, byte(OpPing), 0, 0, 0, 0, 0}},
		{"kind zero", []byte{Magic, Version2, 0x00, 0, 0}},
		{"kind out of range", []byte{Magic, Version2, 0x0f, 0, 0}},
		{"ext block truncated", []byte{Magic, Version2, KindRequest | infoHasExt}},
		{"ext count absurd", append([]byte{Magic, Version2, KindRequest | infoHasExt}, 0xff, 0xff, 0x01)},
		{"ext val truncated", []byte{Magic, Version2, KindRequest | infoHasExt, 1, ExtReqID}},
		{"request body truncated", []byte{Magic, Version2, KindRequest}},
		{"response body truncated", []byte{Magic, Version2, KindResponse, byte(StatusOK)}},
		{"hello truncated", []byte{Magic, Version2, KindHello}},
		{"pack count truncated", []byte{Magic, Version2, KindPack}},
		{"pack short length", []byte{Magic, Version2, KindPack, 1, 0, 0}},
		{"pack length overrun", []byte{Magic, Version2, KindPack, 1, 0, 0, 0, 99, 1}},
		{"pack count absurd", []byte{Magic, Version2, KindPack, 0xff, 0xff, 0x01}},
	}
	for _, tc := range cases {
		if _, err := DecodeV2(tc.b); !errors.Is(err, ErrBadMessage) {
			// IsV2-rejected inputs still go through DecodeV2 here on
			// purpose: the parser must classify them itself.
			t.Errorf("%s: err = %v, want ErrBadMessage", tc.name, err)
		}
	}
}

func TestV2NestedPackRejected(t *testing.T) {
	var inner Pack
	inner.Reset()
	inner.AddRequest(&Request{Op: OpPing})
	inner.AddRequest(&Request{Op: OpStats})
	innerBytes := inner.Payload()

	// Hand-build an outer pack whose single element is the inner pack.
	outer := []byte{Magic, Version2, KindPack, 1}
	outer = append(outer, byte(len(innerBytes)>>24), byte(len(innerBytes)>>16),
		byte(len(innerBytes)>>8), byte(len(innerBytes)))
	outer = append(outer, innerBytes...)
	if _, err := DecodeV2(outer); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("nested pack: err = %v, want ErrBadMessage", err)
	}
}

func TestPackRoundTrip(t *testing.T) {
	reqs := seedRequests()
	resps := seedResponses()
	var pk Pack
	pk.Reset()
	for _, q := range reqs {
		if n := pk.AddRequest(q); n != len(q.EncodeV2()) {
			t.Fatalf("AddRequest length %d != standalone %d", n, len(q.EncodeV2()))
		}
	}
	for _, p := range resps {
		pk.AddResponse(p)
	}
	if pk.Len() != len(reqs)+len(resps) {
		t.Fatalf("pack len %d, want %d", pk.Len(), len(reqs)+len(resps))
	}
	m, err := DecodeV2(pk.Payload())
	if err != nil {
		t.Fatalf("DecodeV2(pack): %v", err)
	}
	if m.Kind != KindPack || len(m.Pack) != len(reqs)+len(resps) {
		t.Fatalf("pack decoded kind=%d n=%d, want kind=%d n=%d",
			m.Kind, len(m.Pack), KindPack, len(reqs)+len(resps))
	}
	var sub Msg
	for i, q := range reqs {
		if err := DecodeV2Into(m.Pack[i], &sub); err != nil {
			t.Fatalf("pack[%d]: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeReq(q), normalizeReq(&sub.Req)) {
			t.Fatalf("pack[%d] diverged:\n  %+v\n  %+v", i, q, &sub.Req)
		}
	}
	for i, p := range resps {
		if err := DecodeV2Into(m.Pack[len(reqs)+i], &sub); err != nil {
			t.Fatalf("pack resp[%d]: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeResp(p), normalizeResp(&sub.Resp)) {
			t.Fatalf("pack resp[%d] diverged:\n  %+v\n  %+v", i, p, &sub.Resp)
		}
	}
}

// TestPackSingleUnwrap pins the one-message optimization: a batch of one
// is sent as the bare message, so peers never see degenerate packs.
func TestPackSingleUnwrap(t *testing.T) {
	q := &Request{Op: OpGet, NS: NSMeta, Key: "m/1/u/alice", ReqID: 7}
	var pk Pack
	pk.Reset()
	pk.AddRequest(q)
	payload := pk.Payload()
	if !reflect.DeepEqual(payload, q.EncodeV2()) {
		t.Fatalf("single-message pack payload != bare encoding:\n  %x\n  %x",
			payload, q.EncodeV2())
	}
}

// TestPackReuse checks that a writer goroutine can Reset/refill the same
// builder without the batches bleeding into each other.
func TestPackReuse(t *testing.T) {
	var pk Pack
	for round := 0; round < 3; round++ {
		pk.Reset()
		pk.AddRequest(&Request{Op: OpPing, ReqID: uint64(round) + 1})
		pk.AddRequest(&Request{Op: OpStats, ReqID: uint64(round) + 100})
		m, err := DecodeV2(pk.Payload())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(m.Pack) != 2 {
			t.Fatalf("round %d: %d sub-messages, want 2", round, len(m.Pack))
		}
		var sub Msg
		if err := DecodeV2Into(m.Pack[0], &sub); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if sub.Req.ReqID != uint64(round)+1 {
			t.Fatalf("round %d: ReqID %d, want %d", round, sub.Req.ReqID, round+1)
		}
	}
}

// TestV2UnknownExtSkipped checks forward compatibility: extensions this
// build doesn't know (including the reserved ExtShardRoute) must be
// skipped, not rejected.
func TestV2UnknownExtSkipped(t *testing.T) {
	b := appendV2Header(nil, KindRequest,
		[2]uint64{ExtShardRoute, 42}, [2]uint64{99, 1}, [2]uint64{ExtReqID, 5})
	b = appendRequestBody(b, &Request{Op: OpPing})
	m, err := DecodeV2(b)
	if err != nil {
		t.Fatalf("DecodeV2 with unknown exts: %v", err)
	}
	if m.Req.Op != OpPing || m.Req.ReqID != 5 {
		t.Fatalf("decoded op=%d reqid=%d, want ping/5", m.Req.Op, m.Req.ReqID)
	}
}

// TestV2BorrowedAliasing pins the zero-copy contract: DecodeV2 Vals alias
// the input, and Detach breaks the alias.
func TestV2BorrowedAliasing(t *testing.T) {
	q := &Request{Op: OpPut, NS: NSData, Key: "k", Val: []byte("hello")}
	b := q.EncodeV2()
	m, err := DecodeV2(b)
	if err != nil {
		t.Fatal(err)
	}
	// The body ends with prefix-len and item-count bytes; the last Val
	// byte sits three from the end.
	b[len(b)-3] = 'X'
	if string(m.Req.Val) != "hellX" {
		t.Fatalf("borrowed Val did not alias input: %q", m.Req.Val)
	}
	m.Req.Detach()
	b[len(b)-3] = 'Y'
	if string(m.Req.Val) != "hellX" {
		t.Fatalf("detached Val still aliases input: %q", m.Req.Val)
	}
}

// FuzzDecodeV2Frame checks that DecodeV2 never panics on arbitrary input
// and that accepted request/response frames survive a canonical
// re-encode round trip.
func FuzzDecodeV2Frame(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(q.EncodeV2())
	}
	for _, p := range seedResponses() {
		f.Add(p.EncodeV2())
	}
	f.Add(HelloFrame())
	f.Add(AppendHelloAck(nil, 2, 0))
	var pk Pack
	pk.Reset()
	pk.AddRequest(&Request{Op: OpPing, ReqID: 1})
	pk.AddResponse(&Response{Status: StatusOK, ReqID: 1})
	f.Add(append([]byte(nil), pk.Payload()...))
	f.Add([]byte{Magic, Version2, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeV2(b)
		if err != nil {
			if !errors.Is(err, ErrBadMessage) {
				t.Fatalf("non-ErrBadMessage failure: %v", err)
			}
			return
		}
		switch m.Kind {
		case KindRequest:
			re := m.Req.EncodeV2()
			m2, err := DecodeV2(re)
			if err != nil {
				t.Fatalf("re-decode of canonical v2 encoding failed: %v", err)
			}
			if !reflect.DeepEqual(normalizeReq(&m.Req), normalizeReq(&m2.Req)) {
				t.Fatalf("v2 request round trip diverged:\n  %+v\n  %+v", &m.Req, &m2.Req)
			}
		case KindResponse:
			re := m.Resp.EncodeV2()
			m2, err := DecodeV2(re)
			if err != nil {
				t.Fatalf("re-decode of canonical v2 encoding failed: %v", err)
			}
			if !reflect.DeepEqual(normalizeResp(&m.Resp), normalizeResp(&m2.Resp)) {
				t.Fatalf("v2 response round trip diverged:\n  %+v\n  %+v", &m.Resp, &m2.Resp)
			}
		case KindPack:
			var sub Msg
			for i, raw := range m.Pack {
				if err := DecodeV2Into(raw, &sub); err != nil && !errors.Is(err, ErrBadMessage) {
					t.Fatalf("pack[%d]: non-ErrBadMessage failure: %v", i, err)
				}
			}
		}
	})
}

// FuzzV1V2Differential cross-checks the codecs: anything the v1 decoder
// accepts must survive translation through v2 unchanged, and any v2
// request/response whose metadata is v1-representable must survive
// translation back through v1.
func FuzzV1V2Differential(f *testing.F) {
	for _, q := range seedRequests() {
		f.Add(q.Encode())
		f.Add(q.EncodeV2())
	}
	for _, p := range seedResponses() {
		f.Add(p.Encode())
		f.Add(p.EncodeV2())
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		if IsV2(b) {
			m, err := DecodeV2(b)
			if err != nil {
				return
			}
			switch m.Kind {
			case KindRequest:
				// v1 cannot carry SpanID without TraceID — skip the
				// v2-only combination.
				if m.Req.TraceID == 0 && m.Req.SpanID != 0 {
					return
				}
				q2, err := DecodeRequest(m.Req.Encode())
				if err != nil {
					t.Fatalf("v1 rejected v2-accepted request: %v", err)
				}
				if !reflect.DeepEqual(normalizeReq(&m.Req), normalizeReq(q2)) {
					t.Fatalf("v2→v1 diverged:\n  %+v\n  %+v", &m.Req, q2)
				}
			case KindResponse:
				p2, err := DecodeResponse(m.Resp.Encode())
				if err != nil {
					t.Fatalf("v1 rejected v2-accepted response: %v", err)
				}
				if !reflect.DeepEqual(normalizeResp(&m.Resp), normalizeResp(p2)) {
					t.Fatalf("v2→v1 diverged:\n  %+v\n  %+v", &m.Resp, p2)
				}
			}
			return
		}
		// v1 requests: everything v1 accepts is v2-representable.
		if q, err := DecodeRequest(b); err == nil {
			m, err := DecodeV2(q.EncodeV2())
			if err != nil {
				t.Fatalf("v2 rejected v1-accepted request: %v", err)
			}
			if !reflect.DeepEqual(normalizeReq(q), normalizeReq(&m.Req)) {
				t.Fatalf("v1→v2 diverged:\n  %+v\n  %+v", q, &m.Req)
			}
		}
		if p, err := DecodeResponse(b); err == nil {
			m, err := DecodeV2(p.EncodeV2())
			if err != nil {
				t.Fatalf("v2 rejected v1-accepted response: %v", err)
			}
			if !reflect.DeepEqual(normalizeResp(p), normalizeResp(&m.Resp)) {
				t.Fatalf("v1→v2 diverged:\n  %+v\n  %+v", p, &m.Resp)
			}
		}
	})
}
