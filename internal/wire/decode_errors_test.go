package wire

import (
	"errors"
	"testing"
)

// corruptFrames is the table of malformed payloads shared by the decode
// error-path tests and the fuzz seed corpus: truncated frames, oversized
// length prefixes, and plain garbage. Decoders must return ErrBadMessage
// (never panic, never over-allocate) for all of them.
var corruptFrames = []struct {
	name string
	b    []byte
}{
	{"empty", nil},
	{"op only", []byte{byte(OpGet)}},
	{"op+ns only", []byte{byte(OpGet), byte(NSMeta)}},
	{"truncated key length", []byte{byte(OpGet), byte(NSMeta), 0x80}},
	{"key length past end", []byte{byte(OpGet), byte(NSMeta), 10, 'a'}},
	{"huge key length", []byte{byte(OpGet), byte(NSMeta), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
	{"val length past end", []byte{byte(OpPut), byte(NSData), 1, 'k', 200}},
	{"missing prefix", []byte{byte(OpList), byte(NSMeta), 0, 0}},
	{"truncated item count", []byte{byte(OpBatchPut), byte(NSMeta), 0, 0, 0, 0x80}},
	{"absurd item count", []byte{byte(OpBatchPut), byte(NSMeta), 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}},
	{"item truncated mid-kv", []byte{byte(OpBatchPut), byte(NSMeta), 0, 0, 0, 2, byte(NSData), 1, 'x', 0, 1, byte(NSData)}},
	{"kv missing delete byte", []byte{byte(OpBatchPut), byte(NSMeta), 0, 0, 0, 1, byte(NSData), 1, 'x', 0}},
	{"all 0xff", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}},
	{"overlong varint", []byte{byte(OpGet), byte(NSMeta), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}},
}

func TestDecodeRequestErrorPaths(t *testing.T) {
	for _, tc := range corruptFrames {
		t.Run(tc.name, func(t *testing.T) {
			q, err := DecodeRequest(tc.b)
			if err == nil {
				// A frame that happens to parse must at least be
				// re-encodable; nothing in this table should be.
				t.Fatalf("DecodeRequest accepted %q: %+v", tc.name, q)
			}
			if !errors.Is(err, ErrBadMessage) {
				t.Fatalf("error not ErrBadMessage: %v", err)
			}
			if q != nil {
				t.Fatalf("non-nil request alongside error")
			}
		})
	}
}

func TestDecodeResponseErrorPaths(t *testing.T) {
	// Responses have a different field layout; reuse the shapes that are
	// malformed for both plus response-specific ones.
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"status only", []byte{byte(StatusOK)}},
		{"truncated err string", []byte{byte(StatusError), 5, 'o'}},
		{"val length past end", []byte{byte(StatusOK), 0, 200}},
		{"truncated item count", []byte{byte(StatusOK), 0, 0, 0x80}},
		{"absurd item count", []byte{byte(StatusOK), 0, 0, 0xff, 0xff, 0xff, 0x0f}},
		{"item truncated", []byte{byte(StatusOK), 0, 0, 1, byte(NSData), 1}},
		{"all 0xff", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := DecodeResponse(tc.b)
			if err == nil {
				t.Fatalf("DecodeResponse accepted %q: %+v", tc.name, p)
			}
			if !errors.Is(err, ErrBadMessage) {
				t.Fatalf("error not ErrBadMessage: %v", err)
			}
			if p != nil {
				t.Fatalf("non-nil response alongside error")
			}
		})
	}
}

// TestDecodeRequestTrailingBytesTolerated documents the contract for
// well-formed prefixes: decoding consumes the fields it knows about and
// ignores trailing bytes (forward compatibility for appended fields).
func TestDecodeRequestTrailingBytes(t *testing.T) {
	q := &Request{Op: OpGet, NS: NSMeta, Key: "k"}
	b := append(q.Encode(), 0xde, 0xad)
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if got.Op != OpGet || got.Key != "k" {
		t.Fatalf("fields corrupted by trailing bytes: %+v", got)
	}
}
