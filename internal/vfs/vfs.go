// Package vfs defines the filesystem interface that the Sharoes client,
// the four baseline implementations, the benchmark workloads and the
// examples all share.
//
// In the paper the client filesystem is mounted through FUSE; this library
// exposes the identical operation vocabulary as a Go API instead (the FUSE
// kernel shim adds nothing the evaluation measures — every cost lives in
// the network, cryptography and metadata manipulation behind it).
package vfs

import (
	"time"

	"github.com/sharoes/sharoes/internal/types"
)

// Info describes a filesystem object — what getattr/stat returns.
type Info struct {
	Name  string
	Inode types.Inode
	Kind  types.ObjKind
	Owner types.UserID
	Group types.GroupID
	Perm  types.Perm
	Size  uint64
	MTime time.Time
}

// IsDir reports whether the object is a directory.
func (i Info) IsDir() bool { return i.Kind == types.KindDir }

// FS is the operation vocabulary shared by the Sharoes filesystem and the
// baselines. All paths are absolute and slash-separated.
type FS interface {
	// Stat returns the object's attributes (the getattr operation:
	// obtain encrypted metadata and decrypt it).
	Stat(path string) (Info, error)

	// Mkdir creates a directory (create metadata per CAP, re-encrypt the
	// parent directory table).
	Mkdir(path string, perm types.Perm) error

	// Create creates an empty file (mknod).
	Create(path string, perm types.Perm) error

	// WriteFile creates or replaces a file's content; encryption happens
	// here, modelling the paper's write-back-on-close behaviour.
	WriteFile(path string, data []byte, perm types.Perm) error

	// Append extends a file, re-encrypting only the trailing blocks.
	Append(path string, data []byte) error

	// ReadFile fetches, verifies and decrypts a file's content.
	ReadFile(path string) ([]byte, error)

	// ReadDir lists entry names (requires the read CAP on the directory).
	ReadDir(path string) ([]string, error)

	// Chmod changes permissions: new CAPs are constructed and, on
	// revocation, data is re-encrypted under fresh keys.
	Chmod(path string, perm types.Perm) error

	// Chown changes ownership (owner and/or group).
	Chown(path string, owner types.UserID, group types.GroupID) error

	// Remove unlinks a file or removes an empty directory.
	Remove(path string) error

	// Rename moves an object. Implementations may restrict cross-
	// ownership-domain moves.
	Rename(oldPath, newPath string) error

	// SetACL grants (or updates) a per-user permission on the object —
	// the POSIX-ACL extension. Systems without ACL support return
	// ErrUnsupportedPerm.
	SetACL(path string, user types.UserID, rights types.Triplet) error

	// RemoveACL revokes a per-user grant.
	RemoveACL(path string, user types.UserID) error

	// GetACL lists the object's per-user grants.
	GetACL(path string) ([]types.ACLEntry, error)

	// Refresh drops the client's local cache of decrypted objects,
	// forcing subsequent operations back to the SSP. Benchmarks use it
	// to model phase boundaries (each Andrew phase is a separate
	// process) and cross-client visibility.
	Refresh()

	// Close releases the session.
	Close() error
}
