// Package binenc provides the compact binary encoding helpers shared by
// Sharoes metadata, directory-table and superblock codecs. Encodings are
// deterministic (no maps on the wire) because sealed structures are signed.
package binenc

import (
	"bytes"
	"encoding/binary"
	"errors"
)

// ErrTruncated reports a field extending past the end of the buffer.
var ErrTruncated = errors.New("binenc: truncated field")

// Writer appends fields to a buffer.
type Writer struct {
	buf bytes.Buffer
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// Len returns the current encoded size.
func (w *Writer) Len() int { return w.buf.Len() }

// Uvarint appends v.
func (w *Writer) Uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf.WriteByte(b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}

// Bytes16 appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf.Write(b)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// Raw appends b without a length prefix (for fixed-size fields).
func (w *Writer) Raw(b []byte) { w.buf.Write(b) }

// Reader consumes fields from a buffer.
type Reader struct {
	b []byte
}

// NewReader wraps b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.b) }

// Uvarint consumes a varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

// Byte consumes one byte.
func (r *Reader) Byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, ErrTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// Bool consumes one boolean byte.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// BytesField consumes a length-prefixed byte string. The result aliases the
// input buffer; copy it if it must outlive the buffer.
func (r *Reader) BytesField() ([]byte, error) {
	save := r.b
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		// Restore the length prefix: a failed read must consume nothing,
		// or the reader is left mid-field in an unspecified position.
		r.b = save
		return nil, ErrTruncated
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

// String consumes a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.BytesField()
	return string(b), err
}

// Raw consumes exactly n bytes without a length prefix.
func (r *Reader) Raw(n int) ([]byte, error) {
	if n < 0 || n > len(r.b) {
		return nil, ErrTruncated
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}
