package binenc

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReader drives a Reader over arbitrary data with an op sequence
// also chosen by the fuzzer. Invariants: no read ever panics, every
// failure is ErrTruncated, a failed read consumes nothing, and the
// Reader only ever moves forward.
func FuzzReader(f *testing.F) {
	var w Writer
	w.Uvarint(300)
	w.Byte(7)
	w.Bool(true)
	w.BytesField([]byte("field"))
	w.String("name")
	w.Raw([]byte{1, 2, 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5}, w.Bytes())
	f.Add([]byte{3, 3, 3, 3}, []byte{0x80})
	f.Add([]byte{5, 5}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewReader(data)
		for _, op := range ops {
			before := r.Remaining()
			var err error
			switch op % 6 {
			case 0:
				_, err = r.Uvarint()
			case 1:
				_, err = r.Byte()
			case 2:
				_, err = r.Bool()
			case 3:
				_, err = r.BytesField()
			case 4:
				_, err = r.String()
			case 5:
				_, err = r.Raw(int(op) % 64)
			}
			after := r.Remaining()
			if after > before {
				t.Fatalf("reader went backwards: %d -> %d", before, after)
			}
			if err != nil {
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("unexpected error type: %v", err)
				}
				if after != before {
					t.Fatalf("failed read consumed %d bytes", before-after)
				}
			}
		}
	})
}

// FuzzRoundTrip writes fuzz-chosen values through a Writer and reads
// them back, checking that the encoding is self-describing and lossless.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), byte(0), false, []byte(nil), "")
	f.Add(uint64(1<<60), byte(0xff), true, []byte("payload"), "some/key")
	f.Fuzz(func(t *testing.T, v uint64, b byte, ok bool, field []byte, s string) {
		var w Writer
		w.Uvarint(v)
		w.Byte(b)
		w.Bool(ok)
		w.BytesField(field)
		w.String(s)

		r := NewReader(w.Bytes())
		gotV, err := r.Uvarint()
		if err != nil || gotV != v {
			t.Fatalf("uvarint: got %d, %v; want %d", gotV, err, v)
		}
		gotB, err := r.Byte()
		if err != nil || gotB != b {
			t.Fatalf("byte: got %d, %v; want %d", gotB, err, b)
		}
		gotOK, err := r.Bool()
		if err != nil || gotOK != ok {
			t.Fatalf("bool: got %v, %v; want %v", gotOK, err, ok)
		}
		gotField, err := r.BytesField()
		if err != nil || !bytes.Equal(gotField, field) {
			t.Fatalf("bytes field: got %q, %v; want %q", gotField, err, field)
		}
		gotS, err := r.String()
		if err != nil || gotS != s {
			t.Fatalf("string: got %q, %v; want %q", gotS, err, s)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d trailing bytes after reading everything back", r.Remaining())
		}
	})
}
