package binenc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(300)
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.BytesField([]byte("blob"))
	w.String("name")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("uvarint = %d, %v", v, err)
	}
	if b, err := r.Byte(); err != nil || b != 7 {
		t.Fatalf("byte = %d, %v", b, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("bool = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v {
		t.Fatalf("bool = %v, %v", v, err)
	}
	if b, err := r.BytesField(); err != nil || string(b) != "blob" {
		t.Fatalf("bytes = %q, %v", b, err)
	}
	if s, err := r.String(); err != nil || s != "name" {
		t.Fatalf("string = %q, %v", s, err)
	}
	if b, err := r.Raw(3); err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("raw = %v, %v", b, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Uvarint(); !errors.Is(err, ErrTruncated) {
		t.Errorf("uvarint: %v", err)
	}
	if _, err := r.Byte(); !errors.Is(err, ErrTruncated) {
		t.Errorf("byte: %v", err)
	}
	if _, err := r.Bool(); !errors.Is(err, ErrTruncated) {
		t.Errorf("bool: %v", err)
	}
	if _, err := r.Raw(1); !errors.Is(err, ErrTruncated) {
		t.Errorf("raw: %v", err)
	}
	if _, err := r.Raw(-1); !errors.Is(err, ErrTruncated) {
		t.Errorf("raw negative: %v", err)
	}
	// A length prefix larger than the buffer must error, not panic.
	var w Writer
	w.Uvarint(1000)
	r = NewReader(w.Bytes())
	if _, err := r.BytesField(); !errors.Is(err, ErrTruncated) {
		t.Errorf("bytes overshoot: %v", err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, s string, b []byte, flag bool) bool {
		var w Writer
		w.Uvarint(u)
		w.String(s)
		w.BytesField(b)
		w.Bool(flag)

		r := NewReader(w.Bytes())
		gu, err1 := r.Uvarint()
		gs, err2 := r.String()
		gb, err3 := r.BytesField()
		gf, err4 := r.Bool()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return gu == u && gs == s && bytes.Equal(gb, b) && gf == flag && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriterLen(t *testing.T) {
	var w Writer
	if w.Len() != 0 {
		t.Error("fresh writer not empty")
	}
	w.Byte(1)
	if w.Len() != 1 {
		t.Errorf("len = %d", w.Len())
	}
}

// Regression for a fuzzer finding: BytesField consumed its length prefix
// before noticing the field overran the buffer, leaving the reader
// mid-field. Failed reads must consume nothing.
func TestFailedReadConsumesNothing(t *testing.T) {
	var w Writer
	w.Uvarint(48) // length prefix promising 48 bytes that never arrive
	r := NewReader(w.Bytes())
	before := r.Remaining()
	if _, err := r.BytesField(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("bytes field: %v", err)
	}
	if r.Remaining() != before {
		t.Fatalf("failed BytesField consumed %d bytes", before-r.Remaining())
	}
	if _, err := r.String(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("string: %v", err)
	}
	if r.Remaining() != before {
		t.Fatalf("failed String consumed %d bytes", before-r.Remaining())
	}
}
