package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the taint-flow engine shared by the unverified and
// keyegress analyzers. The engine is intra-procedural — each function body
// is analyzed to a local fixpoint — with bottom-up per-function call
// summaries, so a taint introduced in one function of a package and sunk
// in another is still reported. Cross-package flow is expressed through
// the analyzer's source/sanitizer/sink configuration instead of whole-
// program analysis: the packages on the other side of the module boundary
// are analyzed on their own when sharoes-vet walks ./....
//
// The engine deliberately trades soundness for signal. It is flow-
// insensitive within a function (a sanitizer call blesses its argument
// for the whole body), does not track taint through struct fields across
// function boundaries, and treats unknown standard-library calls as
// taint-propagating. Those choices keep the real tree analyzable without
// drowning it in false positives; the invariants that matter — nothing
// unverified crosses into trusted client state, no key material crosses
// the wire unsealed — survive them.

// taintLabel identifies one origin of taint.
//
// param >= 0 marks "flows from parameter #param" and exists only while a
// function's summary is being computed; a finding is only ever reported
// for concrete labels (param == -1), which carry the source description
// and position.
type taintLabel struct {
	param int
	// raw marks extracted key bytes (k[:], k.Marshal()) as opposed to a
	// key-typed value. Module-internal callees are trusted to handle
	// key-typed values (they are analyzed in their own package), but raw
	// bytes stay tainted through any call.
	raw  bool
	desc string
	pos  token.Pos
}

// concreteLabel builds a reportable source label.
func concreteLabel(desc string, raw bool, pos token.Pos) taintLabel {
	return taintLabel{param: -1, raw: raw, desc: desc, pos: pos}
}

// taintSet is a set of taint origins.
type taintSet map[taintLabel]struct{}

func (s taintSet) add(l taintLabel) bool {
	if _, ok := s[l]; ok {
		return false
	}
	s[l] = struct{}{}
	return true
}

func (s taintSet) union(o taintSet) bool {
	changed := false
	for l := range o {
		if s.add(l) {
			changed = true
		}
	}
	return changed
}

// concrete reports whether the set contains at least one reportable
// (non-parameter) label, returning the lexically first for the message.
func (s taintSet) concrete() (taintLabel, bool) {
	var best taintLabel
	found := false
	for l := range s {
		if l.param >= 0 {
			continue
		}
		if !found || l.desc < best.desc {
			best, found = l, true
		}
	}
	return best, found
}

// taintSpec configures the engine for one analyzer.
type taintSpec struct {
	// analyzer is the reporting analyzer's name, used in findings.
	analyzer string
	// sourceCall classifies a resolved callee as a taint source for its
	// non-error results (e.g. an SSP read). Returns a short description.
	sourceCall func(fn *types.Func) (string, bool)
	// sourceExpr classifies an expression as inherently tainted by its
	// type or shape (e.g. a key-typed value). raw marks extracted bytes.
	sourceExpr func(info *types.Info, e ast.Expr) (desc string, raw bool, ok bool)
	// sanitizer classifies a resolved callee as clearing taint: its
	// results are trusted and its argument roots are blessed for the
	// rest of the function (Verify-style sanitizers verify in place).
	sanitizer func(fn *types.Func) bool
	// sinkCall classifies a resolved callee as a sink. args lists the
	// argument indices that must stay untainted; nil means all.
	sinkCall func(fn *types.Func) (desc string, args []int, ok bool)
	// sinkReturn reports whether the function's return values are a
	// trusted sink (e.g. exported client API).
	sinkReturn func(p *Package, decl *ast.FuncDecl) (string, bool)
	// sinkComposite reports whether composite literals of type t are a
	// sink (e.g. wire frames that must not embed key material).
	sinkComposite func(t types.Type) (string, bool)
	// fieldTaint propagates a container's taint into field selections
	// (x tainted ⇒ x.f tainted). The unverified analyzer needs it (a
	// decoded response taints its fields); keyegress must not use it
	// (a struct holding a key does not make its string fields secret).
	fieldTaint bool
	// opaqueModuleCalls treats unknown module-internal callees as
	// trusted for non-raw labels: key-typed values handed to another
	// package of this module are that package's responsibility.
	opaqueModuleCalls bool
}

// maxBodyPasses bounds the local fixpoint; assignment chains longer than
// this do not occur in practice and the analysis stays sound-enough by
// simply stopping.
const maxBodyPasses = 32

// sinkHit records a sink reached by a parameter inside a callee, so the
// taint can be reported at a call site that supplies a concrete source.
type sinkHit struct {
	desc string
	pos  token.Pos
}

// funcSummary is the bottom-up call summary of one function.
type funcSummary struct {
	// results[i] holds the labels that may reach result i: parameter
	// labels mean "argument i flows through", concrete labels mean the
	// function introduces that taint itself.
	results []taintSet
	// paramSinks maps a parameter index to sinks it reaches inside the
	// function (directly or through further calls).
	paramSinks map[int][]sinkHit
}

// funcInfo pairs a declared function with its analysis state.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	params  []types.Object // receiver (if any) then parameters
	results []types.Object // named results; nil entries for unnamed
	nres    int
	sum     *funcSummary
}

// taintEngine analyzes one package under one spec. It is an effect
// domain over the shared effectEngine: taint effects attach to the
// declared function units (literal units carry no taint summaries of
// their own — the engine predates them and treats a literal's body as
// part of its enclosing function, which is sound for taint because the
// lexical variable state is shared).
type taintEngine struct {
	eng     *effectEngine
	p       *Package
	spec    *taintSpec
	modRoot string // module path prefix for module-internal detection
	funcs   map[*types.Func]*funcInfo
	order   []*funcInfo
}

// analyzeTaint runs the engine and returns the findings.
func analyzeTaint(p *Package, spec *taintSpec) []Finding {
	e := &taintEngine{
		eng:     newEffectEngine(p),
		p:       p,
		spec:    spec,
		modRoot: moduleRootOf(p.Path),
		funcs:   make(map[*types.Func]*funcInfo),
	}
	e.collect()
	e.summarize()
	return e.report()
}

// moduleRootOf guesses the module path from an import path: everything
// before the first /internal/ or /cmd/ segment (the whole path
// otherwise). This keeps the engine independent of the Loader while
// still recognizing sibling packages of this module, including test
// fixtures (whose nested internal/ trees make the real module a prefix).
func moduleRootOf(path string) string {
	cut := len(path)
	if i := strings.Index(path, "/internal/"); i >= 0 && i < cut {
		cut = i
	}
	if i := strings.Index(path, "/cmd/"); i >= 0 && i < cut {
		cut = i
	}
	return path[:cut]
}

func (e *taintEngine) isModuleInternal(fn *types.Func) bool {
	return fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), e.modRoot)
}

// collect builds taint state for the effect engine's declared units.
func (e *taintEngine) collect() {
	for _, u := range e.eng.units {
		if u.decl == nil {
			continue // literal bodies analyze with their enclosing function
		}
		fd, obj := u.decl, u.obj
		fi := &funcInfo{decl: fd, obj: obj}
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				for _, n := range f.Names {
					fi.params = append(fi.params, e.p.Info.Defs[n])
				}
				if len(f.Names) == 0 {
					fi.params = append(fi.params, nil) // unnamed receiver
				}
			}
		}
		if fd.Type.Params != nil {
			for _, f := range fd.Type.Params.List {
				for _, n := range f.Names {
					fi.params = append(fi.params, e.p.Info.Defs[n])
				}
				if len(f.Names) == 0 {
					fi.params = append(fi.params, nil)
				}
			}
		}
		if fd.Type.Results != nil {
			for _, f := range fd.Type.Results.List {
				if len(f.Names) == 0 {
					fi.nres++
					fi.results = append(fi.results, nil)
					continue
				}
				for _, n := range f.Names {
					fi.nres++
					fi.results = append(fi.results, e.p.Info.Defs[n])
				}
			}
		}
		fi.sum = &funcSummary{paramSinks: make(map[int][]sinkHit)}
		for i := 0; i < fi.nres; i++ {
			fi.sum.results = append(fi.sum.results, make(taintSet))
		}
		e.funcs[obj] = fi
		e.order = append(e.order, fi)
	}
}

// summarize drives the taint summaries to the package-level fixpoint via
// the shared effect engine. Recursive and mutually recursive call graphs
// terminate because summaries only ever grow.
func (e *taintEngine) summarize() {
	e.eng.fixpoint(func(u *funcUnit) bool {
		fi, ok := e.funcs[u.obj]
		if !ok {
			return false
		}
		st := e.analyzeBody(fi)
		return e.mergeSummary(fi, st)
	})
}

// mergeSummary folds one body analysis into fi's summary, reporting
// whether anything new was learned.
func (e *taintEngine) mergeSummary(fi *funcInfo, st *bodyState) bool {
	changed := false
	for i, ts := range st.returns {
		if i < len(fi.sum.results) && fi.sum.results[i].union(ts) {
			changed = true
		}
	}
	for param, hits := range st.paramSinks {
		have := make(map[sinkHit]bool)
		for _, h := range fi.sum.paramSinks[param] {
			have[h] = true
		}
		for h := range hits {
			if !have[h] {
				fi.sum.paramSinks[param] = append(fi.sum.paramSinks[param], h)
				changed = true
			}
		}
	}
	return changed
}

// bodyState is the converged intra-procedural state of one function.
type bodyState struct {
	fi      *funcInfo
	vars    map[types.Object]taintSet
	blessed map[types.Object]bool
	// returns[i] accumulates the taint of result i over all returns.
	returns []taintSet
	// paramSinks accumulates parameter labels reaching sinks.
	paramSinks map[int]map[sinkHit]struct{}
}

// analyzeBody runs the local fixpoint for one function, with parameters
// seeded as parameter labels so the walk computes the summary and the
// concrete findings in a single pass.
func (e *taintEngine) analyzeBody(fi *funcInfo) *bodyState {
	st := &bodyState{
		fi:         fi,
		vars:       make(map[types.Object]taintSet),
		blessed:    make(map[types.Object]bool),
		paramSinks: make(map[int]map[sinkHit]struct{}),
	}
	for i := 0; i < fi.nres; i++ {
		st.returns = append(st.returns, make(taintSet))
	}
	for i, obj := range fi.params {
		if obj != nil {
			st.vars[obj] = taintSet{{param: i}: struct{}{}}
		}
	}
	for pass := 0; pass < maxBodyPasses; pass++ {
		if !e.walk(st, fi.decl.Body) {
			break
		}
	}
	e.sinkFlows(st)
	return st
}

// walk performs one propagation pass over a statement tree, returning
// whether any variable's taint grew.
func (e *taintEngine) walk(st *bodyState, body ast.Node) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if e.assign(st, s.Lhs, s.Rhs) {
				changed = true
			}
		case *ast.GenDecl:
			for _, sp := range s.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				if e.assign(st, lhs, vs.Values) {
					changed = true
				}
			}
		case *ast.RangeStmt:
			t := e.exprTaint(st, s.X)
			for _, v := range []ast.Expr{s.Key, s.Value} {
				if v == nil {
					continue
				}
				if e.taintTarget(st, v, t) {
					changed = true
				}
			}
		case *ast.ReturnStmt:
			e.recordReturn(st, s)
		case *ast.SendStmt:
			if e.taintTarget(st, s.Chan, e.exprTaint(st, s.Value)) {
				changed = true
			}
		case *ast.CallExpr:
			if e.callEffects(st, s) {
				changed = true
			}
		}
		return true
	})
	return changed
}

// recordReturn folds a return statement into the per-result taint.
func (e *taintEngine) recordReturn(st *bodyState, ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		// Bare return: named results carry the state.
		for i, obj := range st.fi.results {
			if obj != nil {
				st.returns[i].union(st.vars[obj])
			}
		}
		return
	}
	if len(ret.Results) == 1 && st.fi.nres > 1 {
		// return f() forwarding a tuple.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i, ts := range e.callResultTaints(st, call, st.fi.nres) {
				st.returns[i].union(ts)
			}
			return
		}
	}
	for i, r := range ret.Results {
		if i < len(st.returns) {
			st.returns[i].union(e.exprTaint(st, r))
		}
	}
}

// assign propagates rhs taint into lhs targets.
func (e *taintEngine) assign(st *bodyState, lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) > 1 && len(rhs) == 1 {
		// x, y := f()  or  v, ok := m[k]  /  v, ok := x.(T)
		var per []taintSet
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			per = e.callResultTaints(st, r, len(lhs))
		default:
			t := e.exprTaint(st, rhs[0])
			per = make([]taintSet, len(lhs))
			for i := range per {
				per[i] = t
			}
		}
		for i, l := range lhs {
			if e.taintTarget(st, l, per[i]) {
				changed = true
			}
		}
		return changed
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		if e.taintTarget(st, l, e.exprTaint(st, rhs[i])) {
			changed = true
		}
	}
	return changed
}

// taintTarget adds taint to the root object of an assignment target.
// Writing through a field, index or dereference taints the container.
func (e *taintEngine) taintTarget(st *bodyState, target ast.Expr, t taintSet) bool {
	if len(t) == 0 {
		return false
	}
	obj := e.rootObj(target)
	if obj == nil {
		return false
	}
	set := st.vars[obj]
	if set == nil {
		set = make(taintSet)
		st.vars[obj] = set
	}
	return set.union(t)
}

// rootObj resolves the variable object ultimately written by an
// assignment target expression.
func (e *taintEngine) rootObj(target ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(target).(type) {
		case *ast.Ident:
			obj := e.p.Info.Uses[x]
			if obj == nil {
				obj = e.p.Info.Defs[x]
			}
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			// A package-qualified name has no root variable.
			if _, ok := e.p.Info.Uses[x.Sel].(*types.Var); !ok {
				if sel := e.p.Info.Selections[x]; sel == nil {
					return nil
				}
			}
			target = x.X
		case *ast.IndexExpr:
			target = x.X
		case *ast.SliceExpr:
			target = x.X
		case *ast.StarExpr:
			target = x.X
		default:
			return nil
		}
	}
}

// exprTaint computes the taint of an expression under the current state.
func (e *taintEngine) exprTaint(st *bodyState, expr ast.Expr) taintSet {
	out := make(taintSet)
	if expr == nil {
		return out
	}
	expr = ast.Unparen(expr)

	// Type/shape sources apply to every expression form.
	if e.spec.sourceExpr != nil {
		if desc, raw, ok := e.spec.sourceExpr(e.p.Info, expr); ok {
			out.add(concreteLabel(desc, raw, expr.Pos()))
		}
	}

	switch x := expr.(type) {
	case *ast.Ident:
		obj := e.p.Info.Uses[x]
		if obj != nil && !st.blessed[obj] {
			out.union(st.vars[obj])
		}
	case *ast.SelectorExpr:
		// Package-qualified identifiers carry no taint of their own.
		if sel := e.p.Info.Selections[x]; sel != nil {
			if e.spec.fieldTaint || sel.Kind() != types.FieldVal {
				out.union(e.exprTaint(st, x.X))
			}
		}
	case *ast.IndexExpr:
		out.union(e.exprTaint(st, x.X))
	case *ast.SliceExpr:
		out.union(e.exprTaint(st, x.X))
	case *ast.StarExpr:
		out.union(e.exprTaint(st, x.X))
	case *ast.UnaryExpr:
		out.union(e.exprTaint(st, x.X))
	case *ast.BinaryExpr:
		out.union(e.exprTaint(st, x.X))
		out.union(e.exprTaint(st, x.Y))
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out.union(e.exprTaint(st, elt))
		}
	case *ast.TypeAssertExpr:
		out.union(e.exprTaint(st, x.X))
	case *ast.CallExpr:
		ts := e.callResultTaints(st, x, 1)
		out.union(ts[0])
	}
	return out
}

// callArgs returns the call's effective argument expressions with the
// method receiver, if any, prepended — matching funcInfo.params.
func (e *taintEngine) callArgs(call *ast.CallExpr) []ast.Expr {
	if recv := methodReceiver(e.p.Info, call); recv != nil {
		return append([]ast.Expr{recv}, call.Args...)
	}
	return call.Args
}

// isCleanResultType reports result types that never carry taint: errors
// and booleans describe outcomes, not data.
func isCleanResultType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
		return true
	}
	return false
}

// callResultTaints computes per-result taint for a call expression.
func (e *taintEngine) callResultTaints(st *bodyState, call *ast.CallExpr, nres int) []taintSet {
	out := make([]taintSet, nres)
	for i := range out {
		out[i] = make(taintSet)
	}
	resultType := func(i int) types.Type {
		tv, ok := e.p.Info.Types[call]
		if !ok {
			return nil
		}
		if tup, ok := tv.Type.(*types.Tuple); ok {
			if i < tup.Len() {
				return tup.At(i).Type()
			}
			return nil
		}
		if i == 0 {
			return tv.Type
		}
		return nil
	}
	fill := func(ts taintSet) {
		for i := range out {
			if isCleanResultType(resultType(i)) {
				continue
			}
			out[i].union(ts)
		}
	}

	// Conversions: T(x) carries x's taint.
	if tv, ok := e.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		fill(e.exprTaint(st, call.Args[0]))
		if e.spec.sourceExpr != nil {
			if desc, raw, ok := e.spec.sourceExpr(e.p.Info, call); ok {
				fill(taintSet{concreteLabel(desc, raw, call.Pos()): struct{}{}})
			}
		}
		return out
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := e.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				u := make(taintSet)
				for _, a := range call.Args {
					u.union(e.exprTaint(st, a))
				}
				fill(u)
			case "len", "cap", "min", "max", "make", "new":
				// Sizes and fresh values carry no taint.
			default:
				u := make(taintSet)
				for _, a := range call.Args {
					u.union(e.exprTaint(st, a))
				}
				fill(u)
			}
			return out
		}
	}

	fn := resolvedCallee(e.p.Info, call)
	if fn != nil {
		if e.spec.sanitizer != nil && e.spec.sanitizer(fn) {
			return out // results trusted; argument blessing in callEffects
		}
		if e.spec.sourceCall != nil {
			if desc, ok := e.spec.sourceCall(fn); ok {
				fill(taintSet{concreteLabel(desc, false, call.Pos()): struct{}{}})
				return out
			}
		}
		if fi, ok := e.funcs[fn]; ok {
			// Package-local call: substitute arguments into the summary.
			args := e.callArgs(call)
			for i := range out {
				if i >= len(fi.sum.results) {
					break
				}
				for l := range fi.sum.results[i] {
					if l.param < 0 {
						out[i].add(l)
						continue
					}
					if l.param < len(args) {
						out[i].union(e.exprTaint(st, args[l.param]))
					}
				}
			}
			return out
		}
	}

	// Unknown callee: propagate argument (and receiver / function value)
	// taint, filtered for module-internal callees under keyegress.
	u := make(taintSet)
	for _, a := range e.callArgs(call) {
		u.union(e.exprTaint(st, a))
	}
	if fn == nil {
		// Calling a function value: the value itself may carry taint
		// (method value bound to a tainted receiver).
		u.union(e.exprTaint(st, call.Fun))
	}
	if fn != nil && e.spec.opaqueModuleCalls && e.isModuleInternal(fn) {
		filtered := make(taintSet)
		for l := range u {
			if l.raw {
				filtered.add(l)
			}
		}
		u = filtered
	}
	fill(u)
	return out
}

// callEffects applies a call's side effects on the state: sanitizer
// blessing, decode-into-pointer propagation, and receiver mutation by
// unknown callees. Returns whether any variable's taint grew.
func (e *taintEngine) callEffects(st *bodyState, call *ast.CallExpr) bool {
	fn := resolvedCallee(e.p.Info, call)
	if fn != nil && e.spec.sanitizer != nil && e.spec.sanitizer(fn) {
		// Verify-style sanitizers verify their arguments in place.
		for _, a := range e.callArgs(call) {
			if obj := e.rootObj(a); obj != nil {
				st.blessed[obj] = true
			}
		}
		return false
	}
	if fn != nil {
		if _, local := e.funcs[fn]; local {
			return false // summaries model local calls
		}
		if e.spec.sourceCall != nil {
			if _, isSource := e.spec.sourceCall(fn); isSource {
				return false
			}
		}
	}

	// Unknown callee: arguments may flow into pointer arguments
	// (json.Unmarshal(blob, &out)) and into the receiver (buf.Write(b)).
	u := make(taintSet)
	args := e.callArgs(call)
	for _, a := range args {
		u.union(e.exprTaint(st, a))
	}
	if len(u) == 0 {
		return false
	}
	if fn != nil && e.spec.opaqueModuleCalls && e.isModuleInternal(fn) {
		filtered := make(taintSet)
		for l := range u {
			if l.raw {
				filtered.add(l)
			}
		}
		if len(filtered) == 0 {
			return false
		}
		u = filtered
	}
	changed := false
	// Accumulator mutation (buf.Write(b) taints buf) applies only to
	// module-external receivers: a module type's methods are analyzed in
	// their own package, and tainting a *client.Session because one of
	// its caches saw a tainted key would cascade through every method.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && (fn == nil || !e.isModuleInternal(fn)) {
		if s := e.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if e.taintTarget(st, sel.X, u) {
				changed = true
			}
		}
	}
	for _, a := range call.Args {
		if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op == token.AND {
			if e.taintTarget(st, un.X, u) {
				changed = true
			}
		}
	}
	return changed
}

// report runs the final pass over every function with converged
// summaries, collecting findings.
func (e *taintEngine) report() []Finding {
	var out []Finding
	for _, fi := range e.order {
		st := e.analyzeBody(fi)
		out = append(out, e.reportBody(fi, st)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// reportBody walks one converged function body and emits findings for
// concrete taint reaching sinks.
func (e *taintEngine) reportBody(fi *funcInfo, st *bodyState) []Finding {
	var out []Finding
	emit := func(pos token.Pos, srcLabel taintLabel, sinkDesc string) {
		src := srcLabel.desc
		if srcLabel.pos.IsValid() {
			p := e.p.Fset.Position(srcLabel.pos)
			src = fmt.Sprintf("%s (%s:%d)", src, baseName(p.Filename), p.Line)
		}
		out = append(out, Finding{
			Analyzer: e.spec.analyzer,
			Pos:      e.p.Fset.Position(pos),
			Message:  fmt.Sprintf("%s reaches %s", src, sinkDesc),
		})
	}

	returnSinkDesc, isReturnSink := "", false
	if e.spec.sinkReturn != nil {
		returnSinkDesc, isReturnSink = e.spec.sinkReturn(e.p, fi.decl)
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := resolvedCallee(e.p.Info, x)
			if fn == nil {
				return true
			}
			if e.spec.sanitizer != nil && e.spec.sanitizer(fn) {
				return true
			}
			if e.spec.sinkCall != nil {
				if desc, argIdx, ok := e.spec.sinkCall(fn); ok {
					e.checkSinkArgs(st, x, desc, argIdx, emit)
					return true
				}
			}
			// Package-local callee that sinks a parameter internally:
			// report at this call site when the argument carries taint.
			if callee, ok := e.funcs[fn]; ok && len(callee.sum.paramSinks) > 0 {
				args := e.callArgs(x)
				for param, hits := range callee.sum.paramSinks {
					if param >= len(args) {
						continue
					}
					if l, ok := e.exprTaint(st, args[param]).concrete(); ok {
						for _, h := range hits {
							emit(args[param].Pos(), l, h.desc+" inside "+fn.Name())
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if !isReturnSink {
				return true
			}
			for _, r := range x.Results {
				if l, ok := e.exprTaint(st, r).concrete(); ok {
					emit(r.Pos(), l, returnSinkDesc)
				}
			}
			if len(x.Results) == 0 {
				for _, obj := range fi.results {
					if obj == nil || st.blessed[obj] {
						continue
					}
					if l, ok := st.vars[obj].concrete(); ok {
						emit(x.Pos(), l, returnSinkDesc)
					}
				}
			}
		case *ast.CompositeLit:
			if e.spec.sinkComposite == nil {
				return true
			}
			t := e.p.Info.TypeOf(x)
			if t == nil {
				return true
			}
			desc, ok := e.spec.sinkComposite(t)
			if !ok {
				return true
			}
			for _, elt := range x.Elts {
				v := elt
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					v = kv.Value
				}
				if l, ok := e.exprTaint(st, v).concrete(); ok {
					emit(v.Pos(), l, desc)
				}
			}
		}
		return true
	})

	return out
}

// checkSinkArgs reports tainted arguments of a sink call and records
// parameter flows for the summary.
func (e *taintEngine) checkSinkArgs(st *bodyState, call *ast.CallExpr, desc string, argIdx []int, emit func(token.Pos, taintLabel, string)) {
	check := func(a ast.Expr) {
		if l, ok := e.exprTaint(st, a).concrete(); ok {
			emit(a.Pos(), l, desc)
		}
	}
	for _, a := range e.sinkArgExprs(call, argIdx) {
		check(a)
	}
}

// sinkArgExprs resolves a sink's argIdx spec against a call: nil means
// every plain argument; index -1 names the method receiver (the data in
// req.Encode() is the receiver, not an argument).
func (e *taintEngine) sinkArgExprs(call *ast.CallExpr, argIdx []int) []ast.Expr {
	if argIdx == nil {
		return call.Args
	}
	var out []ast.Expr
	for _, i := range argIdx {
		if i == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s := e.p.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					out = append(out, sel.X)
				}
			}
			continue
		}
		if i < len(call.Args) {
			out = append(out, call.Args[i])
		}
	}
	return out
}

// sinkFlows records parameter labels reaching sinks inside the function,
// mirroring reportBody's sink walk but collecting only parameter flows.
// analyzeBody runs it once the local state has converged.
func (e *taintEngine) sinkFlows(st *bodyState) {
	ast.Inspect(st.fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := resolvedCallee(e.p.Info, call)
		if fn == nil {
			return true
		}
		if e.spec.sanitizer != nil && e.spec.sanitizer(fn) {
			return true
		}
		record := func(a ast.Expr, desc string, pos token.Pos) {
			for l := range e.exprTaint(st, a) {
				if l.param < 0 {
					continue
				}
				if st.paramSinks[l.param] == nil {
					st.paramSinks[l.param] = make(map[sinkHit]struct{})
				}
				st.paramSinks[l.param][sinkHit{desc: desc, pos: pos}] = struct{}{}
			}
		}
		if e.spec.sinkCall != nil {
			if desc, argIdx, ok := e.spec.sinkCall(fn); ok {
				for _, a := range e.sinkArgExprs(call, argIdx) {
					record(a, desc, call.Pos())
				}
				return true
			}
		}
		// Transitive: a parameter handed to a local callee that sinks it.
		if callee, ok := e.funcs[fn]; ok && len(callee.sum.paramSinks) > 0 {
			args := e.callArgs(call)
			for param, hits := range callee.sum.paramSinks {
				if param >= len(args) {
					continue
				}
				for _, h := range hits {
					record(args[param], h.desc+" inside "+fn.Name(), h.pos)
				}
			}
		}
		return true
	})
}

// baseName trims a path to its final element for compact messages.
func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
