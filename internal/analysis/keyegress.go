package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// KeyEgress enforces the write-side trust boundary: plaintext key
// material (sharocrypto SymKey/SignKey/PrivateKey, or raw bytes
// extracted from one) must never flow into a wire encoder, an SSP store
// write, a netsim connection write, or a file write unless it was first
// sealed — AEAD Seal or RSA-OAEP wrap (PublicKey.Seal/SealChunked, the
// meta/cap sealers built on them).
//
// Taint is assigned by type: any expression whose static type is or
// contains a key type is tainted, and k[:], k[i] and k.Marshal() yield
// "raw key bytes" taint that survives even module-internal calls
// (base64/json laundering included). Key-typed values handed to another
// package of this module are that package's responsibility (it is
// analyzed separately), so such calls drop non-raw labels.
type KeyEgress struct{}

// Name implements Analyzer.
func (KeyEgress) Name() string { return "keyegress" }

// Doc implements Analyzer.
func (KeyEgress) Doc() string {
	return "key material must be sealed/wrapped before wire, store or file writes"
}

// keyEgressSanitizers are the sealing functions whose output is safe to
// transmit or persist.
var keyEgressSanitizers = map[string]map[string]bool{
	sharocryptoPkgSuffix: {"Seal": true, "SealChunked": true},
	"internal/meta":      {"Seal": true, "SealSigned": true, "SealSuperblock": true, "SealSplitPointer": true},
	"internal/cap":       {"SealTableView": true},
}

// keyEgressSinkCalls are the egress points: data leaving the client's
// trust domain.
var keyEgressSinkCalls = map[string]map[string][]int{
	"internal/ssp":    {"Put": nil, "BatchPut": nil},
	"internal/wire": {"Encode": {-1}, "SendRequest": nil, "SendResponse": nil, "WriteFrame": nil, "Call": nil,
		// The v2 codec surface: EncodeV2 serializes its receiver like
		// Encode; the Append*/pack-builder forms take the message (and a
		// scratch buffer) as arguments.
		"EncodeV2": {-1}, "AppendRequest": nil, "AppendResponse": nil,
		"AppendRequestV2": nil, "AppendResponseV2": nil, "AddRequest": nil, "AddResponse": nil},
	"internal/netsim": {"Write": nil},
}

// wirePkgSuffix scopes the composite-literal sink: building a wire KV,
// Request or Response around key material is egress even before the
// encoder call.
const wirePkgSuffix = "internal/wire"

// isFileWrite matches os-level file writes.
func isFileWrite(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "WriteFile", "Write", "WriteString", "WriteAt":
		return true
	}
	return false
}

// keyEgressSourceExpr assigns taint by type and shape.
func keyEgressSourceExpr(info *types.Info, e ast.Expr) (string, bool, bool) {
	switch x := e.(type) {
	case *ast.SliceExpr:
		if t := info.TypeOf(x.X); t != nil && isKeyType(t) {
			return "raw key bytes (slice)", true, true
		}
	case *ast.IndexExpr:
		if t := info.TypeOf(x.X); t != nil && isKeyType(t) {
			return "raw key bytes (index)", true, true
		}
	case *ast.CallExpr:
		// k.Marshal() serializes the secret; Seal and friends return
		// ciphertext and are handled as sanitizers, not sources.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Marshal" {
			if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				recv := s.Recv()
				if p, isPtr := recv.(*types.Pointer); isPtr {
					recv = p.Elem()
				}
				if isKeyType(recv) {
					if tv, ok := info.Types[x]; ok && (isByteSlice(tv.Type) || isByteArray(tv.Type)) {
						return "raw key bytes (Marshal)", true, true
					}
				}
			}
		}
	}
	if t := info.TypeOf(e); t != nil && containsKeyType(t) {
		return "key-bearing value", false, true
	}
	return "", false, false
}

// Check implements Analyzer.
func (KeyEgress) Check(p *Package) []Finding {
	spec := &taintSpec{
		analyzer:   "keyegress",
		sourceExpr: keyEgressSourceExpr,
		sanitizer: func(fn *types.Func) bool {
			_, ok := matchSuffixFunc(keyEgressSanitizers, fn)
			return ok
		},
		sinkCall: func(fn *types.Func) (string, []int, bool) {
			if isFileWrite(fn) {
				return "file write os." + fn.Name(), nil, true
			}
			if fn.Pkg() == nil {
				return "", nil, false
			}
			for suffix, names := range keyEgressSinkCalls {
				if !strings.HasSuffix(fn.Pkg().Path(), suffix) {
					continue
				}
				args, ok := names[fn.Name()]
				if !ok {
					continue
				}
				kind := "store write"
				switch suffix {
				case "internal/wire":
					kind = "wire encoder"
				case "internal/netsim":
					kind = "network write"
				}
				return kind + " " + shortPkg(suffix) + "." + fn.Name(), args, true
			}
			return "", nil, false
		},
		sinkComposite: func(t types.Type) (string, bool) {
			n, ok := t.(*types.Named)
			if !ok || n.Obj().Pkg() == nil {
				return "", false
			}
			if !strings.HasSuffix(n.Obj().Pkg().Path(), wirePkgSuffix) {
				return "", false
			}
			return "wire." + n.Obj().Name() + " literal", true
		},
		// A struct holding a key does not make its plain fields secret —
		// metadata objects carry both keys and public attributes.
		fieldTaint: false,
		// Key-typed values passed to other packages of this module are
		// checked when that package is analyzed; raw bytes stay tainted.
		opaqueModuleCalls: true,
	}
	return analyzeTaint(p, spec)
}
