package analysis

import (
	"strings"
	"testing"
)

// TestErrDrop pins the nine ways errdropbad loses fault-relevant
// errors, in source order, and that the handled forms stay quiet.
func TestErrDrop(t *testing.T) {
	bad := runOne(t, ErrDrop{}, "errdropbad/internal/client")
	if len(bad) != 9 {
		t.Fatalf("errdropbad: got %d findings, want 9:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"ssp.Put error discarded;",
		"ssp.Put error discarded via _",
		"ssp.Get error discarded via _",
		"deferred ssp.Close discards its error",
		"ssp.Flush error lost in goroutine",
		"ssp.Put error assigned to err but never read",
		"flushAll error discarded",
		"os.File.Write error discarded",
		"os.File.Close on a write path error discarded",
	}
	for i, f := range bad {
		if f.Analyzer != "errdrop" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, ErrDrop{}, "errdropgood/internal/client"); len(good) != 0 {
		t.Fatalf("errdropgood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestErrDropAllowSuppression proves the errdropgood waiver is doing
// real work: the raw analyzer flags the allowed Flush discard, and Run
// suppresses it because the directive carries a justification.
func TestErrDropAllowSuppression(t *testing.T) {
	p := fixturePkg(t, "errdropgood/internal/client")
	raw := ErrDrop{}.Check(p)
	if len(raw) != 1 || !strings.Contains(raw[0].Message, "ssp.Flush error discarded") {
		t.Fatalf("raw check: got %d findings, want exactly the allowed Flush discard:\n%s",
			len(raw), findingsText(raw))
	}
	if got := Run(p, []Analyzer{ErrDrop{}}); len(got) != 0 {
		t.Fatalf("Run should suppress the justified allow:\n%s", findingsText(got))
	}
	if counts := AllowCounts(p); counts["errdrop"] != 1 {
		t.Fatalf("AllowCounts[errdrop] = %d, want 1 (map: %v)", counts["errdrop"], counts)
	}
}

// TestErrWrap pins the five identity-flattening shapes and the clean
// wrapping idioms.
func TestErrWrap(t *testing.T) {
	bad := runOne(t, ErrWrap{}, "errwrapbad")
	if len(bad) != 5 {
		t.Fatalf("errwrapbad: got %d findings, want 5:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"error formatted with %v",
		"error formatted with %s",
		"err.Error() inside an error constructor",
		"err.Error() inside an error constructor",
		"error formatted with %v",
	}
	for i, f := range bad {
		if f.Analyzer != "errwrap" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, ErrWrap{}, "errwrapgood"); len(good) != 0 {
		t.Fatalf("errwrapgood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestResLeak pins the three path-sensitive leaks — early error return,
// failure return before End, branch-local Close — and that release,
// transfer, and guard idioms all discharge the obligation.
func TestResLeak(t *testing.T) {
	bad := runOne(t, ResLeak{}, "resleakbad/internal/client")
	if len(bad) != 3 {
		t.Fatalf("resleakbad: got %d findings, want 3:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		`ssp.Client "c" is not released on the path leaving at line 20`,
		`ssp.Span "sp" is not released on the path leaving at line 29`,
		`ssp.Client "c" is not released on the path leaving at line 45`,
	}
	for i, f := range bad {
		if f.Analyzer != "resleak" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, ResLeak{}, "resleakgood/internal/client"); len(good) != 0 {
		t.Fatalf("resleakgood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestBufRelease pins resleak's coverage of the wire buffer arena:
// AcquireBuf/ReadFrameBuf create Release obligations, and the decode-
// error return — the path the arena actually leaks on in a careless
// server loop — is caught. The good fixture proves defer, per-path
// Release, channel handoff, and returning the buffer all discharge it,
// and that Retain (a read of the handle) does not.
func TestBufRelease(t *testing.T) {
	bad := runOne(t, ResLeak{}, "bufreleasebad/internal/server")
	if len(bad) != 3 {
		t.Fatalf("bufreleasebad: got %d findings, want 3:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		`wire.Buf "buf" is not released on the path leaving at line 24`,
		`wire.Buf "buf" is not released on the path leaving at line 35`,
		`wire.Buf "buf" is not released on the path leaving at line 51`,
	}
	for i, f := range bad {
		if f.Analyzer != "resleak" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, ResLeak{}, "bufreleasegood/internal/server"); len(good) != 0 {
		t.Fatalf("bufreleasegood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestErrPropCleanTree runs the three new analyzers over every real
// package in the module; any finding here means a regression slipped
// into the tree (or a new finding needs a fix or a justified allow).
func TestErrPropCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dirs, err := ExpandPatterns("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	pkgs, err := loader.LoadAll(dirs)
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	for _, p := range pkgs {
		got := Run(p, []Analyzer{ErrDrop{}, ErrWrap{}, ResLeak{}})
		if len(got) != 0 {
			t.Errorf("%s: unexpected findings:\n%s", p.Path, findingsText(got))
		}
	}
}
