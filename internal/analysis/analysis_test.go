package analysis

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: type-checking sharocrypto (and
// its stdlib closure) from source is the expensive part, and the loader
// memoizes it.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixturePkg(t *testing.T, dir string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return p
}

// runOne runs a single analyzer (with suppression handling) over a
// fixture directory.
func runOne(t *testing.T, a Analyzer, dir string) []Finding {
	t.Helper()
	return Run(fixturePkg(t, dir), []Analyzer{a})
}

func TestKeyLeak(t *testing.T) {
	bad := runOne(t, KeyLeak{}, "keyleakbad")
	if len(bad) != 5 {
		t.Fatalf("keyleakbad: got %d findings, want 5:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"key-bearing type",
		"slice of key value",
		"index of key value",
		"key-bearing type",
		"Marshal() on key value",
	}
	for i, f := range bad {
		if f.Analyzer != "keyleak" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, KeyLeak{}, "keyleakgood"); len(good) != 0 {
		t.Fatalf("keyleakgood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestKeyLeakObs pins the observability sinks: span annotations and
// metric names are exported (trace files, -debug-addr), so key material
// routed into them — however laundered — must be flagged, while the
// fixed-operation-name idioms the real instrumentation uses must not.
func TestKeyLeakObs(t *testing.T) {
	bad := runOne(t, KeyLeak{}, "obsleakbad")
	if len(bad) != 5 {
		t.Fatalf("obsleakbad: got %d findings, want 5:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"via string conversion", // Annotate(string(k[:]))
		"via fmt.Sprintf",       // Annotate(fmt.Sprintf(..., k))
		"key-bearing type",      // k inside the Sprintf itself
		"via string conversion", // Counter("op." + string(k[:]))
		"via string conversion", // Histogram(string(sk.Marshal()))
	}
	for i, f := range bad {
		if f.Analyzer != "keyleak" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	for i, f := range bad[:2] {
		if !strings.Contains(f.Message, "obs.Annotate") {
			t.Errorf("finding %d: message %q does not name the obs.Annotate sink", i, f.Message)
		}
	}
	if good := runOne(t, KeyLeak{}, "obsleakgood"); len(good) != 0 {
		t.Fatalf("obsleakgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestAADBind(t *testing.T) {
	bad := runOne(t, AADBind{}, "aadbindbad")
	if len(bad) != 3 {
		t.Fatalf("aadbindbad: got %d findings, want 3:\n%s", len(bad), findingsText(bad))
	}
	for _, f := range bad {
		if f.Analyzer != "aadbind" {
			t.Errorf("analyzer %q, want aadbind", f.Analyzer)
		}
	}
	// aadbindgood includes a //sharoes-vet:allow directive; Run must honor
	// it, so the fixture also proves suppression works.
	if good := runOne(t, AADBind{}, "aadbindgood"); len(good) != 0 {
		t.Fatalf("aadbindgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestAADBindDirectiveIsRequired(t *testing.T) {
	// Without Run's suppression pass, the allow-directive site in the good
	// fixture IS a violation — proving the directive, not the analyzer,
	// silences it.
	p := fixturePkg(t, "aadbindgood")
	if raw := (AADBind{}).Check(p); len(raw) != 1 {
		t.Fatalf("raw aadbind findings in aadbindgood: got %d, want 1 (the suppressed site)", len(raw))
	}
}

func TestRawRand(t *testing.T) {
	bad := runOne(t, RawRand{}, "rawrandbad")
	if len(bad) != 1 {
		t.Fatalf("rawrandbad: got %d findings, want 1:\n%s", len(bad), findingsText(bad))
	}
	if bad[0].Analyzer != "rawrand" || !strings.Contains(bad[0].Message, "math/rand") {
		t.Fatalf("unexpected finding: %s", bad[0])
	}
	if good := runOne(t, RawRand{}, "rawrandgood"); len(good) != 0 {
		t.Fatalf("rawrandgood: unexpected findings:\n%s", findingsText(good))
	}
	// The allowlist admits packages whose import path ends in
	// internal/workload even though they import math/rand.
	if allowed := runOne(t, RawRand{}, filepath.Join("rawrandallowed", "internal", "workload")); len(allowed) != 0 {
		t.Fatalf("rawrandallowed: unexpected findings:\n%s", findingsText(allowed))
	}
}

func TestErrString(t *testing.T) {
	bad := runOne(t, ErrString{}, filepath.Join("errstringbad", "internal", "ssp"))
	if len(bad) != 3 {
		t.Fatalf("errstringbad: got %d findings, want 3:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{"[]byte blob value", "blob-bearing value", "string(blob) conversion"}
	for i, f := range bad {
		if f.Analyzer != "errstring" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, ErrString{}, filepath.Join("errstringgood", "internal", "ssp")); len(good) != 0 {
		t.Fatalf("errstringgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestErrStringScopedToWireAndSSP(t *testing.T) {
	// The same blob-printing code outside internal/wire and internal/ssp
	// is not errstring's business (keyleak still applies to keys there).
	p := fixturePkg(t, "keyleakbad")
	if got := Run(p, []Analyzer{ErrString{}}); len(got) != 0 {
		t.Fatalf("errstring fired outside wire/ssp:\n%s", findingsText(got))
	}
}

func TestUnverified(t *testing.T) {
	bad := runOne(t, Unverified{}, filepath.Join("unverifiedbad", "internal", "client"))
	if len(bad) != 5 {
		t.Fatalf("unverifiedbad: got %d findings, want 5:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"exported client return value of Fetch",
		"exported client return value of FetchVia",
		"cache insert",
		"key-selection cap.MEKFor",
		"cache insert", // Prefetch: the async-goroutine flow
	}
	for i, f := range bad {
		if f.Analyzer != "unverified" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, Unverified{}, filepath.Join("unverifiedgood", "internal", "client")); len(good) != 0 {
		t.Fatalf("unverifiedgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestUnverifiedDirectiveIsRequired(t *testing.T) {
	// unverifiedgood's Raw method returns unverified bytes behind an allow
	// directive: without Run's suppression pass it IS a violation.
	p := fixturePkg(t, filepath.Join("unverifiedgood", "internal", "client"))
	if raw := (Unverified{}).Check(p); len(raw) != 1 {
		t.Fatalf("raw unverified findings in unverifiedgood: got %d, want 1 (the suppressed site)", len(raw))
	}
}

func TestKeyEgress(t *testing.T) {
	bad := runOne(t, KeyEgress{}, "keyegressbad")
	if len(bad) != 6 {
		t.Fatalf("keyegressbad: got %d findings, want 6:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"wire.KV literal",
		"wire.Request literal",
		"wire encoder wire.Encode",
		"store write ssp.Put",
		"file write os.WriteFile",
		"store write ssp.Put", // BadAsyncStore: the async-goroutine flow
	}
	for i, f := range bad {
		if f.Analyzer != "keyegress" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	// The base64-laundered Marshal flow must be reported as raw key bytes:
	// encoding is not sealing, and module-opacity must not launder it.
	if !strings.Contains(bad[4].Message, "raw key bytes (Marshal)") {
		t.Errorf("file-write finding %q does not identify raw key bytes", bad[4].Message)
	}
	if good := runOne(t, KeyEgress{}, "keyegressgood"); len(good) != 0 {
		t.Fatalf("keyegressgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestRunSortsAndAggregates(t *testing.T) {
	p := fixturePkg(t, "keyleakbad")
	got := Run(p, Analyzers())
	for i := 1; i < len(got); i++ {
		a, b := got[i-1].Pos, got[i].Pos
		if a.Filename == b.Filename && (a.Line > b.Line || (a.Line == b.Line && a.Column > b.Column)) {
			t.Fatalf("findings out of order: %s before %s", got[i-1], got[i])
		}
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	dirs, err := ExpandPatterns(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no dirs expanded")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("ExpandPatterns descended into testdata: %s", d)
		}
	}
}

// TestVetCleanTree is the acceptance check in miniature: the analyzers
// must be silent on the real packages they were written to guard.
func TestVetCleanTree(t *testing.T) {
	for _, rel := range []string{
		filepath.Join("..", "sharocrypto"),
		filepath.Join("..", "wire"),
		filepath.Join("..", "ssp"),
		filepath.Join("..", "baseline"),
		filepath.Join("..", "client"),
		filepath.Join("..", "workload"),
		filepath.Join("..", "cache"),
		filepath.Join("..", "cap"),
		filepath.Join("..", "keys"),
		filepath.Join("..", "layout"),
		filepath.Join("..", "meta"),
		filepath.Join("..", "netsim"),
	} {
		loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
		if loaderErr != nil {
			t.Fatalf("NewLoader: %v", loaderErr)
		}
		p, err := loader.LoadDir(rel)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		if got := Run(p, Analyzers()); len(got) != 0 {
			t.Errorf("%s: unexpected findings:\n%s", rel, findingsText(got))
		}
	}
}

func findingsText(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
