// Package keyleakbad is a sharoes-vet test fixture: every print below
// leaks key material and must be flagged by the keyleak analyzer.
package keyleakbad

import (
	"fmt"
	"log"

	"github.com/sharoes/sharoes/internal/sharocrypto"
)

type holder struct {
	K sharocrypto.SymKey
}

// Bad exercises each leak form.
func Bad(l *log.Logger) error {
	k := sharocrypto.NewSymKey()
	fmt.Printf("key=%v\n", k)   // leak: key-typed value
	fmt.Println(k[:])           // leak: sliced raw key bytes
	log.Printf("byte %d", k[0]) // leak: single key byte

	var h holder
	l.Printf("holder %v", h) // leak: struct containing a key

	sk, _ := sharocrypto.NewSigningPair()
	return fmt.Errorf("seed %x", sk.Marshal()) // leak: marshalled secret
}
