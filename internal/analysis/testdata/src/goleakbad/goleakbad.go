// Package goleakbad is a sharoes-vet test fixture: goroutines with
// unbounded loops whose owners offer no shutdown edge at all — no
// Close/Stop method, no context, no channel anyone closes, no join.
package goleakbad

import "sync"

// Pump has no lifecycle method.
type Pump struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// New leaks its drain goroutine: the only exit would be closing ch,
// and nothing in the package ever does.
func New() *Pump {
	p := &Pump{ch: make(chan int)}
	go p.drain()
	return p
}

func (p *Pump) drain() {
	for {
		v := <-p.ch
		p.mu.Lock()
		p.n += v
		p.mu.Unlock()
	}
}

// Watch leaks an anonymous goroutine ranging over a channel this
// package never closes, spawned from a function with no owner type.
func Watch(updates chan int, f func(int)) {
	go func() {
		for v := range updates {
			f(v)
		}
	}()
}

// Redialer mirrors a reconnect-client dial loop gone wrong: the
// goroutine redials forever and the owner exposes no Close, no stop
// channel, no context — nothing ever ends the loop.
type Redialer struct {
	dial func() (int, error)
	conn chan int
}

// NewRedialer leaks its redial loop.
func NewRedialer(dial func() (int, error)) *Redialer {
	r := &Redialer{dial: dial, conn: make(chan int)}
	go r.redialLoop()
	return r
}

func (r *Redialer) redialLoop() {
	for {
		c, err := r.dial()
		if err != nil {
			continue
		}
		r.conn <- c
	}
}
