// Package server discharges every wire-buffer obligation — by Release
// on all paths, by deferred Release, or by ownership transfer to the
// dispatcher that releases later. Zero findings.
package server

import (
	"io"

	"github.com/sharoes/sharoes/internal/analysis/testdata/src/bufreleasegood/internal/wire"
)

// Deferred releases on every path, decode failures included.
func Deferred(r io.Reader) error {
	buf, _, err := wire.ReadFrameBuf(r)
	if err != nil {
		return err
	}
	defer buf.Release()
	return wire.Decode(buf.Bytes())
}

// EveryPath pairs an explicit Release with each return.
func EveryPath(r io.Reader) error {
	buf, _, err := wire.ReadFrameBuf(r)
	if err != nil {
		return err
	}
	if err := wire.Decode(buf.Bytes()); err != nil {
		buf.Release()
		return err
	}
	buf.Release()
	return nil
}

// Dispatched transfers the frame — and its Release — to the worker
// goroutine; Retain reads the handle without discharging the transfer.
func Dispatched(r io.Reader, frames chan<- *wire.Buf) error {
	buf, _, err := wire.ReadFrameBuf(r)
	if err != nil {
		return err
	}
	buf.Retain()
	frames <- buf
	return nil
}

// Returned hands the scratch buffer to the caller.
func Returned(n int) *wire.Buf {
	buf := wire.AcquireBuf(n)
	return buf
}
