// Package wire is a stub of the frame-buffer arena for the resleak
// fixtures: pooled refcounted buffers acquired by AcquireBuf or
// ReadFrameBuf and discharged by Release.
package wire

import "io"

// Buf is a stub pooled frame buffer with a Release obligation.
type Buf struct{ data []byte }

// AcquireBuf hands out a pooled buffer; the caller owes one Release.
func AcquireBuf(n int) *Buf { return &Buf{data: make([]byte, n)} }

// ReadFrameBuf reads one frame into a pooled buffer the caller must
// Release.
func ReadFrameBuf(r io.Reader) (*Buf, int, error) { return &Buf{}, 0, nil }

// Bytes returns the buffered frame.
func (b *Buf) Bytes() []byte { return b.data }

// Retain adds a reference; every Retain owes another Release.
func (b *Buf) Retain() {}

// Release drops one reference, returning the buffer to its pool at
// zero.
func (b *Buf) Release() {}

// Decode parses the frame; a stub that can fail.
func Decode(b []byte) error { return nil }
