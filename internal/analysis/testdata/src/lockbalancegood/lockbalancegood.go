// Package lockbalancegood is a sharoes-vet test fixture: the locking
// idioms the real tree uses, all of which lockbalance must accept —
// deferred unlocks, early returns that release before returning,
// per-iteration lock/unlock, helpers whose callers hold the lock
// (covered by call-context inference), and locks passed by pointer.
package lockbalancegood

import "sync"

// Store guards n with mu.
type Store struct {
	mu sync.Mutex
	n  int
}

// Deferred is the default idiom.
func (s *Store) Deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// EarlyReturn releases explicitly on every path.
func (s *Store) EarlyReturn(v int) bool {
	s.mu.Lock()
	if s.n > v {
		s.mu.Unlock()
		return false
	}
	s.n = v
	s.mu.Unlock()
	return true
}

// PerIteration holds the lock only inside the loop body, entering and
// leaving every iteration unlocked.
func (s *Store) PerIteration(vals []int) {
	for _, v := range vals {
		s.mu.Lock()
		s.n += v
		s.mu.Unlock()
	}
}

// setLocked runs with s.mu held by its callers; the inferred call
// context carries the lock across the boundary.
func (s *Store) setLocked(v int) {
	s.n = v
}

// Set is setLocked's only caller and always holds mu.
func (s *Store) Set(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(v)
}

// with receives the lock by pointer — the legal way to hand one around.
func with(mu *sync.Mutex, f func()) {
	mu.Lock()
	defer mu.Unlock()
	f()
}

// Apply routes through with.
func (s *Store) Apply(f func()) {
	with(&s.mu, f)
}
