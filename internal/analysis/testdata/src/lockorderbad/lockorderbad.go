// Package lockorderbad is a sharoes-vet test fixture: two lock classes
// acquired in opposite orders by different functions, with one side of
// the cycle hidden behind a helper call so only the interprocedural
// acquisition edges can see it.
package lockorderbad

import "sync"

// Store has two independent locks with no documented order.
type Store struct {
	mu  sync.Mutex
	idx sync.Mutex
	n   int
}

// Get acquires mu then idx directly: the mu -> idx edge.
func (s *Store) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.Lock()
	defer s.idx.Unlock()
	return s.n
}

// Put holds idx across a call to bump, which locks mu: the idx -> mu
// edge exists only through the callee's acquisition summary.
func (s *Store) Put(v int) {
	s.idx.Lock()
	defer s.idx.Unlock()
	s.bump(v)
}

func (s *Store) bump(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = v
}
