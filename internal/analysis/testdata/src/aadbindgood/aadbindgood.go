// Package aadbindgood is a sharoes-vet test fixture: AADs bind a context,
// or the site carries a reviewed allow directive; aadbind must stay
// silent under Run.
package aadbindgood

import "github.com/sharoes/sharoes/internal/sharocrypto"

// Good binds contextual AADs and uses one reviewed suppression.
func Good(ctx []byte) ([]byte, error) {
	k := sharocrypto.NewSymKey()
	blob := k.Seal([]byte("x"), ctx) // dynamic AAD: fine
	_ = k.Seal([]byte("x"), []byte("meta|1|u/alice"))
	//sharoes-vet:allow aadbind fixture: reviewed, value is self-describing
	_ = k.Seal([]byte("x"), nil)
	return k.Open(blob, ctx)
}
