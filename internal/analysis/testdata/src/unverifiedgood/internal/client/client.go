// Package client is a sharoes-vet test fixture (path suffix
// internal/client): every flow below authenticates untrusted bytes
// before they cross the trust boundary, so unverified must stay silent.
package client

import (
	"github.com/sharoes/sharoes/internal/cache"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// Client mirrors the real client shape.
type Client struct {
	store ssp.BlobStore
	cache *cache.Cache
	mek   sharocrypto.SymKey
	mvk   sharocrypto.VerifyKey
}

// Fetch opens (decrypt + verify) the blob before returning it.
func (c *Client) Fetch(key string, aad []byte) ([]byte, error) {
	blob, err := c.store.Get(wire.NSData, key)
	if err != nil {
		return nil, err
	}
	return meta.OpenVerified(c.mek, c.mvk, aad, blob)
}

// FetchSigned verifies the detached signature in place, then trusts the
// blob — the Verify-blesses-its-argument pattern.
func (c *Client) FetchSigned(key string, sig []byte) ([]byte, error) {
	blob, err := c.store.Get(wire.NSData, key)
	if err != nil {
		return nil, err
	}
	if err := c.mvk.Verify(blob, sig); err != nil {
		return nil, err
	}
	return blob, nil
}

// CacheOpened inserts only authenticated plaintext into the cache.
func (c *Client) CacheOpened(key string, aad []byte) error {
	blob, err := c.store.Get(wire.NSData, key)
	if err != nil {
		return err
	}
	pt, err := meta.OpenVerified(c.mek, c.mvk, aad, blob)
	if err != nil {
		return err
	}
	c.cache.Put(key, pt, int64(len(pt)))
	return nil
}

// Raw returns unverified bytes behind an explicit, justified allow —
// the fixture that proves the directive (not the analyzer) silences it.
func (c *Client) Raw(key string) []byte {
	blob, _ := c.store.Get(wire.NSData, key)
	//sharoes-vet:allow unverified fixture exercises directive suppression
	return blob
}

// FetchHedged races two replica reads and authenticates on the racing
// path itself: each goroutine opens (decrypt + verify) its replica's
// blob before anything crosses the channel, so whichever replica wins,
// only verified plaintext ever reaches the return.
func (c *Client) FetchHedged(primary, hedge ssp.BlobStore, key string, aad []byte) ([]byte, error) {
	type result struct {
		pt  []byte
		err error
	}
	results := make(chan result, 2)
	for _, st := range []ssp.BlobStore{primary, hedge} {
		go func(st ssp.BlobStore) {
			blob, err := st.Get(wire.NSData, key)
			if err != nil {
				results <- result{nil, err}
				return
			}
			pt, err := meta.OpenVerified(c.mek, c.mvk, aad, blob)
			results <- result{pt, err}
		}(st)
	}
	var firstErr error
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		return r.pt, nil
	}
	return nil, firstErr
}

// Prefetch authenticates on the async path too: the background goroutine
// opens (decrypt + verify) each blob before it may touch the cache.
func (c *Client) Prefetch(keys []string, aad []byte) {
	for _, k := range keys {
		go func(k string) {
			blob, err := c.store.Get(wire.NSData, k)
			if err != nil {
				return
			}
			pt, err := meta.OpenVerified(c.mek, c.mvk, aad, blob)
			if err != nil {
				return
			}
			c.cache.Put(k, pt, int64(len(pt)))
		}(k)
	}
}
