// Package ssp is a sharoes-vet test fixture (path suffix internal/ssp):
// errors report keys and lengths, never contents, so errstring must stay
// silent.
package ssp

import (
	"errors"
	"fmt"
	"log"
)

// Good reports only sizes, keys and wrapped errors.
func Good(key string, val []byte, err error) error {
	log.Printf("read %q: %v", key, err)
	if len(val) == 0 {
		return errors.New("ssp: empty value")
	}
	return fmt.Errorf("ssp: bad value for %q (%d bytes): %w", key, len(val), err)
}
