// Package obsleakbad is a sharoes-vet test fixture: every observability
// label below routes key material into an exported trace or metric name
// and must be flagged by the keyleak analyzer.
package obsleakbad

import (
	"fmt"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/sharocrypto"
)

// Bad exercises each obs-label leak form.
func Bad(t *obs.Tracer, reg *obs.Registry) {
	k := sharocrypto.NewSymKey()
	sp := t.Start("op", obs.ClassNone)
	sp.Annotate("dek", string(k[:]))         // leak: key bytes laundered through string()
	sp.Annotate("key", fmt.Sprintf("%x", k)) // leak: key formatted into the label (and at the Sprintf itself)
	reg.Counter("op." + string(k[:])).Inc()  // leak: key bytes concatenated into a metric name
	sk, _ := sharocrypto.NewSigningPair()
	reg.Histogram(string(sk.Marshal())).Observe(time.Millisecond) // leak: marshalled secret as metric name
	sp.End()
}
