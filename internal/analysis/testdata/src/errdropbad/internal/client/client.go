// Package client drops fault-relevant errors every way errdrop knows
// how to catch. Expected findings, in source order:
//
//  1. Put error discarded (bare ExprStmt)
//  2. Put error discarded via _
//  3. Get error discarded via _ in a tuple destructure
//  4. deferred Close discards its error
//  5. Flush error lost in a goroutine
//  6. Put error assigned to the named result, then overridden by return nil
//  7. local wrapper's derived error discarded
//  8. os.File.Write error discarded on a write path
//  9. os.File.Close error discarded on a write path
package client

import (
	"os"

	"github.com/sharoes/sharoes/internal/analysis/testdata/src/errdropbad/internal/ssp"
)

// PutDiscard drops the store-write error on the floor.
func PutDiscard(c *ssp.Client, v []byte) {
	c.Put("k", v) // want errdrop: error discarded
}

// PutUnderscore discards explicitly, without a justification.
func PutUnderscore(c *ssp.Client, v []byte) {
	_ = c.Put("k", v) // want errdrop: discarded via _
}

// GetDrop keeps the value and throws away the verification error.
func GetDrop(c *ssp.Client) []byte {
	v, _ := c.Get("k") // want errdrop: discarded via _
	return v
}

// DeferClose loses the final flush implied by Close.
func DeferClose(c *ssp.Client) {
	defer c.Close() // want errdrop: deferred Close
}

// GoFlush spawns the flush where no caller can see it fail.
func GoFlush(c *ssp.Client) {
	go c.Flush() // want errdrop: lost in goroutine
}

// Overwritten assigns the fault error to the named result and then
// returns nil explicitly, silently dropping it.
func Overwritten(c *ssp.Client, v []byte) (err error) {
	err = c.Put("k", v) // want errdrop: never read
	return nil
}

// flushAll is a local wrapper: its error derives from ssp.Flush, so the
// effect fixpoint marks it fault-relevant too.
func flushAll(c *ssp.Client) error {
	return c.Flush()
}

// UseWrapper discards the wrapper's derived error.
func UseWrapper(c *ssp.Client) {
	flushAll(c) // want errdrop: wrapper error discarded
}

// WriteTemp is a write path (os.Create in scope), so both the Write and
// the Close carry data-loss errors.
func WriteTemp(path string, v []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(v) // want errdrop: os.File.Write
	f.Close()  // want errdrop: os.File.Close on a write path
}
