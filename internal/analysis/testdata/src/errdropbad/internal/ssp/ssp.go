// Package ssp is a stub whose import-path suffix (internal/ssp) makes
// its error-returning calls fault-relevant to errdrop.
package ssp

import "errors"

// ErrFault is the injected-fault sentinel.
var ErrFault = errors.New("ssp: injected fault")

// Client is a stub pipelined session.
type Client struct{ closed bool }

// Dial opens a stub session.
func Dial() (*Client, error) { return &Client{}, nil }

// Put stores a blob.
func (c *Client) Put(key string, val []byte) error {
	if c.closed {
		return ErrFault
	}
	return nil
}

// Get fetches a blob.
func (c *Client) Get(key string) ([]byte, error) {
	if c.closed {
		return nil, ErrFault
	}
	return []byte(key), nil
}

// Flush drains buffered writes.
func (c *Client) Flush() error { return nil }

// Close flushes and tears down the session.
func (c *Client) Close() error {
	c.closed = true
	return nil
}
