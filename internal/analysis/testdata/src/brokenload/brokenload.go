// Package brokenload is a sharoes-vet test fixture: a package that does
// not parse. The loader must return an error (sharoes-vet exit 2), not
// panic.
package brokenload

func Broken( {
