// Package client handles every fault-relevant error errdrop watches:
// checked, returned, joined into a named result, consumed by a helper,
// or — once — explicitly waived with a justification. Zero findings
// after suppression; exactly one raw finding (the allowed discard).
package client

import (
	"errors"
	"os"

	"github.com/sharoes/sharoes/internal/analysis/testdata/src/errdropgood/internal/ssp"
)

// PutChecked checks in place.
func PutChecked(c *ssp.Client, v []byte) error {
	if err := c.Put("k", v); err != nil {
		return err
	}
	return nil
}

// GetReturned forwards the tuple.
func GetReturned(c *ssp.Client) ([]byte, error) {
	return c.Get("k")
}

// CloseCaptured folds the deferred Close error into the named result,
// the idiom the analyzer's defer message recommends.
func CloseCaptured(c *ssp.Client, v []byte) (err error) {
	defer func() { err = errors.Join(err, c.Close()) }()
	return c.Put("k", v)
}

// FlushLater reads the error on a later statement; assignment plus a
// real read is not a drop.
func FlushLater(c *ssp.Client) error {
	err := c.Flush()
	if err != nil {
		return err
	}
	return nil
}

// WarmCache deliberately tolerates the loss: warm-up traffic is
// advisory, and the waiver says so in place.
func WarmCache(c *ssp.Client) {
	//sharoes-vet:allow errdrop warm-up traffic is advisory; a miss only costs latency, never correctness
	c.Flush()
}

// WriteTemp joins the close error with the write error on both paths.
func WriteTemp(path string, v []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(v); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
