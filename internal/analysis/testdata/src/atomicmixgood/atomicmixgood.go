// Package atomicmixgood is a sharoes-vet test fixture: the disciplined
// versions of atomicmixbad's patterns — a typed atomic (immune to mixed
// access by construction), constructor initialization before sharing,
// and a locked helper whose guard arrives via call-context inference.
package atomicmixgood

import (
	"sync"
	"sync/atomic"
)

// Counter uses a typed atomic for hits and guards size with mu.
type Counter struct {
	mu   sync.Mutex
	hits atomic.Int64
	size int
}

// NewCounter writes size before the value is shared: exempt.
func NewCounter(size int) *Counter {
	c := &Counter{}
	c.size = size
	return c
}

// Add and Peek cannot mix: the type has no plain representation.
func (c *Counter) Add() {
	c.hits.Add(1)
}

func (c *Counter) Peek() int64 {
	return c.hits.Load()
}

// Grow and Len access size under mu.
func (c *Counter) Grow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size += n
}

func (c *Counter) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// sizeLocked runs under c.mu at every call site.
func (c *Counter) sizeLocked() int {
	return c.size
}

// Sum is sizeLocked's only caller.
func (c *Counter) Sum() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sizeLocked() + 1
}
