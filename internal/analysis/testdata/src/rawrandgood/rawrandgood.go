// Package rawrandgood is a sharoes-vet test fixture: entropy comes from
// crypto/rand, so rawrand must stay silent.
package rawrandgood

import (
	"crypto/rand"
	"io"
)

// Entropy reads real randomness.
func Entropy() ([]byte, error) {
	b := make([]byte, 16)
	_, err := io.ReadFull(rand.Reader, b)
	return b, err
}
