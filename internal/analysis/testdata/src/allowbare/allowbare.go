// Package allowbare is a sharoes-vet test fixture: an allow directive
// with no justification must not suppress the finding it sits on, and
// must itself be reported.
package allowbare

//sharoes-vet:allow rawrand
import "math/rand"

// Entropy would be suppressed if the directive above carried a reason.
func Entropy() int64 { return rand.Int63() }
