// Package client is a sharoes-vet test fixture (path suffix
// internal/client): every flow below moves unverified SSP/wire bytes
// across the trust boundary and must be flagged by unverified.
package client

import (
	"github.com/sharoes/sharoes/internal/cache"
	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// Client mirrors the real client shape: an untrusted store and a cache.
type Client struct {
	store ssp.BlobStore
	cache *cache.Cache
}

// Fetch returns an SSP read with no Open/Verify on the path.
func (c *Client) Fetch(key string) ([]byte, error) {
	blob, err := c.store.Get(wire.NSData, key)
	if err != nil {
		return nil, err
	}
	return blob, nil // finding: unverified bytes returned from exported API
}

// fetchRaw introduces the taint in a helper...
func (c *Client) fetchRaw(key string) ([]byte, error) {
	return c.store.Get(wire.NSData, key)
}

// FetchVia ...and the caller leaks it: the cross-function summary case.
func (c *Client) FetchVia(key string) ([]byte, error) {
	return c.fetchRaw(key) // finding: taint introduced in callee, sunk here
}

// CacheResponse inserts decoded-but-unverified wire payloads into the
// cache, poisoning later reads.
func (c *Client) CacheResponse(payload []byte) error {
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return err
	}
	for _, it := range resp.Items {
		c.cache.Put(it.Key, it.Val, int64(len(it.Val))) // finding: cache insert
	}
	return nil
}

// selectKey derives an object key from unverified bytes — the SSP would
// get to steer which key the client trusts.
func (c *Client) selectKey() sharocrypto.SymKey {
	blob, _ := c.store.Get(wire.NSMeta, "seed")
	seed, _ := sharocrypto.SymKeyFromBytes(blob)
	return cap.MEKFor(seed, "o") // finding: key-selection from unverified input
}

// Prefetch fills the cache from background goroutines — the async path the
// pipelined client makes cheap. Moving the fetch off the caller's
// goroutine must not launder the taint: the raw SSP bytes still land in
// trusted client state.
func (c *Client) Prefetch(keys []string) {
	for _, k := range keys {
		go func(k string) {
			blob, err := c.store.Get(wire.NSData, k)
			if err != nil {
				return
			}
			c.cache.Put(k, blob, int64(len(blob))) // finding: cache insert on async path
		}(k)
	}
}
