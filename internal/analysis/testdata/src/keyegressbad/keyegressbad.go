// Package keyegressbad is a sharoes-vet test fixture: every flow below
// moves plaintext key material toward the SSP or disk without sealing,
// and must be flagged by keyegress.
package keyegressbad

import (
	"encoding/base64"
	"os"

	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// BadKV embeds raw key bytes in a wire KV.
func BadKV(k sharocrypto.SymKey) wire.KV {
	return wire.KV{NS: wire.NSData, Key: "k", Val: k[:]} // finding: wire.KV literal
}

// BadEncode runs a request holding raw key bytes through the encoder.
func BadEncode(k sharocrypto.SymKey) []byte {
	kb := k[:]
	q := &wire.Request{Op: wire.OpPut, NS: wire.NSData, Key: "k", Val: kb} // finding: wire.Request literal
	return q.Encode()                                                      // finding: wire encoder
}

// BadStore writes raw key bytes to the SSP.
func BadStore(st ssp.BlobStore, k sharocrypto.SymKey) error {
	return st.Put(wire.NSData, "k", k[:]) // finding: store write
}

// BadFile launders marshalled key bytes through base64 before writing
// them to disk — encoding is not sealing.
func BadFile(path string, k sharocrypto.PrivateKey) error {
	enc := base64.StdEncoding.EncodeToString(k.Marshal())
	return os.WriteFile(path, []byte(enc), 0o644) // finding: file write
}

// BadAsyncStore ships raw key bytes to the SSP from a write-behind-style
// background goroutine — asynchrony must not launder the egress.
func BadAsyncStore(st ssp.BlobStore, k sharocrypto.SymKey, done chan<- error) {
	go func() {
		done <- st.Put(wire.NSData, "k", k[:]) // finding: store write on async path
	}()
}
