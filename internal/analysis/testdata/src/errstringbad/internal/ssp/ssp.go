// Package ssp is a sharoes-vet test fixture (path suffix internal/ssp):
// every print below embeds blob contents and must be flagged by
// errstring.
package ssp

import (
	"fmt"
	"log"
)

// KV mirrors the wire KV shape: a struct carrying blob contents.
type KV struct {
	Key string
	Val []byte
}

// Bad exercises each embedding form.
func Bad(val []byte, kv KV) error {
	log.Printf("stored blob %x", val)        // []byte into a log
	_ = fmt.Sprintf("item %v", kv)           // blob-bearing struct
	return fmt.Errorf("bad %s", string(val)) // string(blob) conversion
}
