// Package obsleakgood is a sharoes-vet test fixture: observability
// labels built from fixed operation names and plain numbers are exactly
// what the keyleak analyzer must allow.
package obsleakgood

import (
	"strconv"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
)

// Good mirrors the instrumentation idioms the real code uses.
func Good(t *obs.Tracer, reg *obs.Registry, opName string, bytesOut int64) {
	sp := t.Start("rpc."+opName, obs.ClassNetwork)
	sp.Annotate("bytes_out", strconv.FormatInt(bytesOut, 10))
	reg.Counter("ssp.op." + opName).Inc()
	reg.Gauge("ssp.conns").Add(1)
	reg.Histogram("client.op." + opName + ".ns").Observe(time.Millisecond)
	sp.End()
	reg.Gauge("ssp.conns").Add(-1)
}
