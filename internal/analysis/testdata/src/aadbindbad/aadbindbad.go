// Package aadbindbad is a sharoes-vet test fixture: every Seal/Open below
// passes a statically-empty AAD and must be flagged by aadbind.
package aadbindbad

import "github.com/sharoes/sharoes/internal/sharocrypto"

// Bad exercises each empty-AAD form.
func Bad() ([]byte, error) {
	k := sharocrypto.NewSymKey()
	blob := k.Seal([]byte("x"), nil)  // nil AAD
	_ = k.Seal([]byte("x"), []byte{}) // empty composite literal
	return k.Open(blob, []byte(""))   // empty string conversion
}
