// Package lockbalancebad is a sharoes-vet test fixture: one violation
// per lockbalance rule — a lock leaked through an early return, a
// double unlock, a branch join where only one side holds the lock, a
// loop whose iterations drift the held count, and two copylocks shapes
// (value receiver, lock-containing value copied by assignment).
package lockbalancebad

import "sync"

// Store guards n with mu.
type Store struct {
	mu sync.Mutex
	n  int
}

// Leak returns early with mu still held.
func (s *Store) Leak(v int) {
	s.mu.Lock()
	if v > 0 {
		return // mu leaks here
	}
	s.mu.Unlock()
}

// Double unlocks twice on the same path.
func (s *Store) Double() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // not held any more
}

// Uneven joins a locking branch with a non-locking one.
func (s *Store) Uneven(v int) {
	if v > 0 {
		s.mu.Lock()
	}
	s.n = v // reached both with and without mu
	s.mu.Unlock()
}

// Drift ends each loop iteration one acquisition deeper than it began.
func (s *Store) Drift(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
	}
}

// Snapshot copies the whole Store — mu included — into its receiver.
func (s Store) Snapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Clone copies a live Store by dereference.
func Clone(s *Store) int {
	c := *s
	return c.n
}
