// Package workload is a sharoes-vet test fixture for the rawrand
// allowlist: its import path ends in internal/workload, so a seeded
// math/rand generator is permitted here.
package workload

import "math/rand"

// Traffic produces deterministic benchmark traffic.
func Traffic(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(100)
}
