// Package lockordergood is a sharoes-vet test fixture: the same
// two-lock shape as lockorderbad, but every path agrees on the order
// (mu before idx), including the path through the helper — a consistent
// hierarchy, not a cycle.
package lockordergood

import "sync"

// Store documents mu-before-idx as its lock order.
type Store struct {
	mu  sync.Mutex
	idx sync.Mutex
	n   int
}

// Get acquires mu then idx.
func (s *Store) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.Lock()
	defer s.idx.Unlock()
	return s.n
}

// Put takes mu first and lets the helper take idx: same order as Get.
func (s *Store) Put(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump(v)
}

func (s *Store) bump(v int) {
	s.idx.Lock()
	defer s.idx.Unlock()
	s.n = v
}
