// Package keyegressgood is a sharoes-vet test fixture: key material is
// always sealed or wrapped before it leaves the client, and key-typed
// values handed to other module packages are their responsibility —
// keyegress must stay silent.
package keyegressgood

import (
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// GoodKV wraps the key under the recipient's public key first.
func GoodKV(k sharocrypto.SymKey, pub sharocrypto.PublicKey) (wire.KV, error) {
	wrapped, err := pub.SealChunked(k[:])
	if err != nil {
		return wire.KV{}, err
	}
	return wire.KV{NS: wire.NSData, Key: "k", Val: wrapped}, nil
}

// GoodStore seals the payload under a data key before the store write.
func GoodStore(st ssp.BlobStore, dek sharocrypto.SymKey, plain []byte) error {
	return st.Put(wire.NSData, "k", dek.Seal(plain, []byte("ctx")))
}

// GoodSuper stores a key-bearing superblock only in sealed form.
func GoodSuper(st ssp.BlobStore, mek sharocrypto.SymKey, mvk sharocrypto.VerifyKey, pub sharocrypto.PublicKey) error {
	sb := &meta.Superblock{FSID: "fs", RootVariant: "o", RootMEK: mek, RootMVK: mvk}
	sealed, err := meta.SealSuperblock(sb, pub)
	if err != nil {
		return err
	}
	return st.Put(wire.NSSuper, "sb", sealed)
}

// GoodTag stores a name tag: derived FROM a key by a module package, but
// itself public — module-internal calls are trusted with key values.
func GoodTag(st ssp.BlobStore, k sharocrypto.SymKey, name string) error {
	tag := k.NameTag(name)
	return st.Put(wire.NSData, "t", tag[:])
}

// GoodAsyncStore seals under a data key before the background goroutine's
// store write: the async flush path carries only ciphertext.
func GoodAsyncStore(st ssp.BlobStore, dek sharocrypto.SymKey, plain []byte, done chan<- error) {
	sealed := dek.Seal(plain, []byte("ctx"))
	go func() {
		done <- st.Put(wire.NSData, "k", sealed)
	}()
}

// GoodReplicatedStore seals once, then fans the one ciphertext out to
// every replica store from per-replica goroutines — the sharded quorum
// write path carries only sealed bytes on every lane.
func GoodReplicatedStore(replicas []ssp.BlobStore, dek sharocrypto.SymKey, plain []byte, acks chan<- error) {
	sealed := dek.Seal(plain, []byte("ctx"))
	for _, st := range replicas {
		go func(st ssp.BlobStore) {
			acks <- st.Put(wire.NSData, "k", sealed)
		}(st)
	}
}
