// Package goleakgood is a sharoes-vet test fixture: one unbounded-loop
// goroutine per legitimate shutdown edge — an owner Close that closes
// the stop channel, a WaitGroup join, and a context cancel.
package goleakgood

import (
	"context"
	"sync"
)

// Pump stops its drain goroutine through done.
type Pump struct {
	ch   chan int
	done chan struct{}
	n    int
}

// New's goroutine exits when Close fires.
func New() *Pump {
	p := &Pump{ch: make(chan int), done: make(chan struct{})}
	go p.drain()
	return p
}

func (p *Pump) drain() {
	for {
		select {
		case v := <-p.ch:
			p.n += v
		case <-p.done:
			return
		}
	}
}

// Close is the shutdown edge: it closes the channel drain selects on.
func (p *Pump) Close() {
	close(p.done)
}

// Sum joins its workers before returning; the WaitGroup owns their
// lifetime even though nothing in this package closes in.
func Sum(in chan int, workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range in {
				sink(v)
			}
		}()
	}
	wg.Wait()
}

func sink(int) {}

// Ticker's goroutine watches its context.
func Ticker(ctx context.Context, f func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				f()
			}
		}
	}()
}

// Hedger mirrors the hedged-read fan-out shape: per-replica goroutines
// send into a buffered results channel, a long-lived drainer ranges over
// that channel, and the owner's Close is the shutdown edge (it closes
// the channel the drainer ranges over).
type Hedger struct {
	replicas []func() (int, error)
	results  chan int
	wg       sync.WaitGroup
}

// NewHedger's drainer exits when Close fires: both the owner-Close
// contract and the close-is-stop-signal edge cover it.
func NewHedger(replicas []func() (int, error)) *Hedger {
	h := &Hedger{replicas: replicas, results: make(chan int, len(replicas))}
	go h.drainLoop()
	return h
}

func (h *Hedger) drainLoop() {
	for v := range h.results {
		sink(v)
	}
}

// Get launches the primary and one hedge; the goroutines are bounded
// (no loop) and joined through the WaitGroup before Close.
func (h *Hedger) Get() {
	for i := 0; i < 2 && i < len(h.replicas); i++ {
		r := h.replicas[i]
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			if v, err := r(); err == nil {
				h.results <- v
			}
		}()
	}
}

// Close joins the in-flight hedges, then stops the drainer.
func (h *Hedger) Close() {
	h.wg.Wait()
	close(h.results)
}

// Redialer is the healed redial-loop shape: same retry loop, but the
// owner's Close closes the stop channel the loop selects on.
type Redialer struct {
	dial func() (int, error)
	conn chan int
	stop chan struct{}
}

// NewRedialer's loop exits when Close fires.
func NewRedialer(dial func() (int, error)) *Redialer {
	r := &Redialer{dial: dial, conn: make(chan int, 1), stop: make(chan struct{})}
	go r.redialLoop()
	return r
}

func (r *Redialer) redialLoop() {
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		c, err := r.dial()
		if err != nil {
			continue
		}
		select {
		case r.conn <- c:
		case <-r.stop:
			return
		}
	}
}

// Close is the shutdown edge for the redial loop.
func (r *Redialer) Close() {
	close(r.stop)
}
