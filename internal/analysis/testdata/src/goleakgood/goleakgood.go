// Package goleakgood is a sharoes-vet test fixture: one unbounded-loop
// goroutine per legitimate shutdown edge — an owner Close that closes
// the stop channel, a WaitGroup join, and a context cancel.
package goleakgood

import (
	"context"
	"sync"
)

// Pump stops its drain goroutine through done.
type Pump struct {
	ch   chan int
	done chan struct{}
	n    int
}

// New's goroutine exits when Close fires.
func New() *Pump {
	p := &Pump{ch: make(chan int), done: make(chan struct{})}
	go p.drain()
	return p
}

func (p *Pump) drain() {
	for {
		select {
		case v := <-p.ch:
			p.n += v
		case <-p.done:
			return
		}
	}
}

// Close is the shutdown edge: it closes the channel drain selects on.
func (p *Pump) Close() {
	close(p.done)
}

// Sum joins its workers before returning; the WaitGroup owns their
// lifetime even though nothing in this package closes in.
func Sum(in chan int, workers int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range in {
				sink(v)
			}
		}()
	}
	wg.Wait()
}

func sink(int) {}

// Ticker's goroutine watches its context.
func Ticker(ctx context.Context, f func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				f()
			}
		}
	}()
}
