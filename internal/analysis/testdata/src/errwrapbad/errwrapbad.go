// Package errwrapbad flattens error identity at exported boundaries in
// every way errwrap detects. Expected findings, in source order:
//
//  1. WrapV formats the cause with %v
//  2. WrapS formats the cause with %s
//  3. Flatten rebuilds the error from its rendered string
//  4. FlattenF stringifies via .Error() inside fmt.Errorf
//  5. Mixed keeps the sentinel but flattens the cause with %v
package errwrapbad

import (
	"errors"
	"fmt"
)

// ErrSentinel is what retry loops match with errors.Is.
var ErrSentinel = errors.New("errwrapbad: sentinel")

// WrapV loses the chain: errors.Is(err, cause) fails downstream.
func WrapV(err error) error {
	return fmt.Errorf("put: %v", err) // want errwrap: %v on error
}

// WrapS is the same flattening under a different verb.
func WrapS(err error) error {
	return fmt.Errorf("get: %s", err) // want errwrap: %s on error
}

// Flatten rebuilds the error from its message, severing identity.
func Flatten(err error) error {
	return errors.New(err.Error()) // want errwrap: .Error() rebuild
}

// FlattenF stringifies before formatting; the string arg hides the
// error type from the verb check but not from the .Error() scan.
func FlattenF(err error) error {
	return fmt.Errorf("op: %s", err.Error()) // want errwrap: .Error() rebuild
}

// Mixed wraps the sentinel but flattens the cause it annotates.
func Mixed(err error) error {
	return fmt.Errorf("%w: %v", ErrSentinel, err) // want errwrap: %v on error
}
