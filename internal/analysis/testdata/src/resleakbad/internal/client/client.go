// Package client leaks obligations on specific paths. Expected
// findings, one per function, each reported at the acquisition:
//
//  1. EarlyReturn leaks the client on the ping-failure return
//  2. SpanLost leaks the span on the failure return
//  3. BranchMiss closes only in one branch and leaks on fall-through
package client

import (
	"github.com/sharoes/sharoes/internal/analysis/testdata/src/resleakbad/internal/ssp"
)

// EarlyReturn releases on the happy path but not on the probe failure.
func EarlyReturn(addr string) error {
	c, err := ssp.Dial(addr) // want resleak: leaked on error return
	if err != nil {
		return err
	}
	if c.Ping() != nil {
		return ssp.ErrPing
	}
	return c.Close()
}

// SpanLost ends the span only when the work succeeds.
func SpanLost(fail bool) error {
	sp := ssp.Start("op") // want resleak: leaked on failure return
	if fail {
		return ssp.ErrPing
	}
	sp.End()
	return nil
}

// BranchMiss closes inside the flush branch and falls through open
// otherwise.
func BranchMiss(addr string, flush bool) error {
	c, err := ssp.Dial(addr) // want resleak: leaked on fall-through
	if err != nil {
		return err
	}
	if flush {
		return c.Close()
	}
	return nil
}
