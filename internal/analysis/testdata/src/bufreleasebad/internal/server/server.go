// Package server leaks pooled wire buffers on specific paths. Expected
// findings, one per function, each reported at the acquisition:
//
//  1. EmptyFrame leaks the frame on the zero-length reject return
//  2. AcquireLost leaks the scratch buffer on the early return
//  3. BranchMiss releases in one branch and leaks on fall-through
package server

import (
	"io"

	"github.com/sharoes/sharoes/internal/analysis/testdata/src/bufreleasebad/internal/wire"
)

// EmptyFrame releases the frame on the happy path but not when the
// length check rejects it — the classic arena leak on a validation
// early-return.
func EmptyFrame(r io.Reader) error {
	buf, n, err := wire.ReadFrameBuf(r) // want resleak: leaked on reject return
	if err != nil {
		return err
	}
	if n == 0 {
		return io.ErrUnexpectedEOF
	}
	buf.Release()
	return nil
}

// AcquireLost grabs a scratch buffer and forgets it when the size check
// trips.
func AcquireLost(n int) error {
	buf := wire.AcquireBuf(n) // want resleak: leaked on early return
	if n > 1<<20 {
		return io.ErrShortBuffer
	}
	buf.Release()
	return nil
}

// BranchMiss releases only on the flush branch.
func BranchMiss(r io.Reader, flush bool) error {
	buf, _, err := wire.ReadFrameBuf(r) // want resleak: leaked on fall-through
	if err != nil {
		return err
	}
	if flush {
		buf.Release()
		return nil
	}
	return nil
}
