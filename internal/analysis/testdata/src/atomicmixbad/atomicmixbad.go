// Package atomicmixbad is a sharoes-vet test fixture: one field mixing
// sync/atomic and plain access, and one field accessed under a mutex
// everywhere except a single fast-path reader.
package atomicmixbad

import (
	"sync"
	"sync/atomic"
)

// Counter updates hits atomically and guards size with mu.
type Counter struct {
	mu   sync.Mutex
	hits int64
	size int
}

// Add is the atomic side of the hits story.
func (c *Counter) Add() {
	atomic.AddInt64(&c.hits, 1)
}

// Peek is the racy plain side of it.
func (c *Counter) Peek() int64 {
	return c.hits
}

// Grow, Shrink and Len establish mu as size's guard.
func (c *Counter) Grow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size += n
}

func (c *Counter) Shrink(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.size -= n
}

func (c *Counter) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Fast reads size without the guard the other methods always hold.
func (c *Counter) Fast() int {
	return c.size
}
