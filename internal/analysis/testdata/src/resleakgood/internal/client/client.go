// Package client discharges every obligation resleak tracks — by
// release, by ownership transfer, or by guarded acquisition. Zero
// findings.
package client

import (
	"github.com/sharoes/sharoes/internal/analysis/testdata/src/resleakgood/internal/ssp"
)

// Pool holds clients whose lifetime outlives the attaching call.
type Pool struct {
	clients []*ssp.Client
}

// Deferred releases on every path via defer.
func Deferred(addr string) error {
	c, err := ssp.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Ping()
}

// Returned hands the obligation to the caller.
func Returned(addr string) (*ssp.Client, error) {
	c, err := ssp.Dial(addr)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Attach transfers ownership into the pool; the pool closes later.
func (p *Pool) Attach(addr string) error {
	c, err := ssp.Dial(addr)
	if err != nil {
		return err
	}
	p.clients = append(p.clients, c)
	return nil
}

// Spawned transfers ownership into the goroutine that closes it.
func Spawned(addr string) error {
	c, err := ssp.Dial(addr)
	if err != nil {
		return err
	}
	go func() {
		defer c.Close()
		_ = c.Ping()
	}()
	return nil
}

// NilGuard ends the span behind the same nil test on both paths.
func NilGuard(trace bool) {
	var sp *ssp.Span
	if trace {
		sp = ssp.Start("op")
	}
	if sp != nil {
		sp.End()
	}
}

// Chained never binds the span, so there is no tracked obligation; the
// deferred End releases it regardless.
func Chained() {
	defer ssp.Start("op").End()
}

// Open transfers the named result on the bare return.
func Open(addr string) (c *ssp.Client, err error) {
	c, err = ssp.Dial(addr)
	if err != nil {
		return nil, err
	}
	return
}
