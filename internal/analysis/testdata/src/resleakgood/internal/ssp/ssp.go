// Package ssp is a stub providing two obligation-carrying types for the
// resleak fixtures: a dialed Client (Close) and a trace Span (End).
package ssp

// Client is a stub session with a Close obligation.
type Client struct{ addr string }

// Dial opens a stub session; the caller owns the Close.
func Dial(addr string) (*Client, error) { return &Client{addr: addr}, nil }

// Ping probes the session.
func (c *Client) Ping() error { return nil }

// Close releases the session.
func (c *Client) Close() error { return nil }

// Span is a stub trace span with an End obligation.
type Span struct{ name string }

// Start opens a span; the caller owns the End.
func Start(name string) *Span { return &Span{name: name} }

// End releases the span.
func (s *Span) End() {}
