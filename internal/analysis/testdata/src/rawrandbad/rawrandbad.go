// Package rawrandbad is a sharoes-vet test fixture: a non-test file in a
// non-allowlisted package importing math/rand must be flagged by rawrand.
package rawrandbad

import "math/rand"

// Entropy is what rawrand exists to prevent.
func Entropy() int64 { return rand.Int63() }
