// Package errwrapgood preserves error identity at every boundary:
// zero errwrap findings.
package errwrapgood

import (
	"errors"
	"fmt"
)

// ErrSentinel is what retry loops match with errors.Is.
var ErrSentinel = errors.New("errwrapgood: sentinel")

// Wrap preserves the chain with %w.
func Wrap(err error) error {
	return fmt.Errorf("put: %w", err)
}

// WrapBoth keeps both identities with multi-%w (Go 1.20+).
func WrapBoth(err error) error {
	return fmt.Errorf("%w: %w", ErrSentinel, err)
}

// Sentinel returns the sentinel as-is; identity intact.
func Sentinel() error {
	return ErrSentinel
}

// Describe formats non-error operands; %q on a string and %v on an int
// are fine.
func Describe(key string, attempt int) error {
	return fmt.Errorf("key %q failed after %v attempts: %w", key, attempt, ErrSentinel)
}
