// Package client is a sharoes-vet test fixture (path suffix
// internal/client) for the summary engine's fixpoint: the taint flows
// through a mutually recursive pair, so a naive bottom-up pass would
// never converge. The engine must terminate AND still report the leak.
package client

import (
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
)

// Client holds the untrusted store.
type Client struct {
	store ssp.BlobStore
}

func (c *Client) even(n int, key string) ([]byte, error) {
	if n == 0 {
		return c.store.Get(wire.NSData, key)
	}
	return c.odd(n-1, key)
}

func (c *Client) odd(n int, key string) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	return c.even(n-1, key)
}

// Spin returns bytes that reached it through the even/odd cycle.
func (c *Client) Spin(key string) ([]byte, error) {
	return c.even(8, key) // finding: unverified bytes through recursion
}

// loop is self-recursive with a sanitizer nowhere on the path.
func (c *Client) loop(depth int) []byte {
	if depth <= 0 {
		blob, _ := c.store.Get(wire.NSData, "x")
		return blob
	}
	return c.loop(depth - 1)
}

// Tail leaks the self-recursive result.
func (c *Client) Tail() []byte {
	return c.loop(3) // finding: unverified bytes through self-recursion
}
