// Package keyleakgood is a sharoes-vet test fixture: key values are in
// scope but nothing secret reaches a print sink, so keyleak must stay
// silent.
package keyleakgood

import (
	"fmt"
	"log"

	"github.com/sharoes/sharoes/internal/sharocrypto"
)

// Good prints only derived, non-secret facts about keys.
func Good(l *log.Logger) error {
	k := sharocrypto.NewSymKey()
	fmt.Printf("zero=%v size=%d\n", k.IsZero(), sharocrypto.SymKeySize)

	_, vk := sharocrypto.NewSigningPair()
	l.Printf("verify key %x", vk.Marshal()) // VerifyKey is public, not secret

	h := sharocrypto.ContentHash([]byte("data"))
	log.Printf("hash %x", h)
	return fmt.Errorf("object %d not found", 42)
}
