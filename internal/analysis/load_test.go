package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadErrorPath pins the malformed-package contract: LoadDir and
// LoadAll return an error — which sharoes-vet maps to exit 2 — instead
// of panicking.
func TestLoadErrorPath(t *testing.T) {
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dir := filepath.Join("testdata", "src", "brokenload")
	if _, err := loader.LoadDir(dir); err == nil {
		t.Fatal("LoadDir(brokenload): no error for a package that does not parse")
	} else if !strings.Contains(err.Error(), "brokenload") {
		t.Errorf("LoadDir(brokenload) error does not name the package: %v", err)
	}
	// LoadAll's parse-only discovery pass hits the same syntax error.
	if _, err := loader.LoadAll([]string{dir}); err == nil {
		t.Fatal("LoadAll(brokenload): no error for a package that does not parse")
	}
}

// TestLoadAllMatchesSequential loads a dependency-heavy slice of the
// real tree through the worker pool and checks the results against the
// sequential path (which shares the memoizing cache, so identity
// equality is the contract).
func TestLoadAllMatchesSequential(t *testing.T) {
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	dirs := []string{"../ssp", "../client", "../obs", "../baseline", "../cache", "../wire"}
	pkgs, err := loader.LoadAll(dirs)
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("LoadAll returned %d packages for %d dirs", len(pkgs), len(dirs))
	}
	for i, dir := range dirs {
		seq, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		if pkgs[i] != seq {
			t.Errorf("%s: LoadAll and LoadDir returned different packages", dir)
		}
		if pkgs[i].Types == nil || len(pkgs[i].Files) == 0 {
			t.Errorf("%s: incomplete package from LoadAll", dir)
		}
	}
}

// TestScanAllowCounts checks the syntax-only directive tally against
// fixtures with known directive counts (and that bare directives do not
// count).
func TestScanAllowCounts(t *testing.T) {
	got := ScanAllowCounts([]string{
		filepath.Join("testdata", "src", "aadbindgood"),
		filepath.Join("testdata", "src", "unverifiedgood", "internal", "client"),
	})
	if got["aadbind"] != 1 || got["unverified"] != 1 {
		t.Errorf("ScanAllowCounts = %v, want aadbind:1 unverified:1", got)
	}
}
