package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the interprocedural effect-summary framework shared by the
// taint engine (taint.go) and the concurrency engine (conc.go). An
// "effect" is any fact about a function body that callers inherit — taint
// flowing through results, locks acquired or net-held, goroutine loops
// started. The framework owns the parts every effect domain needs:
//
//   - collecting the package's analyzable function units (declarations
//     and function literals) and mapping *types.Func objects back to
//     their bodies, so call sites resolve to summaries;
//   - resolving direct and method call expressions to their callees;
//   - driving the bottom-up summary computation to a package-level
//     fixpoint, which is what makes the summaries correct in the
//     presence of recursion and mutual recursion: summaries only grow,
//     so iteration terminates, and a bounded round count is the
//     backstop.
//
// Effect domains plug in by attaching their own summary state to the
// units and providing a per-unit step function; the framework decides
// when everything has converged.

// maxEffectRounds bounds the package-level summary fixpoint. Real call
// graphs converge in two or three rounds (one per call-chain level that
// feeds back); the bound only matters for pathological recursion.
const maxEffectRounds = 16

// funcUnit is one analyzable function body: a declared function or
// method, or a function literal. Literals are separate units because
// their bodies execute when called (or spawned), not where they appear —
// a lock taken inside `go func() { ... }()` is not held by the
// enclosing function.
type funcUnit struct {
	name string        // display name ("Close", "Serve.func1")
	decl *ast.FuncDecl // non-nil for declared functions
	lit  *ast.FuncLit  // non-nil for literals
	obj  *types.Func   // declared object; nil for literals
	body *ast.BlockStmt

	// enclosing is the declared unit a literal lexically sits in (nil
	// for declared units). Ownership-style checks (who can stop the
	// goroutine this literal runs as?) look at the declared context.
	enclosing *funcUnit
}

// pos returns the unit's position anchor.
func (u *funcUnit) pos() ast.Node {
	if u.decl != nil {
		return u.decl
	}
	return u.lit
}

// effectEngine holds the package-wide unit set and call-resolution state
// one analysis run shares.
type effectEngine struct {
	p     *Package
	units []*funcUnit            // declared units then literals, file order
	byObj map[*types.Func]*funcUnit
	byLit map[*ast.FuncLit]*funcUnit
}

// newEffectEngine collects the package's function units. Declared
// functions come first in file order (stable output depends on it);
// each declared unit's literals follow it, numbered the way runtime
// stack traces name them (Serve.func1).
func newEffectEngine(p *Package) *effectEngine {
	e := &effectEngine{
		p:     p,
		byObj: make(map[*types.Func]*funcUnit),
		byLit: make(map[*ast.FuncLit]*funcUnit),
	}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			u := &funcUnit{name: fd.Name.Name, decl: fd, obj: obj, body: fd.Body}
			e.units = append(e.units, u)
			e.byObj[obj] = u
			e.collectLits(u)
		}
	}
	return e
}

// collectLits registers every function literal inside du's body as its
// own unit (including literals nested in other literals).
func (e *effectEngine) collectLits(du *funcUnit) {
	n := 0
	ast.Inspect(du.body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n++
		u := &funcUnit{
			name:      fmt.Sprintf("%s.func%d", du.name, n),
			lit:       lit,
			body:      lit.Body,
			enclosing: du,
		}
		e.units = append(e.units, u)
		e.byLit[lit] = u
		return true
	})
}

// unitForCall resolves a call (or go/defer target) to a local unit, if
// its body is in this package: a function literal invoked or spawned in
// place, or a declared function/method of the package.
func (e *effectEngine) unitForCall(call *ast.CallExpr) *funcUnit {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return e.byLit[lit]
	}
	if fn := resolvedCallee(e.p.Info, call); fn != nil {
		return e.byObj[fn]
	}
	return nil
}

// fixpoint drives step over every unit until a full round reports no
// change, bounded by maxEffectRounds. step must be monotone: it may only
// grow its unit's summary, never shrink it, or termination is off.
func (e *effectEngine) fixpoint(step func(u *funcUnit) bool) {
	for round := 0; round < maxEffectRounds; round++ {
		changed := false
		for _, u := range e.units {
			if step(u) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// resolvedCallee returns the called *types.Func for direct calls and
// method calls, or nil for builtins, conversions and function values.
func resolvedCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// methodReceiver returns the receiver expression of a method-value call
// (c.Close() → c), or nil for plain calls.
func methodReceiver(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}
