package analysis

import (
	"strings"
	"testing"
)

// The concurrency-analyzer tests drive the shared effect engine through
// each analyzer's spec over dedicated fixtures: lock-order cycles split
// across call boundaries, per-path lock balancing, goroutine lifecycle
// edges, and atomic/guarded field discipline.

func TestLockOrder(t *testing.T) {
	bad := runOne(t, LockOrder{}, "lockorderbad")
	if len(bad) != 2 {
		t.Fatalf("lockorderbad: got %d findings, want 2 (one per edge of the cycle):\n%s", len(bad), findingsText(bad))
	}
	for i, f := range bad {
		if f.Analyzer != "lockorder" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, "lock order cycle") {
			t.Errorf("finding %d: message %q does not mention the cycle", i, f.Message)
		}
	}
	// One direction of the cycle exists only through bump's acquisition
	// summary: both orderings must be named across the two findings.
	all := bad[0].Message + " " + bad[1].Message
	for _, want := range []string{
		"Store.idx is acquired while holding Store.mu",
		"Store.mu is acquired while holding Store.idx",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("cycle findings do not include %q:\n%s", want, findingsText(bad))
		}
	}
	if good := runOne(t, LockOrder{}, "lockordergood"); len(good) != 0 {
		t.Fatalf("lockordergood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestLockBalance(t *testing.T) {
	bad := runOne(t, LockBalance{}, "lockbalancebad")
	if len(bad) != 6 {
		t.Fatalf("lockbalancebad: got %d findings, want 6:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"locked but not unlocked",       // Leak: early return
		"possible double unlock",        // Double
		"some but not all paths",        // Uneven: branch join mismatch
		"changes across loop iterations", // Drift
		"value receiver copies lock",    // Snapshot
		"assignment copies lock",        // Clone
	}
	for i, f := range bad {
		if f.Analyzer != "lockbalance" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, LockBalance{}, "lockbalancegood"); len(good) != 0 {
		t.Fatalf("lockbalancegood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestGoLeak(t *testing.T) {
	bad := runOne(t, GoLeak{}, "goleakbad")
	if len(bad) != 3 {
		t.Fatalf("goleakbad: got %d findings, want 3:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"goroutine drain",       // method spawn from the constructor
		"goroutine Watch.func1", // literal ranging over an unclosed channel
		"goroutine redialLoop",  // reconnect-style dial loop with no Close
	}
	for i, f := range bad {
		if f.Analyzer != "goleak" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
		if !strings.Contains(f.Message, "no reachable shutdown edge") {
			t.Errorf("finding %d: message %q does not explain the leak", i, f.Message)
		}
	}
	// goleakgood covers one exemption per shutdown edge: owner Close
	// closing the select channel, WaitGroup join, context cancel — and
	// the healed redial-loop shape (Close closing the stop channel).
	if good := runOne(t, GoLeak{}, "goleakgood"); len(good) != 0 {
		t.Fatalf("goleakgood: unexpected findings:\n%s", findingsText(good))
	}
}

func TestAtomicMix(t *testing.T) {
	bad := runOne(t, AtomicMix{}, "atomicmixbad")
	if len(bad) != 2 {
		t.Fatalf("atomicmixbad: got %d findings, want 2:\n%s", len(bad), findingsText(bad))
	}
	wantSubstr := []string{
		"accessed with sync/atomic elsewhere but read directly", // Peek
		"usually accessed holding Counter.mu",                   // Fast
	}
	for i, f := range bad {
		if f.Analyzer != "atomicmix" {
			t.Errorf("finding %d: analyzer %q", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantSubstr[i]) {
			t.Errorf("finding %d: message %q does not mention %q", i, f.Message, wantSubstr[i])
		}
	}
	if good := runOne(t, AtomicMix{}, "atomicmixgood"); len(good) != 0 {
		t.Fatalf("atomicmixgood: unexpected findings:\n%s", findingsText(good))
	}
}

// TestConcCleanTree extends the acceptance check to the packages the
// concurrency analyzers were written to guard — the pipelined client,
// the write-behind layer, observability, and the analysis engine
// itself.
func TestConcCleanTree(t *testing.T) {
	for _, rel := range []string{
		"../ssp",
		"../client",
		"../obs",
		"../cache",
		"../netsim",
		"../stats",
		"../workload",
		".",
	} {
		loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
		if loaderErr != nil {
			t.Fatalf("NewLoader: %v", loaderErr)
		}
		p, err := loader.LoadDir(rel)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		got := Run(p, []Analyzer{LockOrder{}, LockBalance{}, GoLeak{}, AtomicMix{}})
		if len(got) != 0 {
			t.Errorf("%s: unexpected findings:\n%s", rel, findingsText(got))
		}
	}
}
