package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unverified enforces the read-side trust boundary of the Sharoes threat
// model (paper §II): every byte received from the untrusted SSP must pass
// through an authenticating sanitizer — AEAD Open, signature Verify, or
// one of the meta/cap openers built on them — before it reaches trusted
// state: an exported client API return value, a cache insert, or a
// key-selection decision in layout/cap.
//
// Sources taint the results of SSP reads (ssp.Get/List/BatchGet), wire
// decoding (DecodeRequest/DecodeResponse/ReadFrame, codec reads and
// Call), and netsim connection reads. Taint propagates through
// assignments, fields, composite literals and function calls (via
// per-function summaries inside a package); sanitizer results are
// trusted and Verify-style sanitizers bless their arguments in place.
type Unverified struct{}

// Name implements Analyzer.
func (Unverified) Name() string { return "unverified" }

// Doc implements Analyzer.
func (Unverified) Doc() string {
	return "untrusted SSP/wire/netsim reads must pass Open/Verify before trusted sinks"
}

// unverifiedSources maps package-path suffix to the function names whose
// results carry untrusted bytes.
var unverifiedSources = map[string]map[string]bool{
	"internal/ssp":    {"Get": true, "List": true, "BatchGet": true},
	"internal/wire": {"DecodeRequest": true, "DecodeResponse": true, "ReadFrame": true, "ReadRequest": true, "ReadResponse": true, "Call": true,
		// The v2 codec surface: self-describing frames, borrowed decodes
		// that alias the (untrusted) input buffer, and pooled frame reads.
		"DecodeV2": true, "DecodeV2Into": true, "DecodeRequestBorrowed": true, "DecodeResponseBorrowed": true, "ReadFrameBuf": true},
	"internal/netsim": {"Read": true},
}

// unverifiedSanitizers maps package-path suffix to the functions that
// authenticate their input: their results are trusted plaintext.
var unverifiedSanitizers = map[string]map[string]bool{
	sharocryptoPkgSuffix: {"Open": true, "OpenChunked": true, "Verify": true},
	"internal/meta":      {"OpenVerified": true, "OpenMetadata": true, "OpenSuperblock": true, "OpenSplitPointer": true},
	"internal/cap":       {"OpenView": true},
}

// unverifiedSinkCalls maps package-path suffix to sink functions and the
// argument indices that must stay untainted (nil = every argument).
var unverifiedSinkCalls = map[string]map[string][]int{
	// Cache inserts persist across operations; only the value argument is
	// the sink — cache keys are storage names the SSP already chooses.
	"internal/cache": {"Put": {1}},
	// Key-selection: deriving or choosing keys from unverified input lets
	// the SSP steer which key a client trusts.
	"internal/cap":    {"MEKFor": nil, "TableKey": nil},
	"internal/layout": {"Variants": nil, "UserVariant": nil, "Row": nil},
}

// unverifiedReturnPkg is the package-path suffix whose exported functions'
// return values are the trust boundary to the application.
const unverifiedReturnPkg = "internal/client"

// matchSuffixFunc looks fn up in a suffix→names table.
func matchSuffixFunc(tables map[string]map[string]bool, fn *types.Func) (pkgSuffix string, ok bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	for suffix, names := range tables {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			return suffix, true
		}
	}
	return "", false
}

// shortPkg trims an import-path suffix to its final element.
func shortPkg(suffix string) string { return baseName(suffix) }

// Check implements Analyzer.
func (Unverified) Check(p *Package) []Finding {
	spec := &taintSpec{
		analyzer: "unverified",
		sourceCall: func(fn *types.Func) (string, bool) {
			if suffix, ok := matchSuffixFunc(unverifiedSources, fn); ok {
				return "untrusted " + shortPkg(suffix) + "." + fn.Name() + " result", true
			}
			return "", false
		},
		sanitizer: func(fn *types.Func) bool {
			_, ok := matchSuffixFunc(unverifiedSanitizers, fn)
			return ok
		},
		sinkCall: func(fn *types.Func) (string, []int, bool) {
			if fn.Pkg() == nil {
				return "", nil, false
			}
			for suffix, names := range unverifiedSinkCalls {
				if !strings.HasSuffix(fn.Pkg().Path(), suffix) {
					continue
				}
				args, ok := names[fn.Name()]
				if !ok {
					continue
				}
				desc := "cache insert"
				if suffix != "internal/cache" {
					desc = "key-selection " + shortPkg(suffix) + "." + fn.Name()
				}
				return desc, args, true
			}
			return "", nil, false
		},
		sinkReturn: func(p *Package, decl *ast.FuncDecl) (string, bool) {
			if !strings.HasSuffix(p.Path, unverifiedReturnPkg) {
				return "", false
			}
			if !decl.Name.IsExported() {
				return "", false
			}
			return "exported client return value of " + decl.Name.Name, true
		},
		fieldTaint: true,
	}
	return analyzeTaint(p, spec)
}
