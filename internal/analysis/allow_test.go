package analysis

import (
	"strings"
	"testing"
)

// TestBareAllowIsAFinding pins the justification requirement: a
// directive without a reason suppresses nothing and is itself reported.
func TestBareAllowIsAFinding(t *testing.T) {
	got := runOne(t, RawRand{}, "allowbare")
	if len(got) != 2 {
		t.Fatalf("allowbare: got %d findings, want 2 (bare directive + unsuppressed rawrand):\n%s", len(got), findingsText(got))
	}
	var sawBare, sawRaw bool
	for _, f := range got {
		switch f.Analyzer {
		case "allow":
			sawBare = true
			if !strings.Contains(f.Message, "no justification") {
				t.Errorf("bare-allow message %q does not explain the requirement", f.Message)
			}
		case "rawrand":
			sawRaw = true
		}
	}
	if !sawBare || !sawRaw {
		t.Fatalf("missing finding (bare=%v rawrand=%v):\n%s", sawBare, sawRaw, findingsText(got))
	}
}

// TestAllowCounts checks the per-package tally used by -json.
func TestAllowCounts(t *testing.T) {
	p := fixturePkg(t, "aadbindgood")
	if got := AllowCounts(p); got["aadbind"] != 1 {
		t.Errorf("AllowCounts(aadbindgood) = %v, want aadbind:1", got)
	}
	// The bare directive in allowbare must not count as a usable allow.
	p = fixturePkg(t, "allowbare")
	if got := AllowCounts(p); got["rawrand"] != 0 {
		t.Errorf("AllowCounts(allowbare) = %v, want rawrand:0", got)
	}
}
