package analysis

import (
	"go/ast"
	"go/types"
)

// LockBalance reports lock/unlock discipline violations found by the
// path-sensitive walk in conc.go — locks held at some but not all path
// joins, locks leaked at function exit, unlocks of locks not held
// (double unlock), held counts that drift across loop iterations — plus
// syntactic copylocks violations: values of types containing sync
// primitives copied by receiver, parameter, assignment or range.
type LockBalance struct{}

// Name implements Analyzer.
func (LockBalance) Name() string { return "lockbalance" }

// Doc implements Analyzer.
func (LockBalance) Doc() string {
	return "check Lock/Unlock pairing on all paths, double unlocks, and sync values copied by value"
}

// Check implements Analyzer.
func (LockBalance) Check(p *Package) []Finding {
	e := concFor(p)
	out := append([]Finding(nil), e.balance...)
	out = append(out, copylocks(p)...)
	return sortFindings(out)
}

// copylocks flags by-value copies of types that contain a sync
// primitive (Mutex, RWMutex, WaitGroup, Cond, Once). A copied lock
// guards nothing: the copy and the original lock independently.
func copylocks(p *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, what string, t types.Type) {
		out = append(out, Finding{
			Analyzer: "lockbalance",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  what + " copies lock value: " + types.TypeString(t, types.RelativeTo(p.Types)) + " contains a sync primitive",
		})
	}
	// isCopy reports whether evaluating expr produces a copy of an
	// existing lock-containing value. Composite literals and call
	// results are fresh values; everything else of such a type is a
	// copy of something already in use.
	isCopy := func(expr ast.Expr) (types.Type, bool) {
		switch ast.Unparen(expr).(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
			return nil, false
		case *ast.UnaryExpr, *ast.TypeAssertExpr:
			// &x (pointer) and channel receives do not copy in place.
			return nil, false
		}
		t := p.Info.TypeOf(expr)
		if t == nil || !containsSyncPrimitive(t) {
			return nil, false
		}
		return t, true
	}
	checkFieldList(p, report)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, r := range x.Rhs {
					if t, bad := isCopy(r); bad {
						report(r, "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				if t := p.Info.TypeOf(x.Value); t != nil && containsSyncPrimitive(t) {
					report(x.Value, "range clause", t)
				}
			case *ast.CallExpr:
				for _, a := range x.Args {
					if t, bad := isCopy(a); bad {
						report(a, "call argument", t)
					}
				}
			}
			return true
		})
	}
	return out
}

// checkFieldList flags receivers and parameters whose declared type
// contains a sync primitive by value.
func checkFieldList(p *Package, report func(n ast.Node, what string, t types.Type)) {
	checkSig := func(recv *ast.FieldList, params *ast.FieldList) {
		if recv != nil {
			for _, f := range recv.List {
				if t := p.Info.TypeOf(f.Type); t != nil && containsSyncPrimitive(t) {
					report(f.Type, "value receiver", t)
				}
			}
		}
		if params != nil {
			for _, f := range params.List {
				if t := p.Info.TypeOf(f.Type); t != nil && containsSyncPrimitive(t) {
					report(f.Type, "parameter", t)
				}
			}
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkSig(x.Recv, x.Type.Params)
			case *ast.FuncLit:
				checkSig(nil, x.Type.Params)
			}
			return true
		})
	}
}
