package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrString flags blob contents embedded into wire/ssp error and log
// strings. The SSP-side packages handle nothing but opaque encrypted
// blobs, yet their error strings travel back to clients and into server
// logs; interpolating a stored value ([]byte, a KV, or string(blob))
// grows logs without bound and, worse, echoes ciphertext — and whatever a
// buggy client put in it — into the provider-readable log stream.
type ErrString struct{}

// errStringPkgs are the import-path suffixes the analyzer applies to.
var errStringPkgs = []string{
	"internal/wire",
	"internal/ssp",
}

// Name implements Analyzer.
func (ErrString) Name() string { return "errstring" }

// Doc implements Analyzer.
func (ErrString) Doc() string {
	return "wire/ssp error and log strings must not embed blob contents"
}

// Check implements Analyzer.
func (a ErrString) Check(p *Package) []Finding {
	applies := false
	for _, suffix := range errStringPkgs {
		if strings.HasSuffix(p.Path, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := printSink(p.Info, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if reason, bad := embedsBlob(p.Info, arg); bad {
					out = append(out, Finding{
						Analyzer: a.Name(),
						Pos:      p.Fset.Position(arg.Pos()),
						Message:  fmt.Sprintf("%s passed to %s.%s: report lengths or keys, not stored contents", reason, fn.Pkg().Name(), fn.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}

// embedsBlob reports whether the expression carries stored blob contents:
// a []byte value, a struct containing one (wire.KV, wire.Request, ...),
// or an explicit string(blob) conversion.
func embedsBlob(info *types.Info, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	t := info.TypeOf(arg)
	if t == nil {
		return "", false
	}
	if isByteSlice(t) {
		return "[]byte blob value", true
	}
	if containsByteSlice(t) {
		return fmt.Sprintf("blob-bearing value of type %s", types.TypeString(t, nil)), true
	}
	// string(blob): a conversion call whose operand is a byte slice.
	if call, ok := arg.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			if ot := info.TypeOf(call.Args[0]); ot != nil && isByteSlice(ot) {
				return "string(blob) conversion", true
			}
		}
	}
	return "", false
}

// containsByteSlice reports whether t transitively contains a []byte field
// (structs, pointers, slices, arrays, maps). Error values and strings are
// deliberately not matched.
func containsByteSlice(t types.Type) bool {
	return containsBS(t, make(map[types.Type]bool))
}

func containsBS(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isByteSlice(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return containsBS(u.Elem(), seen)
	case *types.Slice:
		return containsBS(u.Elem(), seen)
	case *types.Array:
		return containsBS(u.Elem(), seen)
	case *types.Map:
		return containsBS(u.Key(), seen) || containsBS(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsBS(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
