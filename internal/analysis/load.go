package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module without
// golang.org/x/tools: module-internal import paths are resolved against
// the module root and type-checked recursively; everything else (the
// standard library) is handled by the stdlib source importer.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModRoot string // absolute directory containing go.mod

	std  types.ImporterFrom
	pkgs map[string]*Package // memoized by import path
	busy map[string]bool     // import-cycle guard
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	b, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", file)
}

// LoadDir loads the package in dir, which must be inside the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", abs, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and type-checks one package directory, memoized by import
// path. Test files are excluded: the invariants guard production code,
// and tests legitimately print values.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l), FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFileNames lists the buildable non-test Go files of dir, honoring
// build constraints for the current platform.
func goFileNames(dir string) ([]string, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, err
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.Importer for use during
// type-checking of dependencies.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// ExpandPatterns resolves go-style package patterns relative to root into
// package directories. A pattern ending in "/..." is walked recursively;
// other patterns name single directories. testdata, vendor and hidden
// directories are skipped, matching the go tool.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if pat == "..." {
			pat, rec = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, rec = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		if !rec {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one buildable
// non-test Go file.
func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}
