package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks packages of the enclosing module without
// golang.org/x/tools: module-internal import paths are resolved against
// the module root and type-checked recursively; everything else (the
// standard library) is handled by the stdlib source importer.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModRoot string // absolute directory containing go.mod

	std  types.ImporterFrom
	pkgs map[string]*Package // memoized by import path
	busy map[string]bool     // import-cycle guard

	// mu guards pkgs and busy; stdMu serializes the stdlib source
	// importer, which keeps its own cache and is not safe for
	// concurrent use. Both exist for LoadAll's worker pool; the
	// sequential entry points take the same locks and never contend.
	mu    sync.Mutex
	stdMu sync.Mutex
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	b, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", file)
}

// LoadDir loads the package in dir, which must be inside the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, abs, err := l.dirToPath(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// dirToPath maps a package directory to its import path and absolute
// location, rejecting directories outside the module.
func (l *Loader) dirToPath(dir string) (path, abs string, err error) {
	abs, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", "", fmt.Errorf("analysis: %s is outside module %s", abs, l.ModRoot)
	}
	path = l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return path, abs, nil
}

// load parses and type-checks one package directory, memoized by import
// path. Test files are excluded: the invariants guard production code,
// and tests legitimately print values.
//
// Concurrent calls for DIFFERENT paths are safe (LoadAll's workers rely
// on it); concurrent calls for the same path are a scheduling bug and
// surface as a spurious cycle error rather than a corrupted cache.
func (l *Loader) load(path, dir string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if l.busy[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.busy, path)
		l.mu.Unlock()
	}()

	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l), FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.mu.Lock()
	l.pkgs[path] = p
	l.mu.Unlock()
	return p, nil
}

// goFileNames lists the buildable non-test Go files of dir, honoring
// build constraints for the current platform.
func goFileNames(dir string) ([]string, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, err
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.Importer for use during
// type-checking of dependencies.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.ImportFrom(path, srcDir, mode)
}

// ExpandPatterns resolves go-style package patterns relative to root into
// package directories. A pattern ending in "/..." is walked recursively;
// other patterns name single directories. testdata, vendor and hidden
// directories are skipped, matching the go tool.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if pat == "..." {
			pat, rec = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, rec = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		if !rec {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one buildable
// non-test Go file.
func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// --- parallel loading -------------------------------------------------------

// loadNode is one package in LoadAll's dependency graph.
type loadNode struct {
	path string
	dir  string
	deps []string // module-internal import paths
}

// LoadAll loads the packages in dirs, type-checking independent
// subtrees concurrently on a bounded worker pool. Dependencies are
// discovered with a parse-only pass (imports, no bodies typed) and
// packages are scheduled in topological order, so a worker never
// type-checks a package before its module-internal imports are
// memoized — which is what makes the concurrent load() calls disjoint.
// Results are returned in the order of dirs; the first error aborts the
// remaining schedule.
func (l *Loader) LoadAll(dirs []string) ([]*Package, error) {
	nodes, err := l.discover(dirs)
	if err != nil {
		return nil, err
	}

	// Kahn's algorithm over the internal-dependency graph.
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string)
	for path, n := range nodes {
		for _, d := range n.deps {
			if _, known := nodes[d]; !known {
				continue
			}
			indeg[path]++
			dependents[d] = append(dependents[d], path)
		}
	}

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []string
		remaining = len(nodes)
		firstErr  error
	)
	for path := range nodes {
		if indeg[path] == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready) // deterministic start order

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				path := ready[0]
				ready = ready[1:]
				mu.Unlock()

				_, err := l.load(path, nodes[path].dir)

				mu.Lock()
				remaining--
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, dep := range dependents[path] {
					indeg[dep]--
					if indeg[dep] == 0 {
						ready = append(ready, dep)
					}
				}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir) // memoized: resolves path and returns the cache entry
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// discover maps dirs to import paths and walks module-internal imports
// (parse-only) until the dependency graph is closed.
func (l *Loader) discover(dirs []string) (map[string]*loadNode, error) {
	nodes := make(map[string]*loadNode)
	var queue []*loadNode
	enqueue := func(path, dir string) {
		if _, ok := nodes[path]; ok {
			return
		}
		n := &loadNode{path: path, dir: dir}
		nodes[path] = n
		queue = append(queue, n)
	}
	for _, dir := range dirs {
		path, abs, err := l.dirToPath(dir)
		if err != nil {
			return nil, err
		}
		enqueue(path, abs)
	}
	// The parse-only pass uses a throwaway FileSet: these ASTs are
	// dropped, and the real load must re-parse into l.Fset anyway.
	fset := token.NewFileSet()
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		names, err := goFileNames(n.dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", n.path, err)
		}
		seen := make(map[string]bool)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(n.dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", n.path, err)
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
					continue
				}
				if !seen[path] {
					seen[path] = true
					n.deps = append(n.deps, path)
				}
				rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
				enqueue(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
			}
		}
		sort.Strings(n.deps)
	}
	return nodes, nil
}

// ScanAllowCounts parses the Go files under dirs (syntax only, no type
// checking) and sums justified allow directives per analyzer name.
// Unparseable files are skipped: the counts feed informational output,
// and load errors are the loader's to report.
func ScanAllowCounts(dirs []string) map[string]int {
	fset := token.NewFileSet()
	out := make(map[string]int)
	for _, dir := range dirs {
		names, err := goFileNames(dir)
		if err != nil {
			continue
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllowDirective(c.Text)
					if !ok || reason == "" {
						continue
					}
					for _, n := range names {
						out[n]++
					}
				}
			}
		}
	}
	return out
}
