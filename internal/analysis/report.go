package analysis

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the machine-readable report: the -json document, the
// committed baseline, and the diff CI gates on. Findings carry
// module-root-relative paths so the report is stable across checkout
// locations (and so the summary cache can be restored on another
// machine).

// ReportFinding is one finding in portable form.
type ReportFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding the way the plain-text output does.
func (f ReportFinding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Report is the full sharoes-vet output document.
type Report struct {
	Findings []ReportFinding `json:"findings"`
	Allows   map[string]int  `json:"allows"`
}

// NewReport converts raw findings to portable form, relativizing file
// paths against modRoot and sorting.
func NewReport(findings []Finding, allows map[string]int, modRoot string) Report {
	r := Report{Findings: make([]ReportFinding, 0, len(findings)), Allows: allows}
	for _, f := range findings {
		r.Findings = append(r.Findings, ReportFinding{
			Analyzer: f.Analyzer,
			File:     relModPath(modRoot, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	r.Sort()
	return r
}

// relModPath makes file relative to modRoot where possible,
// slash-separated for portability.
func relModPath(modRoot, file string) string {
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Sort orders findings by file, line, column, analyzer, message.
func (r *Report) Sort() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ParseReport decodes a JSON report document.
func ParseReport(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("analysis: parse report: %w", err)
	}
	if r.Allows == nil {
		r.Allows = make(map[string]int)
	}
	r.Sort()
	return r, nil
}

// Marshal encodes the report, indented, trailing newline included.
func (r Report) Marshal() ([]byte, error) {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// diffKey identifies a finding for baseline comparison. Line and column
// are deliberately excluded: unrelated edits move findings around, and
// the gate should fire on *new* findings, not relocated legacy ones.
type diffKey struct {
	Analyzer, File, Message string
}

// DiffReports compares current against a committed baseline and returns
// the findings new in current and those fixed since the baseline, as
// multisets (two identical findings in one file need two waivers).
func DiffReports(baseline, current Report) (newFindings, fixed []ReportFinding) {
	count := make(map[diffKey]int)
	for _, f := range baseline.Findings {
		count[diffKey{f.Analyzer, f.File, f.Message}]++
	}
	for _, f := range current.Findings {
		k := diffKey{f.Analyzer, f.File, f.Message}
		if count[k] > 0 {
			count[k]--
			continue
		}
		newFindings = append(newFindings, f)
	}
	// Whatever baseline findings were not consumed are fixed.
	remaining := make(map[diffKey]int)
	for k, n := range count {
		if n > 0 {
			remaining[k] = n
		}
	}
	for _, f := range baseline.Findings {
		k := diffKey{f.Analyzer, f.File, f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			fixed = append(fixed, f)
		}
	}
	return newFindings, fixed
}
