package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file holds the path-sensitive statement walker behind the
// concurrency engine (conc.go). One concWalker analyzes one function
// unit in one of three modes — summary (collect the net lock effect),
// record (log call sites, spawns, field accesses, edges) and report
// (emit lockbalance findings) — sharing a single traversal so the three
// views can never disagree about what a path does.

// lockState is the mutable per-path analysis state.
type lockState struct {
	held    map[string]int  // mode key -> count (may go negative in helpers)
	touched map[string]bool // base keys locked/unlocked on this path
	exprs   map[string]map[string]bool // base key -> receiver expr strings held
	defers  []map[string]int           // net deltas applied at exit, in order
	dead    bool                       // path ended in panic/os.Exit
	retPos  token.Pos                  // set on states recorded at a return
}

func newLockState(ctx map[string]bool) *lockState {
	st := &lockState{
		held:    make(map[string]int),
		touched: make(map[string]bool),
		exprs:   make(map[string]map[string]bool),
	}
	for k := range ctx {
		st.held[k] = 1 // contexts are write-mode entry assumptions
	}
	return st
}

func (st *lockState) clone() *lockState {
	c := &lockState{
		held:    make(map[string]int, len(st.held)),
		touched: make(map[string]bool, len(st.touched)),
		exprs:   make(map[string]map[string]bool, len(st.exprs)),
		defers:  append([]map[string]int(nil), st.defers...),
		dead:    st.dead,
		retPos:  st.retPos,
	}
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.touched {
		c.touched[k] = true
	}
	for k, set := range st.exprs {
		cs := make(map[string]bool, len(set))
		for s := range set {
			cs[s] = true
		}
		c.exprs[k] = cs
	}
	return c
}

// heldBases returns the base class keys with a positive count in any
// mode.
func (st *lockState) heldBases() map[string]bool {
	out := make(map[string]bool)
	for k, n := range st.held {
		if n > 0 {
			out[baseKey(k)] = true
		}
	}
	return out
}

// applied returns the held map with all registered defers applied.
func (st *lockState) applied() map[string]int {
	out := make(map[string]int, len(st.held))
	for k, v := range st.held {
		out[k] = v
	}
	for _, d := range st.defers {
		for k, v := range d {
			out[k] += v
		}
	}
	return out
}

// loopFrame collects break/continue states for one enclosing loop (or
// just breaks, for a switch/select).
type loopFrame struct {
	label     string
	isLoop    bool
	breaks    []*lockState
	continues []*lockState
}

// concWalker walks one unit. Exactly one of the mode flags is normally
// set; summary mode is both unset.
type concWalker struct {
	e      *concEngine
	u      *funcUnit
	record bool
	report bool

	frames   []*loopFrame
	exits    []*lockState // states at each return (defers NOT yet applied)
	fallExit *lockState   // state at body end, nil if unreachable

	findings []Finding
	acquired map[string]bool
	loopRisk bool
	waits    bool
	usesDone bool

	reported map[string]bool // dedup key -> emitted (report mode)
}

// walkUnit analyzes the unit body from the given entry context.
func (w *concWalker) walkUnit(ctx map[string]bool) {
	w.acquired = make(map[string]bool)
	w.reported = make(map[string]bool)
	st := newLockState(ctx)
	out := w.walkStmts(st, w.u.body.List)
	w.fallExit = out
	if w.report {
		w.checkExits(ctx)
	}
}

// exitNet computes the unit's net lock effect for the summary: the
// first available exit state (returns preferred over fall-through) with
// defers applied.
func (w *concWalker) exitNet() map[string]int {
	var st *lockState
	if len(w.exits) > 0 {
		st = w.exits[len(w.exits)-1]
	} else if w.fallExit != nil {
		st = w.fallExit
	}
	if st == nil {
		return nil
	}
	net := make(map[string]int)
	for k, v := range st.applied() {
		if v != 0 {
			net[k] = v
		}
	}
	return net
}

// checkExits reports locks leaked or over-released at function exits,
// relative to the entry context.
func (w *concWalker) checkExits(ctx map[string]bool) {
	check := func(st *lockState, pos token.Pos) {
		for k, n := range st.applied() {
			base := baseKey(k)
			entry := 0
			if ctx[base] && k == base {
				entry = 1
			}
			cls := w.e.classes[base]
			switch {
			case n > entry:
				w.emit(pos, "%s is locked but not unlocked on this path", cls.display())
			case n < 0:
				// Below zero even counting the entry assumption: the
				// over-release was already reported at the unlock site.
			}
		}
	}
	for _, st := range w.exits {
		if st.retPos.IsValid() {
			check(st, st.retPos)
		}
	}
	if w.fallExit != nil && !w.fallExit.dead {
		check(w.fallExit, w.u.body.Rbrace)
	}
}

func (w *concWalker) emit(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.findings = append(w.findings, Finding{
		Analyzer: "lockbalance",
		Pos:      w.e.p.Fset.Position(pos),
		Message:  msg,
	})
}

// --- statement walk ---------------------------------------------------------

// walkStmts walks a statement list; returns the fall-through state or
// nil when the list cannot complete normally.
func (w *concWalker) walkStmts(st *lockState, list []ast.Stmt) *lockState {
	for _, s := range list {
		st = w.walkStmt(st, s)
		if st == nil {
			return nil
		}
		if st.dead {
			return nil // panic/exit path: ends silently
		}
	}
	return st
}

func (w *concWalker) walkStmt(st *lockState, s ast.Stmt) *lockState {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.walkExpr(st, x.X, false)
		return st
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.walkExpr(st, r, false)
		}
		for _, l := range x.Lhs {
			w.walkWrite(st, l)
		}
		return st
	case *ast.IncDecStmt:
		w.walkWrite(st, x.X)
		return st
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(st, v, false)
					}
				}
			}
		}
		return st
	case *ast.SendStmt:
		w.walkExpr(st, x.Chan, false)
		w.walkExpr(st, x.Value, false)
		return st
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.walkExpr(st, r, false)
		}
		ret := st.clone()
		ret.retPos = x.Pos()
		w.exits = append(w.exits, ret)
		return nil
	case *ast.BranchStmt:
		return w.walkBranch(st, x)
	case *ast.BlockStmt:
		return w.walkStmts(st, x.List)
	case *ast.IfStmt:
		return w.walkIf(st, x)
	case *ast.ForStmt:
		return w.walkFor(st, x, "")
	case *ast.RangeStmt:
		return w.walkRange(st, x, "")
	case *ast.SwitchStmt:
		return w.walkSwitch(st, x.Init, x.Tag, x.Body, "")
	case *ast.TypeSwitchStmt:
		return w.walkSwitch(st, x.Init, nil, x.Body, "")
	case *ast.SelectStmt:
		return w.walkSelect(st, x, "")
	case *ast.LabeledStmt:
		switch inner := x.Stmt.(type) {
		case *ast.ForStmt:
			return w.walkFor(st, inner, x.Label.Name)
		case *ast.RangeStmt:
			return w.walkRange(st, inner, x.Label.Name)
		case *ast.SwitchStmt:
			return w.walkSwitch(st, inner.Init, inner.Tag, inner.Body, x.Label.Name)
		case *ast.TypeSwitchStmt:
			return w.walkSwitch(st, inner.Init, nil, inner.Body, x.Label.Name)
		case *ast.SelectStmt:
			return w.walkSelect(st, inner, x.Label.Name)
		default:
			return w.walkStmt(st, x.Stmt)
		}
	case *ast.GoStmt:
		w.walkGo(st, x)
		return st
	case *ast.DeferStmt:
		w.walkDefer(st, x)
		return st
	case *ast.EmptyStmt:
		return st
	default:
		// goto targets and anything unmodeled: give the path up rather
		// than report from a state we do not trust.
		return nil
	}
}

func (w *concWalker) walkBranch(st *lockState, b *ast.BranchStmt) *lockState {
	label := ""
	if b.Label != nil {
		label = b.Label.Name
	}
	switch b.Tok {
	case token.BREAK:
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if label == "" || f.label == label {
				f.breaks = append(f.breaks, st.clone())
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if !f.isLoop {
				continue
			}
			if label == "" || f.label == label {
				f.continues = append(f.continues, st.clone())
				return nil
			}
		}
	case token.FALLTHROUGH:
		// Treated as ordinary fall-through of the case body.
		return st
	case token.GOTO:
		return nil
	}
	return nil
}

func (w *concWalker) walkIf(st *lockState, x *ast.IfStmt) *lockState {
	if x.Init != nil {
		if st = w.walkStmt(st, x.Init); st == nil {
			return nil
		}
	}
	w.walkExpr(st, x.Cond, false)
	thenSt := w.walkStmts(st.clone(), x.Body.List)
	var elseSt *lockState
	if x.Else != nil {
		elseSt = w.walkStmt(st.clone(), x.Else)
	} else {
		elseSt = st
	}
	return w.merge(x.Body.Lbrace, thenSt, elseSt)
}

// merge joins two fall-through states, reporting a lockbalance finding
// when they disagree on any lock's held count.
func (w *concWalker) merge(pos token.Pos, a, b *lockState) *lockState {
	if a == nil || a.dead {
		return b
	}
	if b == nil || b.dead {
		return a
	}
	out := a.clone()
	keys := make(map[string]bool)
	for k := range a.held {
		keys[k] = true
	}
	for k := range b.held {
		keys[k] = true
	}
	for k := range keys {
		if a.held[k] != b.held[k] {
			if w.report {
				w.emit(pos, "%s is held on some but not all paths joining here", w.e.classes[baseKey(k)].display())
			}
			if b.held[k] > a.held[k] {
				out.held[k] = b.held[k] // keep the max to limit cascades
			}
		}
	}
	for k := range b.touched {
		out.touched[k] = true
	}
	for k, set := range b.exprs {
		if out.exprs[k] == nil {
			out.exprs[k] = make(map[string]bool)
		}
		for s := range set {
			out.exprs[k][s] = true
		}
	}
	// Defers: keep the longer chain (conditional defers are rare; the
	// net of a conditionally-registered unlock shows up as a held-count
	// mismatch above when it matters).
	if len(b.defers) > len(out.defers) {
		out.defers = append([]map[string]int(nil), b.defers...)
	}
	return out
}

func (w *concWalker) mergeAll(pos token.Pos, states []*lockState) *lockState {
	var out *lockState
	for _, st := range states {
		if out == nil {
			out = st
			continue
		}
		out = w.merge(pos, out, st)
	}
	return out
}

func (w *concWalker) walkFor(st *lockState, x *ast.ForStmt, label string) *lockState {
	if x.Init != nil {
		if st = w.walkStmt(st, x.Init); st == nil {
			return nil
		}
	}
	if x.Cond == nil {
		w.loopRisk = true
	}
	if x.Cond != nil {
		w.walkExpr(st, x.Cond, false)
	}
	frame := &loopFrame{label: label, isLoop: true}
	w.frames = append(w.frames, frame)
	bodyOut := w.walkStmts(st.clone(), x.Body.List)
	if bodyOut != nil && x.Post != nil {
		bodyOut = w.walkStmt(bodyOut, x.Post)
	}
	w.frames = w.frames[:len(w.frames)-1]

	w.checkLoopConsistency(x.Body.Lbrace, st, bodyOut, frame.continues)

	// Natural exit resumes from the entry state (condition false on some
	// iteration); an infinite loop exits only through breaks.
	var exitStates []*lockState
	if x.Cond != nil {
		exitStates = append(exitStates, st)
	}
	exitStates = append(exitStates, frame.breaks...)
	return w.mergeAll(x.Body.Lbrace, exitStates)
}

func (w *concWalker) walkRange(st *lockState, x *ast.RangeStmt, label string) *lockState {
	w.walkExpr(st, x.X, false)
	if t := w.e.p.Info.TypeOf(x.X); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			w.loopRisk = true
			// Range over a channel exits when the channel closes.
			w.recordRecv(x.X)
		}
	}
	frame := &loopFrame{label: label, isLoop: true}
	w.frames = append(w.frames, frame)
	bodyOut := w.walkStmts(st.clone(), x.Body.List)
	w.frames = w.frames[:len(w.frames)-1]

	w.checkLoopConsistency(x.Body.Lbrace, st, bodyOut, frame.continues)

	exitStates := append([]*lockState{st}, frame.breaks...)
	return w.mergeAll(x.Body.Lbrace, exitStates)
}

// checkLoopConsistency reports when a loop body ends an iteration with a
// different lock state than it started with: the second iteration would
// double-lock or double-unlock.
func (w *concWalker) checkLoopConsistency(pos token.Pos, entry *lockState, bodyOut *lockState, continues []*lockState) {
	if !w.report {
		return
	}
	for _, out := range append([]*lockState{bodyOut}, continues...) {
		if out == nil || out.dead {
			continue
		}
		keys := make(map[string]bool)
		for k := range entry.held {
			keys[k] = true
		}
		for k := range out.held {
			keys[k] = true
		}
		for k := range keys {
			if entry.held[k] != out.held[k] {
				w.emit(pos, "%s held count changes across loop iterations (%d at entry, %d at end)",
					w.e.classes[baseKey(k)].display(), entry.held[k], out.held[k])
			}
		}
	}
}

func (w *concWalker) walkSwitch(st *lockState, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) *lockState {
	if init != nil {
		if st = w.walkStmt(st, init); st == nil {
			return nil
		}
	}
	if tag != nil {
		w.walkExpr(st, tag, false)
	}
	frame := &loopFrame{label: label}
	w.frames = append(w.frames, frame)
	var outs []*lockState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, ce := range cc.List {
			w.walkExpr(st, ce, false)
		}
		if out := w.walkStmts(st.clone(), cc.Body); out != nil {
			outs = append(outs, out)
		}
	}
	w.frames = w.frames[:len(w.frames)-1]
	if !hasDefault {
		outs = append(outs, st)
	}
	outs = append(outs, frame.breaks...)
	return w.mergeAll(body.Lbrace, outs)
}

func (w *concWalker) walkSelect(st *lockState, x *ast.SelectStmt, label string) *lockState {
	frame := &loopFrame{label: label}
	w.frames = append(w.frames, frame)
	var outs []*lockState
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		branch := st.clone()
		if cc.Comm != nil {
			if b := w.walkStmt(branch, cc.Comm); b != nil {
				branch = b
			}
		}
		if out := w.walkStmts(branch, cc.Body); out != nil {
			outs = append(outs, out)
		}
	}
	w.frames = w.frames[:len(w.frames)-1]
	outs = append(outs, frame.breaks...)
	return w.mergeAll(x.Body.Lbrace, outs)
}

func (w *concWalker) walkGo(st *lockState, x *ast.GoStmt) {
	// Argument expressions evaluate on this goroutine; the called body
	// does not.
	for _, a := range x.Call.Args {
		w.walkExpr(st, a, false)
	}
	if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(st, sel.X, false)
	}
	if w.record {
		target := w.e.eng.unitForCall(x.Call)
		w.e.spawns = append(w.e.spawns, spawnSite{unit: w.u, target: target, pos: x.Pos()})
	}
}

func (w *concWalker) walkDefer(st *lockState, x *ast.DeferStmt) {
	for _, a := range x.Call.Args {
		w.walkExpr(st, a, false)
	}
	if op, cls, expr := w.e.lockOp(x.Call); op != "" && cls.key != "" {
		delta := map[string]int{}
		switch op {
		case "Unlock":
			delta[cls.key] = -1
		case "RUnlock":
			delta[cls.key+rlockSuffix] = -1
		case "Lock":
			delta[cls.key] = 1
		case "RLock":
			delta[cls.key+rlockSuffix] = 1
		}
		st.touched[cls.key] = true
		_ = expr
		st.defers = append(st.defers, delta)
		return
	}
	if id, ok := ast.Unparen(x.Call.Fun).(*ast.Ident); ok && len(x.Call.Args) == 1 {
		if b, isB := w.e.p.Info.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
			// defer close(ch) still closes the channel at exit.
			if w.record {
				if c := w.e.classOf(x.Call.Args[0]); c.key != "" {
					w.e.closes[c.key] = true
				}
			}
			return
		}
	}
	if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(st, sel.X, false)
	}
	if callee := w.e.eng.unitForCall(x.Call); callee != nil {
		if sum := w.e.sums[callee]; sum != nil && len(sum.net) > 0 {
			delta := make(map[string]int, len(sum.net))
			for k, v := range sum.net {
				delta[k] = v
				st.touched[baseKey(k)] = true
			}
			st.defers = append(st.defers, delta)
		}
	}
}

// --- expression walk --------------------------------------------------------

// walkWrite records an assignment target: field writes for atomicmix,
// plus any calls inside index expressions.
func (w *concWalker) walkWrite(st *lockState, target ast.Expr) {
	switch x := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		w.walkExpr(st, x.X, false)
		w.recordFieldAccess(st, x, true, false)
	case *ast.IndexExpr:
		w.walkWrite(st, x.X)
		w.walkExpr(st, x.Index, false)
	case *ast.StarExpr:
		w.walkWrite(st, x.X)
	case *ast.Ident:
		// Plain variable: nothing to record.
	default:
		w.walkExpr(st, target, false)
	}
}

// walkExpr walks an expression in evaluation order, applying call
// effects and recording field accesses. addrOf marks that the parent
// took the operand's address outside an atomic call.
func (w *concWalker) walkExpr(st *lockState, expr ast.Expr, addrOf bool) {
	if expr == nil {
		return
	}
	switch x := expr.(type) {
	case *ast.ParenExpr:
		w.walkExpr(st, x.X, addrOf)
	case *ast.Ident, *ast.BasicLit:
		// leaf
	case *ast.SelectorExpr:
		w.walkExpr(st, x.X, false)
		if sel := w.e.p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			w.recordFieldAccess(st, x, addrOf, false)
		}
	case *ast.IndexExpr:
		w.walkExpr(st, x.X, addrOf)
		w.walkExpr(st, x.Index, false)
	case *ast.SliceExpr:
		w.walkExpr(st, x.X, false)
		w.walkExpr(st, x.Low, false)
		w.walkExpr(st, x.High, false)
		w.walkExpr(st, x.Max, false)
	case *ast.StarExpr:
		w.walkExpr(st, x.X, false)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			w.walkExpr(st, x.X, true)
			return
		}
		if x.Op == token.ARROW {
			w.recordRecv(x.X)
		}
		w.walkExpr(st, x.X, false)
	case *ast.BinaryExpr:
		w.walkExpr(st, x.X, false)
		w.walkExpr(st, x.Y, false)
	case *ast.KeyValueExpr:
		w.walkExpr(st, x.Value, false)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			w.walkExpr(st, elt, false)
		}
	case *ast.TypeAssertExpr:
		w.walkExpr(st, x.X, false)
	case *ast.FuncLit:
		// Body runs when called; nothing happens at evaluation.
	case *ast.CallExpr:
		w.walkCall(st, x)
	}
}

// recordRecv logs a channel-receive class for goleak's shutdown-edge
// matching (a goroutine receiving from a channel that something closes
// has a way out).
func (w *concWalker) recordRecv(ch ast.Expr) {
	if !w.record {
		return
	}
	c := w.e.classOf(ch)
	if c.key == "" {
		return
	}
	if w.e.recvs[w.u] == nil {
		w.e.recvs[w.u] = make(map[string]bool)
	}
	w.e.recvs[w.u][c.key] = true
}

// walkCall evaluates a call's operands and applies its lock effect.
func (w *concWalker) walkCall(st *lockState, call *ast.CallExpr) {
	// Immediately-invoked literal: its body runs here.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkExpr(st, a, false)
		}
		if u := w.e.eng.byLit[lit]; u != nil {
			w.applyCallee(st, u, call.Pos())
		}
		return
	}

	// atomic.XxxInt64(&x.f, ...): classify the target field as atomic,
	// not as a plain address-taken access.
	if w.isAtomicCall(call) {
		for i, a := range call.Args {
			if i == 0 {
				if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if selx, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
						w.walkExpr(st, selx.X, false)
						if w.report {
							if c := w.e.fieldClass(selx); c.key != "" {
								w.e.atomicOps[c.key] = append(w.e.atomicOps[c.key], call.Pos())
							}
						}
						continue
					}
				}
			}
			w.walkExpr(st, a, false)
		}
		return
	}

	// close(ch): register the channel as closeable for goleak.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := w.e.p.Info.Uses[id].(*types.Builtin); isB && b.Name() == "close" && len(call.Args) == 1 {
			w.walkExpr(st, call.Args[0], false)
			if w.record {
				if c := w.e.classOf(call.Args[0]); c.key != "" {
					w.e.closes[c.key] = true
				}
			}
			return
		}
	}

	// Operands first (receiver, then arguments).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(st, sel.X, false)
	}
	for _, a := range call.Args {
		w.walkExpr(st, a, false)
	}

	// Lock operations.
	if op, cls, exprStr := w.e.lockOp(call); op != "" && cls.key != "" {
		w.applyLockOp(st, call.Pos(), op, cls, exprStr)
		return
	}

	fn := resolvedCallee(w.e.p.Info, call)
	if fn != nil {
		if isTerminatorFunc(fn) {
			st.dead = true
			return
		}
		if isSyncMethod(fn, "WaitGroup", "Wait") {
			w.waits = true
			return
		}
		if fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			w.usesDone = true
			return
		}
		if isSyncMethod(fn, "Cond", "Wait") {
			return // releases and re-acquires its Locker: net zero
		}
	}

	// Plain local call: apply the callee's net effect and record the
	// site for context inference and lock-order edges.
	if callee := w.e.eng.unitForCall(call); callee != nil {
		if w.record {
			w.e.sites = append(w.e.sites, callSite{caller: w.u, callee: callee, held: st.heldBases()})
		}
		w.applyCallee(st, callee, call.Pos())
	}
}

// applyCallee folds a callee's summary into the path state: its net
// lock deltas, transitive acquisitions (for edges and loop risk).
func (w *concWalker) applyCallee(st *lockState, callee *funcUnit, pos token.Pos) {
	sum := w.e.sums[callee]
	if sum == nil {
		return
	}
	if sum.loopRisk {
		w.loopRisk = true
	}
	if sum.waits {
		w.waits = true
	}
	if sum.usesDone {
		w.usesDone = true
	}
	for k := range sum.acquired {
		w.acquired[k] = true
		if w.report {
			for h := range st.heldBases() {
				if h != k {
					w.e.addEdge(h, k, pos)
				}
			}
		}
	}
	for k, d := range sum.net {
		st.held[k] += d
		st.touched[baseKey(k)] = true
	}
}

// applyLockOp mutates the path state for one Lock/Unlock-family call.
func (w *concWalker) applyLockOp(st *lockState, pos token.Pos, op string, cls concClass, exprStr string) {
	wkey, rkey := cls.key, cls.key+rlockSuffix
	switch op {
	case "Lock", "RLock":
		key := wkey
		if op == "RLock" {
			key = rkey
		}
		if w.report {
			// Self-deadlock: re-locking a write lock this path already
			// holds via the same receiver expression or the inferred
			// entry context. (Distinct instances of one type share a
			// class and are deliberately not reported.)
			if op == "Lock" && st.held[wkey] > 0 && (st.exprs[wkey][exprStr] || !st.touched[cls.key]) {
				w.emit(pos, "Lock of %s while already held on this path (possible self-deadlock)", cls.display())
			}
			for h := range st.heldBases() {
				if h != cls.key {
					w.e.addEdge(h, cls.key, pos)
				}
			}
		}
		st.held[key]++
		st.touched[cls.key] = true
		w.acquired[cls.key] = true
		if st.exprs[key] == nil {
			st.exprs[key] = make(map[string]bool)
		}
		st.exprs[key][exprStr] = true
	case "Unlock", "RUnlock":
		key := wkey
		if op == "RUnlock" {
			key = rkey
		}
		if st.held[key] <= 0 {
			if w.report {
				if st.touched[cls.key] {
					w.emit(pos, "%s of %s which is not held on this path (possible double unlock)", op, cls.display())
				} else {
					w.emit(pos, "%s of %s which this function never locked", op, cls.display())
				}
				return // clamp in report mode to avoid cascades
			}
		}
		st.held[key]--
		st.touched[cls.key] = true
	case "TryLock", "TryRLock":
		// Conditional acquisition: the success branch is invisible to
		// this walker; ignored (none in the tree).
	}
}

// recordFieldAccess logs one field read/write for atomicmix. It runs in
// the report walk, not the record walk, because the held set must
// include the unit's inferred entry context — accesses inside a helper
// called under a lock are guarded accesses.
func (w *concWalker) recordFieldAccess(st *lockState, sel *ast.SelectorExpr, write, viaAddr bool) {
	if !w.report {
		return
	}
	cls := w.e.fieldClass(sel)
	if cls.key == "" {
		return
	}
	w.e.accesses = append(w.e.accesses, fieldAccess{
		class:   cls,
		pos:     sel.Sel.Pos(),
		write:   write,
		held:    st.heldBases(),
		inCtor:  w.unitIsCtorOf(cls.owner),
		viaAddr: viaAddr,
	})
}

// fieldClass resolves a field selector to a class, returning the zero
// class for fields of types outside this package or of exempt type
// (atomics, sync primitives, channels, funcs), and registering mutex-
// typed fields as guard candidates.
func (e *concEngine) fieldClass(sel *ast.SelectorExpr) concClass {
	s := e.p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return concClass{}
	}
	cls := e.classOf(sel)
	if cls.key == "" || cls.owner == "" {
		return concClass{}
	}
	// Only audit fields of types declared in this package.
	if !strings.HasPrefix(cls.owner, e.p.Path+".") {
		return concClass{}
	}
	ft := s.Obj().Type()
	if syncNamed(ft, "Mutex", "RWMutex") {
		e.guards[cls.key] = true
		return concClass{}
	}
	if concExemptFieldType(ft) {
		return concClass{}
	}
	return cls
}

// unitIsCtorOf reports whether the walker's unit is a constructor of
// owner ("pkg.Type"): a declared function returning that type (or a
// pointer to it). Constructors initialize fields before the value is
// shared; their accesses are exempt from guard inference.
func (w *concWalker) unitIsCtorOf(owner string) bool {
	u := w.u
	if u.enclosing != nil {
		u = u.enclosing
	}
	if u.decl == nil || u.obj == nil {
		return false
	}
	sig, ok := u.obj.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		if n, okn := t.(*types.Named); okn && n.Obj().Pkg() != nil {
			if n.Obj().Pkg().Path()+"."+n.Obj().Name() == owner {
				return true
			}
		}
	}
	return false
}

// isAtomicCall reports a direct call of a sync/atomic package function.
func (w *concWalker) isAtomicCall(call *ast.CallExpr) bool {
	fn := resolvedCallee(w.e.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Package functions only; methods of atomic.Int64 etc. are typed
	// atomics, exempt by construction.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isTerminatorFunc reports callees that end the goroutine: the path
// needs no balance (or obligation) checking past them. Shared by the
// concurrency walker and resleak's lifecycle walker.
func isTerminatorFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return fn.Name() == "panic"
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}

// lockOp classifies a call as a mutex operation, resolving the lock
// class of its receiver. Returns ("", zero, "") for non-lock calls.
func (e *concEngine) lockOp(call *ast.CallExpr) (op string, cls concClass, exprStr string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", concClass{}, ""
	}
	fn, ok := e.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", concClass{}, ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", concClass{}, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", concClass{}, ""
	}
	if !syncNamed(sig.Recv().Type(), "Mutex", "RWMutex") {
		return "", concClass{}, ""
	}
	cls = e.classOf(sel.X)
	return fn.Name(), cls, types.ExprString(sel.X)
}

// isSyncMethod reports a method named name on sync.<typeName>.
func isSyncMethod(fn *types.Func, typeName, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return syncNamed(sig.Recv().Type(), typeName)
}

// addEdge records a lock-order edge: from held while acquiring to.
func (e *concEngine) addEdge(from, to string, pos token.Pos) {
	k := [2]string{from, to}
	if _, ok := e.edges[k]; !ok {
		e.edges[k] = pos
	}
}

// sortFindings orders findings by position for stable output.
func sortFindings(out []Finding) []Finding {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}
