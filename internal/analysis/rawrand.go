package analysis

import (
	"strconv"
	"strings"
)

// RawRand flags math/rand imports in non-test files. All key and nonce
// generation must come from crypto/rand; a deterministic generator
// anywhere near key material silently destroys every security property of
// the system. Benchmark-traffic packages that need seeded reproducible
// randomness are allowlisted explicitly.
type RawRand struct{}

// rawRandAllowedPkgs are import-path suffixes of packages permitted to
// import math/rand: deterministic workload generators whose randomness
// shapes benchmark traffic, never key material.
var rawRandAllowedPkgs = []string{
	"internal/workload",
}

// Name implements Analyzer.
func (RawRand) Name() string { return "rawrand" }

// Doc implements Analyzer.
func (RawRand) Doc() string {
	return "math/rand must not be imported outside tests and allowlisted workload generators"
}

// Check implements Analyzer.
func (a RawRand) Check(p *Package) []Finding {
	for _, suffix := range rawRandAllowedPkgs {
		if strings.HasSuffix(p.Path, suffix) {
			return nil
		}
	}
	var out []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Analyzer: a.Name(),
					Pos:      p.Fset.Position(imp.Pos()),
					Message:  "import of " + path + ": use crypto/rand (or move deterministic traffic generation into an allowlisted workload package)",
				})
			}
		}
	}
	return out
}
