// Package analysis implements sharoes-vet, a static-analysis suite that
// enforces the security invariants Sharoes' threat model depends on but
// the Go compiler cannot see. The SSP is curious-or-malicious (paper §II):
// a single key byte reaching a log line, an unauthenticated AAD, or a
// predictable key source is a full compromise, so these properties are
// checked mechanically on every build rather than by review.
//
// Six analyzers are provided:
//
//   - keyleak:   no fmt.* / log.* argument whose static type is or contains
//     sharocrypto.SymKey, SignKey or PrivateKey, nor raw key bytes obtained
//     from one (k[:], k[i], k.Marshal()).
//   - aadbind:   no SymKey.Seal/Open call with a nil or empty-literal AAD —
//     every AEAD operation must bind its object context.
//   - rawrand:   no math/rand import in non-test files; key material must
//     come from crypto/rand. internal/workload is allowlisted (seeded
//     deterministic benchmark traffic, never key material).
//   - errstring: wire/ssp error and log strings must not embed blob
//     contents ([]byte values, KV structs, or string(blob) conversions).
//   - unverified: taint-flow — bytes from untrusted sources (SSP reads,
//     wire decoding, netsim reads) must pass an authenticating sanitizer
//     (AEAD Open, signature Verify, the meta/cap openers) before reaching
//     trusted sinks: exported client return values, cache inserts,
//     layout/cap key-selection decisions.
//   - keyegress: taint-flow — key-typed values and raw key bytes must be
//     sealed (AEAD Seal, RSA-OAEP wrap, the meta/cap sealers) before
//     flowing into wire encoders, SSP store writes, or file writes.
//
// The suite is self-contained: it uses only go/parser, go/ast and go/types
// from the standard library, so the repo stays offline-buildable with no
// golang.org/x/tools dependency.
//
// A finding can be suppressed — after review — with a line directive:
//
//	k.Seal(plain, nil) //sharoes-vet:allow aadbind sealed value is self-describing
//
// placed on the offending line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
)

// Finding is one invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats a finding the way `go vet` does.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the short identifier used in output and allow directives.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Check reports violations in p. Suppression directives are applied
	// by Run, not by the analyzer.
	Check(p *Package) []Finding
}

// Analyzers returns the full sharoes-vet suite.
func Analyzers() []Analyzer {
	return []Analyzer{
		KeyLeak{}, AADBind{}, RawRand{}, ErrString{}, Unverified{}, KeyEgress{},
		LockOrder{}, LockBalance{}, GoLeak{}, AtomicMix{},
		ErrDrop{}, ErrWrap{}, ResLeak{},
	}
}

// Run executes the analyzers over p, drops suppressed findings, and
// returns the remainder sorted by position. Allow directives missing a
// justification suppress nothing and are themselves reported as
// findings: an unexplained suppression is a finding someone buried.
func Run(p *Package, analyzers []Analyzer) []Finding {
	return RunInstrumented(p, analyzers, nil)
}

// RunInstrumented is Run with per-analyzer wall-time recorded into reg
// as vet.analyzer.<name>.ns histograms (reg may be nil — the obs
// handles are nil-safe, so the uninstrumented path pays nothing).
func RunInstrumented(p *Package, analyzers []Analyzer, reg *obs.Registry) []Finding {
	allow, bare := collectAllowances(p)
	out := bare
	for _, a := range analyzers {
		start := time.Now()
		findings := a.Check(p)
		reg.Histogram("vet.analyzer." + a.Name() + ".ns").Observe(time.Since(start))
		for _, f := range findings {
			if allow.covers(f.Pos.Filename, f.Pos.Line, a.Name()) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// allowDirective is the comment prefix that suppresses findings.
const allowDirective = "//sharoes-vet:allow "

// allowances maps file -> line -> analyzer names allowed there.
type allowances map[string]map[int]map[string]bool

func (a allowances) covers(file string, line int, analyzer string) bool {
	lines := a[file]
	if lines == nil {
		return false
	}
	// A directive covers its own line and the line below it (directive-
	// above-statement style).
	return lines[line][analyzer] || lines[line-1][analyzer]
}

// parseAllowDirective splits one comment into the analyzer names it
// suppresses and the free-form justification. ok is false for comments
// that are not allow directives at all.
func parseAllowDirective(text string) (names []string, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, strings.TrimSuffix(allowDirective, " "))
	if !ok {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	// First field is the comma-separated analyzer list; the rest of the
	// line is the justification.
	list := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		list, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason, true
}

// collectAllowances gathers the package's allow directives. Directives
// without a justification are returned as findings (analyzer "allow")
// instead of being honored.
func collectAllowances(p *Package) (allowances, []Finding) {
	out := make(allowances)
	var bare []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if reason == "" {
					bare = append(bare, Finding{
						Analyzer: "allow",
						Pos:      pos,
						Message: "allow directive for " + strings.Join(names, ",") +
							" has no justification; write the reason after the analyzer list",
					})
					continue
				}
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return out, bare
}

// AllowCounts tallies the package's justified allow directives per
// analyzer name, so tools can surface how much of the tree is running
// on exemptions.
func AllowCounts(p *Package) map[string]int {
	out := make(map[string]int)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseAllowDirective(c.Text)
				if !ok || reason == "" {
					continue
				}
				for _, n := range names {
					out[n]++
				}
			}
		}
	}
	return out
}

// --- shared type helpers ----------------------------------------------------

// sharocryptoPkgSuffix identifies the crypto package by import-path suffix
// so the analyzers work on any checkout location of the module.
const sharocryptoPkgSuffix = "internal/sharocrypto"

// keyTypeNames are the sharocrypto named types that hold secret material.
var keyTypeNames = map[string]bool{
	"SymKey":     true,
	"SignKey":    true,
	"PrivateKey": true,
}

// isKeyType reports whether t is exactly one of the sharocrypto key types.
func isKeyType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), sharocryptoPkgSuffix) {
		return false
	}
	return keyTypeNames[obj.Name()]
}

// containsKeyType reports whether t is, or transitively contains, a
// sharocrypto key type (through named types, structs, pointers, slices,
// arrays, maps and channels).
func containsKeyType(t types.Type) bool {
	return containsKey(t, make(map[types.Type]bool))
}

func containsKey(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isKeyType(t) {
		return true
	}
	switch u := t.(type) {
	case *types.Named:
		return containsKey(u.Underlying(), seen)
	case *types.Alias:
		return containsKey(types.Unalias(u), seen)
	case *types.Pointer:
		return containsKey(u.Elem(), seen)
	case *types.Slice:
		return containsKey(u.Elem(), seen)
	case *types.Array:
		return containsKey(u.Elem(), seen)
	case *types.Chan:
		return containsKey(u.Elem(), seen)
	case *types.Map:
		return containsKey(u.Key(), seen) || containsKey(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsKey(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// printSink resolves a call to a fmt/log print-style function or a
// log.Logger method. It returns the resolved function and true when the
// call can turn its arguments into user-visible text.
func printSink(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	switch fn.Pkg().Path() {
	case "fmt", "log", "log/slog":
		return fn, true
	}
	return nil, false
}

// isByteSlice reports whether t is []byte (possibly via a named type).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isByteArray reports whether t is a [N]byte (possibly via a named type).
func isByteArray(t types.Type) bool {
	a, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := a.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
