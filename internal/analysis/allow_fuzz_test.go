package analysis

import (
	"strings"
	"testing"
)

// FuzzParseAllowDirective hammers the allow-directive parser with
// mutations of the justification forms used in the real tree. The
// parser sits on the trust boundary of the suppression system, so the
// invariants matter more than the parse result: it must never panic,
// never return an analyzer name containing whitespace or commas, and
// must ignore comments that are not directives at all.
func FuzzParseAllowDirective(f *testing.F) {
	seeds := []string{
		"//sharoes-vet:allow errdrop warm-up traffic is advisory; a miss only costs latency",
		"//sharoes-vet:allow errdrop the write error is already being returned; close is cleanup on a failed dump",
		"//sharoes-vet:allow goleak server owns the conn; Close unblocks the reader",
		"//sharoes-vet:allow errdrop,resleak teardown path; first error wins",
		"//sharoes-vet:allow rawrand nonce only; uniqueness not secrecy",
		"//sharoes-vet:allow errdrop",
		"//sharoes-vet:allow",
		"//sharoes-vet:allowx not a directive",
		"// just a comment",
		"//sharoes-vet:allow  errdrop\t tab separated reason",
		"//sharoes-vet:allow ,,, empty names collapse",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, ok := parseAllowDirective(text)
		if !ok {
			if names != nil || reason != "" {
				t.Fatalf("non-directive returned data: names=%v reason=%q", names, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//sharoes-vet:allow") {
			t.Fatalf("accepted text without the directive prefix: %q", text)
		}
		for _, n := range names {
			if n == "" || strings.ContainsAny(n, ", \t") {
				t.Fatalf("malformed analyzer name %q from %q", n, text)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason not trimmed: %q from %q", reason, text)
		}
	})
}
