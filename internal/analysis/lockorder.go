package analysis

// LockOrder reports cycles in the package's lock-acquisition graph.
// An edge A → B is recorded whenever a path acquires lock class B while
// holding lock class A, including through plain local calls (a caller
// holding A that calls a helper which locks B contributes A → B). Two
// goroutines traversing a cycle in opposite directions can deadlock.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "report cycles in the cross-function lock-acquisition order (potential deadlocks)"
}

// Check implements Analyzer.
func (LockOrder) Check(p *Package) []Finding {
	e := concFor(p)
	adj := make(map[string][]string)
	for k := range e.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range adj[n] {
				if m == to {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	// Every edge that sits on a cycle is reported: each acquisition site
	// involved in the deadlock is actionable, and reporting all of them
	// keeps the output deterministic.
	var out []Finding
	for k, pos := range e.edges {
		a, b := k[0], k[1]
		if !reaches(b, a) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "lockorder",
			Pos:      p.Fset.Position(pos),
			Message: "lock order cycle: " + e.classes[b].display() + " is acquired while holding " +
				e.classes[a].display() + ", and the reverse order also occurs (potential deadlock)",
		})
	}
	return sortFindings(out)
}
