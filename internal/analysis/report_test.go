package analysis

import (
	"reflect"
	"testing"
)

func sampleReport() Report {
	return Report{
		Findings: []ReportFinding{
			{Analyzer: "errdrop", File: "internal/wire/wire.go", Line: 40, Col: 2, Message: "a"},
			{Analyzer: "resleak", File: "cmd/sharoes-bench/main.go", Line: 9, Col: 5, Message: "b"},
		},
		Allows: map[string]int{"errdrop": 2, "goleak": 1},
	}
}

// TestReportRoundTrip pins Marshal -> ParseReport as the identity on
// the semantic content of a report.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	b, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseReport(b)
	if err != nil {
		t.Fatalf("ParseReport: %v", err)
	}
	if !reflect.DeepEqual(got.Findings, r.Findings) {
		t.Errorf("findings changed across round trip:\n got %+v\nwant %+v", got.Findings, r.Findings)
	}
	if !reflect.DeepEqual(got.Allows, r.Allows) {
		t.Errorf("allows changed across round trip: got %v want %v", got.Allows, r.Allows)
	}
}

// TestParseReportRejectsGarbage pins that a torn or hand-mangled
// baseline is an error, not an empty report (which would make every
// finding look new).
func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := ParseReport([]byte("{torn")); err == nil {
		t.Fatal("ParseReport accepted malformed JSON")
	}
}

// TestDiffReports pins the gate semantics: matching on
// (analyzer, file, message) so pure line drift is neither new nor
// fixed, while real additions and removals are.
func TestDiffReports(t *testing.T) {
	base := sampleReport()
	cur := Report{
		Findings: []ReportFinding{
			// Same finding as base[0] but the file shifted 3 lines: not new.
			{Analyzer: "errdrop", File: "internal/wire/wire.go", Line: 43, Col: 2, Message: "a"},
			// Brand new finding.
			{Analyzer: "errwrap", File: "internal/meta/meta.go", Line: 12, Col: 9, Message: "c"},
		},
	}
	newF, fixed := DiffReports(base, cur)
	if len(newF) != 1 || newF[0].Message != "c" {
		t.Fatalf("new findings = %+v, want just message c", newF)
	}
	if len(fixed) != 1 || fixed[0].Message != "b" {
		t.Fatalf("fixed findings = %+v, want just message b", fixed)
	}
}

// TestDiffReportsMultiset pins count sensitivity: two identical
// messages in current against one in baseline is one new finding.
func TestDiffReportsMultiset(t *testing.T) {
	f := ReportFinding{Analyzer: "errdrop", File: "f.go", Line: 1, Col: 1, Message: "dup"}
	base := Report{Findings: []ReportFinding{f}}
	g := f
	g.Line = 30
	cur := Report{Findings: []ReportFinding{f, g}}
	newF, fixed := DiffReports(base, cur)
	if len(newF) != 1 || len(fixed) != 0 {
		t.Fatalf("got new=%d fixed=%d, want 1/0", len(newF), len(fixed))
	}
}
