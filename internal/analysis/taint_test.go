package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// The summary-engine tests drive the real engine through the unverified
// spec over dedicated fixtures: taint crossing a call boundary,
// sanitizers clearing it, and recursive call graphs converging.

func TestSummaryTaintThroughCall(t *testing.T) {
	// fetchRaw introduces the taint; FetchVia (its caller) returns it.
	// Only the per-function summary substitution can see that flow.
	got := runOne(t, Unverified{}, filepath.Join("unverifiedbad", "internal", "client"))
	var hit bool
	for _, f := range got {
		if strings.Contains(f.Message, "return value of FetchVia") {
			hit = true
			if !strings.Contains(f.Message, "client.go:31") {
				t.Errorf("cross-function finding does not name the source line in the callee: %s", f)
			}
		}
	}
	if !hit {
		t.Fatalf("no finding for taint introduced in fetchRaw and returned by FetchVia:\n%s", findingsText(got))
	}
}

func TestSummarySanitizerClearsTaint(t *testing.T) {
	// Open/Verify on every path: the engine must drop the taint both for
	// sanitizer results and for in-place Verify blessing.
	if got := runOne(t, Unverified{}, filepath.Join("unverifiedgood", "internal", "client")); len(got) != 0 {
		t.Fatalf("sanitized flows flagged:\n%s", findingsText(got))
	}
}

func TestSummaryRecursionTerminates(t *testing.T) {
	// Mutually recursive (even/odd) and self-recursive (loop) chains: the
	// package-level fixpoint must converge and still report both leaks.
	got := runOne(t, Unverified{}, filepath.Join("unverifiedcycle", "internal", "client"))
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (Spin and Tail):\n%s", len(got), findingsText(got))
	}
	for _, want := range []string{"return value of Spin", "return value of Tail"} {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q:\n%s", want, findingsText(got))
		}
	}
}

func TestModuleRootOf(t *testing.T) {
	for _, tc := range []struct{ path, want string }{
		{"github.com/sharoes/sharoes/internal/ssp", "github.com/sharoes/sharoes"},
		{"github.com/sharoes/sharoes/cmd/sharoes-vet", "github.com/sharoes/sharoes"},
		{"github.com/sharoes/sharoes", "github.com/sharoes/sharoes"},
		// A fixture's nested internal/ tree makes the real module a
		// prefix, so its packages count as module-internal too.
		{"github.com/sharoes/sharoes/internal/analysis/testdata/src/x/internal/client", "github.com/sharoes/sharoes"},
	} {
		if got := moduleRootOf(tc.path); got != tc.want {
			t.Errorf("moduleRootOf(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestTaintSetConcrete(t *testing.T) {
	s := make(taintSet)
	s.add(taintLabel{param: 0})
	if _, ok := s.concrete(); ok {
		t.Fatal("parameter-only set reported a concrete label")
	}
	s.add(concreteLabel("zz source", false, 0))
	s.add(concreteLabel("aa source", true, 0))
	l, ok := s.concrete()
	if !ok || l.desc != "aa source" {
		t.Fatalf("concrete() = %+v, %v; want the lexically first concrete label", l, ok)
	}
	if !s.union(taintSet{concreteLabel("mm", false, 0): struct{}{}}) {
		t.Fatal("union of a new label reported no change")
	}
	if s.union(s) {
		t.Fatal("self-union reported change")
	}
}
