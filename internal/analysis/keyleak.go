package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// KeyLeak flags key material flowing into fmt/log output. The SSP threat
// model makes any log line or error string that carries a SymKey, SignKey
// or PrivateKey — or raw bytes extracted from one — a total compromise:
// server logs are exactly the kind of operational data an outsourced
// provider can read.
type KeyLeak struct{}

// Name implements Analyzer.
func (KeyLeak) Name() string { return "keyleak" }

// Doc implements Analyzer.
func (KeyLeak) Doc() string {
	return "key material (SymKey/SignKey/PrivateKey or their raw bytes) must never reach fmt/log output"
}

// Check implements Analyzer.
func (a KeyLeak) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := printSink(p.Info, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if reason, leak := a.leaks(p.Info, arg); leak {
					out = append(out, Finding{
						Analyzer: a.Name(),
						Pos:      p.Fset.Position(arg.Pos()),
						Message:  fmt.Sprintf("%s passed to %s.%s", reason, fn.Pkg().Name(), fn.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}

// leaks reports whether the expression exposes key material, and how.
func (KeyLeak) leaks(info *types.Info, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if t := info.TypeOf(arg); t != nil && containsKeyType(t) {
		return fmt.Sprintf("value of key-bearing type %s", types.TypeString(t, nil)), true
	}
	switch e := arg.(type) {
	case *ast.SliceExpr:
		// k[:] — raw key bytes as []byte.
		if t := info.TypeOf(e.X); t != nil && containsKeyType(t) {
			return "raw key bytes (slice of key value)", true
		}
	case *ast.IndexExpr:
		// k[i] — a single key byte.
		if t := info.TypeOf(e.X); t != nil && containsKeyType(t) {
			return "raw key byte (index of key value)", true
		}
	case *ast.CallExpr:
		// k.Marshal() and friends — a method on a key type returning the
		// serialized secret.
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		selection := info.Selections[sel]
		if selection == nil || !containsKeyType(selection.Recv()) {
			return "", false
		}
		if ret := info.TypeOf(e); ret != nil && (isByteSlice(ret) || isByteArray(ret)) {
			return fmt.Sprintf("raw key bytes (%s() on key value)", sel.Sel.Name), true
		}
	}
	return "", false
}
