package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KeyLeak flags key material flowing into fmt/log output or into
// observability labels. The SSP threat model makes any log line or error
// string that carries a SymKey, SignKey or PrivateKey — or raw bytes
// extracted from one — a total compromise: server logs are exactly the
// kind of operational data an outsourced provider can read. The same
// goes for internal/obs span annotations and metric names: traces and
// metric snapshots are exported (Chrome trace files, the -debug-addr
// endpoint), so labels must carry only fixed operation names.
type KeyLeak struct{}

// Name implements Analyzer.
func (KeyLeak) Name() string { return "keyleak" }

// Doc implements Analyzer.
func (KeyLeak) Doc() string {
	return "key material (SymKey/SignKey/PrivateKey or their raw bytes) must never reach fmt/log output or obs span/metric labels"
}

// Check implements Analyzer.
func (a KeyLeak) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := printSink(p.Info, call)
			if !ok {
				fn, ok = obsLabelSink(p.Info, call)
			}
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if reason, leak := a.leaks(p.Info, arg); leak {
					out = append(out, Finding{
						Analyzer: a.Name(),
						Pos:      p.Fset.Position(arg.Pos()),
						Message:  fmt.Sprintf("%s passed to %s.%s", reason, fn.Pkg().Name(), fn.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}

// obsLabelSink resolves a call to an internal/obs labelling sink: span
// annotations and metric-instrument lookups, whose string arguments end
// up verbatim in exported traces and metric snapshots.
func obsLabelSink(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		return nil, false
	}
	switch fn.Name() {
	case "Annotate", "Counter", "Gauge", "Histogram":
		return fn, true
	}
	return nil, false
}

// leaks reports whether the expression exposes key material, and how.
func (KeyLeak) leaks(info *types.Info, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	if t := info.TypeOf(arg); t != nil && containsKeyType(t) {
		return fmt.Sprintf("value of key-bearing type %s", types.TypeString(t, nil)), true
	}
	switch e := arg.(type) {
	case *ast.BinaryExpr:
		// "prefix" + string(k[:]) — concatenation is see-through.
		if e.Op == token.ADD {
			if reason, leak := (KeyLeak{}).leaks(info, e.X); leak {
				return reason, true
			}
			return (KeyLeak{}).leaks(info, e.Y)
		}
	case *ast.SliceExpr:
		// k[:] — raw key bytes as []byte.
		if t := info.TypeOf(e.X); t != nil && containsKeyType(t) {
			return "raw key bytes (slice of key value)", true
		}
	case *ast.IndexExpr:
		// k[i] — a single key byte.
		if t := info.TypeOf(e.X); t != nil && containsKeyType(t) {
			return "raw key byte (index of key value)", true
		}
	case *ast.CallExpr:
		// string(k[:]) and the like — a conversion to a string type is
		// see-through: the bytes it launders are still key bytes.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if reason, leak := (KeyLeak{}).leaks(info, e.Args[0]); leak {
					return reason + " via string conversion", true
				}
			}
			return "", false
		}
		// fmt.Sprint*(..., k, ...) — formatting is equally see-through.
		if fn, ok := printSink(info, e); ok && strings.HasPrefix(fn.Name(), "Sprint") {
			for _, inner := range e.Args {
				if reason, leak := (KeyLeak{}).leaks(info, inner); leak {
					return reason + " via fmt." + fn.Name(), true
				}
			}
			return "", false
		}
		// k.Marshal() and friends — a method on a key type returning the
		// serialized secret.
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		selection := info.Selections[sel]
		if selection == nil || !containsKeyType(selection.Recv()) {
			return "", false
		}
		if ret := info.TypeOf(e); ret != nil && (isByteSlice(ret) || isByteArray(ret)) {
			return fmt.Sprintf("raw key bytes (%s() on key value)", sel.Sel.Name), true
		}
	}
	return "", false
}
