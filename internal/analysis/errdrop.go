package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop reports errors from fault-relevant calls that are silently
// dropped. Sharoes' integrity story is client-enforced: a swallowed
// error from an SSP round trip, a wire encode, a store write, a
// WriteBehind Flush/Barrier, or a Close on a write path means data loss
// or a voided verification that nothing will ever surface. Such errors
// must be checked, returned, or explicitly allowed.
//
// Fault-relevant calls are:
//
//   - error-returning functions of the module's I/O packages
//     (internal/ssp, internal/wire, internal/netsim);
//   - Close/Flush/Barrier/Sync/Stop/Shutdown methods returning error on
//     any module-internal type (stdlib types like net.Conn are excluded:
//     teardown of a connection the other side may have dropped is noise);
//   - os.WriteFile, (*os.File).Write/WriteString/WriteAt/Sync and
//     (*bufio.Writer).Write/Flush always; (*os.File).Close only inside
//     functions that also open a file for writing (os.Create/os.OpenFile),
//     so read-side f.Close() stays quiet;
//   - module-local helpers whose error result is derived from any of the
//     above, discovered by the effect-summary fixpoint.
//
// A drop is: a bare ExprStmt call, `_ =` at the error position, a
// `defer`/`go` of the call, or assignment to a variable that is never
// read afterwards (the shadowing trap).
type ErrDrop struct{}

func (ErrDrop) Name() string { return "errdrop" }
func (ErrDrop) Doc() string {
	return "errors from ssp/wire/netsim I/O, store writes and Close/Flush on write paths must be checked or returned"
}

// errdropPkgSuffixes are the module-internal I/O packages whose
// error-returning functions are always fault-relevant.
var errdropPkgSuffixes = []string{"/internal/ssp", "/internal/wire", "/internal/netsim"}

// errdropMethods are lifecycle/flush method names whose error result
// matters on any module-internal type.
var errdropMethods = map[string]bool{
	"Close": true, "Flush": true, "Barrier": true, "Sync": true,
	"Stop": true, "Shutdown": true,
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is the error interface (or an alias).
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// errorResultIndex returns the index of sig's trailing error result, or
// -1 when the function cannot fail.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return -1
	}
	if isErrorType(res.At(res.Len() - 1).Type()) {
		return res.Len() - 1
	}
	return -1
}

// errdropEngine carries one Check run's state.
type errdropEngine struct {
	p       *Package
	eng     *effectEngine
	modRoot string

	// faulty marks local units whose error result is derived from a
	// fault-relevant call (computed to a fixpoint so wrapper chains
	// propagate).
	faulty map[*funcUnit]bool
	// opensFile marks units that call os.Create/os.OpenFile, making
	// (*os.File).Close fault-relevant within them.
	opensFile map[*funcUnit]bool
}

func (ErrDrop) Check(p *Package) []Finding {
	if p.Info == nil || p.Types == nil {
		return nil
	}
	e := &errdropEngine{
		p:         p,
		eng:       newEffectEngine(p),
		modRoot:   moduleRootOf(p.Path),
		faulty:    make(map[*funcUnit]bool),
		opensFile: make(map[*funcUnit]bool),
	}
	for _, u := range e.eng.units {
		e.opensFile[u] = e.callsFileOpen(u)
	}
	e.eng.fixpoint(e.summarize)
	var out []Finding
	for _, u := range e.eng.units {
		out = append(out, e.report(u)...)
	}
	return sortFindings(out)
}

// callsFileOpen reports whether u's own statements (literals excluded —
// they are their own units) open a file for writing.
func (e *errdropEngine) callsFileOpen(u *funcUnit) bool {
	found := false
	inspectUnit(u, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := resolvedCallee(e.p.Info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "os" && (fn.Name() == "Create" || fn.Name() == "OpenFile") {
			found = true
		}
		return true
	})
	return found
}

// inspectUnit walks u's body but does not descend into nested function
// literals (each literal is its own unit).
func inspectUnit(u *funcUnit, fn func(ast.Node) bool) {
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false
		}
		return fn(n)
	})
}

// faultCall classifies a call as fault-relevant. desc names the rule for
// the finding message.
func (e *errdropEngine) faultCall(u *funcUnit, call *ast.CallExpr) (desc string, ok bool) {
	fn := resolvedCallee(e.p.Info, call)
	if fn == nil {
		return "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || errorResultIndex(sig) < 0 {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		switch path {
		case "os":
			if name == "WriteFile" {
				return "os.WriteFile", true
			}
		case "bufio":
			if name == "Flush" || name == "Write" {
				return "bufio." + name, true
			}
		}
		// (*os.File) write-path methods; Close only where this function
		// opens files for writing.
		if path == "os" && sig.Recv() != nil && recvTypeName(sig) == "File" {
			switch name {
			case "Write", "WriteString", "WriteAt", "Sync":
				return "os.File." + name, true
			case "Close":
				// Fault-relevant when this unit — or a lexically
				// enclosing one, for captured files — opened for write.
				for x := u; x != nil; x = x.enclosing {
					if e.opensFile[x] {
						return "os.File.Close on a write path", true
					}
				}
			}
			return "", false
		}
		// Module I/O packages: every error-returning call counts.
		for _, suf := range errdropPkgSuffixes {
			if strings.HasSuffix(path, suf) {
				return pkgBase(path) + "." + name, true
			}
		}
		// Lifecycle methods on module-internal types.
		if errdropMethods[name] && sig.Recv() != nil &&
			strings.HasPrefix(path, e.modRoot) {
			return pkgBase(path) + "." + recvTypeName(sig) + "." + name, true
		}
	}
	// Local wrappers whose error derives from a fault call.
	if lu := e.eng.unitForCall(call); lu != nil && e.faulty[lu] {
		return name, true
	}
	return "", false
}

// recvTypeName returns the bare name of a method's receiver type.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if n, ok := t.(*types.Alias); ok {
		return n.Obj().Name()
	}
	return ""
}

// pkgBase returns the last path segment of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// summarize is the fixpoint step: u becomes faulty when it returns (at
// the error position) the error of a fault-relevant call, directly or
// through a variable. Flow-insensitive on purpose — a wrapper that
// sometimes forwards the error is still worth checking at call sites.
func (e *errdropEngine) summarize(u *funcUnit) bool {
	if e.faulty[u] {
		return false
	}
	sig := unitSignature(e.p, u)
	if sig == nil || errorResultIndex(sig) < 0 {
		return false
	}
	errIdx := errorResultIndex(sig)

	// Variables assigned (anywhere in the unit) from a fault call's
	// error result.
	faultVars := make(map[types.Object]bool)
	inspectUnit(u, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, fr := e.faultCall(u, call); !fr {
				continue
			}
			csig, _ := e.p.Info.TypeOf(call.Fun).(*types.Signature)
			for j, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				// Tuple destructure: the error is at the call's error
				// index. 1:1 assign: the call's single result is the
				// error iff the call returns only an error.
				match := false
				if len(as.Rhs) == 1 && csig != nil && csig.Results().Len() > 1 {
					match = j == errorResultIndex(csig)
				} else {
					match = i == j && csig != nil && csig.Results().Len() == 1 && errorResultIndex(csig) == 0
				}
				if match {
					if obj := e.p.Info.ObjectOf(id); obj != nil {
						faultVars[obj] = true
					}
				}
			}
		}
		return true
	})

	found := false
	inspectUnit(u, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		var errExpr ast.Expr
		switch {
		case len(ret.Results) == 0:
			return true // named results: conservatively not faulty
		case len(ret.Results) == 1 && sig.Results().Len() > 1:
			// return f() tuple-forward.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if _, fr := e.faultCall(u, call); fr {
					found = true
				}
			}
			return true
		default:
			if errIdx < len(ret.Results) {
				errExpr = ret.Results[errIdx]
			}
		}
		if errExpr == nil {
			return true
		}
		switch x := ast.Unparen(errExpr).(type) {
		case *ast.CallExpr:
			if _, fr := e.faultCall(u, x); fr {
				found = true
			}
		case *ast.Ident:
			if obj := e.p.Info.ObjectOf(x); obj != nil && faultVars[obj] {
				found = true
			}
		}
		return true
	})
	if found {
		e.faulty[u] = true
	}
	return found
}

// unitSignature returns the unit's *types.Signature.
func unitSignature(p *Package, u *funcUnit) *types.Signature {
	if u.obj != nil {
		sig, _ := u.obj.Type().(*types.Signature)
		return sig
	}
	if u.lit != nil {
		sig, _ := p.Info.TypeOf(u.lit).(*types.Signature)
		return sig
	}
	return nil
}

// report walks u's statements and flags dropped fault-relevant errors.
func (e *errdropEngine) report(u *funcUnit) []Finding {
	var out []Finding
	flag := func(pos token.Pos, format string, desc string) {
		out = append(out, Finding{
			Analyzer: "errdrop",
			Pos:      e.p.Fset.Position(pos),
			Message:  strings.Replace(format, "%s", desc, 1),
		})
	}

	// Precompute write-target idents (assignment LHS, range vars) so a
	// later "read" of the error var can be told apart from a re-write.
	writes := make(map[*ast.Ident]bool)
	markWrite := func(expr ast.Expr) {
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
			writes[id] = true
		}
	}
	ast.Inspect(u.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				markWrite(l)
			}
		case *ast.RangeStmt:
			markWrite(s.Key)
			markWrite(s.Value)
		}
		return true
	})

	// consumed reports whether obj is read after pos; reads anywhere
	// inside loop (when the assignment sits in one) also count, because
	// the next iteration executes them after the assignment.
	consumed := func(obj types.Object, pos token.Pos, loop ast.Node) bool {
		ok := false
		scan := func(root ast.Node, after bool) {
			ast.Inspect(root, func(n ast.Node) bool {
				id, isID := n.(*ast.Ident)
				if !isID || ok {
					return !ok
				}
				if e.p.Info.ObjectOf(id) != obj || writes[id] {
					return true
				}
				if !after || id.Pos() > pos {
					ok = true
				}
				return true
			})
		}
		scan(u.body, true)
		if !ok && loop != nil {
			scan(loop, false)
		}
		return ok
	}

	var walk func(n ast.Node, loop ast.Node)
	walk = func(n ast.Node, loop ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(nn ast.Node) bool {
			if lit, ok := nn.(*ast.FuncLit); ok && lit != u.lit {
				return false // separate unit
			}
			switch s := nn.(type) {
			case *ast.ForStmt:
				if nn != n {
					walk(s, s)
					return false
				}
				loop = s
			case *ast.RangeStmt:
				if nn != n {
					walk(s, s)
					return false
				}
				loop = s
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if desc, fr := e.faultCall(u, call); fr {
						flag(call.Pos(), "%s error discarded; check it, return it, or allow with justification", desc)
					}
				}
			case *ast.DeferStmt:
				if desc, fr := e.faultCall(u, s.Call); fr {
					flag(s.Call.Pos(), "deferred %s discards its error; capture it into a named result or check explicitly", desc)
				}
			case *ast.GoStmt:
				if desc, fr := e.faultCall(u, s.Call); fr {
					flag(s.Call.Pos(), "%s error lost in goroutine; no caller can observe it", desc)
				}
			case *ast.AssignStmt:
				e.checkAssign(u, s, loop, consumed, flag)
			}
			return true
		})
	}
	walk(u.body, nil)
	return out
}

// checkAssign flags fault-call errors assigned to `_` or to a variable
// that is never read afterwards.
func (e *errdropEngine) checkAssign(u *funcUnit, as *ast.AssignStmt, loop ast.Node,
	consumed func(types.Object, token.Pos, ast.Node) bool,
	flag func(token.Pos, string, string)) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		desc, fr := e.faultCall(u, call)
		if !fr {
			continue
		}
		csig, _ := e.p.Info.TypeOf(call.Fun).(*types.Signature)
		if csig == nil {
			continue
		}
		// Locate the LHS expression receiving the error.
		var target ast.Expr
		if len(as.Rhs) == 1 && csig.Results().Len() > 1 {
			idx := errorResultIndex(csig)
			if idx >= 0 && idx < len(as.Lhs) {
				target = as.Lhs[idx]
			}
		} else if csig.Results().Len() == 1 && errorResultIndex(csig) == 0 && i < len(as.Lhs) {
			target = as.Lhs[i]
		}
		if target == nil {
			continue
		}
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok {
			continue // field/index stores escape; someone else may read them
		}
		if id.Name == "_" {
			flag(call.Pos(), "%s error discarded via _; check it, return it, or allow with justification", desc)
			continue
		}
		obj := e.p.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if _, isVar := obj.(*types.Var); !isVar {
			continue
		}
		if !consumed(obj, call.End(), loop) {
			flag(call.Pos(), "%s error assigned to "+id.Name+" but never read (shadowed or forgotten)", desc)
		}
	}
}
