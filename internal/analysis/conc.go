package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// This file implements the concurrency effect engine shared by the
// lockorder, lockbalance, goleak and atomicmix analyzers. It is a second
// effect domain over the effectEngine framework (effects.go), alongside
// taint: where taint summaries describe data flowing through a function,
// lock summaries describe the function's net effect on the lock state —
// which locks it acquires, releases, or requires held at entry.
//
// The engine runs four phases per package:
//
//  1. Summary fixpoint: every function unit is walked path-sensitively,
//     computing its net lock effect (Lock minus Unlock per class, as
//     seen by a caller) and the set of lock classes it transitively
//     acquires. Summaries only grow/stabilize, so recursion terminates.
//  2. Call-context inference: an unexported function called only while a
//     lock is held inherits that lock as an entry assumption — this is
//     how "caller must hold w.mu" helpers (barrierLocked, kick) are
//     analyzed without annotations. ctx(f) is the intersection over all
//     plain local call sites of (locks held at the site ∪ ctx(caller));
//     go-statement spawn sites, exported functions and function values
//     contribute the empty set. The fixpoint is decreasing from ⊤.
//  3. Report walk: every unit is re-walked with its inferred context as
//     the entry lock state, collecting lockbalance findings (unbalanced
//     paths, double lock/unlock, loop inconsistencies), lock-acquisition
//     edges (lockorder), goroutine spawn sites (goleak) and classified
//     field accesses (atomicmix).
//  4. The four analyzers render their views of the shared result.
//
// Precision choices, deliberately traded for signal on the real tree:
//
//   - Lock classes for struct fields are keyed by the *static type* of
//     the owner ("pkg.Type.mu"), so two instances of one type alias to
//     one class. Same-class nesting across distinct instances is
//     therefore not reported as a self-deadlock (only identical
//     receiver expressions, or context-implied holds, are).
//   - sync.Cond.Wait is treated as a no-op on the lock state: it
//     releases and re-acquires its locker, which nets to zero.
//   - TryLock/TryRLock acquire conditionally and are ignored.
//   - goto terminates the analyzed path (none in the tree).

// --- lock classes -----------------------------------------------------------

// concClass describes one lock or field "class" — the unit of aliasing.
type concClass struct {
	key   string // unique key ("field:pkg.Type.f", "var:pkg.v", "local:off")
	owner string // "pkg.Type" for fields, "" otherwise
	field string // field name, for messages
}

// display renders a class for findings: "Type.f" for fields, the
// variable name otherwise.
func (c concClass) display() string {
	switch {
	case c.owner != "":
		if i := strings.LastIndexByte(c.owner, '.'); i >= 0 {
			return c.owner[i+1:] + "." + c.field
		}
		return c.owner + "." + c.field
	default:
		return c.field
	}
}

// rlockSuffix marks the read-mode held count of an RWMutex class.
const rlockSuffix = "#r"

func baseKey(modeKey string) string {
	return strings.TrimSuffix(modeKey, rlockSuffix)
}

// --- engine state -----------------------------------------------------------

// lockSummary is the bottom-up concurrency summary of one function unit.
type lockSummary struct {
	// net maps a mode key to the lock-count delta a caller observes
	// across a call (0 for balanced functions, +1 for lock-transfer
	// helpers, -1 for unlock helpers). Set from the first-converged
	// exit; exit disagreements are lockbalance findings, not summary
	// state.
	net map[string]int
	// acquired is the set of base class keys this unit locks itself or
	// via plain local calls (spawned goroutines excluded: their
	// acquisitions happen on another thread and impose no ordering on
	// this one).
	acquired map[string]bool
	// loopRisk marks a body that can run forever: a for-statement with
	// no condition, or a range over a channel, here or in a plain local
	// callee. goleak only audits spawns of loopRisk units.
	loopRisk bool
	// waits marks a body containing a sync.WaitGroup Wait call — a
	// joining spawner owns its goroutines' lifetimes.
	waits bool
	// usesDone marks a body (transitively) selecting on a
	// context.Context.Done channel.
	usesDone bool
}

func newLockSummary() *lockSummary {
	return &lockSummary{net: make(map[string]int), acquired: make(map[string]bool)}
}

// callSite records one plain local call for context inference.
type callSite struct {
	caller *funcUnit
	callee *funcUnit
	held   map[string]bool // base class keys held at the site
}

// spawnSite records one go statement for goleak.
type spawnSite struct {
	unit   *funcUnit // spawning unit
	target *funcUnit // spawned local unit (nil if cross-package: skipped)
	pos    token.Pos
}

// fieldAccess is one syntactic access of a struct field of a type
// declared in this package, classified for atomicmix.
type fieldAccess struct {
	class   concClass
	pos     token.Pos
	write   bool
	held    map[string]bool // base class keys held at the access
	inCtor  bool            // inside a function returning the owner type
	viaAddr bool            // &x.f escaping to a non-atomic callee
}

// concEngine is the per-package concurrency analysis state.
type concEngine struct {
	p       *Package
	eng     *effectEngine
	sums    map[*funcUnit]*lockSummary
	ctxs    map[*funcUnit]map[string]bool // inferred entry-held base classes
	sites   []callSite
	classes map[string]concClass // key -> class metadata

	// report-walk outputs
	balance   []Finding
	edges     map[[2]string]token.Pos // held-before-acquired pairs of base keys
	spawns    []spawnSite
	accesses  []fieldAccess
	atomicOps map[string][]token.Pos // field class key -> atomic.* call sites
	closes    map[string]bool        // classes of channels passed to close()
	guards    map[string]bool        // classes that are mutex-typed fields
	recvs     map[*funcUnit]map[string]bool // channel classes a unit receives from
}

// concCache memoizes one engine run per package so the four analyzers
// share it; sharoes-vet analyzes packages concurrently after parallel
// loading, hence the lock.
var (
	concCacheMu sync.Mutex
	concCache   = map[*Package]*concEngine{}
)

func concFor(p *Package) *concEngine {
	concCacheMu.Lock()
	defer concCacheMu.Unlock()
	if e, ok := concCache[p]; ok {
		return e
	}
	e := &concEngine{
		p:         p,
		eng:       newEffectEngine(p),
		sums:      make(map[*funcUnit]*lockSummary),
		ctxs:      make(map[*funcUnit]map[string]bool),
		classes:   make(map[string]concClass),
		edges:     make(map[[2]string]token.Pos),
		atomicOps: make(map[string][]token.Pos),
		closes:    make(map[string]bool),
		guards:    make(map[string]bool),
		recvs:     make(map[*funcUnit]map[string]bool),
	}
	e.run()
	concCache[p] = e
	return e
}

func (e *concEngine) run() {
	for _, u := range e.eng.units {
		e.sums[u] = newLockSummary()
	}
	// Phase 1: summary fixpoint (entry state empty, no reporting).
	e.eng.fixpoint(func(u *funcUnit) bool {
		w := &concWalker{e: e, u: u}
		w.walkUnit(nil)
		return e.mergeSummary(u, w)
	})
	// Phase 2: record call sites with local holds, then infer contexts.
	for _, u := range e.eng.units {
		w := &concWalker{e: e, u: u, record: true}
		w.walkUnit(nil)
	}
	e.inferContexts()
	// Phase 3: report walk with inferred contexts as entry state.
	for _, u := range e.eng.units {
		w := &concWalker{e: e, u: u, report: true}
		w.walkUnit(e.ctxs[u])
		e.balance = append(e.balance, w.findings...)
	}
}

// mergeSummary folds one walk into u's summary; reports growth.
func (e *concEngine) mergeSummary(u *funcUnit, w *concWalker) bool {
	sum := e.sums[u]
	changed := false
	net := w.exitNet()
	for k, d := range net {
		if sum.net[k] != d {
			sum.net[k] = d
			changed = true
		}
	}
	for k := range w.acquired {
		if !sum.acquired[k] {
			sum.acquired[k] = true
			changed = true
		}
	}
	if w.loopRisk && !sum.loopRisk {
		sum.loopRisk = true
		changed = true
	}
	if w.waits && !sum.waits {
		sum.waits = true
		changed = true
	}
	if w.usesDone && !sum.usesDone {
		sum.usesDone = true
		changed = true
	}
	return changed
}

// inferContexts runs the decreasing context fixpoint over the recorded
// call sites. ⊤ is represented by absence from e.ctxs with eligible[u]
// still true.
func (e *concEngine) inferContexts() {
	eligible := make(map[*funcUnit]bool)
	sitesOf := make(map[*funcUnit][]callSite)
	for _, s := range e.sites {
		sitesOf[s.callee] = append(sitesOf[s.callee], s)
	}
	valueRef := e.valueReferenced()
	for _, u := range e.eng.units {
		switch {
		case u.decl != nil && u.obj != nil && u.obj.Exported():
			// Callable from outside the package: no entry assumption.
		case valueRef[u]:
			// Used as a function value (stored, passed to AfterFunc,
			// spawned): runs with no caller-held locks assumed.
		case len(sitesOf[u]) == 0:
			// Never locally called: nothing to infer from.
		default:
			eligible[u] = true
		}
	}
	for u := range e.ctxs {
		delete(e.ctxs, u)
	}
	for round := 0; round < maxEffectRounds; round++ {
		changed := false
		for u := range eligible {
			var inter map[string]bool
			top := true
			for _, s := range sitesOf[u] {
				contrib := make(map[string]bool)
				for k := range s.held {
					contrib[k] = true
				}
				if eligible[s.caller] {
					if cctx, ok := e.ctxs[s.caller]; ok {
						for k := range cctx {
							contrib[k] = true
						}
					} else {
						// Caller still at ⊤: this site constrains
						// nothing yet.
						continue
					}
				}
				if top {
					inter, top = contrib, false
					continue
				}
				for k := range inter {
					if !contrib[k] {
						delete(inter, k)
					}
				}
			}
			if top {
				continue // all sites unresolved this round
			}
			old, had := e.ctxs[u]
			if !had || len(old) != len(inter) {
				e.ctxs[u] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !old[k] {
					e.ctxs[u] = inter
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// Anything still at ⊤ after bounded rounds (mutual recursion among
	// helpers with no resolved entry) gets no assumption.
	for u := range eligible {
		if _, ok := e.ctxs[u]; !ok {
			e.ctxs[u] = nil
		}
	}
}

// valueReferenced finds declared functions and literals used as values
// rather than called: stored, returned, passed as arguments (other than
// being the operand of a call, go or defer statement).
func (e *concEngine) valueReferenced() map[*funcUnit]bool {
	out := make(map[*funcUnit]bool)
	calledFuns := make(map[ast.Expr]bool)
	for _, file := range e.p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				calledFuns[ast.Unparen(call.Fun)] = true
			}
			return true
		})
	}
	for _, file := range e.p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if calledFuns[x] {
					return true
				}
				if fn, ok := e.p.Info.Uses[x].(*types.Func); ok {
					if u := e.eng.byObj[fn]; u != nil {
						out[u] = true
					}
				}
			case *ast.SelectorExpr:
				if calledFuns[x] {
					return false // method call; receiver still walked via x.X
				}
				if fn, ok := e.p.Info.Uses[x.Sel].(*types.Func); ok {
					if u := e.eng.byObj[fn]; u != nil {
						out[u] = true // method value
					}
				}
			case *ast.FuncLit:
				if calledFuns[x] {
					return true
				}
				// Spawned or deferred directly? Those are direct
				// invocations, found via the enclosing statement.
				if u := e.eng.byLit[x]; u != nil {
					out[u] = true
				}
			}
			return true
		})
	}
	// Un-mark literals whose only non-call use is `go lit()` / `defer
	// lit()`: the CallExpr check above already covers them (the literal
	// IS the call operand), so nothing to do — go/defer operands were in
	// calledFuns.
	return out
}

// --- class resolution -------------------------------------------------------

// classOf resolves an expression to its lock/field class. Returns the
// zero class (key "") when no stable class exists.
func (e *concEngine) classOf(expr ast.Expr) concClass {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if sel := e.p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				recv := sel.Recv()
				for {
					if ptr, ok := recv.Underlying().(*types.Pointer); ok {
						recv = ptr.Elem()
						continue
					}
					break
				}
				named, ok := recv.(*types.Named)
				if !ok {
					return concClass{}
				}
				obj := named.Obj()
				pkg := ""
				if obj.Pkg() != nil {
					pkg = obj.Pkg().Path()
				}
				owner := pkg + "." + obj.Name()
				field := sel.Obj().Name()
				return e.intern(concClass{
					key:   "field:" + owner + "." + field,
					owner: owner,
					field: field,
				})
			}
			// Package-qualified variable (pkg.Var) or method expr.
			if v, ok := e.p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
				return e.intern(concClass{
					key:   "var:" + v.Pkg().Path() + "." + v.Name(),
					field: v.Name(),
				})
			}
			return concClass{}
		case *ast.Ident:
			v, ok := e.p.Info.Uses[x].(*types.Var)
			if !ok {
				v, ok = e.p.Info.Defs[x].(*types.Var)
			}
			if !ok || v == nil {
				return concClass{}
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return e.intern(concClass{
					key:   "var:" + v.Pkg().Path() + "." + v.Name(),
					field: v.Name(),
				})
			}
			return e.intern(concClass{
				key:   fmt.Sprintf("local:%s@%d", v.Name(), v.Pos()),
				field: v.Name(),
			})
		case *ast.StarExpr:
			expr = x.X
		case *ast.UnaryExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X // elements of one container alias one class
		case *ast.SliceExpr:
			expr = x.X
		default:
			return concClass{}
		}
	}
}

func (e *concEngine) intern(c concClass) concClass {
	if c.key != "" {
		e.classes[c.key] = c
	}
	return c
}

// --- type predicates --------------------------------------------------------

// syncNamed reports whether t (after pointer deref) is the named sync
// type name (e.g. "Mutex").
func syncNamed(t types.Type, names ...string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// pkgOfType returns the defining package path of t's core named type.
func pkgOfType(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// containsSyncPrimitive reports whether t directly (not behind a
// pointer) contains a sync.Mutex, RWMutex, WaitGroup, Cond or Once —
// the types whose values must never be copied once used.
func containsSyncPrimitive(t types.Type) bool {
	return containsSyncPrim(t, make(map[types.Type]bool))
}

func containsSyncPrim(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return false // a pointer to a lock is how locks should travel
	}
	if syncNamed(t, "Mutex", "RWMutex", "WaitGroup", "Cond", "Once") {
		return true
	}
	switch u := t.(type) {
	case *types.Named:
		return containsSyncPrim(u.Underlying(), seen)
	case *types.Alias:
		return containsSyncPrim(types.Unalias(u), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrim(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncPrim(u.Elem(), seen)
	}
	return false
}

// concExemptFieldType reports field types atomicmix never tracks:
// sync/atomic typed values are atomic by construction, sync primitives
// synchronize themselves, channels synchronize their users.
func concExemptFieldType(t types.Type) bool {
	if pkgOfType(t) == "sync/atomic" || pkgOfType(t) == "sync" {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if _, ok := t.Underlying().(*types.Signature); ok {
		return true
	}
	return false
}
