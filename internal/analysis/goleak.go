package analysis

import (
	"go/types"
	"strings"
)

// GoLeak reports goroutines that can run forever with no reachable way
// to stop them. A spawn is audited when its target (transitively, via
// plain local calls) contains a loop that can run unbounded — a
// condition-less for statement or a range over a channel. The spawn is
// exempt when any shutdown edge exists:
//
//   - the spawner joins its goroutines with sync.WaitGroup.Wait;
//   - the goroutine (transitively) selects on a context.Context.Done
//     channel;
//   - the goroutine receives from or ranges over a channel class that
//     some function in the package closes — the close is the stop
//     signal;
//   - the owning type (the spawned method's receiver, the spawning
//     method's receiver, or a named type the spawning constructor
//     returns) has a Close, Stop or Shutdown method — lifecycle is the
//     owner's contract;
//   - the spawn happens in package main's main entrypoint (process
//     lifetime) or in a test file.
type GoLeak struct{}

// Name implements Analyzer.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Analyzer.
func (GoLeak) Doc() string {
	return "report goroutines with unbounded loops and no reachable shutdown edge"
}

// Check implements Analyzer.
func (GoLeak) Check(p *Package) []Finding {
	e := concFor(p)

	// Plain-local-call adjacency, for the transitive receive set.
	callees := make(map[*funcUnit][]*funcUnit)
	for _, s := range e.sites {
		callees[s.caller] = append(callees[s.caller], s.callee)
	}
	transRecvs := func(start *funcUnit) map[string]bool {
		out := make(map[string]bool)
		seen := map[*funcUnit]bool{start: true}
		stack := []*funcUnit{start}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for k := range e.recvs[u] {
				out[k] = true
			}
			for _, c := range callees[u] {
				if !seen[c] {
					seen[c] = true
					stack = append(stack, c)
				}
			}
		}
		return out
	}

	var out []Finding
	for _, sp := range e.spawns {
		if sp.target == nil {
			continue // cross-package body: out of scope
		}
		sum := e.sums[sp.target]
		if sum == nil || !sum.loopRisk {
			continue
		}
		pos := p.Fset.Position(sp.pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if isMainEntry(p, sp.unit) {
			continue
		}
		if ssum := e.sums[sp.unit]; ssum != nil && ssum.waits {
			continue
		}
		if sum.usesDone {
			continue
		}
		closable := false
		for k := range transRecvs(sp.target) {
			if e.closes[k] {
				closable = true
				break
			}
		}
		if closable {
			continue
		}
		if ownerHasStopper(p, sp) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "goleak",
			Pos:      pos,
			Message: "goroutine " + sp.target.name + " loops forever with no reachable shutdown edge " +
				"(no owner Close/Stop, context cancel, channel close, or WaitGroup join)",
		})
	}
	return sortFindings(out)
}

// isMainEntry reports a spawn from (inside) func main in package main.
func isMainEntry(p *Package, u *funcUnit) bool {
	if p.Types == nil || p.Types.Name() != "main" {
		return false
	}
	for u.enclosing != nil {
		u = u.enclosing
	}
	return u.obj != nil && u.obj.Name() == "main" && u.obj.Type().(*types.Signature).Recv() == nil
}

// ownerHasStopper checks whether any named type that plausibly owns the
// spawned goroutine carries a lifecycle method.
func ownerHasStopper(p *Package, sp spawnSite) bool {
	var owners []types.Type
	addRecv := func(u *funcUnit) {
		for u != nil {
			if u.obj != nil {
				if sig, ok := u.obj.Type().(*types.Signature); ok {
					if sig.Recv() != nil {
						owners = append(owners, sig.Recv().Type())
					}
					// A constructor's named result types own what the
					// constructor starts.
					if res := sig.Results(); res != nil {
						for i := 0; i < res.Len(); i++ {
							owners = append(owners, res.At(i).Type())
						}
					}
				}
			}
			u = u.enclosing
		}
	}
	addRecv(sp.target)
	addRecv(sp.unit)
	for _, t := range owners {
		if hasStopMethod(t) {
			return true
		}
	}
	return false
}

// hasStopMethod reports a Close, Stop or Shutdown method in t's pointer
// method set.
func hasStopMethod(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.(*types.Named); !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Close", "Stop", "Shutdown":
			return true
		}
	}
	return false
}
