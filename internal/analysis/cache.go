package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file is the incremental-run machinery: a per-package summary
// cache keyed by the content of the package, its module-internal
// dependency closure, and the analyzer-suite version. A warm run over an
// unchanged tree does no parsing and no type-checking — it hashes files
// and replays stored findings, which is what keeps sharoes-vet cheap
// enough to run on every commit as the tree grows.

// SuiteVersion salts every cache key. Bump it whenever an analyzer's
// semantics change, so stale summaries can never mask a new rule.
const SuiteVersion = "sharoes-vet-suite-v7"

// PackageKeys computes the cache key for every requested package
// directory: a content hash over the suite version, the extra salt (the
// selected analyzer names), the package's import path and file contents,
// and — transitively — the keys of its module-internal imports, since
// analyzers consult dependency type information. Returned map is keyed
// by the absolute package directory.
func (l *Loader) PackageKeys(dirs []string, salt string) (map[string]string, error) {
	nodes, err := l.discover(dirs)
	if err != nil {
		return nil, err
	}
	memo := make(map[string]string, len(nodes))
	onStack := make(map[string]bool)
	var keyOf func(path string) (string, error)
	keyOf = func(path string) (string, error) {
		if k, ok := memo[path]; ok {
			return k, nil
		}
		if onStack[path] {
			return "", fmt.Errorf("analysis: import cycle through %s", path)
		}
		onStack[path] = true
		defer delete(onStack, path)
		n := nodes[path]
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", SuiteVersion, salt, path)
		names, err := goFileNames(n.dir)
		if err != nil {
			return "", fmt.Errorf("analysis: %s: %w", path, err)
		}
		for _, name := range names {
			b, err := os.ReadFile(filepath.Join(n.dir, name))
			if err != nil {
				return "", fmt.Errorf("analysis: %s: %w", path, err)
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(b))
			h.Write(b)
		}
		deps := append([]string(nil), n.deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, known := nodes[d]; !known {
				continue
			}
			dk, err := keyOf(d)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "dep\x00%s\x00%s\x00", d, dk)
		}
		k := hex.EncodeToString(h.Sum(nil))
		memo[path] = k
		return k, nil
	}
	out := make(map[string]string, len(dirs))
	for _, dir := range dirs {
		path, abs, err := l.dirToPath(dir)
		if err != nil {
			return nil, err
		}
		k, err := keyOf(path)
		if err != nil {
			return nil, err
		}
		out[abs] = k
	}
	return out, nil
}

// CacheEntry is one package's stored analysis result. Findings are in
// portable (module-root-relative) form so a cache restored on another
// machine replays cleanly.
type CacheEntry struct {
	Key      string          `json:"key"`
	Path     string          `json:"path"` // import path, for humans
	Findings []ReportFinding `json:"findings"`
	Allows   map[string]int  `json:"allows"`
}

// SummaryCache is the on-disk store, one JSON file per key.
type SummaryCache struct {
	dir string
}

// OpenSummaryCache creates (if needed) and opens a cache directory.
func OpenSummaryCache(dir string) (*SummaryCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: open cache: %w", err)
	}
	return &SummaryCache{dir: dir}, nil
}

// Dir returns the cache directory, so callers can report or prune it.
func (c *SummaryCache) Dir() string { return c.dir }

// Get returns the entry stored under key, if present and well-formed.
// Corrupt or mismatched entries are treated as misses, never as errors:
// the cache is always safe to blow away.
func (c *SummaryCache) Get(key string) (*CacheEntry, bool) {
	b, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	var e CacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		return nil, false
	}
	if e.Allows == nil {
		e.Allows = make(map[string]int)
	}
	return &e, true
}

// Put stores an entry atomically (write + rename), so a crashed run
// never leaves a torn file behind.
func (c *SummaryCache) Put(e *CacheEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	dst := c.entryPath(e.Key)
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("analysis: write cache entry: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("analysis: commit cache entry: %w", err)
	}
	return nil
}

func (c *SummaryCache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}
