package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeMod lays out a throwaway two-package module and returns its
// root. pkg a imports pkg b, so a's cache key must depend on b's bytes.
func writeMod(t *testing.T, bBody string) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"example.com/tmp/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go": bBody,
	}
	for name, body := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const bV1 = "package b\n\nfunc B() int { return 1 }\n"
const bV2 = "package b\n\nfunc B() int { return 2 }\n"

func modKeys(t *testing.T, root, salt string) map[string]string {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	keys, err := l.PackageKeys([]string{filepath.Join(root, "a"), filepath.Join(root, "b")}, salt)
	if err != nil {
		t.Fatalf("PackageKeys: %v", err)
	}
	return keys
}

// TestPackageKeysStable pins that keys are a pure function of file
// bytes and salt: same tree, same keys.
func TestPackageKeysStable(t *testing.T) {
	root := writeMod(t, bV1)
	k1 := modKeys(t, root, "errdrop")
	k2 := modKeys(t, root, "errdrop")
	if len(k1) != 2 {
		t.Fatalf("got %d keys, want 2: %v", len(k1), k1)
	}
	for dir, key := range k1 {
		if k2[dir] != key {
			t.Errorf("%s: key changed across identical runs: %s vs %s", dir, key, k2[dir])
		}
	}
}

// TestPackageKeysDepInvalidation pins the transitive property: editing
// b changes b's key AND a's key, because a imports b.
func TestPackageKeysDepInvalidation(t *testing.T) {
	root := writeMod(t, bV1)
	before := modKeys(t, root, "errdrop")
	if err := os.WriteFile(filepath.Join(root, "b", "b.go"), []byte(bV2), 0o644); err != nil {
		t.Fatal(err)
	}
	after := modKeys(t, root, "errdrop")
	aDir, bDir := filepath.Join(root, "a"), filepath.Join(root, "b")
	if before[bDir] == after[bDir] {
		t.Errorf("b: key unchanged after edit")
	}
	if before[aDir] == after[aDir] {
		t.Errorf("a: key unchanged after editing its dependency b")
	}
}

// TestPackageKeysSalt pins that the analyzer selection is part of the
// key, so switching -run invalidates cached summaries.
func TestPackageKeysSalt(t *testing.T) {
	root := writeMod(t, bV1)
	k1 := modKeys(t, root, "errdrop")
	k2 := modKeys(t, root, "errdrop,resleak")
	for dir := range k1 {
		if k1[dir] == k2[dir] {
			t.Errorf("%s: key identical across different salts", dir)
		}
	}
}

// TestSummaryCacheRoundTrip pins Get/Put semantics: a stored entry
// comes back intact, a different key misses, and a corrupt file is a
// miss rather than an error.
func TestSummaryCacheRoundTrip(t *testing.T) {
	c, err := OpenSummaryCache(filepath.Join(t.TempDir(), "vc"))
	if err != nil {
		t.Fatalf("OpenSummaryCache: %v", err)
	}
	ent := CacheEntry{
		Key:  "abc123",
		Path: "github.com/sharoes/sharoes/internal/wire",
		Findings: []ReportFinding{
			{Analyzer: "errdrop", File: "internal/wire/wire.go", Line: 7, Col: 2, Message: "m"},
		},
		Allows: map[string]int{"errdrop": 1},
	}
	if err := c.Put(&ent); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get("abc123")
	if !ok {
		t.Fatal("Get: miss after Put")
	}
	if got.Path != ent.Path || len(got.Findings) != 1 || got.Findings[0] != ent.Findings[0] || got.Allows["errdrop"] != 1 {
		t.Fatalf("Get: round-trip mismatch: %+v", got)
	}
	if _, ok := c.Get("other"); ok {
		t.Fatal("Get: hit on a key that was never stored")
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "bad1.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bad1"); ok {
		t.Fatal("Get: corrupt entry should miss, not hit")
	}
}
