package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap reports error construction that destroys errors.Is identity.
// The retry and fault-injection machinery (netsim's FaultWriteErr, the
// WriteBehind sticky error, ssp's sentinel errors) matches failures with
// errors.Is; an error rebuilt with fmt.Errorf("...: %v", err) or
// errors.New(err.Error()) silently breaks every such match across the
// package boundary it crosses. Wrap with %w, or return the sentinel
// as-is.
type ErrWrap struct{}

func (ErrWrap) Name() string { return "errwrap" }
func (ErrWrap) Doc() string {
	return "errors must be wrapped with %w (not %v/%s or .Error()) so errors.Is identity survives the package boundary"
}

func (ErrWrap) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				out = append(out, checkErrorf(p, call)...)
				out = append(out, checkErrorCalls(p, call)...)
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				out = append(out, checkErrorCalls(p, call)...)
			}
			return true
		})
	}
	return sortFindings(out)
}

// checkErrorf matches format verbs against error-typed operands: an
// error bound to %v, %s or %q (anything but %w) loses its identity.
func checkErrorf(p *Package, call *ast.CallExpr) []Finding {
	if len(call.Args) < 2 {
		return nil
	}
	format, ok := constStringValue(p.Info, call.Args[0])
	if !ok {
		return nil
	}
	verbs := formatVerbs(format)
	var out []Finding
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		switch verb {
		case 'w', '*', 'T', 'p', 0:
			continue // %w is correct; width/type/pointer verbs are deliberate
		}
		arg := call.Args[argIdx]
		if !isErrorish(p.Info.TypeOf(arg)) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "errwrap",
			Pos:      p.Fset.Position(arg.Pos()),
			Message: "error formatted with %" + string(verb) +
				" loses errors.Is identity; wrap with %w or return the sentinel as-is",
		})
	}
	return out
}

// checkErrorCalls flags err.Error() feeding an error constructor: the
// resulting error is a plain string with no chain.
func checkErrorCalls(p *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Error" || len(inner.Args) != 0 {
				return true
			}
			if !isErrorish(p.Info.TypeOf(sel.X)) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "errwrap",
				Pos:      p.Fset.Position(inner.Pos()),
				Message:  "err.Error() inside an error constructor flattens the chain; wrap the error with %w instead",
			})
			return true
		})
	}
	return out
}

// isErrorish reports whether t is the error interface or implements it
// (directly or through a pointer receiver).
func isErrorish(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	iface, _ := errorType.Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// constStringValue evaluates expr as a constant string.
func constStringValue(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns one rune per operand the format string consumes,
// in order: the verb character, or '*' for a dynamic width/precision
// operand. Formats using explicit argument indexes (%[1]v) are not
// modeled; they return nil so nothing is flagged.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		for i < len(format) {
			c := format[i]
			if strings.IndexByte("+-# 0.", c) >= 0 || (c >= '0' && c <= '9') {
				i++
				continue
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '[' {
				return nil // explicit argument index: positions unmodeled
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs
}
