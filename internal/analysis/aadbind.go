package analysis

import (
	"go/ast"
	"go/types"
)

// AADBind flags SymKey.Seal / SymKey.Open calls whose AAD argument is nil
// or an empty literal. AES-GCM without additional authenticated data lets
// a malicious SSP satisfy a request for one object with any other validly
// sealed blob under the same key (a swap attack); every Seal/Open must
// bind the blob to its logical location.
type AADBind struct{}

// Name implements Analyzer.
func (AADBind) Name() string { return "aadbind" }

// Doc implements Analyzer.
func (AADBind) Doc() string {
	return "every SymKey.Seal/Open must bind a non-empty AAD to its object context"
}

// Check implements Analyzer.
func (a AADBind) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Seal" && sel.Sel.Name != "Open") {
				return true
			}
			selection := p.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if !isKeyNamed(recv, "SymKey") || len(call.Args) != 2 {
				return true
			}
			if emptyAAD(p.Info, call.Args[1]) {
				out = append(out, Finding{
					Analyzer: a.Name(),
					Pos:      p.Fset.Position(call.Args[1].Pos()),
					Message:  "SymKey." + sel.Sel.Name + " with nil/empty AAD: bind the object context (inode, variant, generation)",
				})
			}
			return true
		})
	}
	return out
}

// isKeyNamed reports whether t is the sharocrypto type with the given name.
func isKeyNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	return ok && isKeyType(t) && n.Obj().Name() == name
}

// emptyAAD recognizes the statically-empty AAD forms: nil, []byte{},
// []byte("") and empty-string constants.
func emptyAAD(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok {
		if tv.IsNil() {
			return true
		}
		if tv.Value != nil && tv.Value.String() == `""` {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		// []byte{} — any empty composite literal passed as AAD.
		return len(x.Elts) == 0
	case *ast.CallExpr:
		// []byte("") — a conversion of an empty operand.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return emptyAAD(info, x.Args[0])
		}
	}
	return false
}
