package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ResLeak reports acquired resources that can miss their release on some
// path. A leaked pipelined ssp.Client wedges its writer goroutine, an
// unclosed WriteBehind strands queued writes, a forgotten listener holds
// its port, and an unended trace span corrupts the span tree — and all
// of these hide on the early-error-return paths that tests rarely walk.
//
// An obligation is created when a call whose name starts with New, Open,
// Dial, Listen, Accept or Start returns a value whose type carries a
// release method (Close, Stop, Shutdown or End in the pointer method
// set) and is defined in this module (or package net). The obligation is
// discharged when the value is released on the path (directly or via
// defer), or when ownership demonstrably transfers: the value is
// returned, stored into a field, map, slice or global, passed to another
// call, captured by a function literal, sent on a channel, or handed to
// a goroutine — the goleak ownership rule: whoever can reach the value
// can stop it. Paths on which the paired error is non-nil (or the value
// itself is nil) carry no obligation.
type ResLeak struct{}

func (ResLeak) Name() string { return "resleak" }
func (ResLeak) Doc() string {
	return "values with Close/Stop/Shutdown/End obligations must reach their release on every path, early error returns included"
}

// rlAcqPrefixes are the constructor-name prefixes that create an
// obligation when the result type carries a release method. Acquire and
// ReadFrame cover the wire buffer arena: AcquireBuf/ReadFrameBuf hand
// out pool-backed refcounted frames whose missed Release silently
// degrades the arena back to per-frame heap allocation.
var rlAcqPrefixes = []string{"New", "Open", "Dial", "Listen", "Accept", "Start", "Acquire", "ReadFrame"}

// rlReleaseNames discharge an obligation when called on the value.
// Release is the refcount drop of pooled wire buffers.
var rlReleaseNames = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true, "End": true, "Release": true,
}

// rlObl is one outstanding release obligation, keyed by the local
// variable holding the resource. Immutable after creation; path state
// tracks liveness by map membership.
type rlObl struct {
	obj    *types.Var   // the variable bound at the acquisition
	typ    string       // display type, e.g. "ssp.Client"
	pos    token.Pos    // acquisition site
	errObj types.Object // the paired error variable, if any
}

// rlState is one path's outstanding obligations.
type rlState struct {
	live map[*types.Var]*rlObl
}

func newRlState() *rlState { return &rlState{live: make(map[*types.Var]*rlObl)} }

func (st *rlState) clone() *rlState {
	c := newRlState()
	for k, v := range st.live {
		c.live[k] = v
	}
	return c
}

// rlMerge joins two path states: an obligation outstanding on either
// path is outstanding after the join.
func rlMerge(a, b *rlState) *rlState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b.live {
		a.live[k] = v
	}
	return a
}

// rlFrame is one enclosing breakable construct.
type rlFrame struct {
	label  string
	isLoop bool // continue targets loops only
	outs   []*rlState
}

// rlWalker walks one function unit.
type rlWalker struct {
	p        *Package
	eng      *effectEngine
	modRoot  string
	unit     *funcUnit
	results  map[types.Object]bool // named result vars (bare return transfers them)
	frames   []*rlFrame
	reported map[*rlObl]bool
	out      *[]Finding
}

func (ResLeak) Check(p *Package) []Finding {
	if p.Info == nil || p.Types == nil {
		return nil
	}
	eng := newEffectEngine(p)
	modRoot := moduleRootOf(p.Path)
	var out []Finding
	for _, u := range eng.units {
		w := &rlWalker{
			p: p, eng: eng, modRoot: modRoot, unit: u,
			results:  namedResults(p, u),
			reported: make(map[*rlObl]bool),
			out:      &out,
		}
		st := w.walkStmts(newRlState(), u.body.List)
		if st != nil {
			w.exit(st, u.body.Rbrace)
		}
	}
	return sortFindings(out)
}

// namedResults collects the unit's named result variables.
func namedResults(p *Package, u *funcUnit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	var ft *ast.FuncType
	if u.decl != nil {
		ft = u.decl.Type
	} else if u.lit != nil {
		ft = u.lit.Type
	}
	if ft == nil || ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// acquisition classifies a call as resource-acquiring. valIdx/errIdx are
// result positions; errIdx is -1 for infallible constructors.
func (w *rlWalker) acquisition(call *ast.CallExpr) (typ string, valIdx, errIdx int, ok bool) {
	fn := resolvedCallee(w.p.Info, call)
	if fn == nil {
		return "", 0, 0, false
	}
	name := fn.Name()
	prefixed := false
	for _, p := range rlAcqPrefixes {
		if strings.HasPrefix(name, p) {
			prefixed = true
			break
		}
	}
	if !prefixed {
		return "", 0, 0, false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok {
		return "", 0, 0, false
	}
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return "", 0, 0, false
	}
	errIdx = errorResultIndex(sig)
	for i := 0; i < res.Len(); i++ {
		if i == errIdx {
			continue
		}
		t := res.At(i).Type()
		disp, releasable := w.obligatedType(t)
		if releasable {
			return disp, i, errIdx, true
		}
	}
	return "", 0, 0, false
}

// obligatedType reports whether t carries a release obligation: a named
// type of this module (or package net) with a release method in its
// pointer method set.
func (w *rlWalker) obligatedType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if !strings.HasPrefix(path, w.modRoot) && path != "net" {
		return "", false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		if rlReleaseNames[ms.At(i).Obj().Name()] {
			return pkgBase(path) + "." + obj.Name(), true
		}
	}
	return "", false
}

// transferIn discharges every obligation whose variable appears anywhere
// under node: the value escaped to something that can release it.
func (w *rlWalker) transferIn(st *rlState, node ast.Node) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, isVar := w.p.Info.ObjectOf(id).(*types.Var); isVar {
				delete(st.live, v)
			}
		}
		return true
	})
}

// oblFor resolves an expression to the obligation of the variable it
// names, if any.
func (w *rlWalker) oblFor(st *rlState, e ast.Expr) (*types.Var, *rlObl) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := w.p.Info.ObjectOf(id).(*types.Var)
	if !ok {
		return nil, nil
	}
	return v, st.live[v]
}

// procExpr processes an expression for releases and escapes. Bare reads
// of the handle (comparisons, field access, non-release method
// receivers) keep the obligation; argument positions, captures, address
// taking and composite literals discharge it as ownership transfer.
func (w *rlWalker) procExpr(st *rlState, e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.procExpr(st, x.X)
	case *ast.CallExpr:
		w.procCall(st, x, false)
	case *ast.SelectorExpr:
		w.procExpr(st, x.X)
	case *ast.BinaryExpr:
		w.procExpr(st, x.X)
		w.procExpr(st, x.Y)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			w.transferIn(st, x.X)
		} else {
			w.procExpr(st, x.X)
		}
	case *ast.StarExpr:
		w.procExpr(st, x.X)
	case *ast.IndexExpr:
		w.procExpr(st, x.X)
		w.procExpr(st, x.Index)
	case *ast.SliceExpr:
		w.procExpr(st, x.X)
	case *ast.TypeAssertExpr:
		w.procExpr(st, x.X)
	case *ast.KeyValueExpr:
		w.procExpr(st, x.Value)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			w.transferIn(st, elt)
		}
	case *ast.FuncLit:
		// The literal may release or own the capture; either way the
		// obligation leaves this path (goleak's ownership rule).
		w.transferIn(st, x.Body)
	}
}

// procCall handles one call: release on the receiver, terminators, and
// argument escapes. spawn marks go/defer targets, where the receiver
// itself also transfers.
func (w *rlWalker) procCall(st *rlState, call *ast.CallExpr, spawn bool) {
	fn := resolvedCallee(w.p.Info, call)
	if recv := methodReceiver(w.p.Info, call); recv != nil {
		if v, obl := w.oblFor(st, recv); obl != nil {
			if fn != nil && rlReleaseNames[fn.Name()] {
				delete(st.live, v) // released
			} else if spawn {
				delete(st.live, v) // goroutine/defer owns the receiver now
			}
			// Other method calls read the handle; obligation stays.
		} else {
			w.procExpr(st, recv)
		}
	} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.transferIn(st, lit.Body)
	}
	for _, arg := range call.Args {
		w.transferIn(st, arg)
	}
}

// isTerminatorCall reports calls that end the path (panic, os.Exit,
// log.Fatal).
func (w *rlWalker) isTerminatorCall(call *ast.CallExpr) bool {
	if fn := resolvedCallee(w.p.Info, call); fn != nil {
		return isTerminatorFunc(fn)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := w.p.Info.ObjectOf(id).(*types.Builtin); isB {
			return b.Name() == "panic"
		}
	}
	return false
}

// exit reports every obligation still outstanding when a path leaves the
// function. Findings anchor at the acquisition and are deduplicated per
// obligation, so one leaky value yields one finding however many exits
// miss it.
func (w *rlWalker) exit(st *rlState, at token.Pos) {
	for _, obl := range st.live {
		if w.reported[obl] {
			continue
		}
		w.reported[obl] = true
		*w.out = append(*w.out, Finding{
			Analyzer: "resleak",
			Pos:      w.p.Fset.Position(obl.pos),
			Message: fmt.Sprintf("%s %q is not released on the path leaving at line %d; close it, hand off ownership, or allow with justification",
				obl.typ, obl.obj.Name(), w.p.Fset.Position(at).Line),
		})
	}
}

// applyCond refines st for one branch of cond: error-check and
// nil-check branches cancel the obligations they prove absent.
func (w *rlWalker) applyCond(st *rlState, cond ast.Expr, taken bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.applyCond(st, x.X, !taken)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if taken {
				w.applyCond(st, x.X, true)
				w.applyCond(st, x.Y, true)
			}
		case token.LOR:
			if !taken {
				w.applyCond(st, x.X, false)
				w.applyCond(st, x.Y, false)
			}
		case token.EQL, token.NEQ:
			id, other := ast.Unparen(x.X), ast.Unparen(x.Y)
			if !isNilIdent(w.p.Info, other) {
				id, other = other, id
			}
			if !isNilIdent(w.p.Info, other) {
				return
			}
			ident, ok := id.(*ast.Ident)
			if !ok {
				return
			}
			obj := w.p.Info.ObjectOf(ident)
			if obj == nil {
				return
			}
			isNil := taken == (x.Op == token.EQL) // branch where obj == nil holds
			for v, obl := range st.live {
				if obl.errObj == obj && !isNil {
					delete(st.live, v) // err != nil: acquisition failed
				}
				if types.Object(v) == obj && isNil {
					delete(st.live, v) // the handle itself is nil
				}
			}
		}
	}
}

// isNilIdent reports the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// --- statement walk ---------------------------------------------------------

// walkStmts walks a statement list; nil means no fall-through (every
// path returned, branched away, or terminated).
func (w *rlWalker) walkStmts(st *rlState, list []ast.Stmt) *rlState {
	for _, s := range list {
		st = w.walkStmt(st, s)
		if st == nil {
			return nil
		}
	}
	return st
}

func (w *rlWalker) walkStmt(st *rlState, s ast.Stmt) *rlState {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(st, x)
		return st
	case *ast.DeclStmt:
		w.handleDecl(st, x)
		return st
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && w.isTerminatorCall(call) {
			return nil
		}
		w.procExpr(st, x.X)
		return st
	case *ast.SendStmt:
		w.procExpr(st, x.Chan)
		w.transferIn(st, x.Value)
		return st
	case *ast.IncDecStmt:
		return st
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.transferIn(st, r)
		}
		if len(x.Results) == 0 {
			// Bare return hands named results to the caller.
			for v := range st.live {
				if w.results[v] {
					delete(st.live, v)
				}
			}
		}
		w.exit(st, x.Pos())
		return nil
	case *ast.DeferStmt:
		w.procCall(st, x.Call, true)
		return st
	case *ast.GoStmt:
		w.procCall(st, x.Call, true)
		return st
	case *ast.BranchStmt:
		return w.handleBranch(st, x)
	case *ast.BlockStmt:
		return w.walkStmts(st, x.List)
	case *ast.IfStmt:
		return w.walkIf(st, x)
	case *ast.ForStmt:
		return w.walkFor(st, x)
	case *ast.RangeStmt:
		return w.walkRange(st, x)
	case *ast.SwitchStmt:
		if x.Init != nil {
			if st = w.walkStmt(st, x.Init); st == nil {
				return nil
			}
		}
		w.procExpr(st, x.Tag)
		return w.walkCases(st, x.Body, "", hasDefaultClause(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			if st = w.walkStmt(st, x.Init); st == nil {
				return nil
			}
		}
		return w.walkCases(st, x.Body, "", hasDefaultClause(x.Body))
	case *ast.SelectStmt:
		if len(x.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		return w.walkCases(st, x.Body, "", true)
	case *ast.LabeledStmt:
		return w.walkLabeled(st, x)
	case *ast.EmptyStmt:
		return st
	default:
		return st
	}
}

func (w *rlWalker) walkLabeled(st *rlState, x *ast.LabeledStmt) *rlState {
	switch inner := x.Stmt.(type) {
	case *ast.ForStmt:
		return w.walkForLabeled(st, inner, x.Label.Name)
	case *ast.RangeStmt:
		return w.walkRangeLabeled(st, inner, x.Label.Name)
	default:
		return w.walkStmt(st, x.Stmt)
	}
}

func (w *rlWalker) walkIf(st *rlState, x *ast.IfStmt) *rlState {
	if x.Init != nil {
		if st = w.walkStmt(st, x.Init); st == nil {
			return nil
		}
	}
	w.procExpr(st, x.Cond)
	thenSt := st.clone()
	elseSt := st
	w.applyCond(thenSt, x.Cond, true)
	w.applyCond(elseSt, x.Cond, false)
	thenOut := w.walkStmts(thenSt, x.Body.List)
	var elseOut *rlState
	if x.Else != nil {
		elseOut = w.walkStmt(elseSt, x.Else)
	} else {
		elseOut = elseSt
	}
	return rlMerge(thenOut, elseOut)
}

func (w *rlWalker) walkFor(st *rlState, x *ast.ForStmt) *rlState {
	return w.walkForLabeled(st, x, "")
}

func (w *rlWalker) walkForLabeled(st *rlState, x *ast.ForStmt, label string) *rlState {
	if x.Init != nil {
		if st = w.walkStmt(st, x.Init); st == nil {
			return nil
		}
	}
	if x.Cond != nil {
		w.procExpr(st, x.Cond)
	}
	frame := &rlFrame{label: label, isLoop: true}
	w.frames = append(w.frames, frame)
	bodyOut := w.walkStmts(st.clone(), x.Body.List)
	w.frames = w.frames[:len(w.frames)-1]
	if bodyOut != nil && x.Post != nil {
		bodyOut = w.walkStmt(bodyOut, x.Post)
	}
	var out *rlState
	if x.Cond != nil {
		out = st // zero-iteration path
	}
	out = rlMerge(out, bodyOut)
	for _, b := range frame.outs {
		out = rlMerge(out, b)
	}
	return out
}

func (w *rlWalker) walkRange(st *rlState, x *ast.RangeStmt) *rlState {
	return w.walkRangeLabeled(st, x, "")
}

func (w *rlWalker) walkRangeLabeled(st *rlState, x *ast.RangeStmt, label string) *rlState {
	w.procExpr(st, x.X)
	frame := &rlFrame{label: label, isLoop: true}
	w.frames = append(w.frames, frame)
	bodyOut := w.walkStmts(st.clone(), x.Body.List)
	w.frames = w.frames[:len(w.frames)-1]
	out := rlMerge(st, bodyOut) // ranges may iterate zero times
	for _, b := range frame.outs {
		out = rlMerge(out, b)
	}
	return out
}

// walkCases walks switch/select clause bodies from clones of the entry
// state and merges the exits. withDefault controls whether the entry
// state itself is a possible exit (no matching case).
func (w *rlWalker) walkCases(st *rlState, body *ast.BlockStmt, label string, withDefault bool) *rlState {
	frame := &rlFrame{label: label}
	w.frames = append(w.frames, frame)
	var out *rlState
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.procExpr(st, e)
			}
			stmts = cc.Body
		case *ast.CommClause:
			cst := st.clone()
			if cc.Comm != nil {
				if cst = w.walkStmt(cst, cc.Comm); cst == nil {
					continue
				}
			}
			out = rlMerge(out, w.walkStmts(cst, cc.Body))
			continue
		default:
			continue
		}
		out = rlMerge(out, w.walkStmts(st.clone(), stmts))
	}
	w.frames = w.frames[:len(w.frames)-1]
	if !withDefault {
		out = rlMerge(out, st)
	}
	for _, b := range frame.outs {
		out = rlMerge(out, b)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && len(cc.List) == 0 {
			return true
		}
	}
	return false
}

// handleBranch records break/continue states into the frame they target.
func (w *rlWalker) handleBranch(st *rlState, x *ast.BranchStmt) *rlState {
	label := ""
	if x.Label != nil {
		label = x.Label.Name
	}
	switch x.Tok {
	case token.BREAK:
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if label == "" || f.label == label {
				f.outs = append(f.outs, st)
				return nil
			}
		}
		return nil
	case token.CONTINUE:
		// Continue feeds the next iteration; its obligations reach the
		// loop exit, so record it like a break for the merge.
		for i := len(w.frames) - 1; i >= 0; i-- {
			f := w.frames[i]
			if f.isLoop && (label == "" || f.label == label) {
				f.outs = append(f.outs, st)
				return nil
			}
		}
		return nil
	case token.FALLTHROUGH:
		return st // next case body is walked from the shared entry anyway
	default: // goto: give up on the path, conservatively silent
		return nil
	}
}

// handleAssign processes escapes, releases and acquisitions in one
// assignment.
func (w *rlWalker) handleAssign(st *rlState, as *ast.AssignStmt) {
	// RHS: direct aliasing discharges (the alias may be the one
	// released); everything else is positional via procExpr.
	for _, rhs := range as.Rhs {
		if v, obl := w.oblFor(st, rhs); obl != nil {
			delete(st.live, v)
			continue
		}
		w.procExpr(st, rhs)
	}
	// LHS: a plain ident is the write target (an obligated var being
	// overwritten loses its old obligation); anything structured is an
	// escape of whatever it mentions (map keys, field stores).
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, isVar := w.p.Info.ObjectOf(id).(*types.Var); isVar {
				delete(st.live, v)
			}
			continue
		}
		w.transferIn(st, lhs)
	}
	// Acquisitions bind new obligations to their target vars.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		typ, valIdx, errIdx, ok := w.acquisition(call)
		if !ok {
			continue
		}
		csig, _ := w.p.Info.TypeOf(call.Fun).(*types.Signature)
		if csig == nil {
			continue
		}
		var valExpr, errExpr ast.Expr
		if len(as.Rhs) == 1 && csig.Results().Len() > 1 {
			if valIdx < len(as.Lhs) {
				valExpr = as.Lhs[valIdx]
			}
			if errIdx >= 0 && errIdx < len(as.Lhs) {
				errExpr = as.Lhs[errIdx]
			}
		} else if csig.Results().Len() == 1 && i < len(as.Lhs) {
			valExpr = as.Lhs[i]
		}
		if valExpr == nil {
			continue
		}
		id, ok := ast.Unparen(valExpr).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue // escaped into a structure, or explicitly dropped
		}
		v, isVar := w.p.Info.ObjectOf(id).(*types.Var)
		if !isVar {
			continue
		}
		obl := &rlObl{obj: v, typ: typ, pos: call.Pos()}
		if errExpr != nil {
			if eid, ok := ast.Unparen(errExpr).(*ast.Ident); ok && eid.Name != "_" {
				obl.errObj = w.p.Info.ObjectOf(eid)
			}
		}
		st.live[v] = obl
	}
}

// handleDecl gives `var c = New...()` declarations assignment semantics.
func (w *rlWalker) handleDecl(st *rlState, ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		lhs := make([]ast.Expr, len(vs.Names))
		for i, n := range vs.Names {
			lhs[i] = n
		}
		w.handleAssign(st, &ast.AssignStmt{Lhs: lhs, Tok: token.DEFINE, Rhs: vs.Values})
	}
}
