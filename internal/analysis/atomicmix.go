package analysis

// AtomicMix reports two ways a struct field's synchronization story can
// be inconsistent:
//
//  1. Mixed atomic/plain access: a field touched through sync/atomic
//     package functions anywhere in the package must never also be
//     read or written directly — the plain access races with the
//     atomic ones. (Typed atomics like atomic.Int64 cannot mix and are
//     exempt by construction.)
//  2. Guarded-by violations: when a field's accesses are predominantly
//     made holding one mutex field of the same owner type (at least
//     one guarded write, at least two guarded accesses, more guarded
//     than not), the stragglers that skip the lock are reported.
//
// Accesses inside functions returning the owner type (constructors,
// before the value is shared) are exempt from both checks.
type AtomicMix struct{}

// Name implements Analyzer.
func (AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (AtomicMix) Doc() string {
	return "report fields mixing sync/atomic and plain access, and accesses that skip the field's inferred guard"
}

// Check implements Analyzer.
func (AtomicMix) Check(p *Package) []Finding {
	e := concFor(p)
	var out []Finding

	byClass := make(map[string][]fieldAccess)
	for _, a := range e.accesses {
		byClass[a.class.key] = append(byClass[a.class.key], a)
	}

	// 1. Mixed atomic/plain.
	for key := range e.atomicOps {
		for _, a := range byClass[key] {
			if a.inCtor {
				continue
			}
			verb := "read"
			if a.write {
				verb = "written"
			}
			out = append(out, Finding{
				Analyzer: "atomicmix",
				Pos:      p.Fset.Position(a.pos),
				Message: "field " + a.class.display() + " is accessed with sync/atomic elsewhere but " +
					verb + " directly here (racy mixed access)",
			})
		}
	}

	// 2. Guarded-by inference over the remaining classes.
	for key, accs := range byClass {
		if _, isAtomic := e.atomicOps[key]; isAtomic {
			continue
		}
		owner := accs[0].class.owner
		// Candidate guards: mutex-typed fields of the same owner type.
		bestGuard := ""
		bestGuarded := 0
		for g := range e.guards {
			gc := e.classes[g]
			if gc.owner != owner {
				continue
			}
			guarded, unguarded, guardedWrites := 0, 0, 0
			for _, a := range accs {
				if a.inCtor {
					continue
				}
				if a.held[g] {
					guarded++
					if a.write {
						guardedWrites++
					}
				} else {
					unguarded++
				}
			}
			if guardedWrites >= 1 && guarded >= 2 && guarded > unguarded && guarded > bestGuarded {
				bestGuard, bestGuarded = g, guarded
			}
		}
		if bestGuard == "" {
			continue
		}
		for _, a := range accs {
			if a.inCtor || a.held[bestGuard] {
				continue
			}
			verb := "read"
			if a.write {
				verb = "written"
			}
			out = append(out, Finding{
				Analyzer: "atomicmix",
				Pos:      p.Fset.Position(a.pos),
				Message: "field " + a.class.display() + " is usually accessed holding " +
					e.classes[bestGuard].display() + " but is " + verb + " here without it",
			})
		}
	}
	return sortFindings(out)
}
