package keys

import (
	"errors"
	"os"
	"reflect"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
)

// Key generation is slow (RSA-2048); share fixtures across tests.
var (
	fixtureOnce sync.Once
	alice, bob  *User
	carol       *User
	engineering *Group
)

func fixtures(t testing.TB) {
	t.Helper()
	fixtureOnce.Do(func() {
		var err error
		if alice, err = NewUser("alice"); err != nil {
			t.Fatal(err)
		}
		if bob, err = NewUser("bob"); err != nil {
			t.Fatal(err)
		}
		if carol, err = NewUser("carol"); err != nil {
			t.Fatal(err)
		}
		if engineering, err = NewGroup("engineering"); err != nil {
			t.Fatal(err)
		}
	})
}

func testRegistry(t testing.TB) *Registry {
	fixtures(t)
	reg := NewRegistry()
	reg.AddUser(alice.ID, alice.Public())
	reg.AddUser(bob.ID, bob.Public())
	reg.AddUser(carol.ID, carol.Public())
	reg.AddGroup(engineering.ID, engineering.Priv.Public())
	reg.AddMember(engineering.ID, alice.ID)
	reg.AddMember(engineering.ID, bob.ID)
	return reg
}

func TestRegistryLookups(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.UserKey("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.UserKey("mallory"); !errors.Is(err, types.ErrNoSuchUser) {
		t.Errorf("unknown user: %v", err)
	}
	if _, err := reg.GroupKey("engineering"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.GroupKey("nope"); !errors.Is(err, types.ErrNoSuchUser) {
		t.Errorf("unknown group: %v", err)
	}
}

func TestMembership(t *testing.T) {
	reg := testRegistry(t)
	if !reg.IsMember("engineering", "alice") || !reg.IsMember("engineering", "bob") {
		t.Error("expected members missing")
	}
	if reg.IsMember("engineering", "carol") {
		t.Error("carol should not be a member")
	}
	want := []types.UserID{"alice", "bob"}
	if got := reg.Members("engineering"); !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v", got)
	}
	if got := reg.GroupsOf("alice"); len(got) != 1 || got[0] != "engineering" {
		t.Errorf("GroupsOf = %v", got)
	}
	if got := reg.GroupsOf("carol"); len(got) != 0 {
		t.Errorf("GroupsOf(carol) = %v", got)
	}
	reg.RemoveMember("engineering", "bob")
	if reg.IsMember("engineering", "bob") {
		t.Error("bob still a member after removal")
	}
	if got := reg.Users(); !reflect.DeepEqual(got, []types.UserID{"alice", "bob", "carol"}) {
		t.Errorf("Users = %v", got)
	}
	if got := reg.Groups(); !reflect.DeepEqual(got, []types.GroupID{"engineering"}) {
		t.Errorf("Groups = %v", got)
	}
}

func TestClassOf(t *testing.T) {
	reg := testRegistry(t)
	if c := reg.ClassOf("alice", "alice", "engineering"); c != types.ClassOwner {
		t.Errorf("owner class = %v", c)
	}
	if c := reg.ClassOf("bob", "alice", "engineering"); c != types.ClassGroup {
		t.Errorf("group class = %v", c)
	}
	if c := reg.ClassOf("carol", "alice", "engineering"); c != types.ClassOther {
		t.Errorf("other class = %v", c)
	}
	// Owner wins even when also a group member.
	if c := reg.ClassOf("alice", "alice", "engineering"); c != types.ClassOwner {
		t.Errorf("owner-and-member class = %v", c)
	}
}

func TestGroupKeyDistribution(t *testing.T) {
	reg := testRegistry(t)
	store := ssp.NewMemStore()
	if err := PublishGroupKey(store, reg, engineering); err != nil {
		t.Fatal(err)
	}

	// Alice (a member) can fetch and unwrap the group key in-band.
	got, err := FetchGroupKeys(store, alice)
	if err != nil {
		t.Fatal(err)
	}
	gk, ok := got["engineering"]
	if !ok {
		t.Fatal("alice did not receive the engineering key")
	}
	// The unwrapped key must actually be the group's private key:
	// something sealed to the group public key must open with it.
	sealed, err := engineering.Priv.Public().Seal([]byte("root pointer"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := gk.Open(sealed)
	if err != nil || string(pt) != "root pointer" {
		t.Fatalf("unwrapped key unusable: %v", err)
	}

	// Carol (not a member) gets nothing.
	gotCarol, err := FetchGroupKeys(store, carol)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCarol) != 0 {
		t.Errorf("carol received %d group keys", len(gotCarol))
	}
}

func TestGroupKeyConfidentiality(t *testing.T) {
	reg := testRegistry(t)
	store := ssp.NewMemStore()
	if err := PublishGroupKey(store, reg, engineering); err != nil {
		t.Fatal(err)
	}
	// Even if carol obtains bob's wrapped blob from the (untrusted) SSP,
	// she cannot unwrap it with her own key.
	blob, err := store.Get(2 /* any ns probing */, "")
	_ = blob
	_ = err
	items, err := store.List(4 /* wire.NSGroupKey */, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("expected 2 wrapped keys, got %d", len(items))
	}
	for _, it := range items {
		if _, err := carol.Priv.Open(it.Val); err == nil {
			t.Error("carol unwrapped a key not sealed for her")
		}
	}
}

func TestRevokeGroupKey(t *testing.T) {
	reg := testRegistry(t)
	store := ssp.NewMemStore()
	if err := PublishGroupKey(store, reg, engineering); err != nil {
		t.Fatal(err)
	}
	if err := RevokeGroupKey(store, "engineering", "bob"); err != nil {
		t.Fatal(err)
	}
	got, err := FetchGroupKeys(store, bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("bob still has a wrapped key after revocation")
	}
}

func TestPrincipal(t *testing.T) {
	reg := testRegistry(t)
	pu := UserPrincipal("alice")
	pg := GroupPrincipal("engineering")
	if pu.String() != "u:alice" || pg.String() != "g:engineering" {
		t.Errorf("strings = %q, %q", pu.String(), pg.String())
	}
	if _, err := pu.PublicKey(reg); err != nil {
		t.Error(err)
	}
	if _, err := pg.PublicKey(reg); err != nil {
		t.Error(err)
	}
	if _, err := UserPrincipal("mallory").PublicKey(reg); err == nil {
		t.Error("unknown principal resolved")
	}
}

func TestUserSaveLoad(t *testing.T) {
	fixtures(t)
	path := t.TempDir() + "/alice.key"
	if err := alice.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("key file mode = %v, want 0600", info.Mode().Perm())
	}
	got, err := LoadUser(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != alice.ID {
		t.Errorf("id = %q", got.ID)
	}
	// The loaded key must actually decrypt what the original seals.
	sealed, err := alice.Public().Seal([]byte("prove it"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := got.Priv.Open(sealed)
	if err != nil || string(pt) != "prove it" {
		t.Errorf("loaded key unusable: %v", err)
	}
	if _, err := LoadUser(t.TempDir() + "/missing"); err == nil {
		t.Error("loaded missing key file")
	}
}

func TestRegistrySaveLoad(t *testing.T) {
	reg := testRegistry(t)
	path := t.TempDir() + "/registry.json"
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Users(), reg.Users()) {
		t.Errorf("users = %v", got.Users())
	}
	if !reflect.DeepEqual(got.Groups(), reg.Groups()) {
		t.Errorf("groups = %v", got.Groups())
	}
	if !got.IsMember("engineering", "alice") || got.IsMember("engineering", "carol") {
		t.Error("membership lost")
	}
	// Public keys survive: sealing to a loaded key works with the
	// original private key.
	pub, err := got.UserKey("bob")
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := pub.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Priv.Open(sealed); err != nil {
		t.Errorf("loaded public key mismatched: %v", err)
	}
	if _, err := LoadRegistry("/nonexistent/registry.json"); err == nil {
		t.Error("loaded missing registry")
	}
}
