package keys

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
)

// Persistence for the command-line tools: a user's private key is a
// single file the user guards (mode 0600), and the registry is a public
// JSON document the enterprise distributes freely (it contains only
// public keys and memberships).

// userFile is the on-disk form of a user key.
type userFile struct {
	ID   string `json:"id"`
	Priv string `json:"private_key"` // base64 PKCS#1
}

// Save writes the user's private key to path with owner-only permissions.
func (u *User) Save(path string) error {
	blob, err := json.MarshalIndent(userFile{
		ID:   string(u.ID),
		Priv: base64.StdEncoding.EncodeToString(u.Priv.Marshal()),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("keys: save user: %w", err)
	}
	// The key file is the user's own trust root on their own machine,
	// written with owner-only permissions — not SSP egress.
	return os.WriteFile(path, blob, 0o600) //sharoes-vet:allow keyegress local user key file (0600) is the user's own trust root
}

// LoadUser reads a user key saved by Save.
func LoadUser(path string) (*User, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keys: load user: %w", err)
	}
	var uf userFile
	if err := json.Unmarshal(blob, &uf); err != nil {
		return nil, fmt.Errorf("keys: load user: %w", err)
	}
	raw, err := base64.StdEncoding.DecodeString(uf.Priv)
	if err != nil {
		return nil, fmt.Errorf("keys: load user: %w", err)
	}
	priv, err := sharocrypto.PrivateKeyFromBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("keys: load user: %w", err)
	}
	return &User{ID: types.UserID(uf.ID), Priv: priv}, nil
}

// registryFile is the on-disk form of the registry.
type registryFile struct {
	Users   map[string]string   `json:"users"`  // id → base64 public key
	Groups  map[string]string   `json:"groups"` // id → base64 public key
	Members map[string][]string `json:"members"`
}

// Save writes the registry (public information only) to path.
func (r *Registry) Save(path string) error {
	rf := registryFile{
		Users:   map[string]string{},
		Groups:  map[string]string{},
		Members: map[string][]string{},
	}
	for _, u := range r.Users() {
		pub, err := r.UserKey(u)
		if err != nil {
			return err
		}
		rf.Users[string(u)] = base64.StdEncoding.EncodeToString(pub.Marshal())
	}
	for _, g := range r.Groups() {
		pub, err := r.GroupKey(g)
		if err != nil {
			return err
		}
		rf.Groups[string(g)] = base64.StdEncoding.EncodeToString(pub.Marshal())
		members := r.Members(g)
		ms := make([]string, len(members))
		for i, m := range members {
			ms[i] = string(m)
		}
		sort.Strings(ms)
		rf.Members[string(g)] = ms
	}
	blob, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return fmt.Errorf("keys: save registry: %w", err)
	}
	return os.WriteFile(path, blob, 0o644)
}

// LoadRegistry reads a registry saved by Save.
func LoadRegistry(path string) (*Registry, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keys: load registry: %w", err)
	}
	var rf registryFile
	if err := json.Unmarshal(blob, &rf); err != nil {
		return nil, fmt.Errorf("keys: load registry: %w", err)
	}
	r := NewRegistry()
	for id, pk := range rf.Users {
		raw, err := base64.StdEncoding.DecodeString(pk)
		if err != nil {
			return nil, fmt.Errorf("keys: load registry user %q: %w", id, err)
		}
		pub, err := sharocrypto.PublicKeyFromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("keys: load registry user %q: %w", id, err)
		}
		r.AddUser(types.UserID(id), pub)
	}
	for id, pk := range rf.Groups {
		raw, err := base64.StdEncoding.DecodeString(pk)
		if err != nil {
			return nil, fmt.Errorf("keys: load registry group %q: %w", id, err)
		}
		pub, err := sharocrypto.PublicKeyFromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("keys: load registry group %q: %w", id, err)
		}
		r.AddGroup(types.GroupID(id), pub)
	}
	for g, members := range rf.Members {
		for _, m := range members {
			r.AddMember(types.GroupID(g), types.UserID(m))
		}
	}
	return r, nil
}
