// Package keys manages Sharoes principals: users, groups, the public-key
// directory that stands in for an enterprise PKI, and the in-band group key
// distribution of the paper (§II-A).
//
// Each user and each group owns a 2048-bit RSA key pair. A user's private
// key is the only secret they manage; group private keys are stored at the
// SSP encrypted individually with each member's public key, and are fetched
// and unwrapped when the user mounts the filesystem.
package keys

import (
	"fmt"
	"sort"
	"sync"

	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// User is a principal with their private key. Outside tests and the
// migration tool, only the user themselves holds this value.
type User struct {
	ID   types.UserID
	Priv sharocrypto.PrivateKey
}

// NewUser generates a user with a fresh key pair.
func NewUser(id types.UserID) (*User, error) {
	priv, err := sharocrypto.NewPrivateKey()
	if err != nil {
		return nil, err
	}
	return &User{ID: id, Priv: priv}, nil
}

// Public returns the user's public key.
func (u *User) Public() sharocrypto.PublicKey { return u.Priv.Public() }

// Group is a group principal; the private key is created by the migration
// tool and distributed in-band to members.
type Group struct {
	ID   types.GroupID
	Priv sharocrypto.PrivateKey
}

// NewGroup generates a group with a fresh key pair.
func NewGroup(id types.GroupID) (*Group, error) {
	priv, err := sharocrypto.NewPrivateKey()
	if err != nil {
		return nil, err
	}
	return &Group{ID: id, Priv: priv}, nil
}

// Registry is the enterprise directory: every user's and group's public key
// and group memberships. This is public information — the paper assumes
// "each user knows the public keys for all other users" via PKI or
// identity-based encryption. The registry carries no secrets.
type Registry struct {
	mu      sync.RWMutex
	users   map[types.UserID]sharocrypto.PublicKey
	groups  map[types.GroupID]sharocrypto.PublicKey
	members map[types.GroupID]map[types.UserID]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		users:   make(map[types.UserID]sharocrypto.PublicKey),
		groups:  make(map[types.GroupID]sharocrypto.PublicKey),
		members: make(map[types.GroupID]map[types.UserID]bool),
	}
}

// AddUser registers a user's public key.
func (r *Registry) AddUser(id types.UserID, pub sharocrypto.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.users[id] = pub
}

// AddGroup registers a group's public key.
func (r *Registry) AddGroup(id types.GroupID, pub sharocrypto.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups[id] = pub
	if r.members[id] == nil {
		r.members[id] = make(map[types.UserID]bool)
	}
}

// AddMember adds a user to a group.
func (r *Registry) AddMember(g types.GroupID, u types.UserID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[g] == nil {
		r.members[g] = make(map[types.UserID]bool)
	}
	r.members[g][u] = true
}

// RemoveMember removes a user from a group. The caller is responsible for
// the revocation consequences (re-keying objects the group could read).
func (r *Registry) RemoveMember(g types.GroupID, u types.UserID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.members[g], u)
}

// UserKey returns a user's public key.
func (r *Registry) UserKey(id types.UserID) (sharocrypto.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.users[id]
	if !ok {
		return sharocrypto.PublicKey{}, fmt.Errorf("%w: user %q", types.ErrNoSuchUser, id)
	}
	return pub, nil
}

// GroupKey returns a group's public key.
func (r *Registry) GroupKey(id types.GroupID) (sharocrypto.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.groups[id]
	if !ok {
		return sharocrypto.PublicKey{}, fmt.Errorf("%w: group %q", types.ErrNoSuchUser, id)
	}
	return pub, nil
}

// IsMember reports whether u belongs to g.
func (r *Registry) IsMember(g types.GroupID, u types.UserID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[g][u]
}

// Members returns g's membership, sorted.
func (r *Registry) Members(g types.GroupID) []types.UserID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]types.UserID, 0, len(r.members[g]))
	for u := range r.members[g] {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupsOf returns every group u belongs to, sorted.
func (r *Registry) GroupsOf(u types.UserID) []types.GroupID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []types.GroupID
	for g, m := range r.members {
		if m[u] {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Users returns every registered user, sorted.
func (r *Registry) Users() []types.UserID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]types.UserID, 0, len(r.users))
	for u := range r.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups returns every registered group, sorted.
func (r *Registry) Groups() []types.GroupID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]types.GroupID, 0, len(r.groups))
	for g := range r.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClassOf evaluates which accessor class user u falls into for an object
// owned by owner:group, per the first-match UNIX rule.
func (r *Registry) ClassOf(u types.UserID, owner types.UserID, group types.GroupID) types.Class {
	if u == owner {
		return types.ClassOwner
	}
	if r.IsMember(group, u) {
		return types.ClassGroup
	}
	return types.ClassOther
}

// groupKeyStorageKey is the SSP key for a member's wrapped group key.
func groupKeyStorageKey(u types.UserID, g types.GroupID) string {
	return "u/" + string(u) + "/g/" + string(g)
}

// PublishGroupKey stores g's private key at the SSP, wrapped once per
// member with that member's public key. Called by the migration tool at
// setup and whenever membership grows.
func PublishGroupKey(store ssp.BlobStore, reg *Registry, g *Group) error {
	blob := g.Priv.Marshal()
	items := make([]wire.KV, 0, 8)
	for _, uid := range reg.Members(g.ID) {
		pub, err := reg.UserKey(uid)
		if err != nil {
			return fmt.Errorf("keys: publish group %q: %w", g.ID, err)
		}
		sealed, err := pub.Seal(blob)
		if err != nil {
			return fmt.Errorf("keys: publish group %q: %w", g.ID, err)
		}
		items = append(items, wire.KV{NS: wire.NSGroupKey, Key: groupKeyStorageKey(uid, g.ID), Val: sealed})
	}
	return store.BatchPut(items)
}

// RevokeGroupKey removes a departing member's wrapped copy. The group key
// itself should also be rotated by the caller when strict revocation is
// required.
func RevokeGroupKey(store ssp.BlobStore, g types.GroupID, u types.UserID) error {
	return store.Delete(wire.NSGroupKey, groupKeyStorageKey(u, g))
}

// FetchGroupKeys retrieves and unwraps every group private key stored for
// user u — the in-band half of mount (paper §II-A: "when a user logs into
// the system ... she obtains her encrypted group key blocks and uses her
// private key to decrypt").
func FetchGroupKeys(store ssp.BlobStore, u *User) (map[types.GroupID]sharocrypto.PrivateKey, error) {
	items, err := store.List(wire.NSGroupKey, "u/"+string(u.ID)+"/g/")
	if err != nil {
		return nil, fmt.Errorf("keys: fetch group keys: %w", err)
	}
	out := make(map[types.GroupID]sharocrypto.PrivateKey, len(items))
	prefixLen := len("u/" + string(u.ID) + "/g/")
	for _, it := range items {
		gid := types.GroupID(it.Key[prefixLen:])
		blob, err := u.Priv.Open(it.Val)
		if err != nil {
			return nil, fmt.Errorf("keys: unwrap group key %q: %w", gid, err)
		}
		priv, err := sharocrypto.PrivateKeyFromBytes(blob)
		if err != nil {
			return nil, fmt.Errorf("keys: parse group key %q: %w", gid, err)
		}
		out[gid] = priv
	}
	return out, nil
}

// Principal identifies a sealing target: a user or a group. Superblocks and
// split-point pointers are sealed to principals; sealing to a group covers
// all members with a single stored blob.
type Principal struct {
	User  types.UserID // exactly one of User/Group is set
	Group types.GroupID
}

// UserPrincipal returns a user principal.
func UserPrincipal(u types.UserID) Principal { return Principal{User: u} }

// GroupPrincipal returns a group principal.
func GroupPrincipal(g types.GroupID) Principal { return Principal{Group: g} }

// String returns a stable storage-key fragment for the principal.
func (p Principal) String() string {
	if p.User != "" {
		return "u:" + string(p.User)
	}
	return "g:" + string(p.Group)
}

// PublicKey resolves the principal's public key in the registry.
func (p Principal) PublicKey(reg *Registry) (sharocrypto.PublicKey, error) {
	if p.User != "" {
		return reg.UserKey(p.User)
	}
	return reg.GroupKey(p.Group)
}
