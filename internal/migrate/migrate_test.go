package migrate

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/client"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
)

var (
	migOnce sync.Once
	migReg  *keys.Registry
	migUser map[types.UserID]*keys.User
)

func migFixture(t testing.TB) {
	t.Helper()
	migOnce.Do(func() {
		migReg = keys.NewRegistry()
		migUser = make(map[types.UserID]*keys.User)
		for _, id := range []types.UserID{"alice", "bob", "carol", "dave"} {
			u, err := keys.NewUser(id)
			if err != nil {
				t.Fatal(err)
			}
			migUser[id] = u
			migReg.AddUser(id, u.Public())
		}
		g, err := keys.NewGroup("eng")
		if err != nil {
			t.Fatal(err)
		}
		migReg.AddGroup("eng", g.Priv.Public())
		migReg.AddMember("eng", "alice")
		migReg.AddMember("eng", "bob")
	})
}

func mountAs(t *testing.T, store ssp.BlobStore, eng layout.Engine, id types.UserID) *client.Session {
	t.Helper()
	s, err := client.Mount(client.Config{Store: store, User: migUser[id], Registry: migReg,
		Layout: eng, FSID: "migfs", CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestBootstrapAllUsersMount(t *testing.T) {
	migFixture(t)
	for _, scheme := range []string{"scheme1", "scheme2"} {
		t.Run(scheme, func(t *testing.T) {
			store := ssp.NewMemStore()
			var eng layout.Engine = layout.NewScheme2(migReg)
			if scheme == "scheme1" {
				eng = layout.NewScheme1(migReg)
			}
			err := Bootstrap(Options{Store: store, Registry: migReg, Layout: eng,
				FSID: "migfs", RootOwner: "alice", RootGroup: "eng"})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []types.UserID{"alice", "bob", "carol"} {
				s := mountAs(t, store, eng, id)
				info, err := s.Stat("/")
				if err != nil {
					t.Fatalf("%s: %v", id, err)
				}
				if !info.IsDir() || info.Inode != types.RootInode {
					t.Errorf("%s: root = %+v", id, info)
				}
			}
		})
	}
}

func testTree() Node {
	return Dir("", "alice", "eng", 0o755,
		Dir("src", "alice", "eng", 0o755,
			File("main.go", "alice", "eng", 0o644, []byte("package main")),
			File("secret.key", "alice", "eng", 0o600, []byte("hunter2")),
		),
		Dir("team", "alice", "eng", 0o770,
			File("notes.md", "bob", "eng", 0o660, []byte("# notes")),
		),
		Dir("dropbox", "alice", "eng", 0o711,
			File("inbox.txt", "alice", "eng", 0o644, bytes.Repeat([]byte("mail "), 100)),
		),
		File("README", "alice", "eng", 0o644, []byte("welcome")),
	)
}

func TestMigrateTreeEquivalentSemantics(t *testing.T) {
	migFixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(migReg)
	st, err := MigrateTree(Options{Store: store, Registry: migReg, Layout: eng,
		FSID: "migfs", RootOwner: "alice", RootGroup: "eng"}, testTree())
	if err != nil {
		t.Fatal(err)
	}
	if st.Dirs != 4 || st.Files != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.Objects == 0 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}

	alice := mountAs(t, store, eng, "alice")
	bob := mountAs(t, store, eng, "bob")
	carol := mountAs(t, store, eng, "carol")

	// Contents survive the transition.
	if got, err := alice.ReadFile("/src/main.go"); err != nil || string(got) != "package main" {
		t.Errorf("main.go = %q, %v", got, err)
	}
	if got, err := carol.ReadFile("/README"); err != nil || string(got) != "welcome" {
		t.Errorf("README = %q, %v", got, err)
	}
	// Permissions carry over with equivalent semantics.
	if _, err := carol.ReadFile("/src/secret.key"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("carol secret.key: %v", err)
	}
	if _, err := bob.ReadFile("/src/secret.key"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("bob secret.key: %v", err)
	}
	if got, err := bob.ReadFile("/team/notes.md"); err != nil || string(got) != "# notes" {
		t.Errorf("bob notes = %q, %v", got, err)
	}
	if _, err := carol.ReadDir("/team"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("carol /team ls: %v", err)
	}
	// Exec-only dropbox: carol reads a known name but cannot list.
	if _, err := carol.ReadDir("/dropbox"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("carol dropbox ls: %v", err)
	}
	if got, err := carol.ReadFile("/dropbox/inbox.txt"); err != nil || len(got) != 500 {
		t.Errorf("carol inbox = %d bytes, %v", len(got), err)
	}
	// The migrated tree is fully writable through the client.
	if err := bob.WriteFile("/team/notes.md", []byte("# updated"), 0); err != nil {
		t.Errorf("bob update: %v", err)
	}
	if err := alice.Mkdir("/src/pkg", 0o755); err != nil {
		t.Errorf("alice extend tree: %v", err)
	}
}

func TestMigrateTreeRejectsBadNodes(t *testing.T) {
	migFixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(migReg)
	opts := Options{Store: store, Registry: migReg, Layout: eng, FSID: "x", RootOwner: "alice"}

	_, err := MigrateTree(opts, Dir("", "alice", "", 0o755,
		File("a", "alice", "", 0o644, nil),
		File("a", "alice", "", 0o644, nil)))
	if err == nil {
		t.Error("duplicate names accepted")
	}
	_, err = MigrateTree(opts, Dir("", "alice", "", 0o755,
		File("w", "alice", "", 0o200, nil)))
	if !errors.Is(err, types.ErrUnsupportedPerm) {
		t.Errorf("write-only file: %v", err)
	}
	if _, err := MigrateTree(Options{}, Node{}); err == nil {
		t.Error("incomplete options accepted")
	}
}

func TestSanitizePerm(t *testing.T) {
	cases := []struct {
		kind types.ObjKind
		in   string
		want string
	}{
		{types.KindDir, "755", "755"},
		{types.KindDir, "753", "751"}, // other -wx → --x
		{types.KindDir, "733", "711"},
		{types.KindFile, "644", "644"},
		{types.KindFile, "642", "640"}, // other -w- → ---
		{types.KindFile, "621", "600"}, // group -w-, other --x → ---
		{types.KindFile, "200", "000"}, // owner write-only: unenforceable
	}
	for _, c := range cases {
		in, _ := types.ParsePerm(c.in)
		want, _ := types.ParsePerm(c.want)
		if got := SanitizePerm(c.kind, in); got != want {
			t.Errorf("SanitizePerm(%v, %s) = %s, want %s", c.kind, c.in, got, want)
		}
	}
	// Every sanitized permission is valid by construction.
	for p := types.Perm(0); p <= types.PermMask; p++ {
		for _, kind := range []types.ObjKind{types.KindFile, types.KindDir} {
			if err := validateAll(kind, SanitizePerm(kind, p)); err != nil {
				t.Fatalf("SanitizePerm(%v, %s) still invalid: %v", kind, p, err)
			}
		}
	}
}

func validateAll(kind types.ObjKind, p types.Perm) error {
	return cap.ValidatePerm(kind, p)
}

func TestFromLocalDir(t *testing.T) {
	migFixture(t)
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "docs", "a.txt"), []byte("local content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "top.bin"), bytes.Repeat([]byte{7}, 1000), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink("a.txt", filepath.Join(root, "docs", "link")); err == nil {
		// Symlinks are skipped, not migrated.
		_ = err
	}

	node, err := FromLocalDir(root, "alice", "eng")
	if err != nil {
		t.Fatal(err)
	}
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(migReg)
	st, err := MigrateTree(Options{Store: store, Registry: migReg, Layout: eng,
		FSID: "migfs", RootOwner: "alice", RootGroup: "eng"}, node)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 2 {
		t.Errorf("files = %d", st.Files)
	}

	alice := mountAs(t, store, eng, "alice")
	if got, err := alice.ReadFile("/docs/a.txt"); err != nil || string(got) != "local content" {
		t.Errorf("a.txt = %q, %v", got, err)
	}
	if got, err := alice.ReadFile("/top.bin"); err != nil || len(got) != 1000 {
		t.Errorf("top.bin = %d bytes, %v", len(got), err)
	}
	carol := mountAs(t, store, eng, "carol")
	if _, err := carol.ReadFile("/top.bin"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("carol top.bin (0600): %v", err)
	}

	if _, err := FromLocalDir(filepath.Join(root, "top.bin"), "alice", "eng"); !errors.Is(err, types.ErrNotDir) {
		t.Errorf("FromLocalDir on file: %v", err)
	}
	if _, err := FromLocalDir(filepath.Join(root, "missing"), "alice", "eng"); err == nil {
		t.Error("FromLocalDir on missing dir succeeded")
	}
}

func TestSplitPointStats(t *testing.T) {
	migFixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(migReg)
	// /home style tree: carol and dave both travel the "t" variant of
	// /home, but carol owns /home/carol while dave is other there → split.
	tree := Dir("", "alice", "eng", 0o755,
		Dir("home", "alice", "eng", 0o755,
			Dir("bob", "bob", "", 0o700,
				File("private", "bob", "", 0o600, []byte("bob's"))),
			Dir("carol", "carol", "", 0o700,
				File("private", "carol", "", 0o600, []byte("carol's"))),
		),
	)
	st, err := MigrateTree(Options{Store: store, Registry: migReg, Layout: eng,
		FSID: "migfs", RootOwner: "alice", RootGroup: "eng"}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if st.SplitPoints == 0 {
		t.Error("expected split points in a /home-style tree")
	}
	// Users reach their own homes and are excluded from others'.
	bob := mountAs(t, store, eng, "bob")
	if got, err := bob.ReadFile("/home/bob/private"); err != nil || string(got) != "bob's" {
		t.Errorf("bob home read = %q, %v", got, err)
	}
	if _, err := bob.ReadFile("/home/carol/private"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("bob in carol's home: %v", err)
	}
	carol := mountAs(t, store, eng, "carol")
	if got, err := carol.ReadFile("/home/carol/private"); err != nil || string(got) != "carol's" {
		t.Errorf("carol home read = %q, %v", got, err)
	}
}
