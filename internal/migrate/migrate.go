// Package migrate implements the Sharoes migration tool (paper §IV): the
// trusted enterprise-side component that transitions local storage to the
// outsourced model. It creates the cryptographic infrastructure (user and
// group keys when needed), bulk-encrypts a directory tree into CAP form,
// uploads it in large batches, and seals a superblock per principal.
package migrate

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// Options configures a migration.
type Options struct {
	Store    ssp.BlobStore
	Registry *keys.Registry
	Layout   layout.Engine
	FSID     string
	// RootOwner and RootGroup own the namespace root.
	RootOwner types.UserID
	RootGroup types.GroupID
	// RootPerm defaults to 0755.
	RootPerm types.Perm
	// BlockSize defaults to 64 KiB.
	BlockSize uint32
	// BatchBytes caps the size of one upload batch (default 4 MiB).
	BatchBytes int
}

func (o *Options) defaults() {
	if o.RootPerm == 0 {
		o.RootPerm = 0o755
	}
	if o.BlockSize == 0 {
		o.BlockSize = 64 * 1024
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 4 << 20
	}
}

// Node describes one object of a tree to migrate. The zero Perm is
// replaced with 0644 for files and 0755 for directories.
type Node struct {
	Name     string
	Kind     types.ObjKind
	Owner    types.UserID
	Group    types.GroupID
	Perm     types.Perm
	Data     []byte // files only
	Children []Node // directories only
}

// Dir builds a directory node.
func Dir(name string, owner types.UserID, group types.GroupID, perm types.Perm, children ...Node) Node {
	return Node{Name: name, Kind: types.KindDir, Owner: owner, Group: group, Perm: perm, Children: children}
}

// File builds a file node.
func File(name string, owner types.UserID, group types.GroupID, perm types.Perm, data []byte) Node {
	return Node{Name: name, Kind: types.KindFile, Owner: owner, Group: group, Perm: perm, Data: data}
}

// Stats summarizes a migration.
type Stats struct {
	Dirs        int
	Files       int
	Bytes       int64
	Objects     int // blobs stored at the SSP
	SplitPoints int
}

// uploader accumulates KVs and flushes them in size-bounded batches.
type uploader struct {
	store   ssp.BlobStore
	pending []wire.KV
	bytes   int
	cap     int
	objects int
}

func (u *uploader) add(kvs ...wire.KV) error {
	for _, kv := range kvs {
		u.pending = append(u.pending, kv)
		u.bytes += len(kv.Val)
		u.objects++
		if u.bytes >= u.cap {
			if err := u.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (u *uploader) flush() error {
	if len(u.pending) == 0 {
		return nil
	}
	if err := u.store.BatchPut(u.pending); err != nil {
		return fmt.Errorf("migrate: upload batch: %w", err)
	}
	u.pending = u.pending[:0]
	u.bytes = 0
	return nil
}

// Bootstrap creates an empty filesystem: the namespace root with its CAP
// variants and table views, plus a sealed superblock per registered user.
func Bootstrap(opts Options) error {
	opts.defaults()
	_, err := MigrateTree(opts, Node{
		Kind:  types.KindDir,
		Owner: opts.RootOwner,
		Group: opts.RootGroup,
		Perm:  opts.RootPerm,
	})
	return err
}

// MigrateTree encrypts and uploads a whole tree whose root becomes the
// filesystem namespace root. It returns migration statistics.
func MigrateTree(opts Options, root Node) (Stats, error) {
	opts.defaults()
	var st Stats
	if opts.Store == nil || opts.Registry == nil || opts.Layout == nil {
		return st, errors.New("migrate: incomplete options")
	}
	root.Kind = types.KindDir
	if root.Owner == "" {
		root.Owner = opts.RootOwner
	}
	if root.Group == "" {
		root.Group = opts.RootGroup
	}
	if root.Perm == 0 {
		root.Perm = opts.RootPerm
	}

	up := &uploader{store: opts.Store, cap: opts.BatchBytes}
	rootMeta, err := buildNode(&opts, up, &st, root, types.RootInode)
	if err != nil {
		return st, err
	}
	sbs, err := layout.BuildSuperblockKVs(opts.Layout, opts.Registry, opts.FSID, rootMeta)
	if err != nil {
		return st, err
	}
	if err := up.add(sbs...); err != nil {
		return st, err
	}
	if err := up.flush(); err != nil {
		return st, err
	}
	st.Objects = up.objects
	return st, nil
}

// buildNode recursively encrypts node and its subtree, streaming blobs
// through the uploader, and returns the node's full metadata.
func buildNode(opts *Options, up *uploader, st *Stats, n Node, ino types.Inode) (*meta.Metadata, error) {
	if n.Perm == 0 {
		if n.Kind == types.KindDir {
			n.Perm = 0o755
		} else {
			n.Perm = 0o644
		}
	}
	if err := cap.ValidatePerm(n.Kind, n.Perm); err != nil {
		return nil, fmt.Errorf("migrate: %q: %w", n.Name, err)
	}
	if n.Owner == "" {
		n.Owner = opts.RootOwner
	}
	if ino == 0 {
		ino = randInode()
	}
	dsk, dvk := sharocrypto.NewSigningPair()
	msk, _ := sharocrypto.NewSigningPair()
	m := &meta.Metadata{
		Attr: meta.Attr{
			Inode: ino,
			Kind:  n.Kind,
			Owner: n.Owner,
			Group: n.Group,
			Perm:  n.Perm,
			Size:  uint64(len(n.Data)),
			MTime: time.Now().UnixNano(),
		},
		Keys: meta.KeySet{
			DEK:      sharocrypto.NewSymKey(),
			DataSeed: sharocrypto.NewSymKey(),
			DVK:      dvk,
			DSK:      dsk,
			MSK:      msk,
			MetaSeed: sharocrypto.NewSymKey(),
		},
	}

	switch n.Kind {
	case types.KindFile:
		st.Files++
		st.Bytes += int64(len(n.Data))
		if err := up.add(layout.BuildFileKVs(m, n.Data, opts.BlockSize, m.Attr.MTime)...); err != nil {
			return nil, err
		}
	case types.KindDir:
		st.Dirs++
		tables := layout.NewTables(opts.Layout, m.Attr)
		seen := make(map[string]bool, len(n.Children))
		for _, child := range n.Children {
			if child.Name == "" || seen[child.Name] {
				return nil, fmt.Errorf("migrate: bad or duplicate child name %q", child.Name)
			}
			seen[child.Name] = true
			cm, err := buildNode(opts, up, st, child, 0)
			if err != nil {
				return nil, err
			}
			grants, err := layout.BuildRows(opts.Layout, m, tables, child.Name, cm)
			if err != nil {
				return nil, err
			}
			if len(grants) > 0 {
				st.SplitPoints++
				if err := up.add(grants...); err != nil {
					return nil, err
				}
			}
		}
		tkvs, err := layout.SealTables(opts.Layout, m, tables)
		if err != nil {
			return nil, err
		}
		if err := up.add(tkvs...); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("migrate: %q: unknown kind", n.Name)
	}

	return m, up.add(layout.BuildMetaKVs(opts.Layout, m)...)
}

// randInode mirrors the client's inode allocation.
func randInode() types.Inode {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("migrate: entropy unavailable: " + err.Error())
	}
	ino := types.Inode(uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]))
	if ino <= types.RootInode {
		ino = types.RootInode + 1
	}
	return ino
}

// SanitizePerm maps an arbitrary *nix permission onto the nearest setting
// supported by the CAP model (paper §III): unsupported triplets lose the
// offending bits, failing closed.
func SanitizePerm(kind types.ObjKind, p types.Perm) types.Perm {
	fix := func(t types.Triplet) types.Triplet {
		if _, err := cap.For(kind, t); err == nil {
			return t
		}
		if kind == types.KindDir {
			// -wx → --x: keep traversal, drop the unenforceable write.
			return t &^ types.TripletWrite
		}
		// Files: write-only and exec-only collapse to no access.
		return 0
	}
	return types.Perm(0).
		WithOwner(fix(p.Owner())).
		WithGroup(fix(p.Group())).
		WithOther(fix(p.Other()))
}

// FromLocalDir builds a migration tree from a local directory, assigning
// every object to the given owner and group and sanitizing permissions.
// This is the transition path for existing storage (paper §I: "existing
// data is transferred to the SSP site").
func FromLocalDir(dir string, owner types.UserID, group types.GroupID) (Node, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return Node{}, fmt.Errorf("migrate: %w", err)
	}
	if !info.IsDir() {
		return Node{}, fmt.Errorf("migrate: %q: %w", dir, types.ErrNotDir)
	}
	return localNode(dir, info, owner, group)
}

func localNode(path string, info fs.FileInfo, owner types.UserID, group types.GroupID) (Node, error) {
	perm := types.Perm(info.Mode().Perm()) & types.PermMask
	if info.IsDir() {
		n := Dir(info.Name(), owner, group, SanitizePerm(types.KindDir, perm))
		entries, err := os.ReadDir(path)
		if err != nil {
			return Node{}, fmt.Errorf("migrate: read %q: %w", path, err)
		}
		for _, e := range entries {
			ci, err := e.Info()
			if err != nil {
				return Node{}, fmt.Errorf("migrate: stat %q: %w", e.Name(), err)
			}
			if !ci.Mode().IsRegular() && !ci.IsDir() {
				continue // symlinks and specials are out of scope
			}
			child, err := localNode(filepath.Join(path, e.Name()), ci, owner, group)
			if err != nil {
				return Node{}, err
			}
			n.Children = append(n.Children, child)
		}
		return n, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Node{}, fmt.Errorf("migrate: read %q: %w", path, err)
	}
	return File(info.Name(), owner, group, SanitizePerm(types.KindFile, perm), data), nil
}
