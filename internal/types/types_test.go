package types

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPermTriplets(t *testing.T) {
	p, err := ParsePerm("754")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Owner(); got != TripletRead|TripletWrite|TripletExec {
		t.Errorf("owner = %v", got)
	}
	if got := p.Group(); got != TripletRead|TripletExec {
		t.Errorf("group = %v", got)
	}
	if got := p.Other(); got != TripletRead {
		t.Errorf("other = %v", got)
	}
	if s := p.String(); s != "rwxr-xr--" {
		t.Errorf("String = %q", s)
	}
}

func TestParsePermErrors(t *testing.T) {
	for _, s := range []string{"", "8", "77777", "abc", "7a5"} {
		if _, err := ParsePerm(s); err == nil {
			t.Errorf("ParsePerm(%q) succeeded, want error", s)
		}
	}
}

func TestParsePermValues(t *testing.T) {
	cases := map[string]Perm{
		"0":   0,
		"777": PermMask,
		"700": PermOwnerRead | PermOwnerWrite | PermOwnerExec,
		"070": PermGroupRead | PermGroupWrite | PermGroupExec,
		"007": PermOtherRead | PermOtherWrite | PermOtherExec,
		"111": PermOwnerExec | PermGroupExec | PermOtherExec,
	}
	for s, want := range cases {
		got, err := ParsePerm(s)
		if err != nil {
			t.Fatalf("ParsePerm(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParsePerm(%q) = %o, want %o", s, got, want)
		}
	}
}

func TestPermWithTriplet(t *testing.T) {
	p := Perm(0)
	p = p.WithOwner(TripletRead | TripletWrite)
	p = p.WithGroup(TripletRead)
	p = p.WithOther(TripletExec)
	if p.String() != "rw-r----x" {
		t.Errorf("got %q", p.String())
	}
	// Replacing a triplet must not disturb the others.
	p = p.WithGroup(TripletWrite)
	if p.Owner() != TripletRead|TripletWrite || p.Other() != TripletExec {
		t.Errorf("WithGroup disturbed other triplets: %q", p.String())
	}
}

func TestPermTripletRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := Perm(raw) & PermMask
		q := Perm(0).WithOwner(p.Owner()).WithGroup(p.Group()).WithOther(p.Other())
		return p == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripletFor(t *testing.T) {
	p, _ := ParsePerm("741")
	if p.TripletFor(ClassOwner) != p.Owner() {
		t.Error("owner mismatch")
	}
	if p.TripletFor(ClassGroup) != p.Group() {
		t.Error("group mismatch")
	}
	if p.TripletFor(ClassOther) != p.Other() {
		t.Error("other mismatch")
	}
}

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"/":              "/",
		"/a/b/c":         "/a/b/c",
		"//a///b":        "/a/b",
		"/a/./b":         "/a/b",
		"/a/../b":        "/b",
		"/..":            "/",
		"/a/b/../../c/.": "/c",
		"/a/":            "/a",
	}
	for in, want := range cases {
		got, err := CleanPath(in)
		if err != nil {
			t.Fatalf("CleanPath(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("CleanPath(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "a/b", "relative"} {
		if _, err := CleanPath(bad); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("CleanPath(%q) err = %v, want ErrInvalidPath", bad, err)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c/", "/a/b", "c"},
		{"/a/../b/c", "/b", "c"},
	}
	for _, c := range cases {
		dir, base, err := SplitPath(c.in)
		if err != nil {
			t.Fatalf("SplitPath(%q): %v", c.in, err)
		}
		if dir != c.dir || base != c.base {
			t.Errorf("SplitPath(%q) = (%q,%q), want (%q,%q)", c.in, dir, base, c.dir, c.base)
		}
	}
}

func TestPathComponents(t *testing.T) {
	got, err := PathComponents("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("PathComponents = %v", got)
	}
	got, err = PathComponents("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("root components = %v", got)
	}
}

func TestPathError(t *testing.T) {
	e := &PathError{Op: "stat", Path: "/x", Err: ErrNotExist}
	if !errors.Is(e, ErrNotExist) {
		t.Error("Unwrap does not reach sentinel")
	}
	if e.Error() != "stat /x: "+ErrNotExist.Error() {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if KindFile.String() != "file" || KindDir.String() != "dir" || KindInvalid.String() != "invalid" {
		t.Error("ObjKind.String mismatch")
	}
	if ClassOwner.String() != "owner" || ClassGroup.String() != "group" || ClassOther.String() != "other" {
		t.Error("Class.String mismatch")
	}
	if TripletRead.String() != "r--" || Triplet(7).String() != "rwx" {
		t.Error("Triplet.String mismatch")
	}
}
