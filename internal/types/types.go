// Package types holds the small set of domain types shared by every
// Sharoes subsystem: inode numbers, principals, object kinds, and the
// *nix permission bits the CAP design replicates.
package types

import (
	"errors"
	"fmt"
	"strings"
)

// Inode identifies a filesystem object. Inode numbers are allocated by
// clients (the SSP is untrusted and does no allocation) from a per-filesystem
// counter seeded at migration time.
type Inode uint64

// RootInode is the conventional inode of the namespace root ("/").
const RootInode Inode = 1

// String implements fmt.Stringer.
func (i Inode) String() string { return fmt.Sprintf("ino:%d", uint64(i)) }

// UserID names an enterprise user. In the paper a user's identity is their
// public/private key pair; the ID is the handle under which that pair is
// registered (comparable to an IBE email address).
type UserID string

// GroupID names a user group. Groups, like users, own a key pair.
type GroupID string

// ObjKind distinguishes files from directories.
type ObjKind uint8

// Object kinds.
const (
	KindInvalid ObjKind = iota
	KindFile
	KindDir
)

// String implements fmt.Stringer.
func (k ObjKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	default:
		return "invalid"
	}
}

// Perm holds the nine *nix permission bits (rwxrwxrwx for owner, group and
// other). Higher mode bits (setuid and friends) are out of scope; the paper
// defers setuid to future work.
type Perm uint16

// Permission bit masks, mirroring the POSIX layout.
const (
	PermOtherExec Perm = 1 << iota
	PermOtherWrite
	PermOtherRead
	PermGroupExec
	PermGroupWrite
	PermGroupRead
	PermOwnerExec
	PermOwnerWrite
	PermOwnerRead

	PermMask Perm = 1<<9 - 1
)

// Triplet is a single rwx permission triplet for one accessor class.
type Triplet uint8

// Triplet bits.
const (
	TripletExec Triplet = 1 << iota
	TripletWrite
	TripletRead
)

// CanRead reports whether the triplet grants read.
func (t Triplet) CanRead() bool { return t&TripletRead != 0 }

// CanWrite reports whether the triplet grants write.
func (t Triplet) CanWrite() bool { return t&TripletWrite != 0 }

// CanExec reports whether the triplet grants execute/traverse.
func (t Triplet) CanExec() bool { return t&TripletExec != 0 }

// String renders the triplet in ls(1) style, e.g. "r-x".
func (t Triplet) String() string {
	var b [3]byte
	b[0], b[1], b[2] = '-', '-', '-'
	if t.CanRead() {
		b[0] = 'r'
	}
	if t.CanWrite() {
		b[1] = 'w'
	}
	if t.CanExec() {
		b[2] = 'x'
	}
	return string(b[:])
}

// Owner returns the owner triplet.
func (p Perm) Owner() Triplet { return Triplet(p >> 6 & 7) }

// Group returns the group triplet.
func (p Perm) Group() Triplet { return Triplet(p >> 3 & 7) }

// Other returns the other triplet.
func (p Perm) Other() Triplet { return Triplet(p & 7) }

// WithOwner returns p with the owner triplet replaced.
func (p Perm) WithOwner(t Triplet) Perm { return p&^(7<<6) | Perm(t&7)<<6 }

// WithGroup returns p with the group triplet replaced.
func (p Perm) WithGroup(t Triplet) Perm { return p&^(7<<3) | Perm(t&7)<<3 }

// WithOther returns p with the other triplet replaced.
func (p Perm) WithOther(t Triplet) Perm { return p&^7 | Perm(t&7) }

// String renders the permission in ls(1) style, e.g. "rwxr-x--x".
func (p Perm) String() string {
	return p.Owner().String() + p.Group().String() + p.Other().String()
}

// ParsePerm parses an octal permission string such as "755".
func ParsePerm(s string) (Perm, error) {
	if len(s) == 0 || len(s) > 4 {
		return 0, fmt.Errorf("types: bad permission %q", s)
	}
	var v Perm
	for _, c := range s {
		if c < '0' || c > '7' {
			return 0, fmt.Errorf("types: bad permission %q", s)
		}
		v = v<<3 | Perm(c-'0')
	}
	return v & PermMask, nil
}

// ACLEntry grants one user a permission triplet on an object — the
// POSIX-ACL extension (paper §III-D2 names ACLs as the typical cause of
// permission divergence among users sharing a CAP).
type ACLEntry struct {
	User   UserID
	Rights Triplet
}

// Class identifies which accessor class a principal falls into for a given
// object, following the first-match rule of the original UNIX model: owner,
// then group, then other.
type Class uint8

// Accessor classes.
const (
	ClassOwner Class = iota
	ClassGroup
	ClassOther
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassOwner:
		return "owner"
	case ClassGroup:
		return "group"
	default:
		return "other"
	}
}

// TripletFor returns the triplet that applies to the given class.
func (p Perm) TripletFor(c Class) Triplet {
	switch c {
	case ClassOwner:
		return p.Owner()
	case ClassGroup:
		return p.Group()
	default:
		return p.Other()
	}
}

// Sentinel errors shared across the system. Client operations wrap these
// with path context; tests unwrap with errors.Is.
var (
	ErrNotExist        = errors.New("sharoes: no such file or directory")
	ErrExist           = errors.New("sharoes: file exists")
	ErrPermission      = errors.New("sharoes: permission denied")
	ErrNotDir          = errors.New("sharoes: not a directory")
	ErrIsDir           = errors.New("sharoes: is a directory")
	ErrNotEmpty        = errors.New("sharoes: directory not empty")
	ErrTampered        = errors.New("sharoes: integrity verification failed")
	ErrUnsupportedPerm = errors.New("sharoes: permission setting unsupported in outsourced model")
	ErrNoSuchUser      = errors.New("sharoes: unknown principal")
	ErrClosed          = errors.New("sharoes: use of closed handle")
	ErrInvalidPath     = errors.New("sharoes: invalid path")
)

// PathError records an error and the path that caused it.
type PathError struct {
	Op   string
	Path string
	Err  error
}

// Error implements the error interface.
func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap supports errors.Is / errors.As.
func (e *PathError) Unwrap() error { return e.Err }

// CleanPath normalizes an absolute slash-separated path, resolving "." and
// ".." lexically. It returns ErrInvalidPath for relative or empty paths.
func CleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("%w: %q", ErrInvalidPath, p)
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// SplitPath returns the cleaned parent directory and base name of p.
// The root path has parent "/" and base "".
func SplitPath(p string) (dir, base string, err error) {
	cp, err := CleanPath(p)
	if err != nil {
		return "", "", err
	}
	if cp == "/" {
		return "/", "", nil
	}
	i := strings.LastIndexByte(cp, '/')
	if i == 0 {
		return "/", cp[1:], nil
	}
	return cp[:i], cp[i+1:], nil
}

// PathComponents splits a cleaned absolute path into its components.
// The root path yields an empty slice.
func PathComponents(p string) ([]string, error) {
	cp, err := CleanPath(p)
	if err != nil {
		return nil, err
	}
	if cp == "/" {
		return nil, nil
	}
	return strings.Split(cp[1:], "/"), nil
}
