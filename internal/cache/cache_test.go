package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(1000)
	c.Put("a", "va", 10)
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Errorf("get = %v, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("missing key hit")
	}
	if c.Len() != 1 || c.Used() != 10 {
		t.Errorf("len=%d used=%d", c.Len(), c.Used())
	}
}

func TestReplaceAdjustsSize(t *testing.T) {
	c := New(1000)
	c.Put("a", "v1", 10)
	c.Put("a", "v2", 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	if v, _ := c.Get("a"); v != "v2" {
		t.Errorf("v = %v", v)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	c := New(30)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	c.Get("a") // a is now most recent; b is oldest
	c.Put("d", 4, 10)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(100)
	c.Put("big", 1, 200)
	if _, ok := c.Get("big"); ok {
		t.Error("oversized value cached")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestZeroBudgetDisables(t *testing.T) {
	c := New(0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestUnlimitedBudget(t *testing.T) {
	c := New(-1)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1<<20)
	}
	if c.Len() != 1000 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestDeleteAndPrefix(t *testing.T) {
	c := New(-1)
	c.Put("f/1/0/0", 1, 10)
	c.Put("f/1/0/1", 2, 10)
	c.Put("f/2/0/0", 3, 10)
	c.Delete("f/1/0/0")
	if _, ok := c.Get("f/1/0/0"); ok {
		t.Error("deleted key hit")
	}
	c.Delete("nonexistent") // no-op
	c.DeletePrefix("f/1/")
	if _, ok := c.Get("f/1/0/1"); ok {
		t.Error("prefix delete missed")
	}
	if _, ok := c.Get("f/2/0/0"); !ok {
		t.Error("prefix delete over-deleted")
	}
	if c.Used() != 10 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestClear(t *testing.T) {
	c := New(-1)
	c.Put("a", 1, 10)
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("clear incomplete")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived clear")
	}
}

func TestStats(t *testing.T) {
	c := New(-1)
	c.Put("a", 1, 1)
	c.Get("a")
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%50)
				c.Put(key, i, 10)
				c.Get(key)
				if i%100 == 0 {
					c.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	// Invariant: used never exceeds budget.
	if c.Used() > 10000 {
		t.Errorf("used %d exceeds budget", c.Used())
	}
}

func TestEvictionNeverExceedsBudget(t *testing.T) {
	c := New(100)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, int64(i%40))
		if c.Used() > 100 {
			t.Fatalf("budget exceeded: %d", c.Used())
		}
	}
}
