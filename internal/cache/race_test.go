package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every cache operation from many goroutines
// over an overlapping key space. It asserts nothing beyond "no race, no
// panic, no corrupted accounting" — run it under -race (make race / CI).
func TestConcurrentHammer(t *testing.T) {
	c := New(1 << 12) // small budget so eviction runs constantly
	const (
		workers = 8
		rounds  = 500
		keys    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("p%d/k%d", i%4, (w+i)%keys)
				switch i % 7 {
				case 0, 1, 2:
					c.Put(k, []byte(k), int64(len(k)+32))
				case 3, 4:
					if v, ok := c.Get(k); ok {
						if s, isBytes := v.([]byte); isBytes && string(s) != k {
							t.Errorf("cache returned wrong value for %s: %q", k, s)
							return
						}
					}
				case 5:
					c.Delete(k)
				default:
					if i%70 == 6 {
						c.DeletePrefix(fmt.Sprintf("p%d/", i%4))
					} else {
						c.Len()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	c.Clear()
	if n := c.Len(); n != 0 {
		t.Fatalf("len after clear = %d", n)
	}
}
