// Package cache provides the byte-budgeted LRU cache used by Sharoes
// clients. The cache holds *decrypted* objects — metadata, table views,
// manifests and data blocks — so a hit saves both the WAN round trip and
// the cryptographic work, which is exactly the effect the paper's Postmark
// experiment sweeps by varying cache size as a percentage of the data set.
package cache

import (
	"container/list"
	"strings"
	"sync"
)

// Cache is a thread-safe LRU with a byte budget.
type Cache struct {
	mu     sync.Mutex
	budget int64 // <0: unlimited; 0: disabled
	used   int64
	ll     *list.List
	m      map[string]*list.Element

	hits   int64
	misses int64
}

type entry struct {
	key  string
	val  any
	size int64
}

// New creates a cache. budget < 0 means unlimited; budget == 0 disables
// caching entirely (every Get misses).
func New(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == 0 {
		c.misses++
		return nil, false
	}
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put inserts or replaces the value for key, charging size bytes against
// the budget and evicting least-recently-used entries as needed. Values
// larger than the whole budget are not cached.
func (c *Cache) Put(key string, val any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == 0 || (c.budget > 0 && size > c.budget) {
		return
	}
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.used += size
	}
	for c.budget > 0 && c.used > c.budget {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.used -= e.size
}

// Delete removes key if present.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.m, key)
		c.used -= e.size
	}
}

// DeletePrefix removes every key with the given prefix — used to
// invalidate all blocks of a file or all views of a directory.
func (c *Cache) DeletePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.m {
		if strings.HasPrefix(key, prefix) {
			e := el.Value.(*entry)
			c.ll.Remove(el)
			delete(c.m, key)
			c.used -= e.size
		}
	}
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = make(map[string]*list.Element)
	c.used = 0
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Used returns the bytes currently charged.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
