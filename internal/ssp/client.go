package ssp

import (
	"fmt"
	"net"
	"strconv"
	"sync"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/wire"
)

// Dialer opens a connection to an SSP. netsim.Listener.Dial and closures
// over net.Dial both satisfy it.
type Dialer func() (net.Conn, error)

// Client is a remote BlobStore speaking the wire protocol over a single
// connection. All time spent on the wire is charged to the NETWORK
// component of the attached recorder, which is how Figure 13's breakdown
// is measured.
type Client struct {
	mu     sync.Mutex
	codec  *wire.Codec
	rec    *stats.Recorder
	tracer *obs.Tracer
}

var _ BlobStore = (*Client)(nil)

// Dial connects to an SSP. rec may be nil.
func Dial(dial Dialer, rec *stats.Recorder) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("ssp: dial: %w", err)
	}
	return &Client{codec: wire.NewCodec(conn), rec: rec}, nil
}

// Observe attaches a tracer (nil disables tracing). Each round trip then
// emits an "rpc.<op>" span classed NETWORK, and the request frame carries
// the current trace and span IDs so SSP-side spans join the same trace
// (see wire.Request.TraceID).
func (c *Client) Observe(tracer *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tracer
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codec.Close()
}

// call performs one round trip, charging the wait to NETWORK. With a
// tracer attached the round trip is also recorded as an "rpc.<op>" span,
// and the frame carries the trace context so the SSP's handler span joins
// the same trace.
func (c *Client) call(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := c.tracer.Start("rpc."+req.Op.String(), obs.ClassNetwork)
	if tid, sid := c.tracer.Current(); tid != 0 {
		req.TraceID, req.SpanID = uint64(tid), uint64(sid)
	}
	outBefore, inBefore := c.codec.BytesOut, c.codec.BytesIn
	stop := c.rec.Time(stats.Network)
	resp, err := c.codec.Call(req)
	stop()
	out, in := c.codec.BytesOut-outBefore, c.codec.BytesIn-inBefore
	c.rec.AddBytes(int(out), int(in))
	if sp != nil { // skip the strconv work when untraced
		sp.Annotate("bytes_out", strconv.FormatInt(out, 10))
		sp.Annotate("bytes_in", strconv.FormatInt(in, 10))
		sp.End()
	}
	if err != nil {
		return nil, fmt.Errorf("ssp: %s: %w", req.Op, err)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.call(&wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Get implements BlobStore.
func (c *Client) Get(ns wire.NS, key string) ([]byte, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpGet, NS: ns, Key: key})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Val, nil
}

// Put implements BlobStore.
func (c *Client) Put(ns wire.NS, key string, val []byte) error {
	resp, err := c.call(&wire.Request{Op: wire.OpPut, NS: ns, Key: key, Val: val})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Delete implements BlobStore.
func (c *Client) Delete(ns wire.NS, key string) error {
	resp, err := c.call(&wire.Request{Op: wire.OpDelete, NS: ns, Key: key})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// List implements BlobStore.
func (c *Client) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpList, NS: ns, Prefix: prefix})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// BatchGet implements BlobStore.
func (c *Client) BatchGet(items []wire.KV) ([]wire.KV, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpBatchGet, Items: items})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// BatchPut implements BlobStore.
func (c *Client) BatchPut(items []wire.KV) error {
	resp, err := c.call(&wire.Request{Op: wire.OpBatchPut, Items: items})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Stats implements BlobStore.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return Stats{}, err
	}
	if err := resp.AsError(); err != nil {
		return Stats{}, err
	}
	return decodeStats(resp.Items)
}
