package ssp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/wire"
)

// Dialer opens a connection to an SSP. netsim.Listener.Dial and closures
// over net.Dial both satisfy it.
type Dialer func() (net.Conn, error)

// ErrShutdown is returned for calls issued against (or in flight on) a
// closed client.
var ErrShutdown = errors.New("ssp: client is shut down")

// ErrDeadline is returned (wrapped) for calls that exceeded the client's
// per-call timeout. The connection itself is left alone: a late reply is
// dropped silently and the client stays usable. Layers that treat a
// deadline as evidence of a hung server (the reconnect wrapper does)
// match it with errors.Is and redial.
var ErrDeadline = errors.New("ssp: call deadline exceeded")

// Call is one in-flight RPC issued through Client.Go. When the server
// replies (or the transport fails), the call is delivered on Done.
type Call struct {
	Req  *wire.Request  // the request as sent (ReqID stamped by the client)
	Resp *wire.Response // the reply; nil on transport error
	Err  error          // transport error, if any (not remote status errors)
	Done chan *Call     // receives the completed call; must be buffered

	bytesOut int64
	bytesIn  int64

	// completed makes delivery exactly-once: a deadline expiry, a late
	// reply, and a terminate can all race to finish the same call, and
	// only the CAS winner writes Resp/Err and sends Done.
	completed atomic.Bool
	// timer is the pending deadline; stopped on delivery. Written under
	// the client mutex before the call is visible in pending.
	timer *time.Timer
	// expired marks a call failed by its deadline but left in pending as
	// a tombstone: its frame is (or may be) on the wire, so it must keep
	// its FIFO slot and absorb the eventual reply instead of letting the
	// reader treat that reply as unsolicited. Guarded by the client mutex.
	expired bool
}

// Response returns the reply, folding transport errors and non-OK remote
// statuses into one error — the usual way to consume a completed Call.
func (call *Call) Response() (*wire.Response, error) {
	if call.Err != nil {
		return nil, call.Err
	}
	if err := call.Resp.AsError(); err != nil {
		return nil, err
	}
	return call.Resp, nil
}

// Client is a remote BlobStore speaking the wire protocol over a single
// connection. Requests are pipelined, net/rpc style: a writer goroutine
// drains a send queue, a reader goroutine matches replies to pending calls
// by wire ReqID, and any number of goroutines may issue calls
// concurrently — each waits only for its own reply, so independent calls
// overlap their round trips instead of queueing behind one another.
//
// All time a call spends waiting on the wire is charged to the NETWORK
// component of the attached recorder, which is how Figure 13's breakdown
// is measured.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	rec  *stats.Recorder

	sendq chan *Call

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*Call // by ReqID
	fifo    []uint64         // send order, for old servers that omit ReqID
	closing bool             // Close started; new calls fail fast
	stopErr error            // terminal transport error, sticky

	readerDone chan struct{}
	writerDone chan struct{}

	// helloSent records that Dial opened with the v2 hello probe; the
	// reader then expects the server's first frame to settle negotiation.
	// Written before the loops start, read only by the read loop.
	helloSent bool
	// v2 flips true when the server acks the hello; the writer then
	// switches to v2 encoding with frame packing. Until the ack, requests
	// go out in v1 format, which every server version accepts.
	v2 atomic.Bool

	// tracer and inflight are read on call paths without c.mu.
	tracer   atomic.Pointer[obs.Tracer]
	inflight atomic.Pointer[obs.Gauge]
	expiries atomic.Pointer[obs.Counter]

	// timeout is the per-call deadline in nanoseconds (0 = none).
	timeout atomic.Int64
}

var _ BlobStore = (*Client)(nil)

// sendQueueDepth bounds the send queue; callers block (backpressure) once
// this many requests await the writer goroutine.
const sendQueueDepth = 64

// Dial connects to an SSP. rec may be nil. An optional tracer may be
// passed so even the first RPCs are traced (equivalent to calling Observe
// before any call); the old Dial-then-Observe path keeps working.
//
// The first frame out is the wire-v2 hello probe; a v2 server acks it
// and the connection upgrades to the self-describing codec with frame
// packing, while a v1 server answers it as an unknown op (by design —
// see wire.HelloFrame) and the connection stays on v1. Negotiation never
// blocks: requests issued before the verdict go out in v1 format, which
// both server generations accept.
func Dial(dial Dialer, rec *stats.Recorder, tracer ...*obs.Tracer) (*Client, error) {
	return dialVersion(dial, rec, false, tracer...)
}

// DialLegacy connects speaking only the v1 codec: no hello probe is
// sent and the client never upgrades. For cross-version interop tests
// and benchmarking the old wire format.
func DialLegacy(dial Dialer, rec *stats.Recorder, tracer ...*obs.Tracer) (*Client, error) {
	return dialVersion(dial, rec, true, tracer...)
}

func dialVersion(dial Dialer, rec *stats.Recorder, legacy bool, tracer ...*obs.Tracer) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("ssp: dial: %w", err)
	}
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 32*1024),
		br:         bufio.NewReaderSize(conn, 32*1024),
		rec:        rec,
		sendq:      make(chan *Call, sendQueueDepth),
		pending:    make(map[uint64]*Call),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	if len(tracer) > 0 {
		c.tracer.Store(tracer[0])
	}
	if !legacy {
		// The loops have not started, so the writer side is still ours.
		c.helloSent = true
		_, err := wire.WriteFrame(c.bw, wire.HelloFrame())
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("ssp: dial: %w", err)
		}
	}
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// Negotiated reports whether the connection has upgraded to wire v2.
// False means v1: the server declined (or was never offered) the hello,
// or its verdict has not arrived yet.
func (c *Client) Negotiated() bool { return c.v2.Load() }

// Observe attaches a tracer (nil disables tracing). Each round trip then
// emits an "rpc.<op>" span classed NETWORK, and the request frame carries
// the current trace and span IDs so SSP-side spans join the same trace
// (see wire.Request.TraceID).
func (c *Client) Observe(tracer *obs.Tracer) { c.tracer.Store(tracer) }

// ObserveMetrics attaches a metrics registry: the client then maintains an
// "ssp.client.inflight" gauge counting calls issued but not yet completed.
func (c *Client) ObserveMetrics(reg *obs.Registry) {
	if reg == nil {
		c.inflight.Store(nil)
		c.expiries.Store(nil)
		return
	}
	c.inflight.Store(reg.Gauge("ssp.client.inflight"))
	c.expiries.Store(reg.Counter("ssp.client.deadline_expired"))
}

// SetCallTimeout arms a per-call deadline: any call not answered within d
// completes with an error wrapping ErrDeadline. Zero disables deadlines.
// The writer and reader goroutines are unaffected — a hung server fails
// the pending call, not the client — and a reply arriving after expiry is
// discarded silently, leaving the connection usable.
func (c *Client) SetCallTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout.Store(int64(d))
}

// Close closes the connection. In-flight and queued calls complete with
// ErrShutdown (or the reply, if it races ahead of the close).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return nil
	}
	c.closing = true
	c.mu.Unlock()
	err := c.conn.Close() // unblocks reader and writer
	<-c.readerDone
	<-c.writerDone
	return err
}

// Go issues an asynchronous call. The request must not be mutated until
// the call completes; done must be buffered (a nil done allocates one).
// The completed call is delivered on its Done channel.
func (c *Client) Go(req *wire.Request, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	} else if cap(done) == 0 {
		panic("ssp: Go called with unbuffered done channel")
	}
	call := &Call{Req: req, Done: done}

	c.mu.Lock()
	if c.closing || c.stopErr != nil {
		err := c.stopErr
		c.mu.Unlock()
		if err == nil {
			err = ErrShutdown
		}
		call.completed.Store(true)
		call.Err = err
		call.Done <- call
		return call
	}
	c.seq++
	req.ReqID = c.seq
	c.pending[req.ReqID] = call
	// Arm the deadline while the registration lock is held, so every
	// goroutine that finds the call in pending also sees its timer.
	if d := c.timeout.Load(); d > 0 {
		call.timer = time.AfterFunc(time.Duration(d), func() { c.expire(call) })
	}
	c.mu.Unlock()

	if g := c.inflight.Load(); g != nil {
		g.Add(1)
	}
	select {
	case c.sendq <- call:
	case <-c.writerDone:
		// The writer exited while we raced it; any call registered before
		// termination was already failed, so this is usually a no-op.
		c.failPending(req.ReqID)
	}
	return call
}

// writeLoop drains the send queue onto the wire. Encoding and the shaped
// write happen here, off the callers' goroutines, so a caller's latency is
// its own round trip, not the serialization of everyone else's. Whatever
// has queued up while the previous write was in flight is taken as one
// batch and flushed once — on a v2 connection as a single pack frame, so
// a pipelined burst (or a write-behind lane flush) costs one syscall and
// one netsim transmit event instead of one per request.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	var pk wire.Pack
	var scratch []byte
	batch := make([]*Call, 0, wire.MaxPackFrames)
	for {
		select {
		case call := <-c.sendq:
			batch = append(batch[:0], call)
		greedy:
			for len(batch) < wire.MaxPackFrames {
				select {
				case more := <-c.sendq:
					batch = append(batch, more)
				default:
					break greedy
				}
			}
			c.writeBatch(&pk, &scratch, batch)
		case <-c.readerDone:
			// Reader hit a terminal error (or Close); drain stragglers
			// that raced past the closing check until the queue is empty
			// and no more can arrive.
			c.drainQueue()
			return
		}
	}
}

// reqApproxSize over-estimates a request's encoded size for pack
// budgeting.
func reqApproxSize(q *wire.Request) int {
	n := 48 + len(q.Key) + len(q.Val) + len(q.Prefix)
	for _, kv := range q.Items {
		n += 16 + len(kv.Key) + len(kv.Val)
	}
	return n
}

// writeBatch registers wire order for the batch, serializes it, and
// flushes once. A write failure is terminal for the connection: it fails
// everything pending so blocked senders unstick.
func (c *Client) writeBatch(pk *wire.Pack, scratch *[]byte, batch []*Call) {
	// Record wire order for ReqID-less reply matching. Skip calls a
	// concurrent terminate already failed: their frames are never
	// answered, so they must not occupy a FIFO slot. A call whose
	// deadline expired before its frame was written is dropped the same
	// way — nothing went out, so no reply will come and its tombstone can
	// go now.
	live := batch[:0]
	c.mu.Lock()
	for _, call := range batch {
		if cur, ok := c.pending[call.Req.ReqID]; !ok {
			continue
		} else if cur.expired {
			delete(c.pending, call.Req.ReqID)
			continue
		}
		c.fifo = append(c.fifo, call.Req.ReqID)
		live = append(live, call)
	}
	c.mu.Unlock()
	if len(live) == 0 {
		return
	}
	var err error
	if c.v2.Load() {
		err = c.writeBatchV2(pk, scratch, live)
	} else {
		for _, call := range live {
			*scratch = wire.AppendRequest((*scratch)[:0], call.Req)
			var n int
			if n, err = wire.WriteFrame(c.bw, *scratch); err != nil {
				break
			}
			atomic.StoreInt64(&call.bytesOut, int64(n))
		}
	}
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.terminate(fmt.Errorf("ssp: write: %w", err))
	}
}

// writeBatchV2 coalesces the batch into pack frames bounded by
// maxPackBytes; oversized requests (big Put blobs, bulk BatchPut) go out
// as standalone frames so a pack can never approach wire.MaxMessageSize.
func (c *Client) writeBatchV2(pk *wire.Pack, scratch *[]byte, live []*Call) error {
	flushPack := func() error {
		if pk.Len() == 0 {
			return nil
		}
		_, err := wire.WriteFrame(c.bw, pk.Payload())
		pk.Reset()
		return err
	}
	pk.Reset()
	for _, call := range live {
		if reqApproxSize(call.Req) > maxPackBytes {
			if err := flushPack(); err != nil {
				return err
			}
			*scratch = wire.AppendRequestV2((*scratch)[:0], call.Req)
			n, err := wire.WriteFrame(c.bw, *scratch)
			if err != nil {
				return err
			}
			atomic.StoreInt64(&call.bytesOut, int64(n))
			continue
		}
		sublen := pk.AddRequest(call.Req)
		atomic.StoreInt64(&call.bytesOut, int64(sublen)+4)
		if pk.Size() >= maxPackBytes {
			if err := flushPack(); err != nil {
				return err
			}
		}
	}
	return flushPack()
}

// drainQueue fails queued sends after shutdown/termination.
func (c *Client) drainQueue() {
	for {
		select {
		case call := <-c.sendq:
			c.failPending(call.Req.ReqID)
		default:
			return
		}
	}
}

// readLoop matches reply frames to pending calls. Replies carry the
// request's ReqID; a zero ReqID (an old, pre-multiplexing server) is
// matched to the oldest in-flight call, which is correct because such a
// server processes requests strictly in order.
//
// Frames land in pooled buffers (wire.ReadFrameBuf) and are decoded
// borrowed; responses are detached — Val/item bytes copied out — just
// before delivery, so only bytes the caller keeps are ever copied and
// the frame buffer itself is recycled, never reallocated per frame.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	// While negotiating, the server's first frame settles the codec: a
	// v2 helloAck upgrades the connection; anything v1 means an old
	// server just answered the hello probe as an unknown op — that reply
	// is negotiation plumbing, not a call response, and is discarded.
	negotiating := c.helloSent
	for {
		buf, n, err := wire.ReadFrameBuf(c.br)
		if err != nil {
			c.terminate(fmt.Errorf("ssp: read: %w", err))
			return
		}
		payload := buf.Bytes()
		if wire.IsV2(payload) {
			ok := c.readV2(payload, int64(n), &negotiating)
			buf.Release()
			if !ok {
				return
			}
			continue
		}
		resp, err := wire.DecodeResponseBorrowed(payload)
		if err != nil {
			buf.Release()
			c.terminate(fmt.Errorf("ssp: read: %w", err))
			return
		}
		if negotiating {
			negotiating = false
			buf.Release()
			continue
		}
		ok := c.handleResp(resp, int64(n))
		buf.Release()
		if !ok {
			return
		}
	}
}

// readV2 processes one v2 frame. The payload is borrowed from the pooled
// buffer the caller releases; everything delivered is detached first.
// Returns false on a terminal protocol error.
func (c *Client) readV2(payload []byte, n int64, negotiating *bool) bool {
	m, err := wire.DecodeV2(payload)
	if err != nil {
		c.terminate(fmt.Errorf("ssp: read: %w", err))
		return false
	}
	switch m.Kind {
	case wire.KindHelloAck:
		// Upgrade: the writer encodes v2 (and packs) from its next batch.
		c.v2.Store(true)
		*negotiating = false
		return true
	case wire.KindResponse:
		return c.handleResp(&m.Resp, n)
	case wire.KindPack:
		for _, raw := range m.Pack {
			sub, err := wire.DecodeV2(raw)
			if err != nil {
				c.terminate(fmt.Errorf("ssp: read: %w", err))
				return false
			}
			if sub.Kind != wire.KindResponse {
				c.terminate(fmt.Errorf("ssp: read: %w: pack element kind %d", wire.ErrBadMessage, sub.Kind))
				return false
			}
			if !c.handleResp(&sub.Resp, int64(len(raw)+4)) {
				return false
			}
		}
		return true
	default:
		c.terminate(fmt.Errorf("ssp: read: %w: unexpected frame kind %d", wire.ErrBadMessage, m.Kind))
		return false
	}
}

// handleResp matches one borrowed response to its pending call and
// delivers an owned (detached) copy. Returns false on an unsolicited
// reply, which is terminal.
func (c *Client) handleResp(resp *wire.Response, bytesIn int64) bool {
	call, expired := c.take(resp.ReqID)
	if call == nil {
		// Unsolicited reply: nothing sane to pair it with.
		c.terminate(fmt.Errorf("ssp: read: %w: unsolicited reply (req %d)", wire.ErrBadMessage, resp.ReqID))
		return false
	}
	if expired {
		// The reply to a deadline-expired call finally arrived. The
		// caller was already failed with ErrDeadline; discard the
		// payload and keep reading — the connection itself is fine.
		return true
	}
	owned := *resp
	owned.Detach()
	c.deliver(call, &owned, bytesIn, nil)
	return true
}

// take removes and returns the pending call for id (oldest if id is 0),
// reporting whether it was a deadline-expired tombstone.
func (c *Client) take(id uint64) (*Call, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == 0 {
		if len(c.fifo) == 0 {
			return nil, false
		}
		id = c.fifo[0]
	}
	call, ok := c.pending[id]
	if !ok {
		return nil, false
	}
	delete(c.pending, id)
	for i, v := range c.fifo {
		if v == id {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	return call, call.expired
}

// failPending completes the pending call id with the sticky stop error.
func (c *Client) failPending(id uint64) {
	call, _ := c.take(id)
	if call == nil {
		return
	}
	c.mu.Lock()
	err := c.stopErr
	closing := c.closing
	c.mu.Unlock()
	if closing || err == nil {
		err = ErrShutdown
	}
	c.deliver(call, nil, 0, err)
}

// expire fails one call with ErrDeadline when its timer fires. The call
// stays in pending as a tombstone (see Call.expired): its frame may be on
// the wire, so the slot must survive to swallow the late reply.
func (c *Client) expire(call *Call) {
	c.mu.Lock()
	cur, ok := c.pending[call.Req.ReqID]
	if !ok || cur != call {
		// Already answered, failed, or superseded; nothing to do.
		c.mu.Unlock()
		return
	}
	call.expired = true
	c.mu.Unlock()
	if ctr := c.expiries.Load(); ctr != nil {
		ctr.Inc()
	}
	c.deliver(call, nil, 0, ErrDeadline)
}

// terminate marks the transport broken and fails every pending call.
func (c *Client) terminate(err error) {
	c.mu.Lock()
	if c.stopErr == nil {
		c.stopErr = err
	}
	if c.closing {
		// Close() is tearing the client down; report shutdown, not the
		// read/write error its conn.Close provoked.
		c.stopErr = ErrShutdown
	}
	err = c.stopErr
	calls := make([]*Call, 0, len(c.pending))
	for id, call := range c.pending {
		delete(c.pending, id)
		calls = append(calls, call)
	}
	c.fifo = c.fifo[:0]
	c.mu.Unlock()
	for _, call := range calls {
		// Expired tombstones were already delivered; the CAS in deliver
		// makes this a no-op for them.
		c.deliver(call, nil, 0, err)
	}
}

// deliver completes a call exactly once: the first of {reply, deadline,
// terminate} to arrive wins, writes the outcome, and signals Done.
func (c *Client) deliver(call *Call, resp *wire.Response, bytesIn int64, err error) {
	if !call.completed.CompareAndSwap(false, true) {
		return
	}
	if call.timer != nil {
		call.timer.Stop()
	}
	call.Resp, call.bytesIn, call.Err = resp, bytesIn, err
	if g := c.inflight.Load(); g != nil {
		g.Add(-1)
	}
	call.Done <- call
}

// call performs one synchronous round trip, charging the wait to NETWORK.
// With a tracer attached the round trip is also recorded as an
// "rpc.<op>" span, and the frame carries the trace context so the SSP's
// handler span joins the same trace.
func (c *Client) call(req *wire.Request) (*wire.Response, error) {
	tracer := c.tracer.Load()
	sp := tracer.Start("rpc."+req.Op.String(), obs.ClassNetwork)
	if tid, sid := tracer.Current(); tid != 0 {
		req.TraceID, req.SpanID = uint64(tid), uint64(sid)
	}
	stop := c.rec.Time(stats.Network)
	call := c.Go(req, make(chan *Call, 1))
	<-call.Done
	stop()
	out, in := atomic.LoadInt64(&call.bytesOut), call.bytesIn
	c.rec.AddBytes(int(out), int(in))
	if sp != nil { // skip the strconv work when untraced
		sp.Annotate("bytes_out", strconv.FormatInt(out, 10))
		sp.Annotate("bytes_in", strconv.FormatInt(in, 10))
		sp.End()
	}
	if call.Err != nil {
		return nil, fmt.Errorf("ssp: %s: %w", req.Op, call.Err)
	}
	return call.Resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.call(&wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Get implements BlobStore.
func (c *Client) Get(ns wire.NS, key string) ([]byte, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpGet, NS: ns, Key: key})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Val, nil
}

// Put implements BlobStore.
func (c *Client) Put(ns wire.NS, key string, val []byte) error {
	resp, err := c.call(&wire.Request{Op: wire.OpPut, NS: ns, Key: key, Val: val})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Delete implements BlobStore.
func (c *Client) Delete(ns wire.NS, key string) error {
	resp, err := c.call(&wire.Request{Op: wire.OpDelete, NS: ns, Key: key})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// List implements BlobStore.
func (c *Client) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpList, NS: ns, Prefix: prefix})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// BatchGet implements BlobStore.
func (c *Client) BatchGet(items []wire.KV) ([]wire.KV, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpBatchGet, Items: items})
	if err != nil {
		return nil, err
	}
	if err := resp.AsError(); err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// BatchPut implements BlobStore.
func (c *Client) BatchPut(items []wire.KV) error {
	resp, err := c.call(&wire.Request{Op: wire.OpBatchPut, Items: items})
	if err != nil {
		return err
	}
	return resp.AsError()
}

// Stats implements BlobStore.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return Stats{}, err
	}
	if err := resp.AsError(); err != nil {
		return Stats{}, err
	}
	return decodeStats(resp.Items)
}
