package ssp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/wire"
)

// TestWriteBehindConcurrentFaulted hammers a WriteBehind layer from many
// goroutines at once — Put/Get/Delete/BatchPut/List/BatchGet/Barrier over
// overlapping keys — then arms a FaultWriteErr rule so flushes start
// failing mid-run, and finally races writers against Close. Contention on
// the coalescing buffer, the in-flight mirror, and the sticky-error slot
// is the point; run under -race (make race / CI) to make it a data-race
// detector, not just a smoke test.
func TestWriteBehindConcurrentFaulted(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	wb := NewWriteBehind(fs, WriteBehindOptions{
		MaxItems: 4, // tiny thresholds force constant flush traffic
		MaxDelay: 100 * time.Microsecond,
	})

	const (
		workers = 8
		rounds  = 60
		shared  = 8
	)

	// Phase 1: clean concurrent mixed ops. Every error is a failure.
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("shared/k%d", (w+i)%shared)
				switch i % 7 {
				case 0:
					if err := wb.Put(wire.NSData, key, []byte(key)); err != nil {
						errs <- fmt.Errorf("put: %w", err)
						return
					}
				case 1:
					got, err := wb.Get(wire.NSData, key)
					if err != nil && err != wire.ErrNotFound {
						errs <- fmt.Errorf("get: %w", err)
						return
					}
					if err == nil && string(got) != key {
						errs <- fmt.Errorf("get %s returned %q", key, got)
						return
					}
				case 2:
					if err := wb.Delete(wire.NSData, key); err != nil {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				case 3:
					if err := wb.BatchPut([]wire.KV{
						{NS: wire.NSData, Key: key, Val: []byte(key)},
						{NS: wire.NSMeta, Key: key, Val: []byte("m")},
					}); err != nil {
						errs <- fmt.Errorf("batchput: %w", err)
						return
					}
				case 4:
					if _, err := wb.List(wire.NSData, "shared/"); err != nil {
						errs <- fmt.Errorf("list: %w", err)
						return
					}
				case 5:
					if _, err := wb.BatchGet([]wire.KV{{NS: wire.NSData, Key: key}}); err != nil {
						errs <- fmt.Errorf("batchget: %w", err)
						return
					}
				default:
					if err := wb.Barrier(); err != nil {
						errs <- fmt.Errorf("barrier: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := wb.Barrier(); err != nil {
		t.Fatalf("barrier after clean phase: %v", err)
	}

	// Phase 2: arm a write fault on poison/ keys while writers and
	// barriers keep running. The injected error surfaces asynchronously —
	// from whichever Put/Barrier happens to collect the sticky flush
	// error — so any op may legitimately return ErrInjectedWrite.
	fs.AddRule(FaultRule{Mode: FaultWriteErr, NS: wire.NSData, KeyPart: "poison/"})
	var injected atomic.Int64
	errs = make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("poison/k%d", (w+i)%shared)
				var err error
				switch i % 3 {
				case 0:
					err = wb.Put(wire.NSData, key, []byte(key))
				case 1:
					err = wb.Barrier()
				default:
					_, err = wb.Get(wire.NSData, key)
					if err == wire.ErrNotFound {
						err = nil
					}
				}
				if err != nil && !errors.Is(err, ErrInjectedWrite) {
					errs <- fmt.Errorf("faulted phase op %d: %w", i, err)
					return
				}
				if err != nil {
					injected.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if injected.Load() == 0 {
		t.Fatal("write fault armed but no operation ever surfaced ErrInjectedWrite")
	}
	if fs.Triggered() == 0 {
		t.Fatal("write fault armed but FaultStore never triggered")
	}

	// Phase 3: disarm and drain. The buffer may still hold poison keys
	// (they flush fine now) and the sticky error from the last failed
	// flush may still be parked; a bounded number of barriers clears both.
	fs.ClearRules()
	drained := false
	for i := 0; i < 10; i++ {
		err := wb.Barrier()
		if err == nil {
			drained = true
			break
		}
		if !errors.Is(err, ErrInjectedWrite) {
			t.Fatalf("draining barrier: %v", err)
		}
	}
	if !drained {
		t.Fatal("sticky injected error never drained after rules were cleared")
	}

	// Durability probe: a post-drain write must reach the inner store.
	if err := wb.Put(wire.NSData, "sentinel", []byte("alive")); err != nil {
		t.Fatalf("sentinel put: %v", err)
	}
	if err := wb.Barrier(); err != nil {
		t.Fatalf("sentinel barrier: %v", err)
	}
	if got, err := fs.Get(wire.NSData, "sentinel"); err != nil || string(got) != "alive" {
		t.Fatalf("sentinel not flushed to inner store: %q, %v", got, err)
	}

	// Phase 4: race writers against Close. Operations that lose the race
	// get ErrShutdown; nothing may panic or deadlock, and Close must stay
	// idempotent.
	errs = make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("close/k%d", (w+i)%shared)
				var err error
				switch i % 3 {
				case 0:
					err = wb.Put(wire.NSData, key, []byte(key))
				case 1:
					_, err = wb.Get(wire.NSData, key)
					if err == wire.ErrNotFound {
						err = nil
					}
				default:
					err = wb.Barrier()
				}
				if err != nil && !errors.Is(err, ErrShutdown) {
					errs <- fmt.Errorf("close-race op %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := wb.Close(); err != nil {
			errs <- fmt.Errorf("close: %w", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
}
