package ssp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/wire"
)

// ErrReconnectFailed is the sticky give-up error of a ReconnectClient
// whose redial budget is exhausted: once MaxRedials consecutive dial
// attempts fail, every subsequent call fails fast wrapping this sentinel
// (and the last dial error) until the client is closed.
var ErrReconnectFailed = errors.New("ssp: reconnect budget exhausted")

// ReconnectOptions configures a ReconnectClient. Zero values take the
// defaults noted on each field.
type ReconnectOptions struct {
	// MaxRedials is the consecutive-dial-failure budget before the client
	// goes sticky with ErrReconnectFailed (default 8; <0 never gives up).
	MaxRedials int
	// BaseDelay seeds the exponential backoff between redials (default
	// 1ms); MaxDelay caps it (default 250ms). The actual sleep is
	// full-jitter: uniform in [0, min(MaxDelay, BaseDelay<<attempt)).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CallTimeout is installed on every dialed client via SetCallTimeout
	// (0 = no per-call deadline).
	CallTimeout time.Duration
	// Rand supplies jitter in [0, 1); nil uses an internal splitmix64
	// stream (math/rand is banned outside internal/workload). Sleep is
	// injectable for tests; nil uses time.Sleep.
	Rand  func() float64
	Sleep func(time.Duration)
	// Recorder and Tracer are forwarded to each dialed Client; Registry
	// additionally receives the ssp.reconnect.* counters and is bound to
	// each client's ObserveMetrics.
	Recorder *stats.Recorder
	Tracer   *obs.Tracer
	Registry *obs.Registry
	// Legacy dials every connection with DialLegacy: no hello probe, v1
	// frames for the connection's lifetime. For benchmarking the old
	// codec against the negotiated default.
	Legacy bool
}

func (o *ReconnectOptions) defaults() {
	if o.MaxRedials == 0 {
		o.MaxRedials = 8
	}
	if o.BaseDelay == 0 {
		o.BaseDelay = time.Millisecond
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 250 * time.Millisecond
	}
	if o.Rand == nil {
		o.Rand = newJitterRand()
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// ReconnectClient is a self-healing BlobStore over a Dialer: it lazily
// dials a pipelined Client and, when a call fails with a connection-class
// error (ErrShutdown, ErrDeadline, EOF, a closed or timed-out conn), it
// discards the broken client so the next call redials — with exponential
// backoff plus full jitter, and a sticky give-up state after MaxRedials
// consecutive dial failures. The failing call itself is NOT retried here:
// in-flight calls fail fast and retry policy lives one layer up
// (internal/resilience), which classifies the very errors this wrapper
// lets through.
//
// Each dialed client uses the same ReqID machinery as a direct Dial; a
// redial simply starts a fresh sequence on a fresh conn, so replies can
// never cross connections.
type ReconnectClient struct {
	dial Dialer
	opt  ReconnectOptions

	mu        sync.Mutex
	cond      *sync.Cond
	cur       *Client
	dialing   bool
	fails     int  // consecutive dial failures
	connected bool // at least one dial has ever succeeded
	sticky    error
	closed    bool
}

var _ BlobStore = (*ReconnectClient)(nil)

// NewReconnectClient wraps dial in a self-healing client. No connection
// is opened until the first call.
func NewReconnectClient(dial Dialer, opt ReconnectOptions) *ReconnectClient {
	opt.defaults()
	r := &ReconnectClient{dial: dial, opt: opt}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// count is a nil-safe reconnect-metric increment.
func (r *ReconnectClient) count(name string) {
	if r.opt.Registry != nil {
		r.opt.Registry.Counter(name).Inc()
	}
}

// connErr reports whether err condemns the underlying connection (as
// opposed to a per-key remote status like wire.ErrNotFound).
func connErr(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, ErrShutdown) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, wire.ErrBadMessage)
}

// backoff returns the jittered delay before dial attempt n (0-based).
func (r *ReconnectClient) backoff(n int) time.Duration {
	d := r.opt.BaseDelay
	for i := 0; i < n && d < r.opt.MaxDelay; i++ {
		d *= 2
	}
	if d > r.opt.MaxDelay {
		d = r.opt.MaxDelay
	}
	return time.Duration(r.opt.Rand() * float64(d))
}

// client returns a live Client, dialing if necessary. Exactly one
// goroutine dials at a time; the rest wait on the condition variable.
func (r *ReconnectClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		switch {
		case r.closed:
			return nil, ErrShutdown
		case r.sticky != nil:
			return nil, r.sticky
		case r.cur != nil:
			return r.cur, nil
		case r.dialing:
			r.cond.Wait()
			continue
		}
		r.dialing = true
		attempt := r.fails
		redial := r.connected
		r.mu.Unlock()

		if redial || attempt > 0 {
			r.opt.Sleep(r.backoff(attempt))
		}
		r.count("ssp.reconnect.attempts")
		c, err := dialVersion(r.dial, r.opt.Recorder, r.opt.Legacy, r.opt.Tracer)

		r.mu.Lock()
		r.dialing = false
		r.cond.Broadcast()
		if err == nil {
			if r.closed {
				// Close raced the dial; discard the fresh connection.
				r.mu.Unlock()
				cerr := c.Close()
				r.mu.Lock()
				if cerr != nil {
					r.count("ssp.reconnect.close_fail")
				}
				return nil, ErrShutdown
			}
			c.SetCallTimeout(r.opt.CallTimeout)
			c.ObserveMetrics(r.opt.Registry)
			if redial {
				r.count("ssp.reconnect.success")
			}
			r.connected = true
			r.fails = 0
			r.cur = c
			continue
		}
		r.fails++
		r.count("ssp.reconnect.dial_fail")
		if r.opt.MaxRedials > 0 && r.fails >= r.opt.MaxRedials {
			r.sticky = fmt.Errorf("%w: %d consecutive dial failures: %w", ErrReconnectFailed, r.fails, err)
			r.count("ssp.reconnect.giveup")
		}
	}
}

// dropConn discards c if it is still the current client, so the next call
// redials. The broken client is closed, failing its in-flight calls fast.
func (r *ReconnectClient) dropConn(c *Client) {
	r.mu.Lock()
	if r.cur != c {
		r.mu.Unlock()
		return
	}
	r.cur = nil
	r.mu.Unlock()
	r.count("ssp.reconnect.drops")
	if err := c.Close(); err != nil {
		r.count("ssp.reconnect.close_fail")
	}
}

// do runs op against the current client, condemning the connection on a
// connection-class failure so the next call redials.
func (r *ReconnectClient) do(op func(*Client) error) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	if err := op(c); err != nil {
		if connErr(err) {
			r.dropConn(c)
		}
		return err
	}
	return nil
}

// Close shuts the wrapper down; subsequent calls fail with ErrShutdown.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.cur
	r.cur = nil
	r.cond.Broadcast()
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// Ping checks liveness through the current (or a fresh) connection.
func (r *ReconnectClient) Ping() error {
	return r.do(func(c *Client) error { return c.Ping() })
}

// Get implements BlobStore.
func (r *ReconnectClient) Get(ns wire.NS, key string) ([]byte, error) {
	var val []byte
	err := r.do(func(c *Client) error {
		v, err := c.Get(ns, key)
		val = v
		return err
	})
	return val, err
}

// Put implements BlobStore.
func (r *ReconnectClient) Put(ns wire.NS, key string, val []byte) error {
	return r.do(func(c *Client) error { return c.Put(ns, key, val) })
}

// Delete implements BlobStore.
func (r *ReconnectClient) Delete(ns wire.NS, key string) error {
	return r.do(func(c *Client) error { return c.Delete(ns, key) })
}

// List implements BlobStore.
func (r *ReconnectClient) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	var items []wire.KV
	err := r.do(func(c *Client) error {
		its, err := c.List(ns, prefix)
		items = its
		return err
	})
	return items, err
}

// BatchGet implements BlobStore.
func (r *ReconnectClient) BatchGet(req []wire.KV) ([]wire.KV, error) {
	var items []wire.KV
	err := r.do(func(c *Client) error {
		its, err := c.BatchGet(req)
		items = its
		return err
	})
	return items, err
}

// BatchPut implements BlobStore.
func (r *ReconnectClient) BatchPut(items []wire.KV) error {
	return r.do(func(c *Client) error { return c.BatchPut(items) })
}

// Stats implements BlobStore.
func (r *ReconnectClient) Stats() (Stats, error) {
	var st Stats
	err := r.do(func(c *Client) error {
		s, err := c.Stats()
		st = s
		return err
	})
	return st, err
}

// jitterSeq decorrelates the default jitter streams of clients created in
// one process without math/rand (banned outside internal/workload).
var jitterSeq atomic.Uint64

// newJitterRand returns a splitmix64-backed uniform [0,1) source. Quality
// far exceeds what backoff jitter needs; determinism-sensitive callers
// (tests, the chaos harness) inject their own Rand instead.
func newJitterRand() func() float64 {
	var mu sync.Mutex
	state := 0x9e3779b97f4a7c15 * (jitterSeq.Add(1) + 0x243f6a8885a308d3)
	return func() float64 {
		mu.Lock()
		state += 0x9e3779b97f4a7c15
		z := state
		mu.Unlock()
		z ^= z >> 30
		z *= 0xbf58476d1ce4e9b5
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}
