// Package ssp implements the Storage Service Provider: the untrusted
// data-serving component of Sharoes.
//
// Per the paper (§IV), "there is no computation involved on the data at the
// SSP and it simply maintains a large hashtable for encrypted metadata
// objects and encrypted data blocks, both indexed by the inode numbers and
// either hash of user/group ID (Scheme-1) or CAP ID (Scheme-2)". This
// package provides that hashtable (in-memory and on-disk backends), a TCP
// server speaking the wire protocol, a blob-level client, and a fault
// injector that models a malicious SSP for the integrity test suite.
package ssp

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/sharoes/sharoes/internal/wire"
)

// Stats summarizes what the SSP is storing; used by the Scheme-1 vs
// Scheme-2 storage-overhead experiment.
type Stats struct {
	Objects int64
	Bytes   int64
	PerNS   map[wire.NS]int64 // object count per namespace
}

// BlobStore is the storage abstraction shared by local backends and the
// remote client: everything the Sharoes filesystem needs from an SSP.
// Get returns wire.ErrNotFound for missing keys.
type BlobStore interface {
	Get(ns wire.NS, key string) ([]byte, error)
	Put(ns wire.NS, key string, val []byte) error
	Delete(ns wire.NS, key string) error
	List(ns wire.NS, prefix string) ([]wire.KV, error)
	BatchGet(items []wire.KV) ([]wire.KV, error)
	BatchPut(items []wire.KV) error
	Stats() (Stats, error)
}

// ViewStore is the optional borrowed-read extension of BlobStore. The
// *View methods return values that alias the store's internal memory
// instead of copying — for callers (the SSP server handler) that only
// serialize the value onto the wire and drop it.
//
// Aliasing contract: returned slices are stable snapshots. The store
// must never mutate a stored value in place — updates must replace the
// slice (MemStore's Put/BatchPut always insert fresh copies), so a view
// taken before an overwrite keeps reading the old bytes, never a torn
// mix. Callers must not write through a view; views stay readable
// indefinitely, but holding large ones pins dead values in memory, so
// serialize and drop promptly.
type ViewStore interface {
	GetView(ns wire.NS, key string) ([]byte, error)
	ListView(ns wire.NS, prefix string) ([]wire.KV, error)
	BatchGetView(items []wire.KV) ([]wire.KV, error)
}

// MemStore is the in-memory backend: a mutex-guarded hashtable, exactly the
// paper's description of the SSP server.
type MemStore struct {
	mu sync.RWMutex
	m  map[wire.NS]map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[wire.NS]map[string][]byte)}
}

// Get implements BlobStore.
func (s *MemStore) Get(ns wire.NS, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	val, ok := s.m[ns][key]
	if !ok {
		return nil, wire.ErrNotFound
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}

// GetView implements ViewStore: like Get but the returned slice aliases
// the store's copy of the value. Safe under the ViewStore contract
// because Put/BatchPut replace value slices and never write into them.
func (s *MemStore) GetView(ns wire.NS, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	val, ok := s.m[ns][key]
	if !ok {
		return nil, wire.ErrNotFound
	}
	return val, nil
}

// Put implements BlobStore.
func (s *MemStore) Put(ns wire.NS, key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nsm, ok := s.m[ns]
	if !ok {
		nsm = make(map[string][]byte)
		s.m[ns] = nsm
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	nsm[key] = cp
	return nil
}

// Delete implements BlobStore. Deleting a missing key is not an error,
// matching filesystem unlink-after-crash idempotence needs.
func (s *MemStore) Delete(ns wire.NS, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m[ns], key)
	return nil
}

// List implements BlobStore; results are sorted by key.
func (s *MemStore) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []wire.KV
	for k, v := range s.m[ns] {
		if strings.HasPrefix(k, prefix) {
			cp := make([]byte, len(v))
			copy(cp, v)
			out = append(out, wire.KV{NS: ns, Key: k, Val: cp})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ListView implements ViewStore: like List but the item Vals alias store
// memory under the ViewStore contract.
func (s *MemStore) ListView(ns wire.NS, prefix string) ([]wire.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []wire.KV
	for k, v := range s.m[ns] {
		if strings.HasPrefix(k, prefix) {
			out = append(out, wire.KV{NS: ns, Key: k, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// BatchGet implements BlobStore; missing keys are omitted from the result.
func (s *MemStore) BatchGet(items []wire.KV) ([]wire.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]wire.KV, 0, len(items))
	for _, it := range items {
		if v, ok := s.m[it.NS][it.Key]; ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			out = append(out, wire.KV{NS: it.NS, Key: it.Key, Val: cp})
		}
	}
	return out, nil
}

// BatchGetView implements ViewStore: like BatchGet but the item Vals
// alias store memory under the ViewStore contract.
func (s *MemStore) BatchGetView(items []wire.KV) ([]wire.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]wire.KV, 0, len(items))
	for _, it := range items {
		if v, ok := s.m[it.NS][it.Key]; ok {
			out = append(out, wire.KV{NS: it.NS, Key: it.Key, Val: v})
		}
	}
	return out, nil
}

// BatchPut implements BlobStore; entries with Delete set are removed.
func (s *MemStore) BatchPut(items []wire.KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range items {
		if it.Delete {
			delete(s.m[it.NS], it.Key)
			continue
		}
		nsm, ok := s.m[it.NS]
		if !ok {
			nsm = make(map[string][]byte)
			s.m[it.NS] = nsm
		}
		cp := make([]byte, len(it.Val))
		copy(cp, it.Val)
		nsm[it.Key] = cp
	}
	return nil
}

// Stats implements BlobStore.
func (s *MemStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{PerNS: make(map[wire.NS]int64)}
	for ns, nsm := range s.m {
		for _, v := range nsm {
			st.Objects++
			st.Bytes += int64(len(v))
			st.PerNS[ns]++
		}
	}
	return st, nil
}

// DiskStore is a filesystem-backed store: one file per blob under
// root/<ns>/<hex(key)>. It gives the SSP durability across restarts; the
// benchmarks use MemStore since the paper's SSP cost model is
// network-bound, not disk-bound.
type DiskStore struct {
	root string
	mu   sync.RWMutex
}

// NewDiskStore creates (if needed) and opens a store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ssp: create store root: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

func (s *DiskStore) nsDir(ns wire.NS) string {
	return filepath.Join(s.root, fmt.Sprintf("ns%d", uint8(ns)))
}

func (s *DiskStore) path(ns wire.NS, key string) string {
	return filepath.Join(s.nsDir(ns), hex.EncodeToString([]byte(key)))
}

// Get implements BlobStore.
func (s *DiskStore) Get(ns wire.NS, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := os.ReadFile(s.path(ns, key))
	if os.IsNotExist(err) {
		return nil, wire.ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("ssp: read blob: %w", err)
	}
	return b, nil
}

// Put implements BlobStore; the write is atomic via rename.
func (s *DiskStore) Put(ns wire.NS, key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(ns, key, val)
}

func (s *DiskStore) putLocked(ns wire.NS, key string, val []byte) error {
	dir := s.nsDir(ns)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ssp: create ns dir: %w", err)
	}
	dst := s.path(ns, key)
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return fmt.Errorf("ssp: write blob: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("ssp: commit blob: %w", err)
	}
	return nil
}

// Delete implements BlobStore.
func (s *DiskStore) Delete(ns wire.NS, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(ns, key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ssp: delete blob: %w", err)
	}
	return nil
}

// List implements BlobStore.
func (s *DiskStore) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.nsDir(ns))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ssp: list ns: %w", err)
	}
	var out []wire.KV
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		keyBytes, err := hex.DecodeString(e.Name())
		if err != nil {
			continue
		}
		key := string(keyBytes)
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		val, err := os.ReadFile(filepath.Join(s.nsDir(ns), e.Name()))
		if err != nil {
			return nil, fmt.Errorf("ssp: read blob during list: %w", err)
		}
		out = append(out, wire.KV{NS: ns, Key: key, Val: val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// BatchGet implements BlobStore.
func (s *DiskStore) BatchGet(items []wire.KV) ([]wire.KV, error) {
	out := make([]wire.KV, 0, len(items))
	for _, it := range items {
		v, err := s.Get(it.NS, it.Key)
		if err == wire.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, wire.KV{NS: it.NS, Key: it.Key, Val: v})
	}
	return out, nil
}

// BatchPut implements BlobStore.
func (s *DiskStore) BatchPut(items []wire.KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, it := range items {
		if it.Delete {
			if err := os.Remove(s.path(it.NS, it.Key)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("ssp: batch delete: %w", err)
			}
			continue
		}
		if err := s.putLocked(it.NS, it.Key, it.Val); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements BlobStore.
func (s *DiskStore) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{PerNS: make(map[wire.NS]int64)}
	nsDirs, err := os.ReadDir(s.root)
	if err != nil {
		return st, fmt.Errorf("ssp: stats: %w", err)
	}
	for _, d := range nsDirs {
		var nsNum uint8
		if _, err := fmt.Sscanf(d.Name(), "ns%d", &nsNum); err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, d.Name()))
		if err != nil {
			return st, fmt.Errorf("ssp: stats: %w", err)
		}
		for _, f := range files {
			info, err := f.Info()
			if err != nil || f.IsDir() || strings.HasSuffix(f.Name(), ".tmp") {
				continue
			}
			st.Objects++
			st.Bytes += info.Size()
			st.PerNS[wire.NS(nsNum)]++
		}
	}
	return st, nil
}
