package ssp_test

import (
	"flag"
	"os"
	"testing"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/wire"
	"github.com/sharoes/sharoes/internal/workload"
)

// allocReport regenerates the committed allocation baseline:
//
//	go test ./internal/ssp -run TestWriteAllocReport -alloc-report
var allocReport = flag.Bool("alloc-report", false, "rewrite BENCH_alloc.json from fresh benchmark runs")

// allocOut redirects the regenerated report, e.g. for `make bench-alloc`
// to diff a fresh run against the committed baseline without touching it.
var allocOut = flag.String("alloc-out", "../../BENCH_alloc.json", "path the -alloc-report run writes")

// benchVal is the payload size for the codec benchmarks: big enough that
// a stray copy shows up unmistakably in B/op, small enough to stay in
// the first pool size classes.
const benchVal = 4096

// BenchmarkEncodeRequest measures the v2 encode hot path as the client
// writer uses it: appending into a reused buffer. The budget is ≤ 2
// allocs/op; steady state is zero because the scratch buffer stops
// growing after the first iteration.
func BenchmarkEncodeRequest(b *testing.B) {
	q := &wire.Request{
		Op: wire.OpPut, NS: wire.NSData, Key: "bench/key",
		Val: make([]byte, benchVal), ReqID: 7, TraceID: 1, SpanID: 2,
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendRequestV2(buf[:0], q)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

// BenchmarkDecodeResponse measures the v2 decode hot path as the client
// read loop uses it: DecodeV2Into with a reused Msg, values borrowed
// from the frame. Budget ≤ 2 allocs/op; steady state is zero.
func BenchmarkDecodeResponse(b *testing.B) {
	frame := wire.AppendResponseV2(nil, &wire.Response{
		Status: wire.StatusOK, ReqID: 9, Val: make([]byte, benchVal),
	})
	var m wire.Msg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.DecodeV2Into(frame, &m); err != nil {
			b.Fatal(err)
		}
	}
	if m.Kind != wire.KindResponse || len(m.Resp.Val) != benchVal {
		b.Fatalf("decoded kind=%d val=%d", m.Kind, len(m.Resp.Val))
	}
}

// BenchmarkRoundTripPipelined measures whole-stack cost per call — v2
// negotiation, pack batching both directions, pooled frame reads — with
// a 32-deep pipeline over an unlimited netsim link. No hard budget:
// per-call goroutine and channel machinery allocates by design; this row
// exists so bytes/op regressions (lost pooling, reintroduced copies)
// fail the compare gate.
func BenchmarkRoundTripPipelined(b *testing.B) {
	store := ssp.NewMemStore()
	if err := store.Put(wire.NSData, "k", make([]byte, benchVal)); err != nil {
		b.Fatal(err)
	}
	l := netsim.Listen(netsim.Unlimited)
	srv := ssp.NewServer(store, nil)
	go srv.Serve(l)
	defer srv.Close()
	c, err := ssp.Dial(l.Dial, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil { // settle negotiation before timing
		b.Fatal(err)
	}

	const window = 32
	b.ReportAllocs()
	b.ResetTimer()
	inflight := make(chan *ssp.Call, window)
	done := make(chan error, 1)
	go func() {
		for call := range inflight {
			<-call.Done
			if _, err := call.Response(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		inflight <- c.Go(&wire.Request{Op: wire.OpGet, NS: wire.NSData, Key: "k"}, nil)
	}
	close(inflight)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// TestWriteAllocReport regenerates BENCH_alloc.json when run with
// -alloc-report. The codec rows carry the hard ≤ 2 allocs/op budget;
// WriteAllocReport enforces it at generation time, so a regression can't
// even produce a baseline file.
func TestWriteAllocReport(t *testing.T) {
	if !*allocReport {
		t.Skip("pass -alloc-report to regenerate BENCH_alloc.json")
	}
	row := func(name string, fn func(*testing.B), budget int64) workload.AllocRow {
		r := testing.Benchmark(fn)
		t.Logf("%s: %v, %d allocs/op, %d B/op", name, r, r.AllocsPerOp(), r.AllocedBytesPerOp())
		return workload.AllocRow{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MaxAllocs:   budget,
		}
	}
	rep := workload.AllocReport{
		Schema: workload.AllocReportSchema,
		Rows: []workload.AllocRow{
			row("BenchmarkEncodeRequest", BenchmarkEncodeRequest, 2),
			row("BenchmarkDecodeResponse", BenchmarkDecodeResponse, 2),
			row("BenchmarkRoundTripPipelined", BenchmarkRoundTripPipelined, 0),
		},
	}
	f, err := os.Create(*allocOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := workload.WriteAllocReport(f, rep); err != nil {
		t.Fatal(err)
	}
}
