package ssp

import (
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// TestServerMetricsAndJoinedSpans checks the Observe plumbing end to end:
// per-op counters and latency histograms fill in, the connection gauge
// returns to zero, and SSP-side spans join the client's trace through the
// wire extension.
func TestServerMetricsAndJoinedSpans(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	reg := obs.NewRegistry()
	l.Observe(reg)
	serverTracer := obs.NewTracer("ssp")
	srv := NewServer(NewMemStore(), nil)
	srv.Observe(reg, serverTracer)
	go srv.Serve(l)
	defer srv.Close()

	clientTracer := obs.NewTracer("client")
	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Observe(clientTracer)

	root := clientTracer.Start("client.op", obs.ClassNone)
	if err := c.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(wire.NSData, "k"); err != nil {
		t.Fatal(err)
	}
	root.End()

	if got := reg.Counter("ssp.op.put").Value(); got != 1 {
		t.Errorf("ssp.op.put = %d, want 1", got)
	}
	if got := reg.Counter("ssp.op.get").Value(); got != 1 {
		t.Errorf("ssp.op.get = %d, want 1", got)
	}
	if hs := reg.Histogram("ssp.op.get.ns").Snapshot(); hs.Count != 1 || hs.SumNanos <= 0 {
		t.Errorf("ssp.op.get.ns snapshot = %+v", hs)
	}
	if got := reg.Counter("netsim.dials").Value(); got != 1 {
		t.Errorf("netsim.dials = %d, want 1", got)
	}
	if got := reg.Counter("netsim.bytes_up").Value(); got <= 0 {
		t.Error("netsim.bytes_up not counted")
	}
	if got := reg.Counter("netsim.transmits").Value(); got <= 0 {
		t.Error("netsim.transmits not counted")
	}

	// Client trace: root + two rpc spans, all one trace.
	cs := clientTracer.Spans()
	if len(cs) != 3 {
		t.Fatalf("client spans = %d, want 3", len(cs))
	}
	// Server trace: two handler spans joined to the client's trace, each
	// parented to the rpc span that carried it.
	ss := serverTracer.Spans()
	if len(ss) != 2 {
		t.Fatalf("server spans = %d, want 2", len(ss))
	}
	rpcIDs := map[obs.SpanID]bool{cs[0].ID: true, cs[1].ID: true}
	for _, sp := range ss {
		if sp.Trace != root.Trace {
			t.Errorf("server span %s trace %d, want %d", sp.Name, sp.Trace, root.Trace)
		}
		if !rpcIDs[sp.Parent] {
			t.Errorf("server span %s parent %d is not an rpc span", sp.Name, sp.Parent)
		}
	}

	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge("ssp.conns").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("ssp.conns gauge did not return to zero")
		}
		time.Sleep(time.Millisecond)
	}
	if reg.Counter("ssp.bytes_in").Value() <= 0 || reg.Counter("ssp.bytes_out").Value() <= 0 {
		t.Error("ssp byte counters not flushed on disconnect")
	}
}

// TestShutdownDrains checks graceful drain: an idle connection is closed
// promptly, the listener stops accepting, and Shutdown returns without
// waiting for the full grace period.
func TestShutdownDrains(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := srv.Shutdown(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shutdown of idle server took %v", d)
	}
	if err := c.Ping(); err == nil {
		t.Error("ping succeeded after drain")
	}
	if _, err := l.Dial(); err == nil {
		t.Error("dial succeeded after drain")
	}
	srv.Shutdown(time.Second) // idempotent
}

// TestShutdownFinishesInFlight: a request already being processed when
// Shutdown starts must complete and get its response.
func TestShutdownFinishesInFlight(t *testing.T) {
	slow := &slowStore{BlobStore: NewMemStore(), delay: 100 * time.Millisecond}
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(slow, nil)
	go srv.Serve(l)

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil { // ensure the handler is up
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() { errc <- c.Put(wire.NSData, "k", []byte("v")) }()
	time.Sleep(20 * time.Millisecond) // let the put reach the slow store
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight put failed during drain: %v", err)
	}
}

// slowStore delays writes to keep a request in flight during drain.
type slowStore struct {
	BlobStore
	delay time.Duration
}

func (s *slowStore) Put(ns wire.NS, key string, val []byte) error {
	time.Sleep(s.delay)
	return s.BlobStore.Put(ns, key, val)
}
