package ssp

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/wire"
)

// startV1Server runs a minimal old-generation SSP server: the pre-v2
// codec loop — wire.Codec, serial dispatch, ReqID echo — with no
// knowledge of magic bytes, hellos, or packs. It is the downgrade peer
// for the v2→v1 interop tests; a hello probe reaches apply() as an
// unknown op and is answered StatusBadRequest, exactly like a real old
// server.
func startV1Server(t *testing.T, store BlobStore) (*netsim.Listener, func()) {
	t.Helper()
	l := netsim.Listen(netsim.Unlimited)
	inner := NewServer(store, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				codec := wire.NewCodec(conn)
				for {
					req, err := codec.ReadRequest()
					if err != nil {
						return
					}
					resp := inner.apply(req)
					resp.ReqID = req.ReqID
					if err := codec.SendResponse(resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l, func() {
		l.Close()
		wg.Wait()
	}
}

// exerciseStore drives a client through every op shape the codecs
// serialize differently: small and multi-megabyte values (standalone
// frames vs packed), lists, batches, and a pipelined burst.
func exerciseStore(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	big := bytes.Repeat([]byte("B"), 256<<10)
	if err := c.Put(wire.NSData, "big", big); err != nil {
		t.Fatalf("put big: %v", err)
	}
	got, err := c.Get(wire.NSData, "big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("get big: %d bytes, %v", len(got), err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Put(wire.NSMeta, fmt.Sprintf("m/%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	items, err := c.List(wire.NSMeta, "m/")
	if err != nil || len(items) != 8 {
		t.Fatalf("list: %d items, %v", len(items), err)
	}
	if err := c.BatchPut([]wire.KV{
		{NS: wire.NSMeta, Key: "m/0", Delete: true},
		{NS: wire.NSMeta, Key: "m/9", Val: []byte("nine")},
	}); err != nil {
		t.Fatalf("batchput: %v", err)
	}
	res, err := c.BatchGet([]wire.KV{
		{NS: wire.NSMeta, Key: "m/9"},
		{NS: wire.NSMeta, Key: "m/0"},
	})
	if err != nil || len(res) != 1 || string(res[0].Val) != "nine" {
		t.Fatalf("batchget: %+v, %v", res, err)
	}
	// Pipelined burst: enough concurrent calls that both directions
	// coalesce into packs when the codec allows.
	calls := make([]*Call, 32)
	for i := range calls {
		calls[i] = c.Go(&wire.Request{Op: wire.OpGet, NS: wire.NSData, Key: "big"}, nil)
	}
	for i, call := range calls {
		<-call.Done
		resp, err := call.Response()
		if err != nil {
			t.Fatalf("burst %d: %v", i, err)
		}
		if !bytes.Equal(resp.Val, big) {
			t.Fatalf("burst %d: %d bytes", i, len(resp.Val))
		}
	}
}

// TestInteropV2ClientV1Server is the downgrade handshake: a current
// client dials an old server, whose StatusBadRequest answer to the hello
// probe must demote the connection to v1 — invisibly to callers.
func TestInteropV2ClientV1Server(t *testing.T) {
	l, stop := startV1Server(t, NewMemStore())
	defer stop()
	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exerciseStore(t, c)
	if c.Negotiated() {
		t.Fatal("client negotiated v2 against a v1 server")
	}
}

// TestInteropLegacyClientV2Server is the reverse direction: an old
// client — no hello, v1 frames with trailing-uvarint TraceID/ReqID
// extensions — against the current server, which must answer every frame
// in v1.
func TestInteropLegacyClientV2Server(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	defer l.Close()
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()
	c, err := DialLegacy(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exerciseStore(t, c)
	if c.Negotiated() {
		t.Fatal("legacy client reports v2")
	}
	// The trailing-uvarint trace extension must still round-trip: a
	// traced request is the old encoding's most fragile shape.
	req := &wire.Request{Op: wire.OpGet, NS: wire.NSData, Key: "big", TraceID: 7, SpanID: 9}
	call := c.Go(req, nil)
	<-call.Done
	if _, err := call.Response(); err != nil {
		t.Fatalf("traced v1 request: %v", err)
	}
}

// TestInteropV2BothWays is the happy path: hello → ack upgrade, then all
// traffic — including pipelined pack frames both directions — in v2.
func TestInteropV2BothWays(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	defer l.Close()
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The ack is ordered before the ping's response, so negotiation has
	// settled by the time any call completes.
	if !c.Negotiated() {
		t.Fatal("client did not negotiate v2 against a v2 server")
	}
	exerciseStore(t, c)
}
