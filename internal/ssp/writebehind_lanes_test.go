package ssp

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/wire"
)

// laneStore fakes a sharded inner store: a MemStore that implements
// Router (keys route by a prefix digit) and Flusher, recording every
// BatchPut's lane composition and every Barrier call.
type laneStore struct {
	*MemStore
	routes int

	mu       sync.Mutex
	batches  [][]wire.KV
	barriers int
}

func newLaneStore(routes int) *laneStore {
	return &laneStore{MemStore: NewMemStore(), routes: routes}
}

func (l *laneStore) Routes() int { return l.routes }

func (l *laneStore) RouteID(ns wire.NS, key string) int {
	// "lane<N>/..." keys route to lane N; everything else to lane 0.
	if strings.HasPrefix(key, "lane") && len(key) > 4 {
		return int(key[4]-'0') % l.routes
	}
	return 0
}

func (l *laneStore) BatchPut(items []wire.KV) error {
	l.mu.Lock()
	l.batches = append(l.batches, append([]wire.KV(nil), items...))
	l.mu.Unlock()
	return l.MemStore.BatchPut(items)
}

func (l *laneStore) Barrier() error {
	l.mu.Lock()
	l.barriers++
	l.mu.Unlock()
	return nil
}

// A write-behind flush over a routing store must split into one BatchPut
// per backend lane, never a mixed frame.
func TestWriteBehindShardsFlushesPerLane(t *testing.T) {
	inner := newLaneStore(3)
	wb := NewWriteBehind(inner, WriteBehindOptions{MaxItems: 1 << 20, MaxDelay: -1})

	var want []wire.KV
	for lane := 0; lane < 3; lane++ {
		for i := 0; i < 5; i++ {
			kv := wire.KV{NS: wire.NSData, Key: "lane" + string(rune('0'+lane)) + "/k" + string(rune('a'+i)), Val: []byte{byte(lane)}}
			want = append(want, kv)
			if err := wb.Put(kv.NS, kv.Key, kv.Val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wb.Barrier(); err != nil {
		t.Fatal(err)
	}

	inner.mu.Lock()
	batches := inner.batches
	barriers := inner.barriers
	inner.mu.Unlock()
	if len(batches) != 3 {
		t.Fatalf("flush produced %d BatchPuts, want one per lane (3)", len(batches))
	}
	seen := 0
	for _, b := range batches {
		lane := inner.RouteID(b[0].NS, b[0].Key)
		for _, kv := range b {
			if inner.RouteID(kv.NS, kv.Key) != lane {
				t.Fatalf("mixed lanes in one BatchPut: %q with lane-%d keys", kv.Key, lane)
			}
		}
		seen += len(b)
	}
	if seen != len(want) {
		t.Fatalf("%d items flushed, want %d", seen, len(want))
	}
	if barriers == 0 {
		t.Fatal("Barrier did not fan out to the inner Flusher")
	}
	for _, kv := range want {
		v, err := wb.Get(kv.NS, kv.Key)
		if err != nil || v[0] != kv.Val[0] {
			t.Fatalf("Get(%q) = %v, %v", kv.Key, v, err)
		}
	}
}

// A single-lane batch must not pay the goroutine fan-out, and a
// non-routing inner store keeps the old single-BatchPut path.
func TestWriteBehindLaneDegenerateCases(t *testing.T) {
	inner := newLaneStore(3)
	wb := NewWriteBehind(inner, WriteBehindOptions{MaxItems: 1 << 20, MaxDelay: -1})
	for i := 0; i < 4; i++ {
		if err := wb.Put(wire.NSData, "lane1/k"+string(rune('a'+i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := wb.Barrier(); err != nil {
		t.Fatal(err)
	}
	inner.mu.Lock()
	n := len(inner.batches)
	inner.mu.Unlock()
	if n != 1 {
		t.Fatalf("single-lane flush produced %d BatchPuts, want 1", n)
	}

	plain := NewMemStore()
	wb2 := NewWriteBehind(plain, WriteBehindOptions{MaxItems: 1 << 20, MaxDelay: -1})
	if err := wb2.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := wb2.Barrier(); err != nil {
		t.Fatal(err)
	}
	if v, err := plain.Get(wire.NSData, "k"); err != nil || string(v) != "v" {
		t.Fatalf("plain inner store missed the flush: %v, %v", v, err)
	}
}

// errLane fails BatchPut for one lane only; the flush must surface the
// failure as the usual sticky deferred error while other lanes land.
type errLane struct {
	*laneStore
	failLane int
}

func (e *errLane) BatchPut(items []wire.KV) error {
	if len(items) > 0 && e.RouteID(items[0].NS, items[0].Key) == e.failLane {
		return ErrInjectedWrite
	}
	return e.laneStore.BatchPut(items)
}

func TestWriteBehindLaneErrorSticks(t *testing.T) {
	inner := &errLane{laneStore: newLaneStore(2), failLane: 1}
	wb := NewWriteBehind(inner, WriteBehindOptions{MaxItems: 1 << 20, MaxDelay: -1})
	if err := wb.Put(wire.NSData, "lane0/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Put(wire.NSData, "lane1/b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Barrier(); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Barrier = %v, want the failing lane's error", err)
	}
	if err := wb.Barrier(); err != nil {
		t.Fatalf("sticky lane error did not clear: %v", err)
	}
	if v, err := inner.MemStore.Get(wire.NSData, "lane0/a"); err != nil || string(v) != "x" {
		t.Fatalf("healthy lane did not land: %v, %v", v, err)
	}
}

// FaultSlow delays matching Gets without altering the value.
func TestFaultSlow(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(FaultRule{Mode: FaultSlow, NS: wire.NSData, Delay: 30 * time.Millisecond})
	start := time.Now()
	v, err := fs.Get(wire.NSData, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("slow Get = %q, %v; value must be served honestly", v, err)
	}
	if e := time.Since(start); e < 30*time.Millisecond {
		t.Fatalf("slow Get returned in %v, want >= 30ms", e)
	}
	if fs.Triggered() == 0 {
		t.Error("FaultSlow not counted as triggered")
	}
	// Writes are unaffected.
	start = time.Now()
	if err := fs.Put(wire.NSData, "k2", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 20*time.Millisecond {
		t.Errorf("Put took %v under a read-path FaultSlow rule", e)
	}
}

// Path-aware matching: a write fault and a read fault on the same store
// coexist (a fully lost shard), and NS 0 wildcards every namespace.
func TestFaultRulesCoexistAndWildcard(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(wire.NSMeta, "m", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Shard loss: refuses writes AND denies reads, via wildcard rules —
	// declaration order must not matter for the read path.
	fs.AddRule(FaultRule{Mode: FaultWriteErr})
	fs.AddRule(FaultRule{Mode: FaultDrop})
	if err := fs.Put(wire.NSData, "k", []byte("v2")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Put on lost shard = %v, want ErrInjectedWrite", err)
	}
	if _, err := fs.Get(wire.NSData, "k"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("Get on lost shard = %v, want not-found", err)
	}
	if _, err := fs.Get(wire.NSMeta, "m"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("wildcard NS did not match NSMeta: %v", err)
	}
	fs.ClearRules()
	if v, err := fs.Get(wire.NSData, "k"); err != nil || string(v) != "v" {
		t.Fatalf("shard did not recover after ClearRules: %q, %v", v, err)
	}
}
