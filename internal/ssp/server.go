package ssp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// Server serves a BlobStore over the wire protocol. One reader and one
// response-writer goroutine per connection; the store provides its own
// synchronization. The server speaks both wire versions, detecting each
// incoming frame by magic: a connection that sends a v2 hello is
// answered in v2 (with response packing) from the ack onward, anything
// else is answered in v1.
type Server struct {
	store BlobStore
	views ViewStore // non-nil when store supports borrowed reads
	log   *log.Logger

	// Observability; all nil-safe, attached via Observe.
	reg    *obs.Registry
	tracer *obs.Tracer

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]*connEntry
	closed    bool
	draining  bool
	wg        sync.WaitGroup
}

// connEntry tracks one connection's handler state for graceful drain:
// inflight counts requests read off the wire whose responses have not yet
// been written; zero means the handler is parked waiting for the next
// frame (or between reads) with nothing outstanding.
type connEntry struct {
	inflight atomic.Int64
}

// maxConnConcurrency bounds concurrent dispatch per connection for
// multiplexed (nonzero-ReqID) requests.
const maxConnConcurrency = 32

// NewServer creates a server over store. logger may be nil to disable
// logging.
func NewServer(store BlobStore, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	views, _ := store.(ViewStore)
	return &Server{
		store:     store,
		views:     views,
		log:       logger,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connEntry),
	}
}

// Observe attaches a metrics registry and a tracer. Either may be nil
// (the corresponding instrumentation becomes a no-op). Must be called
// before Serve; the server reads these fields without locking.
//
// Metrics exposed: ssp.conns (gauge of live connections),
// ssp.op.<op> / ssp.op.<op>.ns (per-operation count and latency
// histogram), ssp.bytes_in / ssp.bytes_out (wire traffic). Incoming
// requests carrying a trace ID get an "ssp.<op>" span on tracer joined
// to the client's trace. Labels are operation names from the wire
// protocol — never request keys or values, which are untrusted and, in
// Sharoes, ciphertext.
func (s *Server) Observe(reg *obs.Registry, tracer *obs.Tracer) {
	s.reg = reg
	s.tracer = tracer
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return fmt.Errorf("ssp: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		entry := &connEntry{}
		s.conns[conn] = entry
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, entry)
	}
}

// Close stops accepting, closes every live connection and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// SeverConns force-closes every live connection without stopping the
// listeners: clients see their links die mid-stream (in-flight calls
// fail) and may immediately redial. It is the server-side analogue of
// netsim.Listener.SeverConns — the fault injection hook behind the
// connection-drop and flap modes — and is also reachable operationally
// to kick all clients off a live SSP. Returns the number of connections
// severed.
func (s *Server) SeverConns() int {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.log.Printf("ssp: sever close: %v", err)
		}
	}
	if len(conns) > 0 {
		s.reg.Counter("ssp.severs").Add(int64(len(conns)))
	}
	return len(conns)
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, lets requests already being processed finish, then closes
// everything. Idle connections (parked between requests) are closed
// immediately; busy handlers finish their current request, send the
// response, and exit. If the drain has not completed within grace, the
// remaining connections are force-closed. Safe to call concurrently with
// Close and with itself.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make(map[net.Conn]*connEntry, len(s.conns))
	for c, e := range s.conns {
		conns[c] = e
	}
	s.mu.Unlock()

	if !alreadyDraining {
		for c, e := range conns {
			// Unblock parked readers. The deadline covers real TCP
			// conns; closing idle conns covers transports that accept
			// but do not enforce deadlines (netsim). A conn that turns
			// busy between the check and the close just drops one
			// not-yet-processed request — never one in flight.
			c.SetReadDeadline(time.Now())
			if e.inflight.Load() == 0 {
				c.Close()
			}
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
	}
	return s.Close()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// outMsg is one unit of work for a connection's response writer: either
// a response to serialize or the negotiation ack.
type outMsg struct {
	resp     *wire.Response
	helloAck bool
}

// connState is the per-connection transport state shared by the read
// loop, the dispatch workers, and the response writer.
type connState struct {
	out      chan outMsg
	v2       atomic.Bool // peer sent a v2 hello; reply in v2 from the ack on
	bytesOut int64       // owned by the response writer until it exits
}

// maxPackBytes caps how large a coalesced response pack grows; responses
// estimated bigger than this go out as standalone frames so a pack can
// never approach wire.MaxMessageSize.
const maxPackBytes = 1 << 20

func (s *Server) handle(conn net.Conn, entry *connEntry) {
	defer s.wg.Done()
	var workers sync.WaitGroup
	sem := make(chan struct{}, maxConnConcurrency)
	br := bufio.NewReaderSize(conn, 64<<10)
	st := &connState{out: make(chan outMsg, maxConnConcurrency)}
	writerDone := make(chan struct{})
	go s.respWriter(conn, st, writerDone)
	var bytesIn int64
	defer func() {
		// Let in-flight workers enqueue their responses, then close the
		// response channel so the writer drains, flushes, and exits
		// before the conn goes down.
		workers.Wait()
		close(st.out)
		<-writerDone
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.reg.Counter("ssp.bytes_in").Add(bytesIn)
		s.reg.Counter("ssp.bytes_out").Add(st.bytesOut)
	}()
	s.reg.Gauge("ssp.conns").Add(1)
	defer s.reg.Gauge("ssp.conns").Add(-1)
	for {
		buf, n, err := wire.ReadFrameBuf(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !s.isDraining() {
				s.log.Printf("ssp: read request: %v", err)
			}
			return
		}
		bytesIn += int64(n)
		if !s.readFrame(st, entry, &workers, sem, buf) {
			return
		}
		if s.isDraining() {
			return
		}
	}
}

// readFrame classifies one frame — v2 hello/request/pack or v1 request —
// and routes it to dispatch. It consumes the caller's buffer reference
// (transferring it to dispatch workers, with one extra Retain per
// additional pack sub-message). Returns false when the connection should
// be torn down.
func (s *Server) readFrame(st *connState, entry *connEntry, workers *sync.WaitGroup, sem chan struct{}, buf *wire.Buf) bool {
	payload := buf.Bytes()
	if !wire.IsV2(payload) {
		req, err := wire.DecodeRequestBorrowed(payload)
		if err != nil {
			buf.Release()
			if !s.isDraining() {
				s.log.Printf("ssp: read request: %v", err)
			}
			return false
		}
		s.process(st, entry, workers, sem, req, buf)
		return true
	}
	m, err := wire.DecodeV2(payload)
	if err != nil {
		buf.Release()
		if !s.isDraining() {
			s.log.Printf("ssp: read request: %v", err)
		}
		return false
	}
	switch m.Kind {
	case wire.KindHello:
		// Negotiation: from here on this conn speaks v2. The ack is
		// ordered through the response channel like any reply.
		st.v2.Store(true)
		buf.Release()
		st.out <- outMsg{helloAck: true}
		return true
	case wire.KindRequest:
		s.process(st, entry, workers, sem, &m.Req, buf)
		return true
	case wire.KindPack:
		// One buffer, one reference per sub-message: the read loop's
		// reference goes to the first, each further sub-message Retains.
		for i, raw := range m.Pack {
			if i > 0 {
				buf.Retain()
			}
			sub, err := wire.DecodeV2(raw)
			if err != nil || sub.Kind != wire.KindRequest {
				buf.Release()
				if err == nil {
					err = fmt.Errorf("%w: pack element kind %d", wire.ErrBadMessage, sub.Kind)
				}
				if !s.isDraining() {
					s.log.Printf("ssp: read request: %v", err)
				}
				return false
			}
			s.process(st, entry, workers, sem, &sub.Req, buf)
		}
		if len(m.Pack) == 0 {
			buf.Release()
		}
		return true
	default:
		// A client has no business sending responses or acks.
		buf.Release()
		if !s.isDraining() {
			s.log.Printf("ssp: read request: unexpected frame kind %d", m.Kind)
		}
		return false
	}
}

// process routes one decoded request into the dispatch policy: serial
// for unmultiplexed (ReqID 0) requests, concurrent under the semaphore
// otherwise. Consumes one reference on buf.
func (s *Server) process(st *connState, entry *connEntry, workers *sync.WaitGroup, sem chan struct{}, req *wire.Request, buf *wire.Buf) {
	entry.inflight.Add(1)
	if req.ReqID == 0 {
		// Unmultiplexed (pre-ReqID) client: requests are processed
		// strictly in order, one at a time, exactly as before. Wait
		// out any multiplexed stragglers so replies stay ordered even
		// for a peer that mixes both styles.
		workers.Wait()
		s.dispatch(st, entry, req, buf)
	} else {
		sem <- struct{}{}
		workers.Add(1)
		go func() {
			defer func() { workers.Done(); <-sem }()
			s.dispatch(st, entry, req, buf)
		}()
	}
}

// dispatch executes one request and enqueues its response, echoing the
// request's ReqID so pipelined clients can match out-of-order replies.
// The request borrows buf; apply copies whatever it stores, so the
// reference is released as soon as apply returns.
func (s *Server) dispatch(st *connState, entry *connEntry, req *wire.Request, buf *wire.Buf) {
	defer entry.inflight.Add(-1)
	s.reg.Gauge("ssp.inflight").Add(1)
	defer s.reg.Gauge("ssp.inflight").Add(-1)
	opName := req.Op.String()
	sp := s.tracer.StartRemote(obs.TraceID(req.TraceID), obs.SpanID(req.SpanID), "ssp."+opName, obs.ClassNone)
	start := time.Now()
	resp := s.apply(req)
	resp.ReqID = req.ReqID
	buf.Release()
	s.reg.Histogram("ssp.op." + opName + ".ns").Observe(time.Since(start))
	s.reg.Counter("ssp.op." + opName).Inc()
	sp.End()
	st.out <- outMsg{resp: resp}
}

// respWriter is the per-connection response serializer: it drains the
// response channel, greedily coalescing whatever is already queued, and
// writes each batch with a single flush — in v2 mode as one pack frame —
// so a burst of pipelined responses costs one syscall (and one netsim
// transmit event) instead of one per response.
func (s *Server) respWriter(conn net.Conn, st *connState, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var pk wire.Pack
	var scratch []byte
	failed := false
	batch := make([]outMsg, 0, wire.MaxPackFrames)
	for m := range st.out {
		batch = append(batch[:0], m)
	drain:
		for len(batch) < wire.MaxPackFrames {
			select {
			case m2, ok := <-st.out:
				if !ok {
					break drain
				}
				batch = append(batch, m2)
			default:
				break drain
			}
		}
		if failed {
			// The conn is dead but workers may still be enqueueing;
			// keep draining so they never block.
			continue
		}
		if err := s.writeBatch(bw, st, &pk, &scratch, batch); err != nil {
			if !s.isDraining() {
				s.log.Printf("ssp: send response: %v", err)
			}
			failed = true
		}
	}
}

// respApproxSize over-estimates a response's encoded size for pack
// budgeting.
func respApproxSize(p *wire.Response) int {
	n := 32 + len(p.Err) + len(p.Val)
	for _, kv := range p.Items {
		n += 16 + len(kv.Key) + len(kv.Val)
	}
	return n
}

// writeBatch serializes a batch of queued responses and flushes once. In
// v2 mode consecutive small responses coalesce into pack frames bounded
// by maxPackBytes; oversized responses and all v1 traffic go out as
// individual frames.
func (s *Server) writeBatch(bw *bufio.Writer, st *connState, pk *wire.Pack, scratch *[]byte, batch []outMsg) error {
	v2 := st.v2.Load()
	emit := func(payload []byte) error {
		n, err := wire.WriteFrame(bw, payload)
		st.bytesOut += int64(n)
		return err
	}
	flushPack := func() error {
		if pk.Len() == 0 {
			return nil
		}
		err := emit(pk.Payload())
		pk.Reset()
		return err
	}
	pk.Reset()
	for _, m := range batch {
		switch {
		case m.helloAck:
			if err := flushPack(); err != nil {
				return err
			}
			*scratch = wire.AppendHelloAck((*scratch)[:0], 2, 0)
			if err := emit(*scratch); err != nil {
				return err
			}
		case v2 && respApproxSize(m.resp) <= maxPackBytes:
			pk.AddResponse(m.resp)
			if pk.Size() >= maxPackBytes {
				if err := flushPack(); err != nil {
					return err
				}
			}
		case v2:
			if err := flushPack(); err != nil {
				return err
			}
			*scratch = wire.AppendResponseV2((*scratch)[:0], m.resp)
			if err := emit(*scratch); err != nil {
				return err
			}
		default:
			*scratch = wire.AppendResponse((*scratch)[:0], m.resp)
			if err := emit(*scratch); err != nil {
				return err
			}
		}
	}
	if err := flushPack(); err != nil {
		return err
	}
	return bw.Flush()
}

// apply executes one request against the store. The SSP trusts nothing and
// checks nothing beyond well-formedness: access control is cryptographic
// and happens entirely at clients.
//
// Reads go through the store's ViewStore methods when available: the
// handler only serializes the value onto the wire and drops it, so the
// defensive copy regular Get/List/BatchGet make would be pure waste
// (the old double-copy: store→response, response→frame).
func (s *Server) apply(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpGet:
		var val []byte
		var err error
		if s.views != nil {
			val, err = s.views.GetView(req.NS, req.Key)
		} else {
			val, err = s.store.Get(req.NS, req.Key)
		}
		if err == wire.ErrNotFound {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Val: val}
	case wire.OpPut:
		if err := s.store.Put(req.NS, req.Key, req.Val); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		if err := s.store.Delete(req.NS, req.Key); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpList:
		var items []wire.KV
		var err error
		if s.views != nil {
			items, err = s.views.ListView(req.NS, req.Prefix)
		} else {
			items, err = s.store.List(req.NS, req.Prefix)
		}
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchGet:
		var items []wire.KV
		var err error
		if s.views != nil {
			items, err = s.views.BatchGetView(req.Items)
		} else {
			items, err = s.store.BatchGet(req.Items)
		}
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchPut:
		if err := s.store.BatchPut(req.Items); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		st, err := s.store.Stats()
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: encodeStats(st)}
	default:
		return &wire.Response{Status: wire.StatusBadRequest, Err: wire.ErrUnknownOp.Error()}
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Status: wire.StatusError, Err: err.Error()}
}

func encodeStats(st Stats) []wire.KV {
	items := []wire.KV{
		{Key: "objects", Val: []byte(strconv.FormatInt(st.Objects, 10))},
		{Key: "bytes", Val: []byte(strconv.FormatInt(st.Bytes, 10))},
	}
	for ns, n := range st.PerNS {
		items = append(items, wire.KV{NS: ns, Key: "ns", Val: []byte(strconv.FormatInt(n, 10))})
	}
	return items
}

func decodeStats(items []wire.KV) (Stats, error) {
	st := Stats{PerNS: make(map[wire.NS]int64)}
	for _, it := range items {
		n, err := strconv.ParseInt(string(it.Val), 10, 64)
		if err != nil {
			// Report the key and length only: stats values are supposed to
			// be small decimal strings, but a hostile peer controls them.
			return st, fmt.Errorf("ssp: bad stats value for %q (%d bytes): %w", it.Key, len(it.Val), err)
		}
		switch it.Key {
		case "objects":
			st.Objects = n
		case "bytes":
			st.Bytes = n
		case "ns":
			st.PerNS[it.NS] = n
		}
	}
	return st, nil
}
