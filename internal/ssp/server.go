package ssp

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"

	"github.com/sharoes/sharoes/internal/wire"
)

// Server serves a BlobStore over the wire protocol. One goroutine per
// connection; the store provides its own synchronization.
type Server struct {
	store BlobStore
	log   *log.Logger

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer creates a server over store. logger may be nil to disable
// logging.
func NewServer(store BlobStore, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		store:     store,
		log:       logger,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("ssp: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every live connection and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	codec := wire.NewCodec(conn)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.log.Printf("ssp: read request: %v", err)
			}
			return
		}
		resp := s.apply(req)
		if err := codec.SendResponse(resp); err != nil {
			s.log.Printf("ssp: send response: %v", err)
			return
		}
	}
}

// apply executes one request against the store. The SSP trusts nothing and
// checks nothing beyond well-formedness: access control is cryptographic
// and happens entirely at clients.
func (s *Server) apply(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpGet:
		val, err := s.store.Get(req.NS, req.Key)
		if err == wire.ErrNotFound {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Val: val}
	case wire.OpPut:
		if err := s.store.Put(req.NS, req.Key, req.Val); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		if err := s.store.Delete(req.NS, req.Key); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpList:
		items, err := s.store.List(req.NS, req.Prefix)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchGet:
		items, err := s.store.BatchGet(req.Items)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchPut:
		if err := s.store.BatchPut(req.Items); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		st, err := s.store.Stats()
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: encodeStats(st)}
	default:
		return &wire.Response{Status: wire.StatusBadRequest, Err: wire.ErrUnknownOp.Error()}
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Status: wire.StatusError, Err: err.Error()}
}

func encodeStats(st Stats) []wire.KV {
	items := []wire.KV{
		{Key: "objects", Val: []byte(strconv.FormatInt(st.Objects, 10))},
		{Key: "bytes", Val: []byte(strconv.FormatInt(st.Bytes, 10))},
	}
	for ns, n := range st.PerNS {
		items = append(items, wire.KV{NS: ns, Key: "ns", Val: []byte(strconv.FormatInt(n, 10))})
	}
	return items
}

func decodeStats(items []wire.KV) (Stats, error) {
	st := Stats{PerNS: make(map[wire.NS]int64)}
	for _, it := range items {
		n, err := strconv.ParseInt(string(it.Val), 10, 64)
		if err != nil {
			// Report the key and length only: stats values are supposed to
			// be small decimal strings, but a hostile peer controls them.
			return st, fmt.Errorf("ssp: bad stats value for %q (%d bytes): %w", it.Key, len(it.Val), err)
		}
		switch it.Key {
		case "objects":
			st.Objects = n
		case "bytes":
			st.Bytes = n
		case "ns":
			st.PerNS[it.NS] = n
		}
	}
	return st, nil
}
