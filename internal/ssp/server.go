package ssp

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// Server serves a BlobStore over the wire protocol. One goroutine per
// connection; the store provides its own synchronization.
type Server struct {
	store BlobStore
	log   *log.Logger

	// Observability; all nil-safe, attached via Observe.
	reg    *obs.Registry
	tracer *obs.Tracer

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]*connEntry
	closed    bool
	draining  bool
	wg        sync.WaitGroup
}

// connEntry tracks one connection's handler state for graceful drain:
// inflight counts requests read off the wire whose responses have not yet
// been written; zero means the handler is parked waiting for the next
// frame (or between reads) with nothing outstanding.
type connEntry struct {
	inflight atomic.Int64
}

// maxConnConcurrency bounds concurrent dispatch per connection for
// multiplexed (nonzero-ReqID) requests.
const maxConnConcurrency = 32

// NewServer creates a server over store. logger may be nil to disable
// logging.
func NewServer(store BlobStore, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		store:     store,
		log:       logger,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connEntry),
	}
}

// Observe attaches a metrics registry and a tracer. Either may be nil
// (the corresponding instrumentation becomes a no-op). Must be called
// before Serve; the server reads these fields without locking.
//
// Metrics exposed: ssp.conns (gauge of live connections),
// ssp.op.<op> / ssp.op.<op>.ns (per-operation count and latency
// histogram), ssp.bytes_in / ssp.bytes_out (wire traffic). Incoming
// requests carrying a trace ID get an "ssp.<op>" span on tracer joined
// to the client's trace. Labels are operation names from the wire
// protocol — never request keys or values, which are untrusted and, in
// Sharoes, ciphertext.
func (s *Server) Observe(reg *obs.Registry, tracer *obs.Tracer) {
	s.reg = reg
	s.tracer = tracer
}

// Serve accepts connections on l until the listener fails or the server is
// closed. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.closed || s.draining
			s.mu.Unlock()
			if stopped {
				return nil
			}
			return fmt.Errorf("ssp: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		entry := &connEntry{}
		s.conns[conn] = entry
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, entry)
	}
}

// Close stops accepting, closes every live connection and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// SeverConns force-closes every live connection without stopping the
// listeners: clients see their links die mid-stream (in-flight calls
// fail) and may immediately redial. It is the server-side analogue of
// netsim.Listener.SeverConns — the fault injection hook behind the
// connection-drop and flap modes — and is also reachable operationally
// to kick all clients off a live SSP. Returns the number of connections
// severed.
func (s *Server) SeverConns() int {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.log.Printf("ssp: sever close: %v", err)
		}
	}
	if len(conns) > 0 {
		s.reg.Counter("ssp.severs").Add(int64(len(conns)))
	}
	return len(conns)
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, lets requests already being processed finish, then closes
// everything. Idle connections (parked between requests) are closed
// immediately; busy handlers finish their current request, send the
// response, and exit. If the drain has not completed within grace, the
// remaining connections are force-closed. Safe to call concurrently with
// Close and with itself.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make(map[net.Conn]*connEntry, len(s.conns))
	for c, e := range s.conns {
		conns[c] = e
	}
	s.mu.Unlock()

	if !alreadyDraining {
		for c, e := range conns {
			// Unblock parked readers. The deadline covers real TCP
			// conns; closing idle conns covers transports that accept
			// but do not enforce deadlines (netsim). A conn that turns
			// busy between the check and the close just drops one
			// not-yet-processed request — never one in flight.
			c.SetReadDeadline(time.Now())
			if e.inflight.Load() == 0 {
				c.Close()
			}
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
	}
	return s.Close()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

func (s *Server) handle(conn net.Conn, entry *connEntry) {
	defer s.wg.Done()
	// wmu serializes response writes: dispatch is concurrent for
	// multiplexed requests, but each response frame goes out whole.
	var wmu sync.Mutex
	var workers sync.WaitGroup
	sem := make(chan struct{}, maxConnConcurrency)
	codec := wire.NewCodec(conn)
	defer func() {
		// Let in-flight workers write their responses before the conn
		// goes down, then flush the byte counters (single-threaded again
		// once workers are done and the read loop has exited).
		workers.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.reg.Counter("ssp.bytes_in").Add(codec.BytesIn)
		s.reg.Counter("ssp.bytes_out").Add(codec.BytesOut)
	}()
	s.reg.Gauge("ssp.conns").Add(1)
	defer s.reg.Gauge("ssp.conns").Add(-1)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !s.isDraining() {
				s.log.Printf("ssp: read request: %v", err)
			}
			return
		}
		entry.inflight.Add(1)
		if req.ReqID == 0 {
			// Unmultiplexed (pre-ReqID) client: requests are processed
			// strictly in order, one at a time, exactly as before. Wait
			// out any multiplexed stragglers so replies stay ordered even
			// for a peer that mixes both styles.
			workers.Wait()
			s.dispatch(codec, &wmu, entry, req)
		} else {
			sem <- struct{}{}
			workers.Add(1)
			go func(req *wire.Request) {
				defer func() { workers.Done(); <-sem }()
				s.dispatch(codec, &wmu, entry, req)
			}(req)
		}
		if s.isDraining() {
			return
		}
	}
}

// dispatch executes one request and writes its response, echoing the
// request's ReqID so pipelined clients can match out-of-order replies.
func (s *Server) dispatch(codec *wire.Codec, wmu *sync.Mutex, entry *connEntry, req *wire.Request) {
	defer entry.inflight.Add(-1)
	s.reg.Gauge("ssp.inflight").Add(1)
	defer s.reg.Gauge("ssp.inflight").Add(-1)
	opName := req.Op.String()
	sp := s.tracer.StartRemote(obs.TraceID(req.TraceID), obs.SpanID(req.SpanID), "ssp."+opName, obs.ClassNone)
	start := time.Now()
	resp := s.apply(req)
	resp.ReqID = req.ReqID
	s.reg.Histogram("ssp.op." + opName + ".ns").Observe(time.Since(start))
	s.reg.Counter("ssp.op." + opName).Inc()
	sp.End()
	wmu.Lock()
	err := codec.SendResponse(resp)
	wmu.Unlock()
	if err != nil && !s.isDraining() {
		s.log.Printf("ssp: send response: %v", err)
	}
}

// apply executes one request against the store. The SSP trusts nothing and
// checks nothing beyond well-formedness: access control is cryptographic
// and happens entirely at clients.
func (s *Server) apply(req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpGet:
		val, err := s.store.Get(req.NS, req.Key)
		if err == wire.ErrNotFound {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Val: val}
	case wire.OpPut:
		if err := s.store.Put(req.NS, req.Key, req.Val); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		if err := s.store.Delete(req.NS, req.Key); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpList:
		items, err := s.store.List(req.NS, req.Prefix)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchGet:
		items, err := s.store.BatchGet(req.Items)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: items}
	case wire.OpBatchPut:
		if err := s.store.BatchPut(req.Items); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		st, err := s.store.Stats()
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK, Items: encodeStats(st)}
	default:
		return &wire.Response{Status: wire.StatusBadRequest, Err: wire.ErrUnknownOp.Error()}
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Status: wire.StatusError, Err: err.Error()}
}

func encodeStats(st Stats) []wire.KV {
	items := []wire.KV{
		{Key: "objects", Val: []byte(strconv.FormatInt(st.Objects, 10))},
		{Key: "bytes", Val: []byte(strconv.FormatInt(st.Bytes, 10))},
	}
	for ns, n := range st.PerNS {
		items = append(items, wire.KV{NS: ns, Key: "ns", Val: []byte(strconv.FormatInt(n, 10))})
	}
	return items
}

func decodeStats(items []wire.KV) (Stats, error) {
	st := Stats{PerNS: make(map[wire.NS]int64)}
	for _, it := range items {
		n, err := strconv.ParseInt(string(it.Val), 10, 64)
		if err != nil {
			// Report the key and length only: stats values are supposed to
			// be small decimal strings, but a hostile peer controls them.
			return st, fmt.Errorf("ssp: bad stats value for %q (%d bytes): %w", it.Key, len(it.Val), err)
		}
		switch it.Key {
		case "objects":
			st.Objects = n
		case "bytes":
			st.Bytes = n
		case "ns":
			st.PerNS[it.NS] = n
		}
	}
	return st, nil
}
