package ssp

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/wire"
)

// TestConcurrentMixedOps hammers one server with every request type from
// many clients at once, over deliberately overlapping keys: contention on
// the store and the per-connection codecs is the point. Run under -race
// (make race / CI) to make it a data-race detector, not just a smoke test.
func TestConcurrentMixedOps(t *testing.T) {
	store := NewMemStore()
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	defer srv.Close()

	const (
		workers = 8
		rounds  = 60
		shared  = 16 // keys every worker fights over
	)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(l.Dial, nil)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("shared/k%d", (w+i)%shared)
				switch i % 6 {
				case 0:
					if err := c.Put(wire.NSData, key, []byte(key)); err != nil {
						errs <- fmt.Errorf("put: %w", err)
						return
					}
				case 1:
					got, err := c.Get(wire.NSData, key)
					if err == nil && string(got) != key {
						errs <- fmt.Errorf("get %s returned %q", key, got)
						return
					}
				case 2:
					if err := c.Delete(wire.NSData, key); err != nil {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				case 3:
					if _, err := c.List(wire.NSData, "shared/"); err != nil {
						errs <- fmt.Errorf("list: %w", err)
						return
					}
				case 4:
					batch := []wire.KV{
						{NS: wire.NSData, Key: key, Val: []byte(key)},
						{NS: wire.NSMeta, Key: key, Val: []byte("m")},
					}
					if err := c.BatchPut(batch); err != nil {
						errs <- fmt.Errorf("batchput: %w", err)
						return
					}
				default:
					if _, err := c.Stats(); err != nil {
						errs <- fmt.Errorf("stats: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
