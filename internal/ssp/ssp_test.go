package ssp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/wire"
)

// storeContract runs the BlobStore contract against any implementation.
func storeContract(t *testing.T, s BlobStore) {
	t.Helper()

	// Missing key.
	if _, err := s.Get(wire.NSMeta, "nope"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}

	// Put / Get round trip.
	if err := s.Put(wire.NSMeta, "m/1/c/2", []byte("enc-meta")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(wire.NSMeta, "m/1/c/2")
	if err != nil || string(got) != "enc-meta" {
		t.Fatalf("get = %q, %v", got, err)
	}

	// Overwrite.
	if err := s.Put(wire.NSMeta, "m/1/c/2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(wire.NSMeta, "m/1/c/2"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}

	// Namespaces are independent.
	if _, err := s.Get(wire.NSData, "m/1/c/2"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("namespace bleed: %v", err)
	}

	// List by prefix, sorted.
	s.Put(wire.NSData, "b/1", []byte("x"))
	s.Put(wire.NSData, "b/2", []byte("y"))
	s.Put(wire.NSData, "c/1", []byte("z"))
	items, err := s.List(wire.NSData, "b/")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Key != "b/1" || items[1].Key != "b/2" {
		t.Fatalf("list = %+v", items)
	}

	// BatchGet skips missing keys.
	res, err := s.BatchGet([]wire.KV{
		{NS: wire.NSData, Key: "b/1"},
		{NS: wire.NSData, Key: "missing"},
		{NS: wire.NSData, Key: "c/1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || string(res[0].Val) != "x" || string(res[1].Val) != "z" {
		t.Fatalf("batchget = %+v", res)
	}

	// BatchPut mixes puts and deletes.
	err = s.BatchPut([]wire.KV{
		{NS: wire.NSData, Key: "b/3", Val: []byte("w")},
		{NS: wire.NSData, Key: "b/1", Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(wire.NSData, "b/1"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatal("batch delete failed")
	}
	if got, _ := s.Get(wire.NSData, "b/3"); string(got) != "w" {
		t.Fatal("batch put failed")
	}

	// Delete is idempotent.
	if err := s.Delete(wire.NSData, "b/3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(wire.NSData, "b/3"); err != nil {
		t.Fatal(err)
	}

	// Stats counts objects and bytes.
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects < 3 {
		t.Fatalf("stats objects = %d", st.Objects)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats bytes = %d", st.Bytes)
	}
	if st.PerNS[wire.NSMeta] != 1 {
		t.Fatalf("per-ns meta = %d", st.PerNS[wire.NSMeta])
	}
}

func TestMemStoreContract(t *testing.T) { storeContract(t, NewMemStore()) }

func TestDiskStoreContract(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(wire.NSMeta, "key with / strange:chars", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(wire.NSMeta, "key with / strange:chars")
	if err != nil || string(got) != "durable" {
		t.Fatalf("reopen get = %q, %v", got, err)
	}
}

func TestMemStoreReturnsCopies(t *testing.T) {
	s := NewMemStore()
	val := []byte("original")
	s.Put(wire.NSData, "k", val)
	val[0] = 'X' // caller mutation must not affect stored value
	got, _ := s.Get(wire.NSData, "k")
	if string(got) != "original" {
		t.Errorf("stored value aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // returned value mutation must not affect store
	got2, _ := s.Get(wire.NSData, "k")
	if string(got2) != "original" {
		t.Errorf("returned value aliased store: %q", got2)
	}
}

func clientServerPair(t *testing.T, store BlobStore) *Client {
	t.Helper()
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRemoteClientContract(t *testing.T) {
	storeContract(t, clientServerPair(t, NewMemStore()))
}

func TestClientPing(t *testing.T) {
	c := clientServerPair(t, NewMemStore())
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientRecordsNetworkTime(t *testing.T) {
	l := netsim.Listen(netsim.Profile{Name: "slow", Latency: 5_000_000 /* 5ms */})
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()

	var rec stats.Recorder
	c, err := Dial(l.Dial, &rec)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(wire.NSData, "k", bytes.Repeat([]byte("d"), 1000)); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Network <= 0 {
		t.Error("network time not recorded")
	}
	if s.BytesOut < 1000 {
		t.Errorf("bytesOut = %d", s.BytesOut)
	}
	if s.BytesIn <= 0 {
		t.Error("bytesIn not recorded")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	store := NewMemStore()
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	defer srv.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(id int) {
			c, err := Dial(l.Dial, nil)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				key := fmt.Sprintf("c%d/k%d", id, j)
				if err := c.Put(wire.NSData, key, []byte(key)); err != nil {
					done <- err
					return
				}
				got, err := c.Get(wire.NSData, key)
				if err != nil || string(got) != key {
					done <- fmt.Errorf("get %s = %q, %v", key, got, err)
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st, _ := store.Stats()
	if st.Objects != 400 {
		t.Errorf("objects = %d, want 400", st.Objects)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := c.Ping(); err == nil {
		t.Error("ping succeeded after server close")
	}
	srv.Close() // double close is fine
}

func TestServerRejectsUnknownOp(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	codec := wire.NewCodec(conn)
	defer codec.Close()
	resp, err := codec.Call(&wire.Request{Op: wire.Op(200)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Errorf("status = %v", resp.Status)
	}
}

func TestFaultTamper(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.Put(wire.NSMeta, "m/1", []byte("clean metadata bytes"))
	fs.AddRule(FaultRule{Mode: FaultTamper, NS: wire.NSMeta, KeyPart: "m/1"})
	got, err := fs.Get(wire.NSMeta, "m/1")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("clean metadata bytes")) {
		t.Error("tamper rule did not alter value")
	}
	if fs.Triggered() != 1 {
		t.Errorf("triggered = %d", fs.Triggered())
	}
	// Other keys unaffected.
	fs.Put(wire.NSMeta, "m/2", []byte("other"))
	if got, _ := fs.Get(wire.NSMeta, "m/2"); string(got) != "other" {
		t.Error("rule leaked to other key")
	}
	fs.ClearRules()
	if got, _ := fs.Get(wire.NSMeta, "m/1"); string(got) != "clean metadata bytes" {
		t.Error("ClearRules did not restore clean reads")
	}
}

func TestFaultRollback(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.Put(wire.NSData, "b/1", []byte("version-1"))
	fs.Put(wire.NSData, "b/1", []byte("version-2"))
	fs.AddRule(FaultRule{Mode: FaultRollback, NS: wire.NSData})
	got, _ := fs.Get(wire.NSData, "b/1")
	if string(got) != "version-1" {
		t.Errorf("rollback served %q", got)
	}
}

func TestFaultDropAndSwap(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.Put(wire.NSData, "b/1", []byte("one"))
	fs.Put(wire.NSData, "b/2", []byte("two"))

	fs.AddRule(FaultRule{Mode: FaultDrop, NS: wire.NSData, KeyPart: "b/1"})
	if _, err := fs.Get(wire.NSData, "b/1"); !errors.Is(err, wire.ErrNotFound) {
		t.Errorf("drop: %v", err)
	}
	fs.ClearRules()

	fs.AddRule(FaultRule{Mode: FaultSwap, NS: wire.NSData, KeyPart: "b/1", SwapKey: "b/2"})
	got, err := fs.Get(wire.NSData, "b/1")
	if err != nil || string(got) != "two" {
		t.Errorf("swap = %q, %v", got, err)
	}
}

func TestFaultStoreBatchAndList(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.Put(wire.NSData, "b/1", []byte("one"))
	fs.Put(wire.NSData, "b/2", []byte("two"))
	fs.AddRule(FaultRule{Mode: FaultDrop, NS: wire.NSData, KeyPart: "b/1"})

	items, err := fs.List(wire.NSData, "b/")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != "b/2" {
		t.Errorf("list with drop = %+v", items)
	}
	res, err := fs.BatchGet([]wire.KV{{NS: wire.NSData, Key: "b/1"}, {NS: wire.NSData, Key: "b/2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("batchget with drop = %+v", res)
	}
	if err := fs.BatchPut([]wire.KV{{NS: wire.NSData, Key: "b/3", Val: []byte("three")}, {NS: wire.NSData, Key: "b/2", Delete: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Inner.Get(wire.NSData, "b/2"); !errors.Is(err, wire.ErrNotFound) {
		t.Error("batchput delete did not pass through")
	}
	if st, _ := fs.Stats(); st.Objects != 2 {
		t.Errorf("stats objects = %d", st.Objects)
	}
}

func BenchmarkMemStorePutGet(b *testing.B) {
	s := NewMemStore()
	val := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%1000)
		s.Put(wire.NSData, key, val)
		if _, err := s.Get(wire.NSData, key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteRoundTrip(b *testing.B) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Dial, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(wire.NSData, "bench", val); err != nil {
			b.Fatal(err)
		}
	}
}
