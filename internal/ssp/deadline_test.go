package ssp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// gateStore blocks Gets of keys containing "slow" until the gate opens,
// modelling a server stuck on one request.
type gateStore struct {
	BlobStore
	gate chan struct{}
}

func (g *gateStore) Get(ns wire.NS, key string) ([]byte, error) {
	if strings.Contains(key, "slow") {
		<-g.gate
	}
	return g.BlobStore.Get(ns, key)
}

// TestCallDeadlineExpires: a call stuck behind an unresponsive server
// must fail with ErrDeadline once the per-call timeout elapses — and the
// connection must remain usable afterwards, the late reply being
// discarded by the expired call's tombstone rather than corrupting the
// reply stream.
func TestCallDeadlineExpires(t *testing.T) {
	store := &gateStore{BlobStore: NewMemStore(), gate: make(chan struct{})}
	if err := store.BlobStore.Put(wire.NSData, "slow/k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := store.BlobStore.Put(wire.NSData, "fast/k", []byte("v2")); err != nil {
		t.Fatal(err)
	}

	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	reg := obs.NewRegistry()
	c.ObserveMetrics(reg)
	c.SetCallTimeout(30 * time.Millisecond)

	start := time.Now()
	_, err = c.Get(wire.NSData, "slow/k")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stuck Get = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if n := reg.Counter("ssp.client.deadline_expired").Value(); n != 1 {
		t.Fatalf("deadline_expired = %d, want 1", n)
	}

	// Unstick the server; its late reply for the expired call must be
	// consumed by the tombstone, leaving the connection healthy.
	close(store.gate)
	v, err := c.Get(wire.NSData, "fast/k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get after expiry = %q, %v; conn should have survived", v, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after expiry: %v", err)
	}
}

// TestCallDeadlineZeroDisables: without a timeout the call waits out a
// slow server rather than expiring.
func TestCallDeadlineZeroDisables(t *testing.T) {
	store := &gateStore{BlobStore: NewMemStore(), gate: make(chan struct{})}
	if err := store.BlobStore.Put(wire.NSData, "slow/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	time.AfterFunc(50*time.Millisecond, func() { close(store.gate) })
	v, err := c.Get(wire.NSData, "slow/k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v, want the value once the server unsticks", v, err)
	}
}
