package ssp

import (
	"errors"
	"sync"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// WriteBehindOptions configures a WriteBehind layer. Zero values take the
// defaults noted on each field.
type WriteBehindOptions struct {
	// MaxItems flushes the buffer once this many writes are pending
	// (default 64).
	MaxItems int
	// MaxBytes flushes once the buffered values reach this size
	// (default 1 MiB).
	MaxBytes int64
	// MaxDelay bounds how long a buffered write may wait before a flush
	// is kicked, so writes are not deferred indefinitely on an idle
	// client (default 2ms).
	MaxDelay time.Duration
	// Registry, when non-nil, receives write-behind metrics:
	// ssp.wb.flushes / ssp.wb.flushed_items / ssp.wb.flushed_bytes
	// (counters), ssp.wb.buffered (gauge), ssp.wb.flush_ns (flush
	// latency histogram) and ssp.wb.flush_items (flush size histogram;
	// sizes are recorded on the registry's duration scale as 1µs per
	// item).
	Registry *obs.Registry
}

func (o *WriteBehindOptions) defaults() {
	if o.MaxItems == 0 {
		o.MaxItems = 64
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 1 << 20
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
}

// WriteBehind is a client-side coalescing layer over a BlobStore: Put,
// Delete and BatchPut are buffered and flushed as one BatchPut once a
// size or latency threshold trips, or when a reader needs them, or on an
// explicit Barrier. Repeated writes to one key coalesce in place, so only
// the last value travels.
//
// Coherence: a Get of a buffered key is answered from the buffer; List,
// Stats and any BatchGet touching a buffered key force a flush first, so
// a reader can never observe the store "before" its own writes. Flushes
// preserve per-key order (a single flusher, one batch at a time).
//
// A flush failure is remembered and surfaced on the next operation (and
// from Barrier/Close), in keeping with write-behind semantics: the write
// that "succeeded" earlier reports its error at the next opportunity.
type WriteBehind struct {
	inner BlobStore
	opt   WriteBehindOptions

	mu    sync.Mutex
	cond  *sync.Cond
	buf   []wire.KV
	idx   map[string]int // ns|key -> index in buf
	bytes int64
	// fbuf/fidx mirror the batch currently being flushed: its keys are
	// in neither buf nor (yet) the inner store, and the server may
	// reorder a concurrent direct read ahead of the in-flight BatchPut,
	// so reads must consult it.
	fbuf     []wire.KV
	fidx     map[string]int
	err      error // sticky deferred flush error
	flushing bool
	closed   bool
	timer    *time.Timer
}

var _ BlobStore = (*WriteBehind)(nil)

// Flusher is the barrier interface exposed by write-behind stores;
// callers that need read-after-write visibility across clients (or a
// durability point) type-assert against it.
type Flusher interface {
	Barrier() error
}

// Router is implemented by stores that spread keys across multiple
// independent backends (the sharded multi-SSP store). Layers above —
// write-behind in particular — use it to split one logical batch into
// per-backend lanes, so each backend's pipelined connection carries only
// its own traffic instead of every flush serializing through one frame.
// RouteID must be stable for a given (ns, key) between ring changes and
// return a value in [0, Routes()).
type Router interface {
	Routes() int
	RouteID(ns wire.NS, key string) int
}

// NewWriteBehind wraps inner in a write-behind buffer.
func NewWriteBehind(inner BlobStore, opt WriteBehindOptions) *WriteBehind {
	opt.defaults()
	w := &WriteBehind{inner: inner, opt: opt, idx: make(map[string]int)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func bufKey(ns wire.NS, key string) string {
	return string(rune(ns)) + "|" + key
}

// add buffers one write under w.mu and returns true if a threshold
// tripped.
func (w *WriteBehind) add(kv wire.KV) bool {
	k := bufKey(kv.NS, kv.Key)
	if i, ok := w.idx[k]; ok {
		w.bytes += int64(len(kv.Val)) - int64(len(w.buf[i].Val))
		w.buf[i] = kv
	} else {
		w.idx[k] = len(w.buf)
		w.buf = append(w.buf, kv)
		w.bytes += int64(len(kv.Val))
		if len(w.buf) == 1 && w.opt.MaxDelay > 0 {
			w.armTimer()
		}
	}
	w.opt.Registry.Gauge("ssp.wb.buffered").Set(int64(len(w.buf)))
	return len(w.buf) >= w.opt.MaxItems || w.bytes >= w.opt.MaxBytes
}

// armTimer schedules a latency-bound flush. Called under w.mu when the
// buffer transitions empty -> non-empty.
func (w *WriteBehind) armTimer() {
	if w.timer != nil {
		w.timer.Reset(w.opt.MaxDelay)
		return
	}
	w.timer = time.AfterFunc(w.opt.MaxDelay, func() {
		w.mu.Lock()
		w.kick()
		w.mu.Unlock()
	})
}

// kick starts the flusher goroutine if there is work and none running.
// Called under w.mu.
func (w *WriteBehind) kick() {
	if w.flushing || len(w.buf) == 0 {
		return
	}
	w.flushing = true
	go w.flushLoop()
}

// flushLoop drains the buffer, one BatchPut at a time, preserving write
// order. Runs until the buffer is empty, then exits.
func (w *WriteBehind) flushLoop() {
	w.mu.Lock()
	for len(w.buf) > 0 {
		batch := w.buf
		bytes := w.bytes
		w.fbuf, w.fidx = w.buf, w.idx
		w.buf = nil
		w.idx = make(map[string]int)
		w.bytes = 0
		w.opt.Registry.Gauge("ssp.wb.buffered").Set(0)
		w.mu.Unlock()

		start := time.Now()
		err := w.flushBatch(batch)
		w.opt.Registry.Histogram("ssp.wb.flush_ns").Observe(time.Since(start))
		w.opt.Registry.Histogram("ssp.wb.flush_items").Observe(time.Duration(len(batch)) * time.Microsecond)
		w.opt.Registry.Counter("ssp.wb.flushes").Inc()
		w.opt.Registry.Counter("ssp.wb.flushed_items").Add(int64(len(batch)))
		w.opt.Registry.Counter("ssp.wb.flushed_bytes").Add(bytes)

		w.mu.Lock()
		w.fbuf, w.fidx = nil, nil
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	w.flushing = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// flushBatch lands one drained buffer in the inner store. When the inner
// store routes keys across several backends (it implements Router), the
// batch is keyed into one lane per backend and the lanes are written
// concurrently — each backend's connection sees only its own keys.
// Cross-lane ordering is unconstrained, which is safe because lanes are
// disjoint key sets; within a lane, batch order is preserved. The first
// lane error wins (they all become the same sticky deferred error).
func (w *WriteBehind) flushBatch(batch []wire.KV) error {
	rt, ok := w.inner.(Router)
	if !ok || rt.Routes() <= 1 {
		return w.inner.BatchPut(batch)
	}
	lanes := make(map[int][]wire.KV)
	for _, kv := range batch {
		id := rt.RouteID(kv.NS, kv.Key)
		lanes[id] = append(lanes[id], kv)
	}
	w.opt.Registry.Counter("ssp.wb.lane_flushes").Add(int64(len(lanes)))
	if len(lanes) == 1 {
		return w.inner.BatchPut(batch)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, lane := range lanes {
		wg.Add(1)
		go func(items []wire.KV) {
			defer wg.Done()
			if err := w.inner.BatchPut(items); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(lane)
	}
	wg.Wait()
	return firstErr
}

// Barrier flushes all buffered writes and waits for them to land,
// returning (and clearing) any deferred flush error.
func (w *WriteBehind) Barrier() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.barrierLocked()
}

func (w *WriteBehind) barrierLocked() error {
	for w.flushing || len(w.buf) > 0 {
		w.kick()
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	if f, ok := w.inner.(Flusher); ok {
		// Fan the barrier out: a sharded inner store drains its async
		// replica writes (and surfaces its own sticky quorum error)
		// here, so a Barrier means coherence through the whole stack,
		// not just this buffer. Both layers' sticky errors must surface
		// exactly once — joining keeps the inner one errors.Is-matchable
		// even when this buffer carries its own flush error (previously
		// the inner error was silently lost in that case).
		if ierr := f.Barrier(); ierr != nil {
			if err == nil {
				err = ierr
			} else {
				err = errors.Join(err, ierr)
			}
		}
	}
	return err
}

// takeErr returns (and clears) the deferred flush error, if any. Called
// under w.mu.
func (w *WriteBehind) takeErr() error {
	err := w.err
	w.err = nil
	return err
}

// Close flushes outstanding writes. It does not close the inner store.
func (w *WriteBehind) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.barrierLocked()
	w.closed = true
	if w.timer != nil {
		w.timer.Stop()
	}
	return err
}

// Get implements BlobStore. Buffered keys are answered from the buffer
// (a buffered delete reads as not-found); everything else goes straight
// through without forcing a flush.
func (w *WriteBehind) Get(ns wire.NS, key string) ([]byte, error) {
	w.mu.Lock()
	if err := w.takeErr(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	k := bufKey(ns, key)
	if i, ok := w.idx[k]; ok {
		kv := w.buf[i]
		w.mu.Unlock()
		if kv.Delete {
			return nil, wire.ErrNotFound
		}
		return append([]byte(nil), kv.Val...), nil
	}
	if i, ok := w.fidx[k]; ok {
		// The key is in the batch being flushed right now; serve the
		// value being written rather than racing the in-flight BatchPut.
		kv := w.fbuf[i]
		w.mu.Unlock()
		if kv.Delete {
			return nil, wire.ErrNotFound
		}
		return append([]byte(nil), kv.Val...), nil
	}
	w.mu.Unlock()
	return w.inner.Get(ns, key)
}

// Put implements BlobStore: the write is buffered and reported
// successful; a later flush failure surfaces on a subsequent operation.
func (w *WriteBehind) Put(ns wire.NS, key string, val []byte) error {
	return w.BatchPut([]wire.KV{{NS: ns, Key: key, Val: val}})
}

// Delete implements BlobStore by buffering a tombstone.
func (w *WriteBehind) Delete(ns wire.NS, key string) error {
	return w.BatchPut([]wire.KV{{NS: ns, Key: key, Delete: true}})
}

// BatchPut implements BlobStore: items are coalesced into the buffer.
func (w *WriteBehind) BatchPut(items []wire.KV) error {
	w.mu.Lock()
	if err := w.takeErr(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrShutdown
	}
	full := false
	for _, kv := range items {
		if w.add(kv) {
			full = true
		}
	}
	if full {
		w.kick()
	}
	w.mu.Unlock()
	return nil
}

// List implements BlobStore, flushing first if any buffered write could
// change the listing.
func (w *WriteBehind) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	w.mu.Lock()
	overlap := false
	for _, buf := range [][]wire.KV{w.buf, w.fbuf} {
		for _, kv := range buf {
			if kv.NS == ns && len(kv.Key) >= len(prefix) && kv.Key[:len(prefix)] == prefix {
				overlap = true
				break
			}
		}
	}
	var err error
	if overlap {
		err = w.barrierLocked()
	} else {
		err = w.takeErr()
	}
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return w.inner.List(ns, prefix)
}

// BatchGet implements BlobStore, flushing first if any requested key is
// buffered.
func (w *WriteBehind) BatchGet(items []wire.KV) ([]wire.KV, error) {
	w.mu.Lock()
	overlap := false
	for _, it := range items {
		k := bufKey(it.NS, it.Key)
		if _, ok := w.idx[k]; ok {
			overlap = true
			break
		}
		if _, ok := w.fidx[k]; ok {
			overlap = true
			break
		}
	}
	var err error
	if overlap {
		err = w.barrierLocked()
	} else {
		err = w.takeErr()
	}
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return w.inner.BatchGet(items)
}

// Stats implements BlobStore behind a full barrier, so counts reflect
// buffered writes.
func (w *WriteBehind) Stats() (Stats, error) {
	if err := w.Barrier(); err != nil {
		return Stats{}, err
	}
	return w.inner.Stats()
}
