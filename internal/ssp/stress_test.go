package ssp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/wire"
)

// TestPipelinedClientStress drives many goroutines through ONE pipelined
// client. Every goroutine writes values that encode its own identity and
// immediately reads them back: if the multiplexer ever matched a response
// to the wrong request (ReqID cross-talk), some goroutine would observe
// another's value or an error belonging to a different key. A FaultStore
// injects ErrNotFound on a key subset so error responses are interleaved
// with successes — errors must land on exactly the calls that earned them.
// Run under -race (make race / CI) for the full effect.
func TestPipelinedClientStress(t *testing.T) {
	store := NewFaultStore(NewMemStore())
	store.AddRule(FaultRule{Mode: FaultDrop, NS: wire.NSData, KeyPart: "missing"})
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(store, nil)
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		workers = 16
		rounds  = 80
	)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("g%d/k%d", w, i%8)
				want := fmt.Sprintf("w=%d i=%d", w, i)
				if err := c.Put(wire.NSData, key, []byte(want)); err != nil {
					errs <- fmt.Errorf("worker %d put: %w", w, err)
					return
				}
				got, err := c.Get(wire.NSData, key)
				if err != nil {
					errs <- fmt.Errorf("worker %d get %s: %w", w, key, err)
					return
				}
				if string(got) != want {
					errs <- fmt.Errorf("worker %d cross-talk: key %s = %q, want %q", w, key, got, want)
					return
				}
				// Injected fault: this key must error — and only this call.
				if _, err := c.Get(wire.NSData, fmt.Sprintf("missing/g%d", w)); !errors.Is(err, wire.ErrNotFound) {
					errs <- fmt.Errorf("worker %d: injected fault returned %v, want ErrNotFound", w, err)
					return
				}
				if i%7 == 0 {
					items, err := c.BatchGet([]wire.KV{
						{NS: wire.NSData, Key: key},
						{NS: wire.NSData, Key: fmt.Sprintf("missing/g%d", w)},
					})
					if err != nil {
						errs <- fmt.Errorf("worker %d batchget: %w", w, err)
						return
					}
					if len(items) != 1 || string(items[0].Val) != want {
						errs <- fmt.Errorf("worker %d batchget cross-talk: %v", w, items)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.Triggered() == 0 {
		t.Fatal("fault rule never triggered: the error path went unexercised")
	}
}

// TestCloseWithInflightCalls closes the client while many goroutines have
// calls in flight. Every call must return promptly — success or an error,
// never a hang — and calls issued after Close must fail with ErrShutdown.
func TestCloseWithInflightCalls(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	started := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			for i := 0; ; i++ {
				if _, err := c.Get(wire.NSData, "k"); err != nil {
					// Shutdown surfaced mid-stream; any further call must
					// report ErrShutdown specifically.
					if _, err := c.Get(wire.NSData, "k"); !errors.Is(err, ErrShutdown) {
						t.Errorf("post-close call returned %v, want ErrShutdown", err)
					}
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-started
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight calls did not drain after Close")
	}
}
