package ssp

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/netsim"
	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/wire"
)

// noSleep removes backoff waits from reconnect tests.
func noSleep(time.Duration) {}

// TestReconnectHealsAfterSever: severing the link fails the in-flight
// call fast with a connection-class error, and the next call redials and
// succeeds against the still-running server.
func TestReconnectHealsAfterSever(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	reg := obs.NewRegistry()
	rc := NewReconnectClient(l.Dial, ReconnectOptions{Sleep: noSleep, Registry: reg})
	t.Cleanup(func() { rc.Close() })

	if err := rc.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if n := l.SeverConns(); n != 1 {
		t.Fatalf("severed %d conns, want 1", n)
	}

	// The first call(s) after the cut may fail — with an error the
	// wrapper classifies as connection-class, so retry policy one layer
	// up can recognize it — but a redial must heal within a few calls.
	healed := false
	for i := 0; i < 10; i++ {
		v, err := rc.Get(wire.NSData, "k")
		if err == nil {
			if string(v) != "v" {
				t.Fatalf("healed Get = %q, want v", v)
			}
			healed = true
			break
		}
		if !connErr(err) {
			t.Fatalf("post-sever Get error %v is not connection-class", err)
		}
	}
	if !healed {
		t.Fatal("client never healed after sever")
	}
	if n := reg.Counter("ssp.reconnect.drops").Value(); n < 1 {
		t.Errorf("reconnect.drops = %d, want >= 1", n)
	}
	if n := reg.Counter("ssp.reconnect.success").Value(); n < 1 {
		t.Errorf("reconnect.success = %d, want >= 1", n)
	}
}

// TestReconnectStickyGiveup: once MaxRedials consecutive dials fail, the
// client goes sticky — every later call fails fast with
// ErrReconnectFailed and no further dials are attempted.
func TestReconnectStickyGiveup(t *testing.T) {
	dials := 0
	refuse := func() (net.Conn, error) {
		dials++
		return nil, fmt.Errorf("connection refused")
	}
	reg := obs.NewRegistry()
	rc := NewReconnectClient(refuse, ReconnectOptions{MaxRedials: 3, Sleep: noSleep, Registry: reg})
	t.Cleanup(func() { rc.Close() })

	if _, err := rc.Get(wire.NSData, "k"); !errors.Is(err, ErrReconnectFailed) {
		t.Fatalf("Get = %v, want ErrReconnectFailed", err)
	}
	if dials != 3 {
		t.Fatalf("dialed %d times, want exactly MaxRedials=3", dials)
	}
	// Sticky: fails fast, without dialing again.
	if _, err := rc.Get(wire.NSData, "k"); !errors.Is(err, ErrReconnectFailed) {
		t.Fatalf("second Get = %v, want sticky ErrReconnectFailed", err)
	}
	if dials != 3 {
		t.Fatalf("sticky client dialed again (%d dials)", dials)
	}
	if n := reg.Counter("ssp.reconnect.giveup").Value(); n != 1 {
		t.Errorf("reconnect.giveup = %d, want 1", n)
	}
	if n := reg.Counter("ssp.reconnect.dial_fail").Value(); n != 3 {
		t.Errorf("reconnect.dial_fail = %d, want 3", n)
	}
}

// TestReconnectNeverGivesUp: MaxRedials < 0 keeps dialing until the
// backend returns.
func TestReconnectNeverGivesUp(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	fails := 0
	dial := func() (net.Conn, error) {
		if fails < 20 {
			fails++
			return nil, fmt.Errorf("not yet")
		}
		return l.Dial()
	}
	rc := NewReconnectClient(dial, ReconnectOptions{MaxRedials: -1, Sleep: noSleep})
	t.Cleanup(func() { rc.Close() })
	if err := rc.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatalf("Put through 20 dial failures: %v", err)
	}
}

// TestReconnectClose: calls after Close fail with ErrShutdown.
func TestReconnectClose(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	rc := NewReconnectClient(l.Dial, ReconnectOptions{Sleep: noSleep})
	if err := rc.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := rc.Get(wire.NSData, "k"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Get after Close = %v, want ErrShutdown", err)
	}
}

// TestReconnectNotFoundDoesNotDrop: a per-key remote status must not
// condemn the connection.
func TestReconnectNotFoundDoesNotDrop(t *testing.T) {
	l := netsim.Listen(netsim.Unlimited)
	srv := NewServer(NewMemStore(), nil)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	reg := obs.NewRegistry()
	rc := NewReconnectClient(l.Dial, ReconnectOptions{Sleep: noSleep, Registry: reg})
	t.Cleanup(func() { rc.Close() })
	if _, err := rc.Get(wire.NSData, "missing"); !errors.Is(err, wire.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want wire.ErrNotFound", err)
	}
	if n := reg.Counter("ssp.reconnect.drops").Value(); n != 0 {
		t.Errorf("NotFound dropped the connection (drops=%d)", n)
	}
}
