package ssp

import (
	"errors"
	"strings"
	"sync"
	"time"

	"github.com/sharoes/sharoes/internal/wire"
)

// FaultMode selects a malicious-SSP behaviour.
type FaultMode uint8

// Fault modes. The paper's threat model (§VII) trusts the SSP to store and
// retrieve but not with confidentiality or access control; clients must
// detect tampering via signatures. These modes exercise those paths.
const (
	// FaultTamper flips bytes in matching blobs before serving them.
	FaultTamper FaultMode = iota + 1
	// FaultRollback serves the first version ever stored for matching
	// keys, modelling a replay of stale (but once-valid) state.
	FaultRollback
	// FaultDrop pretends matching keys do not exist.
	FaultDrop
	// FaultSwap serves the blob stored under a different key of the same
	// namespace, modelling object substitution.
	FaultSwap
	// FaultWriteErr fails writes (Put/BatchPut) to matching keys with
	// ErrInjectedWrite, modelling a backend that serves reads but cannot
	// persist. It exercises the deferred/sticky error path of the
	// write-behind layer, whose flush failures surface on a later
	// operation. Reads ignore rules of this mode.
	FaultWriteErr
	// FaultSlow delays matching Gets by the rule's Delay before serving
	// the true value, modelling a straggling (but honest) backend. It
	// exercises the hedged-read path of the shard layer: a slow primary
	// should lose the race to a hedge sent to a healthy replica.
	FaultSlow
	// FaultConnDrop severs every live connection to this backend (via the
	// OnSever hook) on the first matching operation, then disarms — a
	// one-shot network partition mid-stream. The operation itself still
	// executes; it is the response that dies on the cut link, which is
	// exactly the ambiguity a real drop leaves (did the write land?).
	FaultConnDrop
	// FaultFlap severs the link on every Every'th matching operation, for
	// as long as the rule stays armed — a flapping route. Exercises the
	// reconnect wrapper's redial loop and the shard breaker's open/close
	// cycling.
	FaultFlap
)

// ErrInjectedWrite is the error FaultWriteErr rules inject on writes.
var ErrInjectedWrite = errors.New("ssp: injected write fault")

// FaultRule matches blobs by namespace and key substring. NS 0 is a
// wildcard matching every namespace, so a whole-backend fault ("this
// shard is down", "this shard is slow") is one rule, not one per NS.
type FaultRule struct {
	Mode    FaultMode
	NS      wire.NS       // 0 matches all namespaces
	KeyPart string        // substring of key; empty matches every key in NS
	SwapKey string        // FaultSwap: serve this key's value instead
	Delay   time.Duration // FaultSlow: added latency per matching Get
	Every   int           // FaultFlap: sever on every Every'th match (default 25)

	hits int // matching ops seen by this conn-fault rule (internal)
}

// FaultStore wraps a BlobStore with a malicious read path. Writes pass
// through unchanged (the SSP has no reason to corrupt its own hashtable;
// the attack surface the paper cares about is what clients are served).
type FaultStore struct {
	Inner BlobStore

	mu      sync.Mutex
	rules   []FaultRule
	history map[string][]byte // first version per ns/key, for rollback
	// Triggered counts how many reads were maliciously altered.
	triggered int
	// sever cuts the transport to this backend (FaultConnDrop/FaultFlap);
	// wired by OnSever, typically to netsim.Listener.SeverConns or
	// Server.SeverConns. Called outside mu.
	sever func()
}

// NewFaultStore wraps inner.
func NewFaultStore(inner BlobStore) *FaultStore {
	return &FaultStore{Inner: inner, history: make(map[string][]byte)}
}

// AddRule arms a fault rule.
func (s *FaultStore) AddRule(r FaultRule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// ClearRules disarms all rules.
func (s *FaultStore) ClearRules() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = nil
}

// Triggered reports how many reads were altered.
func (s *FaultStore) Triggered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.triggered
}

// OnSever wires the transport-cutting hook the connection fault modes
// fire (nil disarms them). The hook runs outside the store's mutex, on
// the goroutine of the operation that tripped the rule.
func (s *FaultStore) OnSever(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sever = f
}

// connFault checks (and advances) the connection-fault rules for one
// matching operation, returning the sever hook to fire, if any. Both read
// and write paths call it: a link drop is path-agnostic.
func (s *FaultStore) connFault(ns wire.NS, key string) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sever == nil {
		return nil
	}
	for i := range s.rules {
		r := &s.rules[i]
		if r.Mode != FaultConnDrop && r.Mode != FaultFlap {
			continue
		}
		if (r.NS != 0 && r.NS != ns) || (r.KeyPart != "" && !strings.Contains(key, r.KeyPart)) {
			continue
		}
		r.hits++
		switch r.Mode {
		case FaultConnDrop:
			if r.hits == 1 {
				s.triggered++
				return s.sever
			}
		case FaultFlap:
			every := r.Every
			if every <= 0 {
				every = 25
			}
			if r.hits%every == 0 {
				s.triggered++
				return s.sever
			}
		}
	}
	return nil
}

// applyConnFault severs the link if a connection-fault rule trips on this
// operation. The operation proceeds regardless — the cut happens at the
// transport, so the response (not the store mutation) is what gets lost.
func (s *FaultStore) applyConnFault(ns wire.NS, key string) {
	if sever := s.connFault(ns, key); sever != nil {
		sever()
	}
}

func histKey(ns wire.NS, key string) string { return string(rune(ns)) + "/" + key }

// match returns the first armed rule for (ns, key) on the given path.
// Matching is path-aware so one backend can carry both a write fault and
// a read fault at once (a fully lost shard is FaultWriteErr + FaultDrop):
// the write path sees only FaultWriteErr rules, the read path everything
// else.
func (s *FaultStore) match(ns wire.NS, key string, write bool) *FaultRule {
	for i := range s.rules {
		r := &s.rules[i]
		if r.Mode == FaultConnDrop || r.Mode == FaultFlap {
			continue // transport faults; handled by connFault on both paths
		}
		if write != (r.Mode == FaultWriteErr) {
			continue
		}
		if (r.NS == 0 || r.NS == ns) && (r.KeyPart == "" || strings.Contains(key, r.KeyPart)) {
			return r
		}
	}
	return nil
}

// Get implements BlobStore, applying any matching read fault.
func (s *FaultStore) Get(ns wire.NS, key string) ([]byte, error) {
	s.applyConnFault(ns, key)
	s.mu.Lock()
	rule := s.match(ns, key, false)
	var rollback []byte
	if rule != nil && rule.Mode == FaultRollback {
		rollback = s.history[histKey(ns, key)]
	}
	if rule != nil {
		s.triggered++
	}
	var delay time.Duration
	if rule != nil && rule.Mode == FaultSlow {
		delay = rule.Delay
		rule = nil // honest, just late: fall through to the true value
	}
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}

	if rule == nil {
		return s.Inner.Get(ns, key)
	}
	switch rule.Mode {
	case FaultDrop:
		return nil, wire.ErrNotFound
	case FaultRollback:
		if rollback != nil {
			out := make([]byte, len(rollback))
			copy(out, rollback)
			return out, nil
		}
		return s.Inner.Get(ns, key)
	case FaultSwap:
		return s.Inner.Get(ns, rule.SwapKey)
	default: // FaultTamper
		val, err := s.Inner.Get(ns, key)
		if err != nil {
			return nil, err
		}
		if len(val) > 0 {
			val[len(val)/2] ^= 0x55
		}
		return val, nil
	}
}

// Put implements BlobStore, recording first versions for rollback and
// applying any matching write fault.
func (s *FaultStore) Put(ns wire.NS, key string, val []byte) error {
	s.applyConnFault(ns, key)
	s.mu.Lock()
	if r := s.match(ns, key, true); r != nil {
		s.triggered++
		s.mu.Unlock()
		return ErrInjectedWrite
	}
	hk := histKey(ns, key)
	if _, ok := s.history[hk]; !ok {
		cp := make([]byte, len(val))
		copy(cp, val)
		s.history[hk] = cp
	}
	s.mu.Unlock()
	return s.Inner.Put(ns, key, val)
}

// Delete implements BlobStore.
func (s *FaultStore) Delete(ns wire.NS, key string) error {
	s.applyConnFault(ns, key)
	return s.Inner.Delete(ns, key)
}

// List implements BlobStore. Fault rules are applied per returned item.
func (s *FaultStore) List(ns wire.NS, prefix string) ([]wire.KV, error) {
	items, err := s.Inner.List(ns, prefix)
	if err != nil {
		return nil, err
	}
	out := items[:0]
	for _, it := range items {
		v, err := s.Get(it.NS, it.Key)
		if err == wire.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		it.Val = v
		out = append(out, it)
	}
	return out, nil
}

// BatchGet implements BlobStore via the faulting Get.
func (s *FaultStore) BatchGet(items []wire.KV) ([]wire.KV, error) {
	out := make([]wire.KV, 0, len(items))
	for _, it := range items {
		v, err := s.Get(it.NS, it.Key)
		if err == wire.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, wire.KV{NS: it.NS, Key: it.Key, Val: v})
	}
	return out, nil
}

// BatchPut implements BlobStore via the history-recording Put.
func (s *FaultStore) BatchPut(items []wire.KV) error {
	for _, it := range items {
		if it.Delete {
			if err := s.Delete(it.NS, it.Key); err != nil {
				return err
			}
			continue
		}
		if err := s.Put(it.NS, it.Key, it.Val); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements BlobStore.
func (s *FaultStore) Stats() (Stats, error) { return s.Inner.Stats() }
