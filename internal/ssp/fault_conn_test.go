package ssp

import (
	"testing"

	"github.com/sharoes/sharoes/internal/wire"
)

// TestFaultConnDropOneShot: the rule severs on the first matching
// operation, then disarms — and the operation itself still lands (the
// cut is at the transport, not the store).
func TestFaultConnDropOneShot(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	severs := 0
	fs.OnSever(func() { severs++ })
	fs.AddRule(FaultRule{Mode: FaultConnDrop})

	for i := 0; i < 5; i++ {
		if err := fs.Put(wire.NSData, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if severs != 1 {
		t.Fatalf("FaultConnDrop severed %d times, want exactly 1", severs)
	}
	if fs.Triggered() != 1 {
		t.Fatalf("Triggered = %d, want 1", fs.Triggered())
	}
	// The write that tripped the rule still executed.
	if v, err := fs.Get(wire.NSData, "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get after drop = %q, %v", v, err)
	}
}

// TestFaultFlapEvery: the rule severs on every Every'th matching
// operation for as long as it stays armed, across both paths.
func TestFaultFlapEvery(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	severs := 0
	fs.OnSever(func() { severs++ })
	fs.AddRule(FaultRule{Mode: FaultFlap, Every: 3})

	// 4 writes + 5 reads = 9 matching ops; hits 3, 6, 9 sever.
	for i := 0; i < 4; i++ {
		if err := fs.Put(wire.NSData, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := fs.Get(wire.NSData, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if severs != 3 {
		t.Fatalf("FaultFlap(Every=3) severed %d times over 9 ops, want 3", severs)
	}
}

// TestFaultConnNoHook: with no OnSever hook wired the connection fault
// modes are inert — ops pass through untouched.
func TestFaultConnNoHook(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.AddRule(FaultRule{Mode: FaultConnDrop})
	fs.AddRule(FaultRule{Mode: FaultFlap, Every: 1})
	for i := 0; i < 3; i++ {
		if err := fs.Put(wire.NSData, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Triggered() != 0 {
		t.Fatalf("Triggered = %d with no sever hook, want 0", fs.Triggered())
	}
}

// TestFaultConnKeyScoped: conn faults respect NS and key-substring
// scoping like every other rule.
func TestFaultConnKeyScoped(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	severs := 0
	fs.OnSever(func() { severs++ })
	fs.AddRule(FaultRule{Mode: FaultConnDrop, NS: wire.NSMeta, KeyPart: "hot"})

	fs.Put(wire.NSData, "hot/1", []byte("v")) // wrong NS
	fs.Put(wire.NSMeta, "cold/1", []byte("v")) // wrong key
	if severs != 0 {
		t.Fatalf("scoped rule fired on non-matching ops (%d severs)", severs)
	}
	fs.Put(wire.NSMeta, "hot/1", []byte("v"))
	if severs != 1 {
		t.Fatalf("scoped rule severed %d times on its match, want 1", severs)
	}
}
