package ssp

import (
	"errors"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/wire"
)

// dualErrInner injects one BatchPut failure (becoming the write-behind
// layer's sticky flush error) and one Barrier failure (modelling a
// sharded inner store surfacing its own sticky quorum loss), so a single
// Barrier above sees both layers fail at once.
type dualErrInner struct {
	BlobStore
	mu     sync.Mutex
	putErr error // returned by the next BatchPut, then cleared
	barErr error // returned by the next Barrier, then cleared
}

func (d *dualErrInner) BatchPut(items []wire.KV) error {
	d.mu.Lock()
	err := d.putErr
	d.putErr = nil
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.BlobStore.BatchPut(items)
}

func (d *dualErrInner) Barrier() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.barErr
	d.barErr = nil
	return err
}

// TestBarrierJoinsBothStickyErrors is the regression test for the
// dropped-inner-error bug: when the write-behind buffer holds its own
// deferred flush error AND the inner store's Barrier reports a sticky
// error, the caller must see both, each still errors.Is-matchable.
// (Previously the inner error was silently lost whenever the buffer
// carried a flush error of its own.)
func TestBarrierJoinsBothStickyErrors(t *testing.T) {
	flushErr := errors.New("flush boom")
	innerErr := errors.New("inner quorum loss")
	inner := &dualErrInner{BlobStore: NewMemStore(), putErr: flushErr, barErr: innerErr}
	wb := NewWriteBehind(inner, WriteBehindOptions{})
	t.Cleanup(func() { wb.Close() })

	if err := wb.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	err := wb.Barrier()
	if !errors.Is(err, flushErr) {
		t.Fatalf("Barrier = %v, lost the write-behind flush error", err)
	}
	if !errors.Is(err, innerErr) {
		t.Fatalf("Barrier = %v, lost the inner store's sticky error", err)
	}

	// Exactly-once: both errors were consumed; a clean second Barrier
	// reports nothing.
	if err := wb.Barrier(); err != nil {
		t.Fatalf("second Barrier = %v, want nil (sticky errors surface once)", err)
	}
}

// TestBarrierInnerStickyAlone: with no buffer-level failure the inner
// Barrier error passes through unmodified (not wrapped in a join).
func TestBarrierInnerStickyAlone(t *testing.T) {
	innerErr := errors.New("inner quorum loss")
	inner := &dualErrInner{BlobStore: NewMemStore(), barErr: innerErr}
	wb := NewWriteBehind(inner, WriteBehindOptions{})
	t.Cleanup(func() { wb.Close() })

	if err := wb.Put(wire.NSData, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := wb.Barrier(); !errors.Is(err, innerErr) {
		t.Fatalf("Barrier = %v, want the inner sticky error", err)
	}
	if err := wb.Barrier(); err != nil {
		t.Fatalf("second Barrier = %v, want nil", err)
	}
	// The write itself landed despite the barrier error.
	if v, err := wb.Get(wire.NSData, "k"); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}
