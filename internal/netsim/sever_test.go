package netsim

import (
	"io"
	"testing"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
)

// TestSeverConns cuts every live conn at once: reads on the peer ends
// fail, the listener itself stays dialable, and already-closed conns are
// not double-counted by a second sever.
func TestSeverConns(t *testing.T) {
	reg := obs.NewRegistry()
	l := Listen(Unlimited)
	l.Observe(reg)
	t.Cleanup(func() { l.Close() })

	c1, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}

	if n := l.SeverConns(); n != 2 {
		t.Fatalf("SeverConns = %d, want 2", n)
	}
	if n := reg.Counter("netsim.severs").Value(); n != 2 {
		t.Fatalf("netsim.severs = %d, want 2", n)
	}

	// The server end of a severed link reads EOF (possibly after
	// draining whatever was in flight — nothing here).
	buf := make([]byte, 8)
	if _, err := s1.Read(buf); err != io.EOF {
		t.Fatalf("server read on severed conn = %v, want io.EOF", err)
	}
	// The severed client ends refuse further writes.
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("write on severed conn succeeded")
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("write on severed conn succeeded")
	}

	// The listener survives the partition: a redial works, and a second
	// sever counts only the live conn (the dead ones untracked
	// themselves on close).
	c3, err := l.Dial()
	if err != nil {
		t.Fatalf("redial after sever: %v", err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Write([]byte("hello")); err != nil {
		t.Fatalf("write on fresh conn: %v", err)
	}
	if n := l.SeverConns(); n != 1 {
		t.Fatalf("second SeverConns = %d, want 1 (only the redialed conn)", n)
	}
}

// TestSeverConnsEmpty: severing with nothing live is a counted no-op of
// zero.
func TestSeverConnsEmpty(t *testing.T) {
	reg := obs.NewRegistry()
	l := Listen(Unlimited)
	l.Observe(reg)
	t.Cleanup(func() { l.Close() })
	if n := l.SeverConns(); n != 0 {
		t.Fatalf("SeverConns on idle listener = %d, want 0", n)
	}
	if n := reg.Counter("netsim.severs").Value(); n != 0 {
		t.Fatalf("netsim.severs = %d, want 0", n)
	}
}

// TestConnCloseIdempotent: double Close must not panic or double-count
// the live map (SeverConns relies on closeOnce).
func TestConnCloseIdempotent(t *testing.T) {
	l := Listen(Unlimited)
	t.Cleanup(func() { l.Close() })
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	// Give the bookkeeping a beat, then confirm nothing is left to cut.
	time.Sleep(time.Millisecond)
	if n := l.SeverConns(); n != 0 {
		t.Fatalf("SeverConns after close = %d, want 0", n)
	}
}
