package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	c, s := Pipe(Unlimited)
	defer c.Close()
	defer s.Close()

	go func() {
		if _, err := c.Write([]byte("hello ssp")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 64)
	n, err := s.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello ssp" {
		t.Errorf("got %q", buf[:n])
	}
}

func TestPipeBidirectional(t *testing.T) {
	c, s := Pipe(Unlimited)
	defer c.Close()
	defer s.Close()

	go func() {
		buf := make([]byte, 16)
		n, _ := s.Read(buf)
		s.Write(append([]byte("echo:"), buf[:n]...))
	}()
	c.Write([]byte("ping"))
	buf := make([]byte, 32)
	n, err := io.ReadAtLeast(c, buf, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "echo:ping" {
		t.Errorf("got %q", buf[:n])
	}
}

func TestPipeLargeTransferOrdered(t *testing.T) {
	c, s := Pipe(Unlimited)
	defer c.Close()

	msg := make([]byte, 256*1024)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	go func() {
		c.Write(msg)
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("large transfer corrupted")
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	c, s := Pipe(Unlimited)
	c.Write([]byte("last words"))
	c.Close()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "last words" {
		t.Errorf("got %q", got)
	}
	// A second read keeps returning EOF.
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriteAfterPeerClose(t *testing.T) {
	c, s := Pipe(Unlimited)
	s.Close()
	// Eventually writes fail once the buffer fills; with the direction
	// closed they must fail immediately.
	_, err := c.Write(make([]byte, 1))
	if !errors.Is(err, net.ErrClosed) {
		t.Errorf("err = %v, want net.ErrClosed", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	p := Profile{Name: "test", Latency: 30 * time.Millisecond}
	c, s := Pipe(p)
	defer c.Close()
	defer s.Close()

	start := time.Now()
	go c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~30ms", el)
	}
}

func TestBandwidthApplied(t *testing.T) {
	// 80_000 bits/s = 10 KB/s: sending 2 KB should take ~200 ms.
	p := Profile{Name: "slow", UpBps: 80_000}
	c, s := Pipe(p)
	defer c.Close()
	defer s.Close()

	done := make(chan struct{})
	go func() {
		io.ReadFull(s, make([]byte, 2048))
		close(done)
	}()
	start := time.Now()
	if _, err := c.Write(make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	<-done
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Errorf("2KB at 10KB/s took %v, want >= ~200ms", el)
	}
}

func TestAsymmetricDirections(t *testing.T) {
	// Down direction is 10x slower than up.
	p := Profile{Name: "asym", UpBps: 8_000_000, DownBps: 800_000}
	c, s := Pipe(p)
	defer c.Close()
	defer s.Close()

	const n = 8 * 1024
	timeDir := func(w, r net.Conn) time.Duration {
		done := make(chan struct{})
		go func() {
			io.ReadFull(r, make([]byte, n))
			close(done)
		}()
		start := time.Now()
		w.Write(make([]byte, n))
		<-done
		return time.Since(start)
	}
	up := timeDir(c, s)
	down := timeDir(s, c)
	if down < 4*up {
		t.Errorf("down=%v not clearly slower than up=%v", down, up)
	}
}

func TestScaled(t *testing.T) {
	s := DSL.Scaled(50)
	if s.Latency != DSL.Latency/50 {
		t.Errorf("latency = %v", s.Latency)
	}
	if s.UpBps != DSL.UpBps*50 || s.DownBps != DSL.DownBps*50 {
		t.Errorf("bw = %d/%d", s.UpBps, s.DownBps)
	}
	if same := DSL.Scaled(0); same != DSL {
		t.Error("Scaled(0) should be identity")
	}
	// Unlimited stays unlimited.
	if u := Unlimited.Scaled(10); u.UpBps != 0 || u.DownBps != 0 {
		t.Error("scaling unlimited set bandwidth")
	}
}

func TestTransferTime(t *testing.T) {
	// 1000 bytes at 80_000 bps = 100 ms, plus 20 ms latency.
	got := TransferTime(1000, 80_000, 20*time.Millisecond)
	if got != 120*time.Millisecond {
		t.Errorf("TransferTime = %v", got)
	}
	if TransferTime(1<<20, 0, time.Millisecond) != time.Millisecond {
		t.Error("unlimited bandwidth should cost only latency")
	}
}

func TestListenerDialAccept(t *testing.T) {
	l := Listen(Unlimited)
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 8)
		n, _ := conn.Read(buf)
		conn.Write(bytes.ToUpper(buf[:n]))
	}()

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("abc"))
	buf := make([]byte, 8)
	n, err := io.ReadAtLeast(conn, buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ABC" {
		t.Errorf("got %q", buf[:n])
	}
	wg.Wait()
}

func TestListenerClose(t *testing.T) {
	l := Listen(Unlimited)
	l.Close()
	l.Close() // double close is fine
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Accept after close: %v", err)
	}
	if _, err := l.Dial(); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Dial after close: %v", err)
	}
	if l.Addr().Network() != "netsim" {
		t.Error("addr network")
	}
}

func TestConnAddrsAndDeadlines(t *testing.T) {
	c, s := Pipe(Unlimited)
	defer c.Close()
	defer s.Close()
	if c.LocalAddr().String() == "" || c.RemoteAddr().String() == "" {
		t.Error("empty addrs")
	}
	if err := c.SetDeadline(time.Now()); err != nil {
		t.Error(err)
	}
	if err := c.SetReadDeadline(time.Now()); err != nil {
		t.Error(err)
	}
	if err := c.SetWriteDeadline(time.Now()); err != nil {
		t.Error(err)
	}
}

func TestConcurrentConnsIndependent(t *testing.T) {
	l := Listen(Unlimited)
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) // echo
			}(conn)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			conn, err := l.Dial()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			msg := bytes.Repeat([]byte{id}, 100)
			conn.Write(msg)
			got := make([]byte, 100)
			if _, err := io.ReadFull(conn, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d cross-talk", id)
			}
		}(byte(i + 1))
	}
	wg.Wait()
}
