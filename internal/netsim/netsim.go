// Package netsim simulates wide-area network links in-process.
//
// The paper's evaluation ran the SSP in Atlanta and the client in
// Birmingham, AL over a home DSL connection measured at 850 Kbit/s up and
// 350 Kbit/s down. netsim reproduces that testbed as an in-memory
// net.Conn pair shaped by per-direction serialization delay (a transmit
// virtual clock advanced len*8/bps per write, so concurrent in-flight
// frames share the link like a real FIFO serializer without blocking the
// writer) plus one-way propagation latency. Absolute numbers
// naturally differ from the 2008 hardware, but the dominance of network
// time over crypto time — the property every figure in the paper rests
// on — is preserved.
package netsim

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/sharoes/sharoes/internal/obs"
)

// Profile describes a link.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// UpBps is client→SSP bandwidth in bits per second.
	UpBps int64
	// DownBps is SSP→client bandwidth in bits per second.
	DownBps int64
}

// Predefined profiles.
var (
	// DSL is the paper's measured home DSL link: 850 Kbit/s up,
	// 350 Kbit/s down, ~40 ms RTT for the ~150-mile path.
	DSL = Profile{Name: "dsl", Latency: 20 * time.Millisecond, UpBps: 850_000, DownBps: 350_000}

	// LAN approximates a local gigabit network.
	LAN = Profile{Name: "lan", Latency: 200 * time.Microsecond, UpBps: 1_000_000_000, DownBps: 1_000_000_000}

	// Unlimited applies no shaping at all; useful for unit tests.
	Unlimited = Profile{Name: "unlimited"}
)

// Scaled returns a profile whose delays are divided — and bandwidth
// multiplied — by factor. Benchmarks run under DSL.Scaled(40) by default:
// the factor compensates for CPU scaling since the paper's 2008 hardware,
// keeping the ratio of public-key-operation time to round-trip time in
// the regime the paper measured (see EXPERIMENTS.md).
func (p Profile) Scaled(factor float64) Profile {
	if factor <= 0 {
		return p
	}
	out := p
	out.Name = fmt.Sprintf("%s/%g", p.Name, factor)
	out.Latency = time.Duration(float64(p.Latency) / factor)
	if p.UpBps > 0 {
		out.UpBps = int64(float64(p.UpBps) * factor)
	}
	if p.DownBps > 0 {
		out.DownBps = int64(float64(p.DownBps) * factor)
	}
	return out
}

// TransferTime returns the modelled one-direction time to move n bytes:
// serialization at bps plus propagation latency. A bps of zero means
// unlimited bandwidth.
func TransferTime(n int, bps int64, latency time.Duration) time.Duration {
	d := latency
	if bps > 0 {
		d += time.Duration(float64(n*8) / float64(bps) * float64(time.Second))
	}
	return d
}

type packet struct {
	data      []byte
	deliverAt time.Time
}

// pipeDir is one direction of a shaped pipe.
type pipeDir struct {
	ch      chan packet
	latency time.Duration
	bps     int64

	// vmu guards vclock, the transmit virtual clock: the instant the
	// link's serializer is next free. Writes advance it by their modelled
	// serialization time and stamp deliverAt from it instead of sleeping
	// in line. Sleeping in write() would charge the whole serialization
	// delay to whichever goroutine holds the connection's write path —
	// with a coarse kernel tick every per-frame sleep rounds up to a full
	// tick, so a pipelined connection's writer would serialize ~1 ms per
	// frame that the model prices in microseconds. The reader alone
	// sleeps, until deliverAt, where queued packets amortize the tick.
	vmu    sync.Mutex
	vclock time.Time

	mu          sync.Mutex
	writeClosed bool
	closed      chan struct{} // closed when the writer side closes

	// bytes counts payload bytes shaped through this direction; nil-safe
	// no-op when the owning listener has no registry attached.
	bytes *obs.Counter
	// transmits counts write() calls — one per flushed frame or frame
	// pack, independent of size. The wire-v2 batching work is visible
	// here: a pipelined burst that used to cost one transmit per frame
	// coalesces into one transmit per pack.
	transmits *obs.Counter

	// reader-side state; accessed only by the reading conn
	rmu  sync.Mutex
	rbuf []byte
}

func newPipeDir(latency time.Duration, bps int64) *pipeDir {
	return &pipeDir{
		ch:      make(chan packet, 1024),
		latency: latency,
		bps:     bps,
		closed:  make(chan struct{}),
	}
}

// maxSegment bounds per-write serialization sleeps so that large writes
// interleave realistically with the reader.
const maxSegment = 16 * 1024

func (d *pipeDir) write(b []byte) (int, error) {
	d.transmits.Inc()
	total := 0
	for len(b) > 0 {
		seg := b
		if len(seg) > maxSegment {
			seg = seg[:maxSegment]
		}
		b = b[len(seg):]
		deliverAt := time.Now().Add(d.latency)
		if d.bps > 0 {
			ser := time.Duration(float64(len(seg)*8) / float64(d.bps) * float64(time.Second))
			d.vmu.Lock()
			if now := time.Now(); d.vclock.Before(now) {
				d.vclock = now
			}
			d.vclock = d.vclock.Add(ser)
			deliverAt = d.vclock.Add(d.latency)
			d.vmu.Unlock()
		}
		data := make([]byte, len(seg))
		copy(data, seg)
		pkt := packet{data: data, deliverAt: deliverAt}
		// Check for closure first: when both cases are ready, select
		// picks randomly, and a write after close must fail.
		select {
		case <-d.closed:
			return total, net.ErrClosed
		default:
		}
		select {
		case d.ch <- pkt:
			total += len(seg)
			d.bytes.Add(int64(len(seg)))
		case <-d.closed:
			return total, net.ErrClosed
		}
	}
	return total, nil
}

func (d *pipeDir) read(b []byte) (int, error) {
	d.rmu.Lock()
	defer d.rmu.Unlock()
	if len(d.rbuf) > 0 {
		n := copy(b, d.rbuf)
		d.rbuf = d.rbuf[n:]
		return n, nil
	}
	for {
		select {
		case pkt := <-d.ch:
			if wait := time.Until(pkt.deliverAt); wait > 0 {
				time.Sleep(wait)
			}
			n := copy(b, pkt.data)
			d.rbuf = pkt.data[n:]
			return n, nil
		case <-d.closed:
			// Drain anything already queued before reporting EOF.
			select {
			case pkt := <-d.ch:
				if wait := time.Until(pkt.deliverAt); wait > 0 {
					time.Sleep(wait)
				}
				n := copy(b, pkt.data)
				d.rbuf = pkt.data[n:]
				return n, nil
			default:
				return 0, io.EOF
			}
		}
	}
}

func (d *pipeDir) closeWrite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.writeClosed {
		d.writeClosed = true
		close(d.closed)
	}
}

// Conn is one endpoint of a shaped pipe. It implements net.Conn.
// Deadlines are accepted but not enforced; the ssp client's per-call
// deadlines are timer-based (ssp.ErrDeadline) rather than conn-based,
// and the simulator's sleeps are bounded by construction.
type Conn struct {
	name string
	out  *pipeDir // direction we write to
	in   *pipeDir // direction we read from

	// onClose, when set, runs exactly once on the first Close — the
	// owning Listener uses it to drop the conn from its live set.
	closeOnce sync.Once
	onClose   func()
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) { return c.in.read(b) }

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) { return c.out.write(b) }

// Close implements net.Conn. It closes both directions: the peer's reads
// see EOF after draining, and our own blocked reads return.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		if c.onClose != nil {
			c.onClose()
		}
	})
	c.out.closeWrite()
	c.in.closeWrite()
	return nil
}

// simAddr is the net.Addr of a simulated endpoint.
type simAddr string

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return string(a) }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return simAddr(c.name) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return simAddr("peer-of-" + c.name) }

// SetDeadline implements net.Conn (accepted, not enforced).
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn (accepted, not enforced).
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn (accepted, not enforced).
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// Pipe returns a connected, shaped pair: the client end and the SSP end.
// Bytes written by the client are shaped at p.UpBps; bytes written by the
// server at p.DownBps; both directions add p.Latency propagation delay.
func Pipe(p Profile) (client, server *Conn) {
	up := newPipeDir(p.Latency, p.UpBps)
	down := newPipeDir(p.Latency, p.DownBps)
	client = &Conn{name: "client", out: up, in: down}
	server = &Conn{name: "ssp", out: down, in: up}
	return client, server
}

// Listener accepts simulated connections; it lets an ssp.Server serve
// shaped in-process traffic exactly as it would serve a real net.Listener.
type Listener struct {
	profile Profile
	ch      chan net.Conn
	mu      sync.Mutex
	closed  bool
	done    chan struct{}
	reg     *obs.Registry
	// live tracks the client ends of dialed conns so SeverConns can cut
	// every link at once; entries remove themselves on Close.
	live map[*Conn]struct{}
}

// Observe attaches a metrics registry (nil detaches). Subsequent dials
// count under netsim.dials, the payload bytes shaped through their pipes
// under netsim.bytes_up / netsim.bytes_down, and write calls (frames or
// frame packs — the batching efficiency signal) under netsim.transmits.
// Call before handing the listener to concurrent dialers.
func (l *Listener) Observe(reg *obs.Registry) { l.reg = reg }

// Listen creates a Listener whose connections are shaped by p.
func Listen(p Profile) *Listener {
	return &Listener{profile: p, ch: make(chan net.Conn, 16), done: make(chan struct{}),
		live: make(map[*Conn]struct{})}
}

// Dial creates a new shaped connection to the listener and returns the
// client end.
func (l *Listener) Dial() (net.Conn, error) {
	select {
	case <-l.done:
		return nil, net.ErrClosed
	default:
	}
	client, server := Pipe(l.profile)
	if l.reg != nil {
		l.reg.Counter("netsim.dials").Inc()
		client.out.bytes = l.reg.Counter("netsim.bytes_up")
		client.in.bytes = l.reg.Counter("netsim.bytes_down")
		transmits := l.reg.Counter("netsim.transmits")
		client.out.transmits = transmits
		client.in.transmits = transmits
	}
	client.onClose = func() {
		l.mu.Lock()
		delete(l.live, client)
		l.mu.Unlock()
	}
	l.mu.Lock()
	l.live[client] = struct{}{}
	l.mu.Unlock()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.onClose() // never handed out; untrack without severing
		return nil, net.ErrClosed
	}
}

// SeverConns force-closes every live connection dialed through this
// listener and reports how many were cut. The listener itself stays up,
// so redials succeed — this models a transient network partition (the
// FaultConnDrop / FaultFlap fault modes), not an outage of the SSP.
func (l *Listener) SeverConns() int {
	l.mu.Lock()
	conns := make([]*Conn, 0, len(l.live))
	for c := range l.live {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil {
			// Conn.Close never fails today; keep the contract honest if
			// that changes.
			panic(fmt.Sprintf("netsim: sever close: %v", err))
		}
	}
	if l.reg != nil && len(conns) > 0 {
		l.reg.Counter("netsim.severs").Add(int64(len(conns)))
	}
	return len(conns)
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return simAddr("netsim:" + l.profile.Name) }
