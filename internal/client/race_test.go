package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
)

// TestConcurrentSessions mounts one Session per goroutine (the documented
// concurrency contract) over one shared store, and mixes private-subtree
// writes with reads of a shared file. Run under -race (make race / CI):
// the sessions share the store, the layout engine, and the key registry,
// so this exercises every cross-session structure for data races.
func TestConcurrentSessions(t *testing.T) {
	fixture(t)
	w := newWorld(t, layout.NewScheme2(fixReg), ssp.NewMemStore())

	// Seed a shared read-only file and per-worker directories as alice.
	setup := w.as("alice")
	sharedBody := bytes.Repeat([]byte("shared-data "), 20) // spans blocks
	if err := setup.WriteFile("/shared.txt", sharedBody, perm(t, "644")); err != nil {
		t.Fatal(err)
	}
	const workers = 6
	for i := 0; i < workers; i++ {
		if err := setup.Mkdir(fmt.Sprintf("/w%d", i), perm(t, "755")); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Alternate users so group and other permission paths are
			// both exercised concurrently.
			user := types.UserID("alice")
			if i%2 == 1 {
				user = "bob"
			}
			s := w.mountFresh(user, 1<<14) // small cache: constant eviction
			defer s.Close()
			dir := fmt.Sprintf("/w%d", i)
			for j := 0; j < 8; j++ {
				p := fmt.Sprintf("%s/f%d.txt", dir, j)
				body := []byte(fmt.Sprintf("worker %d file %d", i, j))
				// Only alice owns the worker directories; bob workers are
				// pure readers, exercising the group permission path.
				if user == "alice" {
					if err := s.WriteFile(p, body, perm(t, "644")); err != nil {
						errs <- fmt.Errorf("worker %d write %s: %w", i, p, err)
						return
					}
					got, err := s.ReadFile(p)
					if err != nil || !bytes.Equal(got, body) {
						errs <- fmt.Errorf("worker %d readback %s: %q, %v", i, p, got, err)
						return
					}
				}
				got, err := s.ReadFile("/shared.txt")
				if err != nil || !bytes.Equal(got, sharedBody) {
					errs <- fmt.Errorf("worker %d shared read: %v", i, err)
					return
				}
				if _, err := s.ReadDir(dir); err != nil {
					errs <- fmt.Errorf("worker %d readdir: %w", i, err)
					return
				}
				if _, err := s.Stat("/shared.txt"); err != nil {
					errs <- fmt.Errorf("worker %d stat: %w", i, err)
					return
				}
				s.Refresh() // drop cached state; next reads refetch
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
