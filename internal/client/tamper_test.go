package client

import (
	"errors"
	"testing"

	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/migrate"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// tamperWorld bootstraps a filesystem behind a FaultStore so tests can
// model a malicious SSP (paper §VII: the SSP is trusted to store, not with
// confidentiality or access control; attacks must be *detected*).
func tamperWorld(t *testing.T) (*ssp.FaultStore, *Session) {
	t.Helper()
	fixture(t)
	fs := ssp.NewFaultStore(ssp.NewMemStore())
	eng := layout.NewScheme2(fixReg)
	err := migrate.Bootstrap(migrate.Options{Store: fs, Registry: fixReg, Layout: eng,
		FSID: "testfs", RootOwner: "alice", RootGroup: "eng", RootPerm: 0o755})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Mount(Config{Store: fs, User: fixUser["alice"], Registry: fixReg, Layout: eng,
		FSID: "testfs", CacheBytes: 0, BlockSize: 64}) // cache disabled: every read hits the SSP
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return fs, s
}

func TestTamperedMetadataDetected(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.WriteFile("/f", []byte("authentic"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultTamper, NS: wire.NSMeta})
	if _, err := alice.Stat("/f"); !errors.Is(err, types.ErrTampered) {
		t.Errorf("stat over tampered metadata: %v", err)
	}
	fs.ClearRules()
	if _, err := alice.Stat("/f"); err != nil {
		t.Errorf("stat after clearing faults: %v", err)
	}
}

func TestTamperedDataBlockDetected(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.WriteFile("/f", []byte("block content that spans multiple 64-byte blocks for certain........"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultTamper, NS: wire.NSData, KeyPart: "f/"})
	if _, err := alice.ReadFile("/f"); !errors.Is(err, types.ErrTampered) {
		t.Errorf("read of tampered block: %v", err)
	}
}

func TestTamperedDirTableDetected(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultTamper, NS: wire.NSData, KeyPart: "t/"})
	if _, err := alice.ReadDir("/d"); !errors.Is(err, types.ErrTampered) {
		t.Errorf("readdir of tampered table: %v", err)
	}
}

// TestSwappedObjectDetected: the SSP serves a different, validly-sealed
// object in place of the requested one. AAD location binding catches it.
func TestSwappedObjectDetected(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.WriteFile("/a", []byte("content a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := alice.WriteFile("/b", []byte("content b"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Find the two files' first blocks and swap them.
	items, err := fs.Inner.List(wire.NSData, "f/")
	if err != nil {
		t.Fatal(err)
	}
	var blockKeys []string
	for _, it := range items {
		if it.Key[len(it.Key)-1] == '0' { // block index 0
			blockKeys = append(blockKeys, it.Key)
		}
	}
	if len(blockKeys) != 2 {
		t.Fatalf("expected 2 block-0 keys, got %v", blockKeys)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultSwap, NS: wire.NSData, KeyPart: blockKeys[0], SwapKey: blockKeys[1]})
	// One of the two reads must hit the swap and fail; neither may
	// silently return the other file's content.
	gotA, errA := alice.ReadFile("/a")
	gotB, errB := alice.ReadFile("/b")
	if errA == nil && errB == nil {
		t.Fatal("both reads succeeded through a swap")
	}
	if errA == nil && string(gotA) != "content a" {
		t.Errorf("/a returned foreign content %q", gotA)
	}
	if errB == nil && string(gotB) != "content b" {
		t.Errorf("/b returned foreign content %q", gotB)
	}
}

// TestUnauthorizedWriteDetected: a reader (or the SSP) re-encrypts a block
// with the DEK it knows but cannot produce a valid DSK signature.
func TestUnauthorizedWriteDetected(t *testing.T) {
	fixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(fixReg)
	err := migrate.Bootstrap(migrate.Options{Store: store, Registry: fixReg, Layout: eng,
		FSID: "testfs", RootOwner: "alice", RootGroup: "eng", RootPerm: 0o755})
	if err != nil {
		t.Fatal(err)
	}
	mount := func(id types.UserID) *Session {
		s, err := Mount(Config{Store: store, User: fixUser[id], Registry: fixReg, Layout: eng,
			FSID: "testfs", CacheBytes: 0, BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	alice := mount("alice")
	if err := alice.WriteFile("/readonly-for-carol", []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	// carol holds the DEK (she can read) — the attack the paper's
	// signing/verification design exists to stop (§II-B).
	carol := mount("carol")
	if err := carol.WriteFile("/readonly-for-carol", []byte("forged"), 0); !errors.Is(err, types.ErrPermission) {
		t.Fatalf("carol write: %v", err)
	}
	// Simulate carol bypassing the client and writing a DEK-encrypted
	// forged blob straight to the SSP: she has no DSK, so she signs with
	// a key she made up. Readers must reject it.
	_, cm, err := carol.resolve("/readonly-for-carol")
	if err != nil {
		t.Fatal(err)
	}
	tmp := *cm
	tmp.Keys.DSK = newObjectKeys().DSK // a signing key of her own, not the file's DSK
	forged, err := carol.sealFileData(&tmp, []byte("forged!!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.BatchPut(forged); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ReadFile("/readonly-for-carol"); !errors.Is(err, types.ErrTampered) {
		t.Errorf("alice accepted a forged write: %v", err)
	}
}

// TestRollbackVisibility documents what a pure rollback (replay of stale
// but once-valid state) does: it is NOT detected — the paper explicitly
// defers fork-consistency to a SUNDR integration (§VI) — but it can only
// yield stale authentic content, never forged content.
func TestRollbackVisibility(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.WriteFile("/f", []byte("version-1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := alice.WriteFile("/f", []byte("version-2"), 0); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultRollback, NS: wire.NSData})
	got, err := alice.ReadFile("/f")
	if err != nil {
		// Acceptable too: some rollbacks break cross-blob consistency
		// and are detected.
		return
	}
	if string(got) != "version-1" && string(got) != "version-2" {
		t.Errorf("rollback yielded forged content %q", got)
	}
}

// TestDroppedBlobSurfacesError: the SSP hiding blobs must surface as an
// integrity error on data reads, not as silently-empty content.
func TestDroppedBlobSurfacesError(t *testing.T) {
	fs, alice := tamperWorld(t)
	if err := alice.WriteFile("/f", []byte("some content"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.AddRule(ssp.FaultRule{Mode: ssp.FaultDrop, NS: wire.NSData, KeyPart: "f/"})
	if _, err := alice.ReadFile("/f"); !errors.Is(err, types.ErrTampered) {
		t.Errorf("read with dropped blocks: %v", err)
	}
}
