package client

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/sharoes/sharoes/internal/types"
)

func TestHandleReadWriteClose(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")

		// Create-and-write through a handle; nothing visible until Close.
		f, err := alice.OpenFile("/h.txt", OWrite|OCreate, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("hello ")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("handles")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil { // double close is fine
			t.Fatal(err)
		}
		got, err := alice.ReadFile("/h.txt")
		if err != nil || string(got) != "hello handles" {
			t.Fatalf("after close = %q, %v", got, err)
		}

		// Read through a handle with io.ReadAll.
		rf, err := alice.OpenFile("/h.txt", ORead, 0)
		if err != nil {
			t.Fatal(err)
		}
		all, err := io.ReadAll(rf)
		if err != nil || string(all) != "hello handles" {
			t.Fatalf("ReadAll = %q, %v", all, err)
		}
		// Writes on a read-only handle fail.
		if _, err := rf.Write([]byte("x")); !errors.Is(err, types.ErrPermission) {
			t.Errorf("write on read handle: %v", err)
		}
		rf.Close()
		if _, err := rf.Read(make([]byte, 1)); !errors.Is(err, types.ErrClosed) {
			t.Errorf("read after close: %v", err)
		}
	})
}

func TestHandleSeekAndWriteAt(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/seek.bin", bytes.Repeat([]byte{'.'}, 200), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		f, err := alice.OpenFile("/seek.bin", OWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Patch the middle (crosses the 64-byte block boundary).
		if _, err := f.WriteAt([]byte("PATCH"), 62); err != nil {
			t.Fatal(err)
		}
		// Append past the end via SeekEnd.
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("TAIL")); err != nil {
			t.Fatal(err)
		}
		// Read back through the same handle.
		if _, err := f.Seek(62, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		probe := make([]byte, 5)
		if _, err := io.ReadFull(f, probe); err != nil || string(probe) != "PATCH" {
			t.Fatalf("probe = %q, %v", probe, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := alice.ReadFile("/seek.bin")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 204 || string(got[62:67]) != "PATCH" || string(got[200:]) != "TAIL" {
			t.Errorf("final content wrong: len=%d", len(got))
		}
	})
}

func TestHandleTruncate(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/t.bin", bytes.Repeat([]byte{1}, 150), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		f, err := alice.OpenFile("/t.bin", OWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(10); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 10 {
			t.Errorf("size = %d", f.Size())
		}
		if err := f.Truncate(20); err != nil { // extend with zeros
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		got, _ := alice.ReadFile("/t.bin")
		if len(got) != 20 || got[0] != 1 || got[15] != 0 {
			t.Errorf("truncate result: len=%d", len(got))
		}
		// OTrunc at open.
		f2, err := alice.OpenFile("/t.bin", OWrite|OTrunc, 0)
		if err != nil {
			t.Fatal(err)
		}
		f2.Write([]byte("fresh"))
		f2.Close()
		if got, _ := alice.ReadFile("/t.bin"); string(got) != "fresh" {
			t.Errorf("OTrunc result: %q", got)
		}
	})
}

func TestHandlePermissions(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/ro.txt", []byte("read me"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		carol := w.as("carol")
		// carol can open read-only...
		f, err := carol.OpenFile("/ro.txt", ORead, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		// ...but not for write.
		if _, err := carol.OpenFile("/ro.txt", OWrite, 0); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol open-write: %v", err)
		}
		// Missing file without OCreate.
		if _, err := alice.OpenFile("/missing", OWrite, 0o644); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("open missing: %v", err)
		}
		// Directories are not openable.
		if _, err := alice.OpenFile("/", ORead, 0); !errors.Is(err, types.ErrIsDir) {
			t.Errorf("open dir: %v", err)
		}
	})
}
