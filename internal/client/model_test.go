package client

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/migrate"
	"github.com/sharoes/sharoes/internal/refmodel"
	"github.com/sharoes/sharoes/internal/shard"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
)

// errClass buckets an error into a comparable sentinel class.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, types.ErrNotExist):
		return "notexist"
	case errors.Is(err, types.ErrExist):
		return "exist"
	case errors.Is(err, types.ErrPermission):
		return "permission"
	case errors.Is(err, types.ErrNotDir):
		return "notdir"
	case errors.Is(err, types.ErrIsDir):
		return "isdir"
	case errors.Is(err, types.ErrNotEmpty):
		return "notempty"
	case errors.Is(err, types.ErrUnsupportedPerm):
		return "unsupported"
	case errors.Is(err, types.ErrInvalidPath):
		return "invalidpath"
	case errors.Is(err, types.ErrTampered):
		return "tampered"
	default:
		return "other:" + err.Error()
	}
}

// TestModelEquivalence drives random operation sequences against the
// Sharoes client and the plain in-memory reference filesystem; every
// result and error class must agree. This is the strongest statement that
// the CAP construction reproduces *nix data-sharing semantics.
func TestModelEquivalence(t *testing.T) {
	fixture(t)
	const steps = 350
	users := []types.UserID{"alice", "bob", "carol", "dave"}
	members := refmodel.Memberships{}
	members.AddMember("eng", "alice")
	members.AddMember("eng", "bob")
	members.AddMember("qa", "carol")

	names := []string{"a", "b", "docs", "src", "x.txt", "y.txt", "deep", "n1"}
	// Valid permissions, plus a few unsupported ones that must be
	// rejected identically.
	filePerms := []string{"644", "600", "640", "664", "444", "000", "660", "642", "621"}
	dirPerms := []string{"755", "700", "750", "711", "744", "775", "000", "753", "733"}

	// The mode dimension interposes storage layers shared by all four
	// users' sessions: "wb" adds the ssp.WriteBehind batching layer, and
	// "wbshard" puts that write-behind over a 3-shard replicated
	// shard.Store (R=2, W=R so every ack is fully replicated and reads
	// are deterministic). In every mode each result and error class must
	// STILL match the reference model — the read-after-write coherence
	// proof for the buffering and sharding layers.
	for _, mode := range []string{"", "wb", "wbshard"} {
		name := func(scheme string, seed int64) string {
			if mode != "" {
				return fmt.Sprintf("%s/seed%d/%s", scheme, seed, mode)
			}
			return fmt.Sprintf("%s/seed%d", scheme, seed)
		}
		for _, scheme := range []string{"scheme2", "scheme1"} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(name(scheme, seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					var store ssp.BlobStore = ssp.NewMemStore()
					if mode == "wbshard" {
						var bks []shard.Backend
						for i := 0; i < 3; i++ {
							bks = append(bks, shard.Backend{ID: fmt.Sprintf("s%d", i), Store: ssp.NewMemStore()})
						}
						sh, err := shard.New(bks, shard.Options{Replicas: 2, WriteQuorum: 2})
						if err != nil {
							t.Fatal(err)
						}
						defer sh.Close()
						store = sh
					}
					var eng layout.Engine = layout.NewScheme2(fixReg)
					if scheme == "scheme1" {
						eng = layout.NewScheme1(fixReg)
					}
					if err := migrate.Bootstrap(migrate.Options{Store: store, Registry: fixReg,
						Layout: eng, FSID: "modelfs", RootOwner: "alice", RootGroup: "eng",
						RootPerm: 0o755}); err != nil {
						t.Fatal(err)
					}
					sstore := store
					if mode != "" {
						w := ssp.NewWriteBehind(store, ssp.WriteBehindOptions{})
						defer w.Close()
						sstore = w
					}
					model := refmodel.New("alice", "eng", 0o755, members)

					sess := make(map[types.UserID]*Session)
					for _, u := range users {
						s, err := Mount(Config{Store: sstore, User: fixUser[u], Registry: fixReg,
							Layout: eng, FSID: "modelfs", CacheBytes: 0, BlockSize: 48})
						if err != nil {
							t.Fatal(err)
						}
						defer s.Close()
						sess[u] = s
					}

					randPath := func() string {
						depth := rng.Intn(3) + 1
						p := ""
						for i := 0; i < depth; i++ {
							p += "/" + names[rng.Intn(len(names))]
						}
						return p
					}
					randData := func() []byte {
						n := rng.Intn(200)
						b := make([]byte, n)
						rng.Read(b)
						return b
					}
					pperm := func(pool []string) types.Perm {
						p, _ := types.ParsePerm(pool[rng.Intn(len(pool))])
						return p
					}

					for step := 0; step < steps; step++ {
						u := users[rng.Intn(len(users))]
						s := sess[u]
						path := randPath()
						opn := rng.Intn(100)
						var desc string
						var gotErr, wantErr error
						switch {
						case opn < 15: // mkdir
							p := pperm(dirPerms)
							desc = fmt.Sprintf("%s mkdir %s %s", u, path, p)
							gotErr = s.Mkdir(path, p)
							wantErr = model.Mkdir(u, path, p)
						case opn < 30: // write
							p := pperm(filePerms)
							data := randData()
							desc = fmt.Sprintf("%s write %s (%d bytes, %s)", u, path, len(data), p)
							gotErr = s.WriteFile(path, data, p)
							wantErr = model.WriteFile(u, path, data, p)
						case opn < 40: // read
							desc = fmt.Sprintf("%s read %s", u, path)
							got, ge := s.ReadFile(path)
							want, we := model.ReadFile(u, path)
							gotErr, wantErr = ge, we
							if ge == nil && we == nil && !bytes.Equal(got, want) {
								t.Fatalf("step %d: %s: content mismatch (%d vs %d bytes)", step, desc, len(got), len(want))
							}
						case opn < 50: // stat
							desc = fmt.Sprintf("%s stat %s", u, path)
							got, ge := s.Stat(path)
							want, we := model.Stat(u, path)
							gotErr, wantErr = ge, we
							if ge == nil && we == nil {
								if got.Kind != want.Kind || got.Owner != want.Owner ||
									got.Group != want.Group || got.Perm != want.Perm {
									t.Fatalf("step %d: %s: info mismatch %+v vs %+v", step, desc, got, want)
								}
								if want.Kind == types.KindFile && model.CanRead(u, path) &&
									got.Size != want.Size {
									t.Fatalf("step %d: %s: size %d vs %d", step, desc, got.Size, want.Size)
								}
							}
						case opn < 60: // readdir
							desc = fmt.Sprintf("%s readdir %s", u, path)
							got, ge := s.ReadDir(path)
							want, we := model.ReadDir(u, path)
							gotErr, wantErr = ge, we
							if ge == nil && we == nil {
								if len(got) != len(want) {
									t.Fatalf("step %d: %s: %v vs %v", step, desc, got, want)
								}
								for i := range got {
									if got[i] != want[i] {
										t.Fatalf("step %d: %s: %v vs %v", step, desc, got, want)
									}
								}
							}
						case opn < 68: // append
							data := randData()
							desc = fmt.Sprintf("%s append %s (%d bytes)", u, path, len(data))
							gotErr = s.Append(path, data)
							wantErr = model.Append(u, path, data)
						case opn < 78: // chmod
							var p types.Perm
							if rng.Intn(2) == 0 {
								p = pperm(filePerms)
							} else {
								p = pperm(dirPerms)
							}
							desc = fmt.Sprintf("%s chmod %s %s", u, path, p)
							gotErr = s.Chmod(path, p)
							wantErr = model.Chmod(u, path, p)
						case opn < 84: // chown
							newOwner := users[rng.Intn(len(users))]
							groups := []types.GroupID{"eng", "qa", ""}
							newGroup := groups[rng.Intn(len(groups))]
							desc = fmt.Sprintf("%s chown %s %s:%s", u, path, newOwner, newGroup)
							gotErr = s.Chown(path, newOwner, newGroup)
							wantErr = model.Chown(u, path, newOwner, newGroup)
						case opn < 88: // setacl / removeacl
							target := users[rng.Intn(len(users))]
							if rng.Intn(3) == 0 {
								desc = fmt.Sprintf("%s removeacl %s %s", u, path, target)
								gotErr = s.RemoveACL(path, target)
								wantErr = model.RemoveACL(u, path, target)
							} else {
								rightsPool := []types.Triplet{
									types.TripletRead,
									types.TripletRead | types.TripletWrite,
									types.TripletRead | types.TripletExec,
									types.TripletRead | types.TripletWrite | types.TripletExec,
									0,
								}
								rights := rightsPool[rng.Intn(len(rightsPool))]
								desc = fmt.Sprintf("%s setacl %s %s=%s", u, path, target, rights)
								gotErr = s.SetACL(path, target, rights)
								wantErr = model.SetACL(u, path, target, rights)
							}
						case opn < 96: // remove
							desc = fmt.Sprintf("%s remove %s", u, path)
							gotErr = s.Remove(path)
							wantErr = model.Remove(u, path)
						default: // rename
							dst := randPath()
							desc = fmt.Sprintf("%s rename %s -> %s", u, path, dst)
							gotErr = s.Rename(path, dst)
							wantErr = model.Rename(u, path, dst)
						}
						if errClass(gotErr) != errClass(wantErr) {
							t.Fatalf("step %d: %s:\n  sharoes: %v\n  model:   %v", step, desc, gotErr, wantErr)
						}
					}
				})
			}
		}
	}
}
