package client

import (
	"errors"
	"fmt"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// resolveRef walks an absolute path from the namespace root, obtaining at
// each step the child's MEK/MVK from the parent's directory table (or,
// at a split point, from the user's sealed split pointer) — the in-band
// key distribution that is the heart of Sharoes. It returns the final
// object's reference without fetching its metadata, so callers can batch
// that fetch with related blobs (Stat combines it with the manifest).
func (s *Session) resolveRef(path string) (ref, error) {
	defer s.tracer.Start("resolve", obs.ClassNone).End()
	comps, err := types.PathComponents(path)
	if err != nil {
		return ref{}, err
	}
	cur := s.root
	for _, comp := range comps {
		m, err := s.fetchMeta(cur)
		if err != nil {
			return ref{}, err
		}
		if m.Attr.Kind != types.KindDir {
			return ref{}, types.ErrNotDir
		}
		// Traversal requires exec on the directory — enforced
		// cryptographically for non-owners (no DEK ⇒ no table), and as
		// policy for owners, like a local filesystem. The check runs on
		// every hop, cached ref or not, so a chmod on an ancestor (which
		// invalidates only its ckMeta entry) takes effect immediately.
		if !s.triplet(m.Attr).CanExec() {
			return ref{}, types.ErrPermission
		}
		// A previously resolved hop skips the table lookup entirely.
		// Entries are keyed by parent (inode, variant) and name, and are
		// dropped whenever the parent's table changes (writeParentTables,
		// invalidateObject) — the same machinery that invalidates
		// ckView/ckWTable — so they can never outlive the row they came
		// from.
		rkey := refCacheKey(cur, comp)
		if v, ok := s.cache.Get(rkey); ok {
			cur = v.(ref)
			continue
		}
		view, err := s.openViewOf(cur, m)
		if err != nil {
			return ref{}, err
		}
		entry, err := view.Lookup(comp)
		if err != nil {
			switch {
			case errors.Is(err, meta.ErrNoEntry):
				return ref{}, types.ErrNotExist
			default:
				return ref{}, err
			}
		}
		if entry.Split {
			// Split pointers are re-sealed out of band on revocation with
			// no parent-table write to hook invalidation on, so split
			// hops are deliberately not cached.
			cur, err = s.resolveSplit(entry.Inode)
			if err != nil {
				return ref{}, err
			}
		} else {
			cur = ref{ino: entry.Inode, variant: entry.Variant, mek: entry.MEK, mvk: entry.MVK}
			s.cache.Put(rkey, cur, int64(len(comp))+96)
		}
	}
	return cur, nil
}

// refCacheKey names a resolved directory entry in the session cache:
// parent inode and variant (the view the entry row lives in) plus the
// component name.
func refCacheKey(parent ref, comp string) string {
	return ckRef + "d/" + fmt.Sprintf("%d/%s|%s", uint64(parent.ino), parent.variant, comp)
}

// resolve walks to path and fetches the object's metadata.
func (s *Session) resolve(path string) (ref, *meta.Metadata, error) {
	r, err := s.resolveRef(path)
	if err != nil {
		return ref{}, nil, err
	}
	m, err := s.fetchMeta(r)
	if err != nil {
		return ref{}, nil, err
	}
	return r, m, nil
}

// resolveSplit follows the user's public-key-sealed pointer at a split
// point (paper §III-D2) — the rare place where the ordinary access path
// needs a private-key operation.
func (s *Session) resolveSplit(ino types.Inode) (ref, error) {
	key := meta.SplitKey(ino, keys.UserPrincipal(s.user.ID).String())
	blob, err := s.store.Get(wire.NSSplit, key)
	if errors.Is(err, wire.ErrNotFound) {
		// No pointer for this user: the object is not shared with them.
		return ref{}, types.ErrPermission
	}
	if err != nil {
		return ref{}, err
	}
	stop := s.crypto("open-split")
	ptr, err := meta.OpenSplitPointer(s.user.Priv, blob)
	stop()
	if err != nil {
		return ref{}, err
	}
	if ptr.Inode != ino {
		return ref{}, fmt.Errorf("%w: split pointer inode mismatch", types.ErrTampered)
	}
	return ref{ino: ptr.Inode, variant: ptr.Variant, mek: ptr.MEK, mvk: ptr.MVK}, nil
}

// resolveParent resolves the parent directory of path and returns the
// base name.
func (s *Session) resolveParent(path string) (ref, *meta.Metadata, string, error) {
	dir, base, err := types.SplitPath(path)
	if err != nil {
		return ref{}, nil, "", err
	}
	if base == "" {
		return ref{}, nil, "", fmt.Errorf("%w: operation on root", types.ErrInvalidPath)
	}
	r, m, err := s.resolve(dir)
	if err != nil {
		return ref{}, nil, "", err
	}
	if m.Attr.Kind != types.KindDir {
		return ref{}, nil, "", types.ErrNotDir
	}
	return r, m, base, nil
}

// requireDirWriter checks that the session user may modify the directory:
// write+exec policy bits plus the cryptographic write capability
// (DataSeed and DSK present in their variant).
func (s *Session) requireDirWriter(m *meta.Metadata) error {
	t := s.triplet(m.Attr)
	if !t.CanWrite() || !t.CanExec() {
		return types.ErrPermission
	}
	if m.Keys.DataSeed.IsZero() || m.Keys.DSK.IsZero() {
		return types.ErrPermission
	}
	return nil
}

// loadParentTables decrypts every CAP view of a directory's table. Only a
// directory writer can do this: the per-variant table keys derive from the
// DataSeed, and exec-only rows are reassembled using the names from the
// writer's own full view. Misses are fetched in one batched round trip,
// and decoded tables are cached (prefix ckWTable) so a burst of creates in
// the same directory — the Create-and-List workload — pays the fetch once.
func (s *Session) loadParentTables(r ref, m *meta.Metadata) (map[string]*meta.DirTable, error) {
	if m.Keys.DataSeed.IsZero() || m.Keys.DSK.IsZero() {
		return nil, types.ErrPermission
	}
	tables := make(map[string]*meta.DirTable)
	variants := s.eng.Variants(m.Attr)

	var missing []wire.KV
	for _, pv := range variants {
		if v, ok := s.cache.Get(ckWTable + meta.TableKey(r.ino, pv.ID)); ok {
			tables[pv.ID] = v.(*meta.DirTable).Clone()
			continue
		}
		missing = append(missing, wire.KV{NS: wire.NSData, Key: meta.TableKey(r.ino, pv.ID)})
	}
	if len(missing) == 0 {
		return tables, nil
	}

	items, err := s.store.BatchGet(missing)
	if err != nil {
		return nil, err
	}
	blobs := make(map[string][]byte, len(items))
	for _, it := range items {
		blobs[it.Key] = it.Val
	}

	// Decode the writer's own (full) view first: exec-only views are
	// reassembled from its name list.
	if _, ok := tables[r.variant]; !ok {
		blob, ok := blobs[meta.TableKey(r.ino, r.variant)]
		if !ok {
			tables[r.variant] = &meta.DirTable{}
		} else {
			stop := s.crypto("open-table")
			view, err := cap.OpenView(r.variant, cap.TableKey(m, r.variant), m.Keys.DVK, r.ino, blob)
			stop()
			if err != nil {
				return nil, err
			}
			full, err := view.Full()
			if err != nil {
				return nil, types.ErrPermission
			}
			tables[r.variant] = full.Clone()
		}
		s.cache.Put(ckWTable+meta.TableKey(r.ino, r.variant), tables[r.variant].Clone(), tableSize(tables[r.variant]))
	}
	names := tables[r.variant].Names()

	// The remaining variants are independent of one another (each is the
	// same directory sealed under a different CAP key), so they decrypt
	// across a worker pool. One wall-clock stopwatch spans the whole
	// parallel region: CRYPTO charges what the caller actually waited,
	// not the sum of overlapping worker time.
	type openJob struct {
		id   string
		blob []byte
	}
	var jobs []openJob
	for _, pv := range variants {
		if _, ok := tables[pv.ID]; ok {
			continue
		}
		blob, ok := blobs[meta.TableKey(r.ino, pv.ID)]
		if !ok {
			tables[pv.ID] = &meta.DirTable{}
			continue
		}
		jobs = append(jobs, openJob{id: pv.ID, blob: blob})
	}
	if len(jobs) > 0 {
		opened := make([]*meta.DirTable, len(jobs))
		errs := make([]error, len(jobs))
		stop := s.crypto("open-table")
		runParallel(len(jobs), func(i int) {
			j := jobs[i]
			view, err := cap.OpenView(j.id, cap.TableKey(m, j.id), m.Keys.DVK, r.ino, j.blob)
			if err != nil {
				errs[i] = err
				return
			}
			opened[i], errs[i] = view.Reconstruct(names)
		})
		stop()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i, j := range jobs {
			tables[j.id] = opened[i]
			s.cache.Put(ckWTable+meta.TableKey(r.ino, j.id), opened[i].Clone(), tableSize(opened[i]))
		}
	}
	return tables, nil
}

// tableSize approximates a decoded table's cache footprint.
func tableSize(t *meta.DirTable) int64 {
	return int64(t.Len())*96 + 64
}

// writeParentTables seals every view of the directory from the per-variant
// tables and returns the KVs to store. Reader-view cache entries for the
// directory are invalidated and the writer-table cache is refreshed with
// the new contents (write-through: within a session the client is the
// only writer it is coherent with).
func (s *Session) writeParentTables(r ref, m *meta.Metadata, tables map[string]*meta.DirTable) ([]wire.KV, error) {
	// Seal the per-variant views across the worker pool (the CRYPTO-side
	// twin of loadParentTables' parallel open); kvs keep deterministic
	// variant order. A single wall-clock stopwatch covers the region.
	type sealJob struct {
		id  string
		cid cap.ID
		tbl *meta.DirTable
	}
	var jobs []sealJob
	for _, pv := range s.eng.Variants(m.Attr) {
		tbl, ok := tables[pv.ID]
		if !ok {
			continue
		}
		jobs = append(jobs, sealJob{id: pv.ID, cid: pv.Cap, tbl: tbl})
	}
	sealed := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	stop := s.crypto("seal-table")
	runParallel(len(jobs), func(i int) {
		sealed[i], errs[i] = cap.SealTableView(jobs[i].tbl, m, jobs[i].cid, jobs[i].id)
	})
	stop()
	kvs := make([]wire.KV, 0, len(jobs))
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.TableKey(r.ino, j.id), Val: sealed[i]})
	}
	s.cache.DeletePrefix(ckView + "t/" + fmt.Sprintf("%d/", uint64(r.ino)))
	s.cache.DeletePrefix(ckRef + "d/" + fmt.Sprintf("%d/", uint64(r.ino)))
	for id, tbl := range tables {
		s.cache.Put(ckWTable+meta.TableKey(r.ino, id), tbl.Clone(), tableSize(tbl))
	}
	// The writer's own reader-view is derivable from the table just
	// written; refresh it in place instead of paying a refetch on the
	// next lookup in this directory.
	if own, ok := tables[r.variant]; ok {
		s.cache.Put(ckView+meta.TableKey(r.ino, r.variant), cap.NewFullView(own.Clone()), tableSize(own))
	}
	return kvs, nil
}
