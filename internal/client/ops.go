package client

import (
	"errors"
	"fmt"
	"time"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/vfs"
	"github.com/sharoes/sharoes/internal/wire"
)

// pathErr wraps err with operation and path context.
func pathErr(op, path string, err error) error {
	var pe *types.PathError
	if errors.As(err, &pe) {
		return err
	}
	return &types.PathError{Op: op, Path: path, Err: err}
}

// Stat implements vfs.FS — the getattr operation: obtain the encrypted
// metadata object from the SSP and decrypt it (paper Figure 8).
func (s *Session) Stat(path string) (vfs.Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("stat")()
	_, base, err := types.SplitPath(path)
	if err != nil {
		return vfs.Info{}, pathErr("stat", path, err)
	}
	r, err := s.resolveRef(path)
	if err != nil {
		return vfs.Info{}, pathErr("stat", path, err)
	}
	m, man, err := s.statFetch(r)
	if err != nil {
		return vfs.Info{}, pathErr("stat", path, err)
	}
	info := infoFromAttr(base, m.Attr)
	// For files the caller can read, size and mtime come from the
	// writer-signed manifest (metadata is owner-signed and may lag
	// non-owner writes).
	if man != nil {
		info.Size = man.Size
		info.MTime = time.Unix(0, man.MTime)
	}
	return info, nil
}

// statFetch retrieves the object's metadata and — for files the caller
// can read — its manifest, batching both cache misses into one round trip
// so that getattr keeps the paper's single-receive cost profile.
func (s *Session) statFetch(r ref) (*meta.Metadata, *meta.Manifest, error) {
	metaCK := ckMeta + meta.MetaKey(r.ino, r.variant)
	manCK := ckManifest + meta.ManifestKey(r.ino)

	if mv, ok := s.cache.Get(metaCK); ok {
		m := mv.(*meta.Metadata)
		if m.Attr.Kind != types.KindFile || m.Keys.DEK.IsZero() {
			return m, nil, nil
		}
		if man, ok := s.cache.Get(manCK); ok {
			return m, man.(*meta.Manifest), nil
		}
		man, err := s.fetchManifest(r, m)
		if err != nil {
			return m, nil, nil // fall back to metadata attributes
		}
		return m, man, nil
	}

	items, err := s.store.BatchGet([]wire.KV{
		{NS: wire.NSMeta, Key: meta.MetaKey(r.ino, r.variant)},
		{NS: wire.NSData, Key: meta.ManifestKey(r.ino)},
	})
	if err != nil {
		return nil, nil, err
	}
	var metaBlob, manBlob []byte
	for _, it := range items {
		switch {
		case it.NS == wire.NSMeta:
			metaBlob = it.Val
		case it.NS == wire.NSData:
			manBlob = it.Val
		}
	}
	if metaBlob == nil {
		return nil, nil, types.ErrNotExist
	}
	stop := s.crypto("open-meta")
	m, err := meta.OpenMetadata(r.mek, r.mvk, meta.MetaAAD(r.ino, r.variant), metaBlob)
	stop()
	if err != nil {
		return nil, nil, err
	}
	s.cache.Put(metaCK, m, int64(len(metaBlob)))
	if m.Attr.Kind != types.KindFile || m.Keys.DEK.IsZero() || manBlob == nil {
		return m, nil, nil
	}
	man, err := s.openManifest(r, m, manBlob)
	if err != nil {
		return m, nil, nil // integrity problems surface on ReadFile
	}
	return m, man, nil
}

func infoFromAttr(name string, a meta.Attr) vfs.Info {
	return vfs.Info{
		Name:  name,
		Inode: a.Inode,
		Kind:  a.Kind,
		Owner: a.Owner,
		Group: a.Group,
		Perm:  a.Perm,
		Size:  a.Size,
		MTime: time.Unix(0, a.MTime),
	}
}

// ReadDir implements vfs.FS: list entry names, requiring the read
// permission on the directory (the "ls" CAP).
func (s *Session) ReadDir(path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("readdir")()
	r, m, err := s.resolve(path)
	if err != nil {
		return nil, pathErr("readdir", path, err)
	}
	if m.Attr.Kind != types.KindDir {
		return nil, pathErr("readdir", path, types.ErrNotDir)
	}
	if !s.triplet(m.Attr).CanRead() {
		return nil, pathErr("readdir", path, types.ErrPermission)
	}
	view, err := s.openViewOf(r, m)
	if err != nil {
		return nil, pathErr("readdir", path, err)
	}
	names, err := view.Names()
	if err != nil {
		if errors.Is(err, cap.ErrNoKeys) {
			err = types.ErrPermission
		}
		return nil, pathErr("readdir", path, err)
	}
	out := make([]string, len(names))
	copy(out, names)
	return out, nil
}

// Mkdir implements vfs.FS: create a new directory — mint its metadata per
// CAP, insert it into every view of the parent's table, and re-encrypt
// those views (paper Figure 8, mkdir row).
func (s *Session) Mkdir(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("mkdir")()
	_, err := s.createObject(path, perm, types.KindDir, nil)
	return pathErrNil("mkdir", path, err)
}

// Create implements vfs.FS: create an empty file (mknod).
func (s *Session) Create(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("create")()
	_, err := s.createObject(path, perm, types.KindFile, []byte{})
	return pathErrNil("create", path, err)
}

func pathErrNil(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return pathErr(op, path, err)
}

// createObject creates a file or directory with optional initial data.
// It returns the new object's full metadata (creator knowledge).
func (s *Session) createObject(path string, perm types.Perm, kind types.ObjKind, data []byte) (*meta.Metadata, error) {
	if err := cap.ValidatePerm(kind, perm); err != nil {
		return nil, err
	}
	pr, pm, base, err := s.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if err := s.requireDirWriter(pm); err != nil {
		return nil, err
	}
	tables, err := s.loadParentTables(pr, pm)
	if err != nil {
		return nil, err
	}
	if _, err := tables[pr.variant].Lookup(base); err == nil {
		return nil, types.ErrExist
	}

	now := time.Now().UnixNano()
	stop := s.crypto("mint-keys")
	child := &meta.Metadata{
		Attr: meta.Attr{
			Inode: randInode(),
			Kind:  kind,
			Owner: s.user.ID,
			Group: pm.Attr.Group, // BSD semantics: inherit the parent's group
			Perm:  perm,
			MTime: now,
			Size:  uint64(len(data)),
		},
		Keys: newObjectKeys(),
	}
	stop()

	var kvs []wire.KV

	// Child metadata, one sealed copy per CAP variant.
	stop = s.crypto("seal-meta")
	kvs = append(kvs, layout.BuildMetaKVs(s.eng, child)...)
	stop()

	switch kind {
	case types.KindDir:
		stop = s.crypto("seal-table")
		tkvs, err := layout.BuildTableKVs(s.eng, child, &meta.DirTable{})
		stop()
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, tkvs...)
	case types.KindFile:
		dkvs, err := s.sealFileData(child, data, now)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, dkvs...)
	}

	// Parent directory table: add the row to every view.
	grants, err := layout.BuildRows(s.eng, pm, tables, base, child)
	if err != nil {
		return nil, err
	}
	kvs = append(kvs, grants...)
	tkvs, err := s.writeParentTables(pr, pm, tables)
	if err != nil {
		return nil, err
	}
	kvs = append(kvs, tkvs...)

	if err := s.store.BatchPut(kvs); err != nil {
		return nil, err
	}
	return child, nil
}

// Remove implements vfs.FS: unlink a file or remove an empty directory.
func (s *Session) Remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("remove")()
	return pathErrNil("remove", path, s.remove(path))
}

func (s *Session) remove(path string) error {
	pr, pm, base, err := s.resolveParent(path)
	if err != nil {
		return err
	}
	if err := s.requireDirWriter(pm); err != nil {
		return err
	}
	cr, cm, err := s.resolve(path)
	if err != nil {
		return err
	}
	if cm.Attr.Kind == types.KindDir {
		// Emptiness check requires reading the child's table; a caller
		// whose CAP on the child withholds the table key cannot prove
		// emptiness and is refused (fail closed).
		view, err := s.openViewOf(cr, cm)
		if err != nil {
			return err
		}
		if view.Len() > 0 {
			return types.ErrNotEmpty
		}
	}

	tables, err := s.loadParentTables(pr, pm)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if err := tbl.Remove(base); err != nil && !errors.Is(err, meta.ErrNoEntry) {
			return err
		}
	}
	kvs, err := s.writeParentTables(pr, pm, tables)
	if err != nil {
		return err
	}
	kvs = append(kvs, layout.DeleteMetaKVs(s.eng, cm.Attr)...)
	dkvs, err := s.deleteDataKVs(cr, cm)
	if err != nil {
		return err
	}
	kvs = append(kvs, dkvs...)

	if err := s.store.BatchPut(kvs); err != nil {
		return err
	}
	s.invalidateObject(cm.Attr.Inode)
	return nil
}

// deleteDataKVs enumerates an object's data blobs and split pointers for
// deletion without extra round trips: directory view keys come from the
// layout, file block keys from the manifest, and split pointers are
// deleted blindly per principal (deletes are idempotent). Only when the
// caller cannot read the manifest does it fall back to a server-side
// listing — unlinking never requires decrypting the file, matching *nix
// (write on the parent suffices).
func (s *Session) deleteDataKVs(r ref, m *meta.Metadata) ([]wire.KV, error) {
	var kvs []wire.KV
	switch {
	case m.Attr.Kind == types.KindDir:
		kvs = append(kvs, layout.DeleteTableKVs(s.eng, m.Attr)...)
	case !m.Keys.DEK.IsZero():
		man, err := s.fetchManifest(r, m)
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < man.NBlocks; i++ {
			kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.BlockKey(r.ino, m.Attr.DataGen, i), Delete: true})
		}
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.ManifestKey(r.ino), Delete: true})
	default:
		items, err := s.store.List(wire.NSData, fmt.Sprintf("f/%d/", uint64(r.ino)))
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			kvs = append(kvs, wire.KV{NS: wire.NSData, Key: it.Key, Delete: true})
		}
	}
	for _, uid := range s.reg.Users() {
		kvs = append(kvs, wire.KV{NS: wire.NSSplit,
			Key: meta.SplitKey(r.ino, keys.UserPrincipal(uid).String()), Delete: true})
	}
	return kvs, nil
}

// Rename implements vfs.FS. Rows are moved between the parents' table
// views per variant. When the two parents have different owner or group —
// so the per-variant traveller sets differ — the rows must be recomputed,
// which requires the child's owner keys; otherwise the move is refused.
func (s *Session) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("rename")()
	return pathErrNil("rename", oldPath, s.rename(oldPath, newPath))
}

func (s *Session) rename(oldPath, newPath string) error {
	opr, opm, oldBase, err := s.resolveParent(oldPath)
	if err != nil {
		return err
	}
	npr, npm, newBase, err := s.resolveParent(newPath)
	if err != nil {
		return err
	}
	if err := s.requireDirWriter(opm); err != nil {
		return err
	}
	samePar := opr.ino == npr.ino
	if !samePar {
		if err := s.requireDirWriter(npm); err != nil {
			return err
		}
	}

	srcTables, err := s.loadParentTables(opr, opm)
	if err != nil {
		return err
	}
	if _, err := srcTables[opr.variant].Lookup(oldBase); err != nil {
		if errors.Is(err, meta.ErrNoEntry) {
			return types.ErrNotExist
		}
		return err
	}
	dstTables := srcTables
	if !samePar {
		if dstTables, err = s.loadParentTables(npr, npm); err != nil {
			return err
		}
	}
	if _, err := dstTables[npr.variant].Lookup(newBase); err == nil {
		return types.ErrExist
	}

	sameDomain := samePar || (opm.Attr.Owner == npm.Attr.Owner && opm.Attr.Group == npm.Attr.Group)
	var grants []wire.KV
	if sameDomain {
		// Traveller sets match: rows move verbatim.
		for id, src := range srcTables {
			e, err := src.Lookup(oldBase)
			if err != nil {
				if errors.Is(err, meta.ErrNoEntry) {
					continue
				}
				return err
			}
			moved := *e
			moved.Name = newBase
			if err := src.Remove(oldBase); err != nil {
				return err
			}
			if err := dstTables[id].Insert(moved); err != nil {
				return err
			}
		}
	} else {
		// Different ownership domain: recompute rows, which needs the
		// child's full key set (its owner's variant).
		_, cm, err := s.resolve(oldPath)
		if err != nil {
			return err
		}
		if cm.Keys.MetaSeed.IsZero() || cm.Keys.MSK.IsZero() {
			return fmt.Errorf("%w: cross-domain rename requires ownership of %q", types.ErrPermission, oldPath)
		}
		for _, tbl := range srcTables {
			if err := tbl.Remove(oldBase); err != nil && !errors.Is(err, meta.ErrNoEntry) {
				return err
			}
		}
		if grants, err = layout.BuildRows(s.eng, npm, dstTables, newBase, cm); err != nil {
			return err
		}
	}

	kvs, err := s.writeParentTables(opr, opm, srcTables)
	if err != nil {
		return err
	}
	if !samePar {
		nkvs, err := s.writeParentTables(npr, npm, dstTables)
		if err != nil {
			return err
		}
		kvs = append(kvs, nkvs...)
	}
	kvs = append(kvs, grants...)
	return s.store.BatchPut(kvs)
}
