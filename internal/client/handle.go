package client

import (
	"errors"
	"fmt"
	"io"

	"github.com/sharoes/sharoes/internal/types"
)

// File is an open file handle. Reads come from a local snapshot fetched
// at open; writes accumulate locally and are encrypted and pushed to the
// SSP only when the handle is closed — exactly the paper's prototype
// behaviour ("we cache all writes locally and only encrypt the file
// before sending it to the SSP as the result of a file close", §IV-A1).
//
// A File implements io.Reader, io.Writer, io.Seeker, io.Closer and
// io.ReaderAt/io.WriterAt.
type File struct {
	s      *Session
	path   string
	buf    []byte
	off    int64
	dirty  bool
	write  bool
	closed bool
}

// Open flags.
const (
	// ORead opens for reading only.
	ORead = 1 << iota
	// OWrite opens for reading and writing.
	OWrite
	// OCreate creates the file (with the permission passed to OpenFile)
	// if it does not exist; only meaningful with OWrite.
	OCreate
	// OTrunc truncates the file at open; only meaningful with OWrite.
	OTrunc
)

// OpenFile opens path. perm applies only when OCreate creates the file.
func (s *Session) OpenFile(path string, flags int, perm types.Perm) (*File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("open")()

	f := &File{s: s, path: path, write: flags&OWrite != 0}
	_, m, err := s.resolve(path)
	switch {
	case err == nil:
		if m.Attr.Kind != types.KindFile {
			return nil, pathErr("open", path, types.ErrIsDir)
		}
		trip := s.triplet(m.Attr)
		if !trip.CanRead() {
			// Open-for-write of an unreadable file would still need the
			// current content for partial writes; like the paper's
			// prototype (and unlike POSIX O_WRONLY) we require read.
			return nil, pathErr("open", path, types.ErrPermission)
		}
		if f.write && (!trip.CanWrite() || m.Keys.DSK.IsZero()) {
			return nil, pathErr("open", path, types.ErrPermission)
		}
		if flags&OTrunc != 0 && f.write {
			f.buf = nil
			f.dirty = true
		} else {
			content, rerr := s.readFileLocked(path)
			if rerr != nil {
				return nil, pathErr("open", path, rerr)
			}
			f.buf = content
		}
	case errors.Is(err, types.ErrNotExist) && flags&OCreate != 0 && f.write:
		if _, cerr := s.createObject(path, perm, types.KindFile, []byte{}); cerr != nil {
			return nil, pathErr("open", path, cerr)
		}
		f.buf = nil
		f.dirty = false
	default:
		return nil, pathErr("open", path, err)
	}
	return f, nil
}

// readFileLocked is the shared read path (ReadFile and OpenFile): resolve,
// fetch metadata+manifest in one round trip, then the blocks.
func (s *Session) readFileLocked(path string) ([]byte, error) {
	r, err := s.resolveRef(path)
	if err != nil {
		return nil, err
	}
	m, man, err := s.statFetch(r)
	if err != nil {
		return nil, err
	}
	if m.Attr.Kind != types.KindFile {
		return nil, types.ErrIsDir
	}
	if !s.triplet(m.Attr).CanRead() || m.Keys.DEK.IsZero() {
		return nil, types.ErrPermission
	}
	if man == nil {
		// statFetch is lenient about manifest problems; reads are not.
		if man, err = s.fetchManifest(r, m); err != nil {
			return nil, err
		}
	}
	blocks, err := s.readBlocks(r, m, man, 0, man.NBlocks)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, man.Size)
	for _, b := range blocks {
		out = append(out, b...)
	}
	if uint64(len(out)) != man.Size {
		return nil, fmt.Errorf("%w: size mismatch (%d != %d)", types.ErrTampered, len(out), man.Size)
	}
	return out, nil
}

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, types.ErrClosed
	}
	if f.off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.off:])
	f.off += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, types.ErrClosed
	}
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer, writing at the current offset and extending
// the file as needed. Nothing reaches the SSP until Close.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.off)
	f.off += int64(n)
	return n, err
}

// WriteAt implements io.WriterAt.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, types.ErrClosed
	}
	if !f.write {
		return 0, types.ErrPermission
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", types.ErrInvalidPath)
	}
	if need := off + int64(len(p)); need > int64(len(f.buf)) {
		grown := make([]byte, need)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	f.dirty = true
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, types.ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(f.buf))
	default:
		return 0, fmt.Errorf("%w: bad whence", types.ErrInvalidPath)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("%w: negative position", types.ErrInvalidPath)
	}
	f.off = pos
	return pos, nil
}

// Truncate cuts or extends the buffered content.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return types.ErrClosed
	}
	if !f.write {
		return types.ErrPermission
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size", types.ErrInvalidPath)
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.dirty = true
	return nil
}

// Size returns the current (buffered) size.
func (f *File) Size() int64 { return int64(len(f.buf)) }

// Close flushes buffered writes — this is where the paper's prototype
// encrypts the file and sends it to the SSP.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if !f.dirty {
		return nil
	}
	return f.s.WriteFile(f.path, f.buf, 0)
}
