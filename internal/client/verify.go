package client

import (
	"errors"
	"fmt"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/types"
)

// VerifyReport summarizes an integrity walk (paper §VII: "any malicious
// attacks can be detected through in-built verification processes and
// integrity techniques" — this is that process, run on demand like fsck).
type VerifyReport struct {
	// Objects is the number of filesystem objects whose metadata was
	// fetched and verified.
	Objects int
	// Blocks is the number of data blocks verified.
	Blocks int
	// Bytes is the total plaintext bytes verified.
	Bytes int64
	// Skipped counts objects the caller had no keys for (verification is
	// necessarily scoped to what the verifier may read).
	Skipped int
	// Problems lists every integrity failure found, by path.
	Problems []VerifyProblem
}

// VerifyProblem is one detected integrity failure.
type VerifyProblem struct {
	Path string
	Err  error
}

// OK reports whether the walk found no problems.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report.
func (r *VerifyReport) String() string {
	return fmt.Sprintf("verified %d objects, %d blocks (%d bytes), %d skipped, %d problems",
		r.Objects, r.Blocks, r.Bytes, r.Skipped, len(r.Problems))
}

// Verify walks the subtree at path, fetching and cryptographically
// verifying every metadata object, directory-table view, manifest and
// data block the session's keys can open. It runs with the cache bypassed
// so every blob is re-fetched from the SSP and re-checked.
func (s *Session) Verify(path string) (*VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("verify")()

	// Bypass (and afterwards restore) the cache so the SSP cannot hide
	// behind previously verified copies.
	s.cache.Clear()

	report := &VerifyReport{}
	r, err := s.resolveRef(path)
	if err != nil {
		return nil, pathErr("verify", path, err)
	}
	s.verifyWalk(path, r, report)
	s.cache.Clear()
	return report, nil
}

func (s *Session) verifyWalk(path string, r ref, report *VerifyReport) {
	m, err := s.fetchMeta(r)
	if err != nil {
		report.Problems = append(report.Problems, VerifyProblem{Path: path, Err: err})
		return
	}
	report.Objects++

	switch m.Attr.Kind {
	case types.KindFile:
		if m.Keys.DEK.IsZero() {
			report.Skipped++
			return
		}
		man, err := s.fetchManifest(r, m)
		if err != nil {
			report.Problems = append(report.Problems, VerifyProblem{Path: path, Err: err})
			return
		}
		blocks, err := s.readBlocks(r, m, man, 0, man.NBlocks)
		if err != nil {
			report.Problems = append(report.Problems, VerifyProblem{Path: path, Err: err})
			return
		}
		var n int64
		for _, b := range blocks {
			n += int64(len(b))
		}
		if uint64(n) != man.Size {
			report.Problems = append(report.Problems, VerifyProblem{Path: path,
				Err: fmt.Errorf("%w: size mismatch (%d != %d)", types.ErrTampered, n, man.Size)})
			return
		}
		report.Blocks += int(man.NBlocks)
		report.Bytes += n
	case types.KindDir:
		if m.Keys.DEK.IsZero() {
			report.Skipped++
			return
		}
		view, err := s.openViewOf(r, m)
		if err != nil {
			report.Problems = append(report.Problems, VerifyProblem{Path: path, Err: err})
			return
		}
		names, err := view.Names()
		if err != nil {
			// Exec-only view: contents unverifiable without names.
			report.Skipped++
			return
		}
		for _, name := range names {
			childPath := path + "/" + name
			if path == "/" {
				childPath = "/" + name
			}
			entry, err := view.Lookup(name)
			if err != nil {
				// A names-only view cannot descend; count and move on.
				if errors.Is(err, cap.ErrNoKeys) {
					report.Skipped++
					continue
				}
				report.Problems = append(report.Problems, VerifyProblem{Path: childPath, Err: err})
				continue
			}
			var cr ref
			if entry.Split {
				if cr, err = s.resolveSplit(entry.Inode); err != nil {
					if errors.Is(err, types.ErrPermission) {
						report.Skipped++
						continue
					}
					report.Problems = append(report.Problems, VerifyProblem{Path: childPath, Err: err})
					continue
				}
			} else {
				cr = ref{ino: entry.Inode, variant: entry.Variant, mek: entry.MEK, mvk: entry.MVK}
			}
			s.verifyWalk(childPath, cr, report)
		}
	}
}
