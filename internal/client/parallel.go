package client

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxCryptoWorkers bounds the worker pool for per-variant table crypto.
// Variant counts are small (a handful under Scheme-2, users+groups under
// Scheme-1), so a low cap avoids goroutine churn without limiting speedup.
const maxCryptoWorkers = 8

// runParallel executes fn(0..n-1) across a bounded worker pool. Variants
// of a directory table are independent, so opening/sealing them is
// embarrassingly parallel; fn must only touch index-i state.
func runParallel(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers > maxCryptoWorkers {
		workers = maxCryptoWorkers
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
