package client

import (
	"bytes"
	"errors"
	"testing"

	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/migrate"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// TestChmodGrant: relaxing permissions makes previously-withheld keys
// appear in the class's CAP copy.
func TestChmodGrant(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/memo", []byte("internal"), perm(t, "600")); err != nil {
			t.Fatal(err)
		}
		carol := w.as("carol")
		if _, err := carol.ReadFile("/memo"); !errors.Is(err, types.ErrPermission) {
			t.Fatalf("carol read before grant: %v", err)
		}
		if err := alice.Chmod("/memo", perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		carol.Refresh()
		got, err := carol.ReadFile("/memo")
		if err != nil || string(got) != "internal" {
			t.Errorf("carol read after grant = %q, %v", got, err)
		}
	})
}

// TestChmodGrantOnDirectory: granting list/traverse on a directory whose
// views already exist — including to a class that had the zero CAP.
func TestChmodGrantOnDirectory(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/vault", perm(t, "700")); err != nil {
			t.Fatal(err)
		}
		// bob creates content... no, bob has zero; alice populates.
		if err := alice.WriteFile("/vault/gold", []byte("au"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/vault", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		for _, u := range []types.UserID{"bob", "carol"} {
			s := w.mountFresh(u, -1)
			defer s.Close()
			names, err := s.ReadDir("/vault")
			if err != nil {
				t.Fatalf("%s ls after grant: %v", u, err)
			}
			if len(names) != 1 || names[0] != "gold" {
				t.Errorf("%s names = %v", u, names)
			}
			if got, err := s.ReadFile("/vault/gold"); err != nil || string(got) != "au" {
				t.Errorf("%s read = %q, %v", u, got, err)
			}
		}
	})
}

// TestImmediateRevocationFile: after chmod strips read, even a reader who
// cached the old DEK cannot get the content — it was re-encrypted under a
// fresh key and generation (paper §IV-A1, the prototype's default).
func TestImmediateRevocationFile(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/doc", []byte("v1 everyone may read"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		carol := w.as("carol")
		if _, err := carol.ReadFile("/doc"); err != nil {
			t.Fatal(err)
		}
		// Revoke. carol's session still holds the decrypted metadata
		// (with the old DEK) and cached blocks.
		if err := alice.Chmod("/doc", perm(t, "600")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/doc", []byte("v2 owner only"), 0); err != nil {
			t.Fatal(err)
		}
		// Cached plaintext from the authorized era may legitimately
		// persist (any revocation scheme allows that); the new content
		// must be unreachable. Clear only the plaintext block cache to
		// model an attacker holding keys but not content.
		carol.cache.DeletePrefix(ckBlock)
		carol.cache.DeletePrefix(ckManifest)
		if got, err := carol.ReadFile("/doc"); err == nil {
			t.Errorf("carol read after revocation: %q", got)
		}
		// A fresh carol session is denied outright.
		fresh := w.mountFresh("carol", -1)
		defer fresh.Close()
		if _, err := fresh.ReadFile("/doc"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("fresh carol read: %v", err)
		}
		// Owner still reads the new content.
		if got, err := alice.ReadFile("/doc"); err != nil || string(got) != "v2 owner only" {
			t.Errorf("owner read = %q, %v", got, err)
		}
	})
}

// TestImmediateRevocationDir: stripping list/traverse rotates the
// directory's table keys.
func TestImmediateRevocationDir(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/wiki", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/wiki/page", []byte("content"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		carol := w.as("carol")
		if _, err := carol.ReadDir("/wiki"); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/wiki", perm(t, "700")); err != nil {
			t.Fatal(err)
		}
		// Fresh session: no keys at all.
		fresh := w.mountFresh("carol", -1)
		defer fresh.Close()
		if _, err := fresh.ReadDir("/wiki"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("fresh carol ls after revoke: %v", err)
		}
		// Stale session with cached old table key: the stored views were
		// re-encrypted under rotated keys, so after its view cache
		// expires the old key opens nothing.
		carol.cache.DeletePrefix(ckView)
		if _, err := carol.ReadDir("/wiki"); err == nil {
			t.Error("stale carol listed the re-keyed directory")
		}
		// Owner still works, and files inside remain intact.
		if got, err := alice.ReadFile("/wiki/page"); err != nil || string(got) != "content" {
			t.Errorf("owner read after dir rekey = %q, %v", got, err)
		}
		names, err := alice.ReadDir("/wiki")
		if err != nil || len(names) != 1 {
			t.Errorf("owner ls = %v, %v", names, err)
		}
	})
}

// TestLazyRevocation: with LazyRevocation the chmod defers the re-keying
// to the owner's next write — until then a key-caching ex-reader can still
// fetch content; afterwards they cannot.
func TestLazyRevocation(t *testing.T) {
	fixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(fixReg)
	w := newWorld(t, eng, store)

	mountLazy := func(id types.UserID) *Session {
		s, err := Mount(Config{Store: store, User: fixUser[id], Registry: fixReg, Layout: eng,
			FSID: "testfs", CacheBytes: -1, BlockSize: 64, LazyRevocation: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	_ = w
	alice := mountLazy("alice")
	carol := mountLazy("carol")

	if err := alice.WriteFile("/brief", []byte("shared brief"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.ReadFile("/brief"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Chmod("/brief", 0o600); err != nil {
		t.Fatal(err)
	}
	// Lazy: data not yet re-keyed. carol's cached DEK still opens the
	// stored blocks (drop her plaintext cache to prove it's the key).
	carol.cache.DeletePrefix(ckBlock)
	carol.cache.DeletePrefix(ckManifest)
	if got, err := carol.ReadFile("/brief"); err != nil || string(got) != "shared brief" {
		t.Fatalf("lazy window read = %q, %v (lazy revocation should defer re-keying)", got, err)
	}
	// Owner's next write performs the deferred rotation.
	if err := alice.WriteFile("/brief", []byte("owner-only brief"), 0); err != nil {
		t.Fatal(err)
	}
	carol.cache.DeletePrefix(ckBlock)
	carol.cache.DeletePrefix(ckManifest)
	if got, err := carol.ReadFile("/brief"); err == nil {
		t.Errorf("carol read after deferred rekey: %q", got)
	}
	if got, err := alice.ReadFile("/brief"); err != nil || string(got) != "owner-only brief" {
		t.Errorf("owner read = %q, %v", got, err)
	}
}

// TestChmodNonOwnerDenied: only owners hold the MSK.
func TestChmodNonOwnerDenied(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		// Even bob, who can write the data, cannot re-permission it.
		if err := w.as("bob").Chmod("/f", perm(t, "666")); !errors.Is(err, types.ErrPermission) {
			t.Errorf("bob chmod: %v", err)
		}
		if err := w.as("carol").Chown("/f", "carol", ""); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol chown: %v", err)
		}
	})
}

// TestChownRotatesEverything: after a chown the previous group loses
// access and stale pointers are useless.
func TestChownRotatesEverything(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/hand-off", []byte("payload"), perm(t, "640")); err != nil {
			t.Fatal(err)
		}
		// bob (eng) can read now.
		if _, err := w.as("bob").ReadFile("/hand-off"); err != nil {
			t.Fatal(err)
		}
		// Transfer to carol:qa.
		if err := alice.Chown("/hand-off", "carol", "qa"); err != nil {
			t.Fatal(err)
		}
		// bob is now "other" with zero CAP; fresh session denied.
		bob := w.mountFresh("bob", -1)
		defer bob.Close()
		if _, err := bob.ReadFile("/hand-off"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("bob read after chown: %v", err)
		}
		// carol owns it: full control.
		carol := w.mountFresh("carol", -1)
		defer carol.Close()
		if got, err := carol.ReadFile("/hand-off"); err != nil || string(got) != "payload" {
			t.Errorf("carol read = %q, %v", got, err)
		}
		if err := carol.Chmod("/hand-off", perm(t, "600")); err != nil {
			t.Errorf("carol chmod as new owner: %v", err)
		}
		// alice no longer owns it.
		alice.Refresh()
		if err := alice.Chmod("/hand-off", perm(t, "644")); !errors.Is(err, types.ErrPermission) {
			t.Errorf("alice chmod after handoff: %v", err)
		}
		if _, err := alice.ReadFile("/hand-off"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("alice read after handoff+600: %v", err)
		}
	})
}

// TestChownRoot re-seals every superblock.
func TestChownRoot(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chown("/", "bob", "eng"); err != nil {
			t.Fatal(err)
		}
		// Everyone can still mount and read.
		for _, u := range []types.UserID{"alice", "bob", "carol"} {
			s := w.mountFresh(u, -1)
			defer s.Close()
			info, err := s.Stat("/")
			if err != nil {
				t.Fatalf("%s stat / after root chown: %v", u, err)
			}
			if info.Owner != "bob" {
				t.Errorf("root owner = %s", info.Owner)
			}
			if got, err := s.ReadFile("/f"); err != nil || string(got) != "x" {
				t.Errorf("%s read /f: %q, %v", u, got, err)
			}
		}
		// And bob now controls root permissions.
		bob := w.mountFresh("bob", -1)
		defer bob.Close()
		if err := bob.Mkdir("/bobs", 0o755); err != nil {
			t.Errorf("bob mkdir at root he owns: %v", err)
		}
	})
}

// TestChmodUnsupportedPermRejected.
func TestChmodUnsupportedPermRejected(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/f", perm(t, "642")); !errors.Is(err, types.ErrUnsupportedPerm) {
			t.Errorf("file -w- other: %v", err)
		}
		if err := alice.Mkdir("/d", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/d", perm(t, "753")); !errors.Is(err, types.ErrUnsupportedPerm) {
			t.Errorf("dir -wx other: %v", err)
		}
	})
}

// TestGroupMembershipRevocation: removing a member and rotating the
// object keys locks the ex-member out.
func TestGroupMembershipRevocation(t *testing.T) {
	fixture(t)
	// Use a private registry so membership churn doesn't affect other tests.
	reg := keys.NewRegistry()
	for id, u := range fixUser {
		reg.AddUser(id, u.Public())
	}
	grp, err := keys.NewGroup("team")
	if err != nil {
		t.Fatal(err)
	}
	reg.AddGroup("team", grp.Priv.Public())
	reg.AddMember("team", "alice")
	reg.AddMember("team", "bob")

	store := ssp.NewMemStore()
	eng := layout.NewScheme2(reg)
	err = migrate.Bootstrap(migrate.Options{Store: store, Registry: reg, Layout: eng,
		FSID: "testfs", RootOwner: "alice", RootGroup: "team", RootPerm: 0o755})
	if err != nil {
		t.Fatal(err)
	}

	mount := func(id types.UserID) *Session {
		s, err := Mount(Config{Store: store, User: fixUser[id], Registry: reg, Layout: eng,
			FSID: "testfs", CacheBytes: -1, BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	alice := mount("alice")
	if err := alice.WriteFile("/team-doc", []byte("for the team"), 0o640); err != nil {
		t.Fatal(err)
	}
	if err := alice.Chown("/team-doc", "alice", "team"); err != nil {
		t.Fatal(err)
	}
	bob := mount("bob")
	if _, err := bob.ReadFile("/team-doc"); err != nil {
		t.Fatal(err)
	}
	// bob leaves the team; the owner re-keys via a self-chown (same
	// owner/group, full key rotation).
	reg.RemoveMember("team", "bob")
	alice.Refresh()
	if err := alice.Chown("/team-doc", "alice", "team"); err != nil {
		t.Fatal(err)
	}
	fresh := mount("bob")
	if _, err := fresh.ReadFile("/team-doc"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("ex-member read: %v", err)
	}
}

// TestRevocationRemovesOldGeneration: the SSP no longer holds blobs
// decryptable with the revoked key.
func TestRevocationRemovesOldGeneration(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		content := bytes.Repeat([]byte("secret"), 100)
		if err := alice.WriteFile("/s", content, perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		before, err := w.store.List(wire.NSData, "f/")
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/s", perm(t, "600")); err != nil {
			t.Fatal(err)
		}
		after, err := w.store.List(wire.NSData, "f/")
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(before) {
			t.Errorf("blob count changed %d → %d; old generation should be replaced 1:1", len(before), len(after))
		}
		for _, kv := range after {
			for _, old := range before {
				if kv.Key == old.Key && bytes.Equal(kv.Val, old.Val) {
					t.Errorf("blob %q survived re-keying", kv.Key)
				}
			}
		}
	})
}
