package client

import (
	"fmt"
	"time"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// sealMetaVariants seals every CAP copy of the metadata and invalidates
// the local cache for the object's metadata.
func (s *Session) sealMetaVariants(m *meta.Metadata) []wire.KV {
	stop := s.crypto("seal-meta")
	kvs := layout.BuildMetaKVs(s.eng, m)
	stop()
	s.cache.DeletePrefix(ckMeta + "m/" + fmt.Sprintf("%d/", uint64(m.Attr.Inode)))
	return kvs
}

// requireOwner checks that the session user owns the object and holds the
// owner keys (MSK + metadata seed).
func (s *Session) requireOwner(m *meta.Metadata) error {
	if m.Attr.Owner != s.user.ID {
		return types.ErrPermission
	}
	if m.Keys.MSK.IsZero() || m.Keys.MetaSeed.IsZero() {
		return types.ErrPermission
	}
	return nil
}

// revocationNeeded reports whether moving from oldPerm to newPerm strips
// any capability from the group or other class. Owner capabilities are
// not revocable from themselves (owners hold all keys by construction).
func revocationNeeded(kind types.ObjKind, oldPerm, newPerm types.Perm) bool {
	for _, c := range []types.Class{types.ClassGroup, types.ClassOther} {
		oldC, _ := cap.For(kind, oldPerm.TripletFor(c))
		newC, _ := cap.For(kind, newPerm.TripletFor(c))
		if kind == types.KindFile {
			if (oldC.CanReadData() && !newC.CanReadData()) ||
				(oldC.CanWriteData() && !newC.CanWriteData()) {
				return true
			}
			continue
		}
		if (oldC.CanList() && !newC.CanList()) ||
			(oldC.CanTraverse() && !newC.CanTraverse()) ||
			(oldC.CanModifyDir() && !newC.CanModifyDir()) {
			return true
		}
	}
	return false
}

// rekeyData rotates an object's data keys in place on m — fresh DEK,
// DataSeed and signing pair, next data generation — and returns the KVs
// that re-encrypt the data under them. This is the immediate-revocation
// path of the paper (§IV-A1): a revoked reader may have cached the DEK,
// so the content must move to keys they never saw.
func (s *Session) rekeyData(r ref, m *meta.Metadata) ([]wire.KV, error) {
	oldGen := m.Attr.DataGen

	var content []byte
	var tables map[string]*meta.DirTable
	if m.Attr.Kind == types.KindFile {
		man, err := s.fetchManifest(r, m)
		if err != nil {
			return nil, err
		}
		blocks, err := s.readBlocks(r, m, man, 0, man.NBlocks)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			content = append(content, b...)
		}
	} else {
		var err error
		if tables, err = s.loadParentTables(r, m); err != nil {
			return nil, err
		}
	}

	// Rotate keys.
	stop := s.crypto("rotate-data-keys")
	dsk, dvk := sharocrypto.NewSigningPair()
	m.Keys.DEK = sharocrypto.NewSymKey()
	m.Keys.DataSeed = sharocrypto.NewSymKey()
	m.Keys.DSK, m.Keys.DVK = dsk, dvk
	m.Attr.DataGen++
	m.Attr.Flags &^= meta.FlagRekeyPending
	stop()

	var kvs []wire.KV
	if m.Attr.Kind == types.KindFile {
		dkvs, err := s.sealFileData(m, content, time.Now().UnixNano())
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, dkvs...)
		// Drop the old generation's blobs.
		old, err := s.store.List(wire.NSData, meta.BlockPrefix(r.ino, oldGen))
		if err != nil {
			return nil, err
		}
		for _, it := range old {
			kvs = append(kvs, wire.KV{NS: wire.NSData, Key: it.Key, Delete: true})
		}
		s.cache.DeletePrefix(ckBlock + meta.BlockPrefix(r.ino, oldGen))
		s.cache.Delete(ckManifest + meta.ManifestKey(r.ino))
	} else {
		tkvs, err := s.writeParentTables(r, m, tables)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, tkvs...)
	}
	return kvs, nil
}

// Chmod implements vfs.FS. The owner rewrites every CAP copy of the
// metadata; when a class loses a capability, immediate revocation
// re-encrypts the data under fresh keys (or, with LazyRevocation, marks
// the object for re-keying at the owner's next write). Parent directory
// rows are untouched: variant identifiers and MEKs are permission-
// independent by construction.
func (s *Session) Chmod(path string, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("chmod")()
	return pathErrNil("chmod", path, s.chmod(path, perm))
}

func (s *Session) chmod(path string, perm types.Perm) error {
	r, m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if err := s.requireOwner(m); err != nil {
		return err
	}
	if err := cap.ValidatePerm(m.Attr.Kind, perm); err != nil {
		return err
	}

	updated := *m
	var kvs []wire.KV
	if revocationNeeded(m.Attr.Kind, m.Attr.Perm, perm) {
		// Lazy revocation (Plutus-style) defers *file* re-encryption to
		// the next write; directories have no equivalent write trigger,
		// so their revocations are always immediate.
		if s.lazy && m.Attr.Kind == types.KindFile {
			updated.Attr.Flags |= meta.FlagRekeyPending
		} else {
			rk, err := s.rekeyData(r, &updated)
			if err != nil {
				return err
			}
			kvs = append(kvs, rk...)
		}
	} else if updated.Attr.Kind == types.KindDir {
		// Views encode per-CAP shapes; a permission change can alter a
		// class's shape (e.g. r-x → r--), so re-seal the views even when
		// nothing is revoked... but only if shapes actually changed.
		if viewShapesDiffer(m.Attr.Perm, perm) {
			tables, err := s.loadParentTables(r, m)
			if err != nil {
				return err
			}
			updated.Attr.Perm = perm
			tkvs, err := s.writeParentTables(r, &updated, tables)
			if err != nil {
				return err
			}
			kvs = append(kvs, tkvs...)
		}
	}
	updated.Attr.Perm = perm

	kvs = append(kvs, s.sealMetaVariants(&updated)...)
	return s.store.BatchPut(kvs)
}

// viewShapesDiffer reports whether any class's directory CAP class — and
// hence its table-view shape — changes between the two permissions.
func viewShapesDiffer(oldPerm, newPerm types.Perm) bool {
	for _, c := range []types.Class{types.ClassOwner, types.ClassGroup, types.ClassOther} {
		oldC, _ := cap.ForDir(oldPerm.TripletFor(c))
		newC, _ := cap.ForDir(newPerm.TripletFor(c))
		if oldC != newC {
			return true
		}
	}
	return false
}

// Chown implements vfs.FS: change owner and/or group. Ownership changes
// move users between accessor classes, so the complete key material is
// rotated (metadata seed, MSK, data keys) and the parent directory's rows
// are recomputed — which requires write permission on the parent, the one
// place Sharoes is stricter than local *nix. Chowning the namespace root
// instead re-seals every principal's superblock.
func (s *Session) Chown(path string, owner types.UserID, group types.GroupID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("chown")()
	return pathErrNil("chown", path, s.chown(path, owner, group))
}

func (s *Session) chown(path string, owner types.UserID, group types.GroupID) error {
	r, m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if err := s.requireOwner(m); err != nil {
		return err
	}
	if owner == "" {
		owner = m.Attr.Owner
	}
	if group == "" {
		group = m.Attr.Group
	}
	if _, err := s.reg.UserKey(owner); err != nil {
		return err
	}

	updated := *m
	updated.Attr.Owner = owner
	updated.Attr.Group = group

	// Full rotation: fresh metadata seed and MSK so stale split pointers
	// and cached MEKs become useless, fresh data keys so ex-class members
	// lose data access.
	stop := s.crypto("rotate-meta-keys")
	updated.Keys.MetaSeed = sharocrypto.NewSymKey()
	msk, _ := sharocrypto.NewSigningPair()
	updated.Keys.MSK = msk
	stop()

	kvs, err := s.rekeyData(r, &updated)
	if err != nil {
		return err
	}

	if r.ino == s.root.ino {
		sbkvs, err := s.sealSuperblocks(&updated)
		if err != nil {
			return err
		}
		kvs = append(kvs, sbkvs...)
		// Our own root reference changes with the rotation.
		v := s.eng.UserVariant(s.user.ID, updated.Attr)
		s.root = ref{ino: r.ino, variant: v.ID, mek: v.MEK(&updated), mvk: updated.Keys.MSK.VerifyKey()}
	} else {
		pr, pm, base, err := s.resolveParent(path)
		if err != nil {
			return err
		}
		if err := s.requireDirWriter(pm); err != nil {
			return fmt.Errorf("chown needs write permission on the parent directory: %w", err)
		}
		tables, err := s.loadParentTables(pr, pm)
		if err != nil {
			return err
		}
		grants, err := layout.BuildRows(s.eng, pm, tables, base, &updated)
		if err != nil {
			return err
		}
		kvs = append(kvs, grants...)
		tkvs, err := s.writeParentTables(pr, pm, tables)
		if err != nil {
			return err
		}
		kvs = append(kvs, tkvs...)
	}

	kvs = append(kvs, s.sealMetaVariants(&updated)...)
	return s.store.BatchPut(kvs)
}

// sealSuperblocks seals one superblock per registered user for the
// namespace root described by rootMeta.
func (s *Session) sealSuperblocks(rootMeta *meta.Metadata) ([]wire.KV, error) {
	stop := s.crypto("seal-superblock")
	defer stop()
	return layout.BuildSuperblockKVs(s.eng, s.reg, s.fsid, rootMeta)
}
