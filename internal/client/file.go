package client

import (
	"errors"
	"fmt"
	"time"

	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// fetchManifest retrieves and opens a file's manifest, via the cache.
func (s *Session) fetchManifest(r ref, m *meta.Metadata) (*meta.Manifest, error) {
	if m.Keys.DEK.IsZero() || m.Keys.DVK.IsZero() {
		return nil, types.ErrPermission
	}
	key := ckManifest + meta.ManifestKey(r.ino)
	if v, ok := s.cache.Get(key); ok {
		return v.(*meta.Manifest), nil
	}
	blob, err := s.store.Get(wire.NSData, meta.ManifestKey(r.ino))
	if errors.Is(err, wire.ErrNotFound) {
		return nil, fmt.Errorf("%w: manifest missing", types.ErrTampered)
	}
	if err != nil {
		return nil, err
	}
	return s.openManifest(r, m, blob)
}

// openManifest verifies, decodes and caches a fetched manifest blob.
func (s *Session) openManifest(r ref, m *meta.Metadata, blob []byte) (*meta.Manifest, error) {
	stop := s.crypto("open-manifest")
	pt, err := meta.OpenVerified(m.Keys.DEK, m.Keys.DVK, meta.ManifestAAD(r.ino, m.Attr.DataGen), blob)
	var man *meta.Manifest
	if err == nil {
		man, err = meta.DecodeManifest(pt)
	}
	stop()
	if err != nil {
		return nil, err
	}
	s.cache.Put(ckManifest+meta.ManifestKey(r.ino), man, int64(len(blob)))
	return man, nil
}

// sealFileData seals a file's full content as blocks plus manifest,
// returning the KVs to store and priming the cache with the plaintext.
// Larger files are divided into blocks, each encrypted separately, so
// later updates need not re-encrypt the whole file (paper §II-B).
func (s *Session) sealFileData(m *meta.Metadata, data []byte, mtime int64) ([]wire.KV, error) {
	if m.Keys.DEK.IsZero() || m.Keys.DSK.IsZero() {
		return nil, types.ErrPermission
	}
	ino, gen := m.Attr.Inode, m.Attr.DataGen
	bs := int(s.blockSize)
	nBlocks := (len(data) + bs - 1) / bs

	kvs := make([]wire.KV, 0, nBlocks+1)
	stop := s.crypto("seal-data")
	for i := 0; i < nBlocks; i++ {
		lo, hi := i*bs, (i+1)*bs
		if hi > len(data) {
			hi = len(data)
		}
		aad := meta.BlockAAD(ino, gen, uint32(i))
		sealed := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, aad, data[lo:hi])
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.BlockKey(ino, gen, uint32(i)), Val: sealed})
		blk := make([]byte, hi-lo)
		copy(blk, data[lo:hi])
		s.cache.Put(ckBlock+meta.BlockKey(ino, gen, uint32(i)), blk, int64(hi-lo))
	}
	man := &meta.Manifest{Size: uint64(len(data)), BlockSize: s.blockSize, NBlocks: uint32(nBlocks), MTime: mtime}
	sealedMan := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, meta.ManifestAAD(ino, gen), man.Encode())
	stop()
	kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.ManifestKey(ino), Val: sealedMan})
	s.cache.Put(ckManifest+meta.ManifestKey(ino), man, int64(len(sealedMan)))
	return kvs, nil
}

// readBlocks fetches, verifies and decrypts the blocks [from, to) of a
// file, using the cache and batching all misses into one round trip.
func (s *Session) readBlocks(r ref, m *meta.Metadata, man *meta.Manifest, from, to uint32) ([][]byte, error) {
	out := make([][]byte, to-from)
	var missing []wire.KV
	missIdx := make(map[string]int)
	for i := from; i < to; i++ {
		key := meta.BlockKey(r.ino, m.Attr.DataGen, i)
		if v, ok := s.cache.Get(ckBlock + key); ok {
			out[i-from] = v.([]byte)
			continue
		}
		missing = append(missing, wire.KV{NS: wire.NSData, Key: key})
		missIdx[key] = int(i - from)
	}
	if len(missing) == 0 {
		return out, nil
	}
	items, err := s.store.BatchGet(missing)
	if err != nil {
		return nil, err
	}
	if len(items) != len(missing) {
		return nil, fmt.Errorf("%w: %d of %d blocks missing", types.ErrTampered, len(missing)-len(items), len(missing))
	}
	stop := s.crypto("open-block")
	defer stop()
	for _, it := range items {
		idx, ok := missIdx[it.Key]
		if !ok {
			return nil, fmt.Errorf("%w: unexpected block %q", types.ErrTampered, it.Key)
		}
		blockNo := from + uint32(idx)
		aad := meta.BlockAAD(r.ino, m.Attr.DataGen, blockNo)
		pt, err := meta.OpenVerified(m.Keys.DEK, m.Keys.DVK, aad, it.Val)
		if err != nil {
			return nil, err
		}
		out[idx] = pt
		s.cache.Put(ckBlock+it.Key, pt, int64(len(pt)))
	}
	return out, nil
}

// ReadFile implements vfs.FS: obtain the encrypted data blocks, verify the
// writer's signatures and decrypt (paper Figure 8, read row). Metadata and
// manifest are fetched in one batched round trip.
func (s *Session) ReadFile(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("read")()
	out, err := s.readFileLocked(path)
	if err != nil {
		return nil, pathErr("read", path, err)
	}
	return out, nil
}

// WriteFile implements vfs.FS: create or replace a file's content. All
// encryption happens here, modelling the paper's cache-writes-locally,
// encrypt-and-send-on-close behaviour (Figure 8, write/close rows).
func (s *Session) WriteFile(path string, data []byte, perm types.Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("write")()
	return pathErrNil("write", path, s.writeFile(path, data, perm))
}

func (s *Session) writeFile(path string, data []byte, perm types.Perm) error {
	r, m, err := s.resolve(path)
	if errors.Is(err, types.ErrNotExist) {
		_, err := s.createObject(path, perm, types.KindFile, data)
		return err
	}
	if err != nil {
		return err
	}
	return s.overwrite(r, m, data)
}

// overwrite replaces an existing file's content in place.
func (s *Session) overwrite(r ref, m *meta.Metadata, data []byte) error {
	if m.Attr.Kind != types.KindFile {
		return types.ErrIsDir
	}
	if !s.triplet(m.Attr).CanWrite() || m.Keys.DSK.IsZero() {
		return types.ErrPermission
	}
	// Fetch the old manifest to drop now-stale trailing blocks.
	oldMan, err := s.fetchManifest(r, m)
	if err != nil {
		return err
	}
	updated := *m
	isOwner := !m.Keys.MetaSeed.IsZero() && !m.Keys.MSK.IsZero()
	var kvs []wire.KV

	if m.Attr.Flags&meta.FlagRekeyPending != 0 && isOwner {
		// Lazy revocation (paper §IV-A1): the deferred re-keying happens
		// now, on the owner's first write after the chmod. The old
		// content is being replaced, so rotation is nearly free: fresh
		// keys, next generation, drop the old blobs.
		rkvs, err := s.rotateForWrite(r, &updated, oldMan)
		if err != nil {
			return err
		}
		kvs = append(kvs, rkvs...)
		oldMan = &meta.Manifest{} // old generation fully dropped
	}

	dkvs, err := s.sealFileData(&updated, data, time.Now().UnixNano())
	if err != nil {
		return err
	}
	kvs = append(kvs, dkvs...)
	newBlocks := uint32((len(data) + int(s.blockSize) - 1) / int(s.blockSize))
	for i := newBlocks; i < oldMan.NBlocks; i++ {
		key := meta.BlockKey(r.ino, updated.Attr.DataGen, i)
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: key, Delete: true})
		s.cache.Delete(ckBlock + key)
	}
	// Owners also refresh the metadata copies so stat stays fresh for
	// users without read access.
	if isOwner {
		updated.Attr.Size = uint64(len(data))
		updated.Attr.MTime = time.Now().UnixNano()
		kvs = append(kvs, s.sealMetaVariants(&updated)...)
	}
	return s.store.BatchPut(kvs)
}

// Append implements vfs.FS: extend a file, re-encrypting only the final
// (partial) block and the new tail — the update-efficiency argument for
// block-level encryption in §II-B.
func (s *Session) Append(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("append")()
	return pathErrNil("append", path, s.appendFile(path, data))
}

func (s *Session) appendFile(path string, data []byte) error {
	r, m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if m.Attr.Kind != types.KindFile {
		return types.ErrIsDir
	}
	t := s.triplet(m.Attr)
	if !t.CanWrite() || m.Keys.DSK.IsZero() {
		return types.ErrPermission
	}
	man, err := s.fetchManifest(r, m)
	if err != nil {
		return err
	}
	bs := uint64(s.blockSize)
	ino, gen := r.ino, m.Attr.DataGen

	// Reassemble the tail: the final partial block, if any, plus the new
	// data. Full blocks before it are untouched.
	firstDirty := uint32(man.Size / bs)
	tailOff := uint64(firstDirty) * bs
	var tail []byte
	if man.Size > tailOff {
		blocks, err := s.readBlocks(r, m, man, firstDirty, firstDirty+1)
		if err != nil {
			return err
		}
		tail = append(tail, blocks[0]...)
	}
	tail = append(tail, data...)

	newSize := man.Size + uint64(len(data))
	kvs := make([]wire.KV, 0, len(tail)/int(bs)+2)
	stop := s.crypto("seal-data")
	for i := 0; i < len(tail); i += int(bs) {
		hi := i + int(bs)
		if hi > len(tail) {
			hi = len(tail)
		}
		blockNo := firstDirty + uint32(i/int(bs))
		aad := meta.BlockAAD(ino, gen, blockNo)
		sealed := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, aad, tail[i:hi])
		key := meta.BlockKey(ino, gen, blockNo)
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: key, Val: sealed})
		blk := make([]byte, hi-i)
		copy(blk, tail[i:hi])
		s.cache.Put(ckBlock+key, blk, int64(hi-i))
	}
	newMan := &meta.Manifest{
		Size:      newSize,
		BlockSize: s.blockSize,
		NBlocks:   uint32((newSize + bs - 1) / bs),
		MTime:     time.Now().UnixNano(),
	}
	sealedMan := meta.SealSigned(m.Keys.DEK, m.Keys.DSK, meta.ManifestAAD(ino, gen), newMan.Encode())
	stop()
	kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.ManifestKey(ino), Val: sealedMan})
	s.cache.Put(ckManifest+meta.ManifestKey(ino), newMan, int64(len(sealedMan)))
	return s.store.BatchPut(kvs)
}

// rotateForWrite rotates a file's data keys in place on m without
// re-encrypting the outgoing content (the caller is about to replace it),
// and returns deletes for the old generation's blobs.
func (s *Session) rotateForWrite(r ref, m *meta.Metadata, oldMan *meta.Manifest) ([]wire.KV, error) {
	oldGen := m.Attr.DataGen
	stop := s.crypto("rotate-data-keys")
	dsk, dvk := sharocrypto.NewSigningPair()
	m.Keys.DEK = sharocrypto.NewSymKey()
	m.Keys.DSK, m.Keys.DVK = dsk, dvk
	m.Attr.DataGen++
	m.Attr.Flags &^= meta.FlagRekeyPending
	stop()

	kvs := make([]wire.KV, 0, oldMan.NBlocks)
	for i := uint32(0); i < oldMan.NBlocks; i++ {
		kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.BlockKey(r.ino, oldGen, i), Delete: true})
	}
	s.cache.DeletePrefix(ckBlock + meta.BlockPrefix(r.ino, oldGen))
	s.cache.Delete(ckManifest + meta.ManifestKey(r.ino))
	return kvs, nil
}
