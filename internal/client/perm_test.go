package client

import (
	"bytes"
	"errors"
	"testing"

	"github.com/sharoes/sharoes/internal/types"
)

// TestFilePermissionMatrix exercises the file CAPs end to end: owner,
// group member and other against 640/644/664 files.
func TestFilePermissionMatrix(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		files := map[string]string{
			"/f640": "640",
			"/f644": "644",
			"/f600": "600",
			"/f664": "664",
		}
		for path, p := range files {
			if err := alice.WriteFile(path, []byte("secret "+p), perm(t, p)); err != nil {
				t.Fatal(err)
			}
		}

		cases := []struct {
			user      types.UserID
			path      string
			wantRead  bool
			wantWrite bool
		}{
			{"alice", "/f600", true, true},
			{"bob", "/f600", false, false},
			{"carol", "/f600", false, false},
			{"bob", "/f640", true, false},
			{"carol", "/f640", false, false},
			{"bob", "/f644", true, false},
			{"carol", "/f644", true, false},
			{"bob", "/f664", true, true},
			{"carol", "/f664", true, false},
		}
		for _, c := range cases {
			s := w.as(c.user)
			_, err := s.ReadFile(c.path)
			if got := err == nil; got != c.wantRead {
				t.Errorf("%s read %s: err=%v, want ok=%v", c.user, c.path, err, c.wantRead)
			}
			if err != nil && !errors.Is(err, types.ErrPermission) {
				t.Errorf("%s read %s: wrong error class %v", c.user, c.path, err)
			}
			err = s.WriteFile(c.path, []byte("overwrite"), 0o644)
			if got := err == nil; got != c.wantWrite {
				t.Errorf("%s write %s: err=%v, want ok=%v", c.user, c.path, err, c.wantWrite)
			}
			if err == nil {
				// Restore for the next case.
				if werr := alice.WriteFile(c.path, []byte("secret"), 0); werr != nil {
					t.Fatal(werr)
				}
			}
		}

		// Everyone can stat regardless of read permission (the zero CAP
		// keeps attributes visible), as in *nix with exec on the path.
		for _, u := range []types.UserID{"bob", "carol", "dave"} {
			info, err := w.as(u).Stat("/f600")
			if err != nil {
				t.Errorf("%s stat /f600: %v", u, err)
				continue
			}
			if info.Perm != 0o600 || info.Owner != "alice" {
				t.Errorf("%s stat: %+v", u, info)
			}
		}
	})
}

// TestDirReadOnlyCAP: read permission lists names but cannot traverse —
// the names column is all the CAP exposes.
func TestDirReadOnlyCAP(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/ro", perm(t, "744")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/ro/visible-name", []byte("data"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		carol := w.as("carol")
		names, err := carol.ReadDir("/ro")
		if err != nil {
			t.Fatalf("carol ls /ro: %v", err)
		}
		if len(names) != 1 || names[0] != "visible-name" {
			t.Errorf("names = %v", names)
		}
		// But she cannot stat or read through it (no exec).
		if _, err := carol.Stat("/ro/visible-name"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol stat through r--: %v", err)
		}
		if _, err := carol.ReadFile("/ro/visible-name"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol read through r--: %v", err)
		}
	})
}

// TestDirExecOnlyCAP: the paper's most interesting CAP — cd without ls.
func TestDirExecOnlyCAP(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/dropbox", perm(t, "711")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/dropbox/known-file.txt", []byte("for those who know"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/dropbox/subdir", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/dropbox/subdir/deep", []byte("deep"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}

		carol := w.as("carol")
		// "ls" must fail...
		if _, err := carol.ReadDir("/dropbox"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol ls /dropbox: %v", err)
		}
		// ...but access by exact name works.
		got, err := carol.ReadFile("/dropbox/known-file.txt")
		if err != nil {
			t.Fatalf("carol read known name: %v", err)
		}
		if string(got) != "for those who know" {
			t.Errorf("content = %q", got)
		}
		// Traversal deeper through the exec-only directory works too.
		if got, err := carol.ReadFile("/dropbox/subdir/deep"); err != nil || string(got) != "deep" {
			t.Errorf("deep read = %q, %v", got, err)
		}
		// Unknown names are simply absent.
		if _, err := carol.Stat("/dropbox/unguessed"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("unknown name: %v", err)
		}
		// The owner can still list.
		names, err := alice.ReadDir("/dropbox")
		if err != nil || len(names) != 2 {
			t.Errorf("alice ls = %v, %v", names, err)
		}
	})
}

// TestDirZeroCAP: no access at all for others.
func TestDirZeroCAP(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/private", perm(t, "700")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/private/diary", []byte("dear diary"), perm(t, "600")); err != nil {
			t.Fatal(err)
		}
		for _, u := range []types.UserID{"bob", "carol"} {
			s := w.as(u)
			if _, err := s.ReadDir("/private"); !errors.Is(err, types.ErrPermission) {
				t.Errorf("%s ls: %v", u, err)
			}
			if _, err := s.Stat("/private/diary"); !errors.Is(err, types.ErrPermission) {
				t.Errorf("%s stat child: %v", u, err)
			}
			if _, err := s.ReadFile("/private/diary"); !errors.Is(err, types.ErrPermission) {
				t.Errorf("%s read child: %v", u, err)
			}
			// Stat of the directory itself still works.
			if _, err := s.Stat("/private"); err != nil {
				t.Errorf("%s stat dir: %v", u, err)
			}
		}
	})
}

// TestGroupDirPermissions: group members get the group CAP.
func TestGroupDirPermissions(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/team", perm(t, "770")); err != nil {
			t.Fatal(err)
		}
		bob := w.as("bob")
		if err := bob.WriteFile("/team/notes", []byte("standup"), perm(t, "660")); err != nil {
			t.Fatalf("bob (group) create: %v", err)
		}
		if _, err := w.as("carol").ReadDir("/team"); !errors.Is(err, types.ErrPermission) {
			t.Error("carol listed a 770 dir")
		}
		if got, err := alice.ReadFile("/team/notes"); err != nil || string(got) != "standup" {
			t.Errorf("alice read = %q, %v", got, err)
		}
	})
}

// TestOwnerPolicyEnforced: owners hold all keys, but the client enforces
// the owner triplet as policy, like a local fs.
func TestOwnerPolicyEnforced(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chmod("/f", perm(t, "444")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/f", []byte("y"), 0); !errors.Is(err, types.ErrPermission) {
			t.Errorf("owner write to 444: %v", err)
		}
		// But the owner can always chmod back in.
		if err := alice.Chmod("/f", perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/f", []byte("y"), 0); err != nil {
			t.Errorf("owner write after chmod: %v", err)
		}
	})
}

// TestCrossClassLink: bob reaches a directory he owns through a parent
// where he is merely "other" — the row must hand him his owner variant.
func TestCrossClassLink(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/home", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		bob := w.as("bob")
		// alice creates bob's home and hands it over.
		if err := alice.Mkdir("/home/bob", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chown("/home/bob", "bob", "eng"); err != nil {
			t.Fatal(err)
		}
		bob.Refresh()
		// bob, owner now, locks it down and uses it.
		if err := bob.Chmod("/home/bob", perm(t, "700")); err != nil {
			t.Fatalf("bob chmod own dir: %v", err)
		}
		if err := bob.WriteFile("/home/bob/.profile", []byte("export X=1"), perm(t, "600")); err != nil {
			t.Fatalf("bob write in own dir: %v", err)
		}
		if got, err := bob.ReadFile("/home/bob/.profile"); err != nil || !bytes.Equal(got, []byte("export X=1")) {
			t.Errorf("bob read own = %q, %v", got, err)
		}
		// carol and even alice (ex-owner) are locked out of the contents.
		for _, u := range []types.UserID{"carol", "alice"} {
			s := w.mountFresh(u, -1)
			defer s.Close()
			if _, err := s.ReadDir("/home/bob"); !errors.Is(err, types.ErrPermission) {
				t.Errorf("%s listed bob's 700 home: %v", u, err)
			}
		}
	})
}

// TestSplitPointResolution: a configuration where co-travellers of a
// parent variant diverge on a child, exercising the sealed-pointer path
// under Scheme-2 (Scheme-1 never splits but must behave identically).
func TestSplitPointResolution(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/proj", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		// Child group is "qa" (carol's group): among the "other"
		// travellers of /proj (carol, dave), carol is group on the child
		// and dave is other → split.
		if err := alice.Mkdir("/proj/qa-docs", perm(t, "750")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chown("/proj/qa-docs", "alice", "qa"); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/proj/qa-docs/plan", []byte("test plan"), perm(t, "640")); err != nil {
			t.Fatal(err)
		}

		// carol (group qa): full r-x access via her pointer.
		carol := w.mountFresh("carol", -1)
		defer carol.Close()
		names, err := carol.ReadDir("/proj/qa-docs")
		if err != nil {
			t.Fatalf("carol ls qa-docs: %v", err)
		}
		if len(names) != 1 || names[0] != "plan" {
			t.Errorf("names = %v", names)
		}
		if got, err := carol.ReadFile("/proj/qa-docs/plan"); err != nil || string(got) != "test plan" {
			t.Errorf("carol read = %q, %v", got, err)
		}
		// dave (other, zero CAP on qa-docs): stat only.
		dave := w.mountFresh("dave", -1)
		defer dave.Close()
		if _, err := dave.Stat("/proj/qa-docs"); err != nil {
			t.Errorf("dave stat: %v", err)
		}
		if _, err := dave.ReadDir("/proj/qa-docs"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("dave ls: %v", err)
		}
		if _, err := dave.ReadFile("/proj/qa-docs/plan"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("dave read: %v", err)
		}
	})
}
