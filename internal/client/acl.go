package client

import (
	"fmt"

	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/wire"
)

// GetACL returns the object's per-user grants.
func (s *Session) GetACL(path string) ([]types.ACLEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("getacl")()
	_, m, err := s.resolve(path)
	if err != nil {
		return nil, pathErr("getacl", path, err)
	}
	return m.Attr.CloneACL(), nil
}

// SetACL grants (or updates) a per-user permission on the object — the
// POSIX-ACL extension of §III-D2. Under Scheme-2 the grantee receives
// their own CAP copy ("a/<user>"), and the routing rows in the parent
// directory become split points, exactly the divergence mechanism the
// paper describes; Scheme-1 absorbs the grant into the user's existing
// per-user copy. Owner-only; like chown, it needs write permission on the
// parent directory to recompute the routing rows (except on the root).
func (s *Session) SetACL(path string, user types.UserID, rights types.Triplet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("setacl")()
	return pathErrNil("setacl", path, s.setACL(path, user, &rights))
}

// RemoveACL revokes a per-user grant. The object's data keys rotate
// (immediate revocation) so the grantee's cached keys open nothing.
func (s *Session) RemoveACL(path string, user types.UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.beginOp("removeacl")()
	return pathErrNil("removeacl", path, s.setACL(path, user, nil))
}

// setACL applies a grant (rights != nil) or a revocation (rights == nil).
func (s *Session) setACL(path string, user types.UserID, rights *types.Triplet) error {
	r, m, err := s.resolve(path)
	if err != nil {
		return err
	}
	if err := s.requireOwner(m); err != nil {
		return err
	}
	if user == m.Attr.Owner {
		return fmt.Errorf("%w: the owner's rights are the owner triplet", types.ErrUnsupportedPerm)
	}
	if _, err := s.reg.UserKey(user); err != nil {
		return err
	}

	updated := *m
	updated.Attr.ACL = m.Attr.CloneACL()
	oldTrip := m.Attr.EffectiveTriplet(user, s.reg.IsMember)
	var newTrip types.Triplet
	if rights != nil {
		if _, err := cap.For(m.Attr.Kind, *rights); err != nil {
			return err
		}
		updated.Attr.SetACL(user, *rights)
		newTrip = *rights
	} else {
		if !updated.Attr.RemoveACL(user) {
			return types.ErrNotExist
		}
		newTrip = updated.Attr.EffectiveTriplet(user, s.reg.IsMember)
	}

	var kvs []wire.KV

	// Revocation: if the user loses a capability they held, rotate the
	// data keys (or, for files under lazy revocation, defer), as chmod
	// does.
	if tripletRevokes(m.Attr.Kind, oldTrip, newTrip) {
		if s.lazy && m.Attr.Kind == types.KindFile {
			updated.Attr.Flags |= meta.FlagRekeyPending
		} else {
			rk, err := s.rekeyData(r, &updated)
			if err != nil {
				return err
			}
			kvs = append(kvs, rk...)
		}
	}

	// For directories, every variant's view must exist under the new
	// variant set. A fresh ACL variant starts from the rows of the class
	// view the grantee would otherwise use: an ACL on a directory grants
	// rights on *this* directory; on its children the grantee keeps
	// whatever their own status there gives them (POSIX semantics).
	if updated.Attr.Kind == types.KindDir {
		tables, err := s.loadParentTables(r, m)
		if err != nil {
			return err
		}
		if rights != nil {
			classVariant := s.eng.UserVariant(user, stripACL(m.Attr, user)).ID
			newID := s.eng.UserVariant(user, updated.Attr).ID
			if _, ok := tables[newID]; !ok {
				if src, ok := tables[classVariant]; ok {
					tables[newID] = src.Clone()
				} else {
					tables[newID] = &meta.DirTable{}
				}
			}
		} else {
			// Drop the revoked variant's view.
			oldID := s.eng.UserVariant(user, m.Attr).ID
			if oldID != s.eng.UserVariant(user, updated.Attr).ID {
				delete(tables, oldID)
				kvs = append(kvs, wire.KV{NS: wire.NSData, Key: meta.TableKey(r.ino, oldID), Delete: true})
				s.cache.Delete(ckWTable + meta.TableKey(r.ino, oldID))
			}
		}
		tkvs, err := s.writeParentTablesFor(r, &updated, tables)
		if err != nil {
			return err
		}
		kvs = append(kvs, tkvs...)
	}

	// Stale metadata copies for a removed variant must not linger.
	if rights == nil {
		oldID := s.eng.UserVariant(user, m.Attr).ID
		if oldID != s.eng.UserVariant(user, updated.Attr).ID {
			kvs = append(kvs, wire.KV{NS: wire.NSMeta, Key: meta.MetaKey(r.ino, oldID), Delete: true})
		}
	}
	kvs = append(kvs, s.sealMetaVariants(&updated)...)

	// Re-route the parent's rows for this object: the grantee now
	// diverges from (or rejoins) their class co-travellers.
	if r.ino == s.root.ino {
		sbkvs, err := s.sealSuperblocks(&updated)
		if err != nil {
			return err
		}
		kvs = append(kvs, sbkvs...)
	} else {
		pr, pm, base, err := s.resolveParent(path)
		if err != nil {
			return err
		}
		if err := s.requireDirWriter(pm); err != nil {
			return fmt.Errorf("ACL changes need write permission on the parent directory: %w", err)
		}
		ptables, err := s.loadParentTables(pr, pm)
		if err != nil {
			return err
		}
		grants, err := layout.BuildRows(s.eng, pm, ptables, base, &updated)
		if err != nil {
			return err
		}
		kvs = append(kvs, grants...)
		pkvs, err := s.writeParentTables(pr, pm, ptables)
		if err != nil {
			return err
		}
		kvs = append(kvs, pkvs...)
	}

	return s.store.BatchPut(kvs)
}

// stripACL returns attr without user's ACL entry, for computing the class
// variant the user would use absent the grant.
func stripACL(attr meta.Attr, user types.UserID) meta.Attr {
	out := attr
	out.ACL = attr.CloneACL()
	out.RemoveACL(user)
	return out
}

// tripletRevokes reports whether moving a single user from oldTrip to
// newTrip strips a capability they held.
func tripletRevokes(kind types.ObjKind, oldTrip, newTrip types.Triplet) bool {
	oldC, _ := cap.For(kind, oldTrip)
	newC, _ := cap.For(kind, newTrip)
	if kind == types.KindFile {
		return (oldC.CanReadData() && !newC.CanReadData()) ||
			(oldC.CanWriteData() && !newC.CanWriteData())
	}
	return (oldC.CanList() && !newC.CanList()) ||
		(oldC.CanTraverse() && !newC.CanTraverse()) ||
		(oldC.CanModifyDir() && !newC.CanModifyDir())
}

// writeParentTablesFor is writeParentTables but sealing with an updated
// metadata whose variant set may differ from what was loaded.
func (s *Session) writeParentTablesFor(r ref, m *meta.Metadata, tables map[string]*meta.DirTable) ([]wire.KV, error) {
	return s.writeParentTables(r, m, tables)
}
