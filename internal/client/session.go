// Package client implements the Sharoes filesystem: the component
// installed at every enterprise client that provides *nix-like access to
// SSP-stored data, performing all cryptographic operations locally
// (paper §IV-A).
//
// A Session is one user's mount. Mounting fetches the user's sealed
// superblock (and, in-band, their group keys), decrypts it with the one
// private key the user manages, and from there every key needed to walk
// the tree is obtained from the structures themselves: directory tables
// carry the MEK/MVK of children, metadata carries the DEK/DSK/DVK of data.
package client

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/sharoes/sharoes/internal/cache"
	"github.com/sharoes/sharoes/internal/cap"
	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/meta"
	"github.com/sharoes/sharoes/internal/obs"
	"github.com/sharoes/sharoes/internal/sharocrypto"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/stats"
	"github.com/sharoes/sharoes/internal/types"
	"github.com/sharoes/sharoes/internal/vfs"
	"github.com/sharoes/sharoes/internal/wire"
)

// DefaultBlockSize is the default data block size. The paper divides
// larger files into blocks encrypted separately so updates avoid
// re-encrypting whole files (§II-B).
const DefaultBlockSize = 64 * 1024

// Config configures a mount.
type Config struct {
	// Store is the SSP connection (ssp.Client) or a local store in tests.
	Store ssp.BlobStore
	// User is the mounting principal with their private key.
	User *keys.User
	// Registry is the enterprise principal directory.
	Registry *keys.Registry
	// Layout is the metadata layout scheme (Scheme-1 or Scheme-2).
	Layout layout.Engine
	// FSID names the filesystem at the SSP.
	FSID string
	// Recorder receives cost instrumentation; may be nil.
	Recorder *stats.Recorder
	// Tracer receives hierarchical spans for every operation: a
	// "client.<op>" root with resolve, CAP-unwrap, RPC and crypto
	// children (see docs/OBSERVABILITY.md). May be nil. When Store is an
	// ssp.Client the tracer is attached to it too, so RPC spans nest
	// inside the op and the SSP joins the trace over the wire.
	Tracer *obs.Tracer
	// Metrics receives per-operation counters (client.op.<op>) and
	// latency histograms (client.op.<op>.ns). May be nil.
	Metrics *obs.Registry
	// CacheBytes is the local cache budget: <0 unlimited, 0 disabled.
	CacheBytes int64
	// BlockSize overrides DefaultBlockSize when nonzero.
	BlockSize uint32
	// LazyRevocation defers *file* re-encryption on permission
	// revocation until the owner's next write, instead of re-encrypting
	// during chmod (paper §IV-A1; the prototype default is immediate, as
	// here). Directory revocations are always immediate — directories
	// have no owner-write event to defer to.
	LazyRevocation bool
}

// ref locates one sealed metadata variant and the keys to open it: the
// content of a directory-table row, split pointer or superblock.
type ref struct {
	ino     types.Inode
	variant string
	mek     sharocrypto.SymKey
	mvk     sharocrypto.VerifyKey
}

// Session is a mounted Sharoes filesystem for one user. It implements
// vfs.FS. Operations are serialized; use one Session per goroutine.
type Session struct {
	mu        sync.Mutex
	store     ssp.BlobStore
	user      *keys.User
	reg       *keys.Registry
	eng       layout.Engine
	fsid      string
	rec       *stats.Recorder
	tracer    *obs.Tracer
	metrics   *obs.Registry
	cache     *cache.Cache
	blockSize uint32
	lazy      bool
	groupKeys map[types.GroupID]sharocrypto.PrivateKey
	root      ref
	closed    bool
}

var _ vfs.FS = (*Session)(nil)

// Mount opens a session: it fetches and decrypts the user's superblock —
// the single public-key operation on the mount path (paper §III-C) — and
// the user's group key blocks.
func Mount(cfg Config) (*Session, error) {
	if cfg.Store == nil || cfg.User == nil || cfg.Registry == nil || cfg.Layout == nil {
		return nil, errors.New("client: incomplete config")
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	s := &Session{
		store:     cfg.Store,
		user:      cfg.User,
		reg:       cfg.Registry,
		eng:       cfg.Layout,
		fsid:      cfg.FSID,
		rec:       cfg.Recorder,
		tracer:    cfg.Tracer,
		metrics:   cfg.Metrics,
		cache:     cache.New(cfg.CacheBytes),
		blockSize: bs,
		lazy:      cfg.LazyRevocation,
	}
	// Only attach a tracer the caller actually supplied: extra untraced
	// sessions mounted over a shared client (the parallel workloads) must
	// not clobber the tracer the first session installed.
	if sc, ok := cfg.Store.(*ssp.Client); ok && cfg.Tracer != nil {
		sc.Observe(cfg.Tracer)
	}

	// In-band group key distribution (paper §II-A).
	gk, err := keys.FetchGroupKeys(cfg.Store, cfg.User)
	if err != nil {
		return nil, fmt.Errorf("client: mount: %w", err)
	}
	s.groupKeys = gk

	// Superblock: try the user principal, then each group principal.
	principals := []keys.Principal{keys.UserPrincipal(cfg.User.ID)}
	for gid := range gk {
		principals = append(principals, keys.GroupPrincipal(gid))
	}
	var sb *meta.Superblock
	for _, p := range principals {
		blob, err := cfg.Store.Get(wire.NSSuper, meta.SuperKey(cfg.FSID, p.String()))
		if errors.Is(err, wire.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("client: mount: %w", err)
		}
		priv := cfg.User.Priv
		if p.Group != "" {
			priv = gk[p.Group]
		}
		stop := s.crypto("open-superblock")
		sb, err = meta.OpenSuperblock(priv, blob)
		stop()
		if err != nil {
			return nil, fmt.Errorf("client: mount superblock: %w", err)
		}
		break
	}
	if sb == nil {
		return nil, &types.PathError{Op: "mount", Path: "/", Err: types.ErrPermission}
	}
	s.root = ref{ino: sb.RootInode, variant: sb.RootVariant, mek: sb.RootMEK, mvk: sb.RootMVK}
	return s, nil
}

// Close releases the session. The underlying store is closed if the
// session's config provided an io.Closer (e.g. an ssp.Client connection).
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cache.Clear()
	if c, ok := s.store.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Refresh drops all locally cached (decrypted) state, forcing the next
// operations to re-fetch from the SSP. Sharoes, like the paper's
// prototype, provides no cross-client cache coherence protocol — the
// paper defers consistency semantics to a SUNDR-style integration (§VI) —
// so a client that must observe another client's recent writes calls
// Refresh (close-to-open consistency done by hand).
func (s *Session) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.Clear()
}

// CacheStats exposes cache hit/miss counts for experiments.
func (s *Session) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// User returns the mounted user's ID.
func (s *Session) User() types.UserID { return s.user.ID }

// crypto returns a stopwatch charging the CRYPTO component and, with a
// tracer attached, recording a "crypto.<name>" leaf span. The name is a
// fixed operation label — never key material or user data (the keyleak
// analyzer enforces this for obs sinks).
func (s *Session) crypto(name string) func() {
	sp := s.tracer.Start("crypto."+name, obs.ClassCrypto)
	stop := s.rec.Time(stats.Crypto)
	return func() {
		stop()
		sp.End()
	}
}

// beginOp opens the root span and stopwatch for one vfs operation; the
// returned func closes the span, observes the op's latency histogram and
// counts the op on the recorder. Usage: defer s.beginOp("stat")().
func (s *Session) beginOp(op string) func() {
	sp := s.tracer.Start("client."+op, obs.ClassNone)
	start := time.Now()
	return func() {
		sp.End()
		if s.metrics != nil {
			s.metrics.Counter("client.op." + op).Inc()
			s.metrics.Histogram("client.op." + op + ".ns").Observe(time.Since(start))
		}
		s.rec.AddOp()
	}
}

// triplet returns the permission triplet applying to the session user:
// owner bits, then any ACL grant, then group, then other.
func (s *Session) triplet(attr meta.Attr) types.Triplet {
	return attr.EffectiveTriplet(s.user.ID, s.reg.IsMember)
}

// randInode allocates a fresh inode number. Clients allocate inodes (the
// SSP is untrusted); random 64-bit values make concurrent clients
// collision-free without coordination.
func randInode() types.Inode {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic("client: entropy unavailable: " + err.Error())
		}
		ino := types.Inode(binary.BigEndian.Uint64(b[:]))
		if ino > types.RootInode {
			return ino
		}
	}
}

// newObjectKeys mints the complete key material for a new object.
func newObjectKeys() meta.KeySet {
	dsk, dvk := sharocrypto.NewSigningPair()
	msk, _ := sharocrypto.NewSigningPair()
	return meta.KeySet{
		DEK:      sharocrypto.NewSymKey(),
		DataSeed: sharocrypto.NewSymKey(),
		DVK:      dvk,
		DSK:      dsk,
		MSK:      msk,
		MetaSeed: sharocrypto.NewSymKey(),
	}
}

// --- fetch/cache layer -------------------------------------------------

const (
	ckMeta     = "M|"
	ckView     = "V|" // reader-side decoded views
	ckWTable   = "W|" // writer-side decoded per-variant tables
	ckManifest = "F|"
	ckBlock    = "B|"
	ckRef      = "R|" // resolved directory-entry refs, keyed by parent inode
)

// fetchMeta retrieves and opens one metadata variant, via the cache.
func (s *Session) fetchMeta(r ref) (*meta.Metadata, error) {
	key := ckMeta + meta.MetaKey(r.ino, r.variant)
	if v, ok := s.cache.Get(key); ok {
		return v.(*meta.Metadata), nil
	}
	blob, err := s.store.Get(wire.NSMeta, meta.MetaKey(r.ino, r.variant))
	if errors.Is(err, wire.ErrNotFound) {
		return nil, types.ErrNotExist
	}
	if err != nil {
		return nil, err
	}
	stop := s.crypto("open-meta")
	m, err := meta.OpenMetadata(r.mek, r.mvk, meta.MetaAAD(r.ino, r.variant), blob)
	stop()
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, m, int64(len(blob)))
	return m, nil
}

// openViewOf retrieves and opens the directory-table view belonging to
// the metadata variant the caller holds. A missing view is treated as an
// empty directory (fresh directories store views eagerly, so in an
// untampered store this only happens for variants that legitimately have
// no view).
func (s *Session) openViewOf(r ref, m *meta.Metadata) (*cap.View, error) {
	if m.Keys.DEK.IsZero() {
		return nil, types.ErrPermission
	}
	key := ckView + meta.TableKey(r.ino, r.variant)
	if v, ok := s.cache.Get(key); ok {
		return v.(*cap.View), nil
	}
	blob, err := s.store.Get(wire.NSData, meta.TableKey(r.ino, r.variant))
	if errors.Is(err, wire.ErrNotFound) {
		shape, serr := s.variantCap(m.Attr, r.variant)
		if serr != nil {
			return nil, serr
		}
		return cap.EmptyView(shape), nil
	}
	if err != nil {
		return nil, err
	}
	stop := s.crypto("open-view")
	v, err := cap.OpenView(r.variant, m.Keys.DEK, m.Keys.DVK, r.ino, blob)
	stop()
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, v, int64(len(blob)))
	return v, nil
}

// variantCap resolves the CAP a variant of an object encodes.
func (s *Session) variantCap(attr meta.Attr, variant string) (cap.ID, error) {
	for _, v := range s.eng.Variants(attr) {
		if v.ID == variant {
			return v.Cap, nil
		}
	}
	return cap.ID{}, fmt.Errorf("client: unknown variant %q", variant)
}

// invalidateObject drops all cached state for an inode, including the
// resolved refs of its directory entries (the inode may be a directory
// whose table is about to change under it).
func (s *Session) invalidateObject(ino types.Inode) {
	s.cache.DeletePrefix(ckMeta + "m/" + fmt.Sprintf("%d/", uint64(ino)))
	s.cache.DeletePrefix(ckView + "t/" + fmt.Sprintf("%d/", uint64(ino)))
	s.cache.DeletePrefix(ckWTable + "t/" + fmt.Sprintf("%d/", uint64(ino)))
	s.cache.DeletePrefix(ckManifest + "f/" + fmt.Sprintf("%d/", uint64(ino)))
	s.cache.DeletePrefix(ckBlock + "f/" + fmt.Sprintf("%d/", uint64(ino)))
	s.cache.DeletePrefix(ckRef + "d/" + fmt.Sprintf("%d/", uint64(ino)))
}
