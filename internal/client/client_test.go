package client

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/sharoes/sharoes/internal/keys"
	"github.com/sharoes/sharoes/internal/layout"
	"github.com/sharoes/sharoes/internal/migrate"
	"github.com/sharoes/sharoes/internal/ssp"
	"github.com/sharoes/sharoes/internal/types"
)

// Shared user fixture (RSA keygen is slow). alice owns the filesystem,
// bob shares her "eng" group, carol and dave are others; carol is also in
// "qa".
var (
	fixOnce sync.Once
	fixReg  *keys.Registry
	fixUser map[types.UserID]*keys.User
)

func fixture(t testing.TB) {
	t.Helper()
	fixOnce.Do(func() {
		fixReg = keys.NewRegistry()
		fixUser = make(map[types.UserID]*keys.User)
		for _, id := range []types.UserID{"alice", "bob", "carol", "dave"} {
			u, err := keys.NewUser(id)
			if err != nil {
				t.Fatal(err)
			}
			fixUser[id] = u
			fixReg.AddUser(id, u.Public())
		}
		eng, err := keys.NewGroup("eng")
		if err != nil {
			t.Fatal(err)
		}
		fixReg.AddGroup("eng", eng.Priv.Public())
		fixReg.AddMember("eng", "alice")
		fixReg.AddMember("eng", "bob")
		qa, err := keys.NewGroup("qa")
		if err != nil {
			t.Fatal(err)
		}
		fixReg.AddGroup("qa", qa.Priv.Public())
		fixReg.AddMember("qa", "carol")
	})
}

// world is one bootstrapped filesystem plus mounted sessions.
type world struct {
	t     *testing.T
	store ssp.BlobStore
	eng   layout.Engine
	sess  map[types.UserID]*Session
}

// schemes runs the test body under both layout schemes.
func schemes(t *testing.T, body func(t *testing.T, w *world)) {
	fixture(t)
	for _, name := range []string{"scheme2", "scheme1"} {
		t.Run(name, func(t *testing.T) {
			var eng layout.Engine
			if name == "scheme1" {
				eng = layout.NewScheme1(fixReg)
			} else {
				eng = layout.NewScheme2(fixReg)
			}
			body(t, newWorld(t, eng, ssp.NewMemStore()))
		})
	}
}

func newWorld(t *testing.T, eng layout.Engine, store ssp.BlobStore) *world {
	t.Helper()
	err := migrate.Bootstrap(migrate.Options{
		Store: store, Registry: fixReg, Layout: eng,
		FSID: "testfs", RootOwner: "alice", RootGroup: "eng", RootPerm: 0o755,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, store: store, eng: eng, sess: make(map[types.UserID]*Session)}
	t.Cleanup(func() {
		for _, s := range w.sess {
			s.Close()
		}
	})
	return w
}

// as returns (mounting on first use) a session for the given user.
func (w *world) as(id types.UserID) *Session {
	w.t.Helper()
	if s, ok := w.sess[id]; ok {
		return s
	}
	s := w.mountFresh(id, -1)
	w.sess[id] = s
	return s
}

// mountFresh mounts a brand-new session (empty cache) for the user.
func (w *world) mountFresh(id types.UserID, cacheBytes int64) *Session {
	w.t.Helper()
	s, err := Mount(Config{
		Store: w.store, User: fixUser[id], Registry: fixReg, Layout: w.eng,
		FSID: "testfs", CacheBytes: cacheBytes, BlockSize: 64, // tiny blocks: exercise multi-block paths
	})
	if err != nil {
		w.t.Fatalf("mount %s: %v", id, err)
	}
	return s
}

func perm(t testing.TB, s string) types.Perm {
	t.Helper()
	p, err := types.ParsePerm(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMountUnknownUser(t *testing.T) {
	fixture(t)
	store := ssp.NewMemStore()
	eng := layout.NewScheme2(fixReg)
	if err := migrate.Bootstrap(migrate.Options{Store: store, Registry: fixReg, Layout: eng,
		FSID: "fs", RootOwner: "alice", RootGroup: "eng"}); err != nil {
		t.Fatal(err)
	}
	mallory, err := keys.NewUser("mallory") // not in the registry at bootstrap
	if err != nil {
		t.Fatal(err)
	}
	_, err = Mount(Config{Store: store, User: mallory, Registry: fixReg, Layout: eng, FSID: "fs"})
	if !errors.Is(err, types.ErrPermission) {
		t.Errorf("mallory mount: %v", err)
	}
}

func TestMountMissingConfig(t *testing.T) {
	if _, err := Mount(Config{}); err == nil {
		t.Error("empty config mounted")
	}
}

func TestStatRoot(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		for _, id := range []types.UserID{"alice", "bob", "carol"} {
			info, err := w.as(id).Stat("/")
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !info.IsDir() || info.Owner != "alice" || info.Group != "eng" || info.Perm != 0o755 {
				t.Errorf("%s: root info = %+v", id, info)
			}
		}
	})
}

func TestMkdirStatReaddir(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/projects", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/projects/sharoes", perm(t, "750")); err != nil {
			t.Fatal(err)
		}
		info, err := alice.Stat("/projects/sharoes")
		if err != nil {
			t.Fatal(err)
		}
		if !info.IsDir() || info.Perm != 0o750 || info.Owner != "alice" || info.Group != "eng" {
			t.Errorf("info = %+v", info)
		}
		names, err := alice.ReadDir("/projects")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 || names[0] != "sharoes" {
			t.Errorf("names = %v", names)
		}
		// Another user sees it too (fresh view of shared state).
		names, err = w.as("bob").ReadDir("/projects")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 || names[0] != "sharoes" {
			t.Errorf("bob names = %v", names)
		}
	})
}

func TestMkdirErrors(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/d", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/d", perm(t, "755")); !errors.Is(err, types.ErrExist) {
			t.Errorf("duplicate mkdir: %v", err)
		}
		if err := alice.Mkdir("/missing/sub", perm(t, "755")); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("mkdir under missing: %v", err)
		}
		if err := alice.Mkdir("/d/bad", perm(t, "753")); !errors.Is(err, types.ErrUnsupportedPerm) {
			t.Errorf("unsupported perm: %v", err)
		}
		if err := alice.Mkdir("relative", perm(t, "755")); !errors.Is(err, types.ErrInvalidPath) {
			t.Errorf("relative path: %v", err)
		}
		// carol (other, r-x on /) cannot create at root.
		if err := w.as("carol").Mkdir("/carols", perm(t, "755")); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol mkdir: %v", err)
		}
	})
}

func TestWriteReadRoundTrip(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		for _, size := range []int{0, 1, 63, 64, 65, 200, 1000} {
			data := bytes.Repeat([]byte{0xA5}, size)
			for i := range data {
				data[i] = byte(i * 7)
			}
			path := fmt.Sprintf("/f%d", size)
			if err := alice.WriteFile(path, data, perm(t, "644")); err != nil {
				t.Fatalf("write %d: %v", size, err)
			}
			got, err := alice.ReadFile(path)
			if err != nil {
				t.Fatalf("read %d: %v", size, err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("size %d: content mismatch", size)
			}
			info, err := alice.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size != uint64(size) || info.Kind != types.KindFile {
				t.Errorf("size %d: info = %+v", size, info)
			}
		}
	})
}

func TestOverwriteShrinksAndGrows(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		big := bytes.Repeat([]byte("large"), 100) // 500 bytes ⇒ 8 blocks at bs=64
		if err := alice.WriteFile("/f", big, perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		small := []byte("tiny")
		if err := alice.WriteFile("/f", small, perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		// A fresh session (no cache) must see exactly the new content —
		// stale trailing blocks must be gone.
		fresh := w.mountFresh("alice", -1)
		defer fresh.Close()
		got, err := fresh.ReadFile("/f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, small) {
			t.Errorf("got %q", got)
		}
		// And grow again.
		if err := alice.WriteFile("/f", big, perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if got, _ := alice.ReadFile("/f"); !bytes.Equal(got, big) {
			t.Error("grow lost data")
		}
	})
}

func TestAppend(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Create("/log", perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		var want []byte
		for i := 0; i < 10; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i)}, 23) // crosses 64-byte blocks
			if err := alice.Append("/log", chunk); err != nil {
				t.Fatal(err)
			}
			want = append(want, chunk...)
		}
		got, err := alice.ReadFile("/log")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("append content mismatch: %d vs %d bytes", len(got), len(want))
		}
		// Fresh session agrees.
		fresh := w.mountFresh("alice", -1)
		defer fresh.Close()
		if got, _ := fresh.ReadFile("/log"); !bytes.Equal(got, want) {
			t.Error("fresh session sees different append result")
		}
		if err := alice.Append("/missing", []byte("x")); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("append missing: %v", err)
		}
	})
}

func TestRemove(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/d", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/d/inner", []byte("y"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Remove("/d"); !errors.Is(err, types.ErrNotEmpty) {
			t.Errorf("remove non-empty: %v", err)
		}
		if err := alice.Remove("/d/inner"); err != nil {
			t.Fatal(err)
		}
		if err := alice.Remove("/d"); err != nil {
			t.Fatal(err)
		}
		if err := alice.Remove("/f"); err != nil {
			t.Fatal(err)
		}
		if _, err := alice.Stat("/f"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("stat removed: %v", err)
		}
		if err := alice.Remove("/f"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("remove twice: %v", err)
		}
		// carol can't remove what she can't write.
		if err := alice.WriteFile("/g", []byte("z"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := w.as("carol").Remove("/g"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("carol remove: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/a", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/b", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/a/doc", []byte("contents"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		// Same-directory rename.
		if err := alice.Rename("/a/doc", "/a/paper"); err != nil {
			t.Fatal(err)
		}
		if _, err := alice.Stat("/a/doc"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("old name survives: %v", err)
		}
		if got, err := alice.ReadFile("/a/paper"); err != nil || string(got) != "contents" {
			t.Errorf("renamed read = %q, %v", got, err)
		}
		// Cross-directory, same ownership domain.
		if err := alice.Rename("/a/paper", "/b/paper"); err != nil {
			t.Fatal(err)
		}
		if got, err := alice.ReadFile("/b/paper"); err != nil || string(got) != "contents" {
			t.Errorf("moved read = %q, %v", got, err)
		}
		// Other users still resolve it correctly.
		if got, err := w.as("bob").ReadFile("/b/paper"); err != nil || string(got) != "contents" {
			t.Errorf("bob moved read = %q, %v", got, err)
		}
		// Destination collision.
		if err := alice.WriteFile("/b/other", []byte("o"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Rename("/b/other", "/b/paper"); !errors.Is(err, types.ErrExist) {
			t.Errorf("rename onto existing: %v", err)
		}
		if err := alice.Rename("/missing", "/b/x"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("rename missing: %v", err)
		}
	})
}

func TestPathThroughFile(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("x"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if _, err := alice.Stat("/f/sub"); !errors.Is(err, types.ErrNotDir) {
			t.Errorf("stat through file: %v", err)
		}
		if _, err := alice.ReadDir("/f"); !errors.Is(err, types.ErrNotDir) {
			t.Errorf("readdir of file: %v", err)
		}
		if _, err := alice.ReadFile("/"); !errors.Is(err, types.ErrIsDir) {
			t.Errorf("readfile of dir: %v", err)
		}
	})
}

func TestMultiUserSharedState(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		bob := w.as("bob")
		// Root is group-writable? No: 755. Make a shared dir.
		if err := alice.Mkdir("/shared", perm(t, "775")); err != nil {
			t.Fatal(err)
		}
		if err := bob.WriteFile("/shared/from-bob", []byte("hi alice"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		got, err := alice.ReadFile("/shared/from-bob")
		if err != nil || string(got) != "hi alice" {
			t.Fatalf("alice read = %q, %v", got, err)
		}
		// alice edits; bob sees the edit after refreshing his cache (the
		// prototype has no cross-client coherence protocol; consistency
		// is deferred to a SUNDR-style integration per paper §VI).
		if err := alice.WriteFile("/shared/from-bob", []byte("hi bob"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		bob.Refresh()
		got, err = bob.ReadFile("/shared/from-bob")
		if err != nil || string(got) != "hi bob" {
			t.Fatalf("bob read = %q, %v", got, err)
		}
		// Bob's file is owned by bob, group eng (inherited from /shared).
		info, err := alice.Stat("/shared/from-bob")
		if err != nil {
			t.Fatal(err)
		}
		if info.Owner != "bob" || info.Group != "eng" {
			t.Errorf("ownership = %s:%s", info.Owner, info.Group)
		}
	})
}

func TestStatSizeAfterNonOwnerWrite(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.WriteFile("/f", []byte("12345"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		// bob (group, rw) grows the file; he cannot re-sign metadata, but
		// stat must still see the new size via the writer-signed manifest.
		if err := w.as("bob").WriteFile("/f", bytes.Repeat([]byte("x"), 999), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		fresh := w.mountFresh("carol", -1) // carol has other=r
		defer fresh.Close()
		info, err := fresh.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		if info.Size != 999 {
			t.Errorf("stat size = %d, want 999", info.Size)
		}
	})
}

// TestDiskStoreDurability runs the client against the disk-backed SSP
// store and remounts after "restarting" the store.
func TestDiskStoreDurability(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	store, err := ssp.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := layout.NewScheme2(fixReg)
	if err := migrate.Bootstrap(migrate.Options{Store: store, Registry: fixReg, Layout: eng,
		FSID: "diskfs", RootOwner: "alice", RootGroup: "eng", RootPerm: 0o755}); err != nil {
		t.Fatal(err)
	}
	s, err := Mount(Config{Store: store, User: fixUser["alice"], Registry: fixReg,
		Layout: eng, FSID: "diskfs", CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/persist", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/persist/data", []byte("survives restarts"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// "Restart": a brand-new store handle over the same directory.
	store2, err := ssp.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Mount(Config{Store: store2, User: fixUser["bob"], Registry: fixReg,
		Layout: eng, FSID: "diskfs", CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.ReadFile("/persist/data")
	if err != nil || string(got) != "survives restarts" {
		t.Fatalf("after restart = %q, %v", got, err)
	}
	rep, err := s2.Verify("/")
	if err != nil || !rep.OK() {
		t.Fatalf("verify after restart: %v / %+v", err, rep)
	}
}

// TestRenameCrossDomain: moving between directories with different
// ownership domains recomputes routing rows, which requires owning the
// moved object.
func TestRenameCrossDomain(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		// Two parents with different groups: different traveller sets.
		if err := alice.Mkdir("/eng-dir", perm(t, "775")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/qa-dir", perm(t, "775")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Chown("/qa-dir", "alice", "qa"); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/eng-dir/doc", []byte("owned by alice"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		// alice owns the file: the move recomputes rows and succeeds.
		if err := alice.Rename("/eng-dir/doc", "/qa-dir/doc"); err != nil {
			t.Fatalf("owner cross-domain rename: %v", err)
		}
		if got, err := alice.ReadFile("/qa-dir/doc"); err != nil || string(got) != "owned by alice" {
			t.Fatalf("after move = %q, %v", got, err)
		}
		// carol (qa) can read it through the new parent; bob (eng) can
		// also read it (664: group is the file's group, eng).
		carol := w.mountFresh("carol", -1)
		defer carol.Close()
		if got, err := carol.ReadFile("/qa-dir/doc"); err != nil || string(got) != "owned by alice" {
			t.Errorf("carol after move = %q, %v", got, err)
		}

		// bob does NOT own alice's file: his cross-domain move is refused.
		if err := alice.WriteFile("/eng-dir/shared", []byte("x"), perm(t, "664")); err != nil {
			t.Fatal(err)
		}
		bob := w.as("bob")
		bob.Refresh()
		if err := bob.Rename("/eng-dir/shared", "/qa-dir/shared"); !errors.Is(err, types.ErrPermission) {
			t.Errorf("non-owner cross-domain rename: %v", err)
		}
		// Same-domain moves by a mere writer still work.
		if err := alice.Mkdir("/eng-dir2", perm(t, "775")); err != nil {
			t.Fatal(err)
		}
		bob.Refresh()
		if err := bob.Rename("/eng-dir/shared", "/eng-dir2/shared"); err != nil {
			t.Errorf("same-domain writer rename: %v", err)
		}
	})
}

// TestRenameDirectorySubtree: moving a directory keeps its whole subtree
// reachable for every user.
func TestRenameDirectorySubtree(t *testing.T) {
	schemes(t, func(t *testing.T, w *world) {
		alice := w.as("alice")
		if err := alice.Mkdir("/old", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Mkdir("/old/tree", perm(t, "755")); err != nil {
			t.Fatal(err)
		}
		if err := alice.WriteFile("/old/tree/leaf", []byte("leafdata"), perm(t, "644")); err != nil {
			t.Fatal(err)
		}
		if err := alice.Rename("/old/tree", "/moved"); err != nil {
			t.Fatal(err)
		}
		if got, err := alice.ReadFile("/moved/leaf"); err != nil || string(got) != "leafdata" {
			t.Fatalf("after dir move = %q, %v", got, err)
		}
		carol := w.mountFresh("carol", -1)
		defer carol.Close()
		if got, err := carol.ReadFile("/moved/leaf"); err != nil || string(got) != "leafdata" {
			t.Errorf("carol after dir move = %q, %v", got, err)
		}
		if _, err := alice.Stat("/old/tree"); !errors.Is(err, types.ErrNotExist) {
			t.Errorf("old location: %v", err)
		}
	})
}
